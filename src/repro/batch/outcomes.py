"""Per-task outcome records — what the batch runner hands back.

Every task a :class:`~repro.batch.runner.BatchRunner` touches ends in
exactly one frozen :class:`BatchOutcome`: which task (``index`` into the
submitted sequence, content ``key``, human ``label``), how it ended
(``state``), how hard it was tried (``attempts``), how long it took, and
— depending on the state — the result or the error text.  In ``degrade``
mode the full input-ordered outcome list *is* the batch's return value,
which is what lets ``repro report`` render a partial report with failed
experiments explicitly marked instead of dying.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional

from repro.errors import BatchError

#: every terminal state a batch task can end in.  ``ok`` carries a
#: result; ``failed`` means the task raised and exhausted its retries;
#: ``timeout`` means it blew the wall-clock deadline and its worker was
#: terminated; ``interrupted`` means the worker process died underneath
#: it (OOM kill, SIGKILL, injected crash) — not retried, because the
#: runner cannot know what side effects the dead attempt had.
OUTCOME_STATES = ("ok", "failed", "timeout", "interrupted")


@dataclass(frozen=True)
class BatchOutcome:
    """The terminal record of one batch task."""

    index: int
    key: str
    label: str
    state: str
    attempts: int = 0
    elapsed_s: float = 0.0
    error: Optional[str] = None
    result: Any = None

    def __post_init__(self) -> None:
        if not isinstance(self.index, int) or self.index < 0:
            raise BatchError(
                f"index must be a non-negative int, got {self.index!r}"
            )
        if not isinstance(self.key, str) or not self.key:
            raise BatchError(f"key must be a non-empty string, got {self.key!r}")
        if self.state not in OUTCOME_STATES:
            raise BatchError(
                f"state must be one of {OUTCOME_STATES}, got {self.state!r}"
            )
        if not isinstance(self.attempts, int) or self.attempts < 0:
            raise BatchError(
                f"attempts must be a non-negative int, got {self.attempts!r}"
            )
        if (
            not isinstance(self.elapsed_s, (int, float))
            or isinstance(self.elapsed_s, bool)
            or self.elapsed_s < 0
        ):
            raise BatchError(
                f"elapsed_s must be a non-negative number, "
                f"got {self.elapsed_s!r}"
            )
        object.__setattr__(self, "elapsed_s", float(self.elapsed_s))
        if self.state != "ok" and not self.error:
            raise BatchError(
                f"{self.state} outcomes must include error details"
            )

    @property
    def ok(self) -> bool:
        return self.state == "ok"

    @property
    def cached(self) -> bool:
        """The result came from a cache (RunStore hit or journal replay),
        not from running the task — its ``elapsed_s`` is a bookkeeping
        stamp, never a measurement."""
        return self.attempts == 0

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for reports and journals.

        Deliberately excludes ``result`` — results can be arbitrary
        objects; the journal stores them separately through the runner's
        ``encode_result`` hook.
        """
        return {
            "index": self.index,
            "key": self.key,
            "label": self.label,
            "state": self.state,
            "attempts": self.attempts,
            "elapsed_s": self.elapsed_s,
            "error": self.error,
        }

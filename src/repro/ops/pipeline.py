"""The per-model preprocessing pipeline (the full Transform phase).

A :class:`PreprocessingPipeline` binds one Table I model to the concrete op
graph the paper describes (Section II-C):

1. feature generation — Bucketize the first ``num_generated_sparse`` dense
   features into new sparse features;
2. feature normalization — Log on every dense feature, SigridHash on every
   raw sparse feature;
3. format conversion — pack everything into a train-ready MiniBatch.

Running the pipeline both *computes* the mini-batch (functional layer) and
*counts* the work done (:class:`OpCounts`), which is what the performance
models consume.  ``OpCounts.expected_for`` derives the same counts
analytically from the spec so performance experiments don't need to
materialize data.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.dataio.columnar import TableData
from repro.errors import PipelineError
from repro.features.minibatch import MiniBatch
from repro.features.specs import ModelSpec
from repro.features.synthetic import SyntheticTableGenerator
from repro.ops.bucketize import Bucketizer
from repro.ops.clip import clamp, truncate_list
from repro.ops.fill import fill_dense, fill_sparse
from repro.ops.format import to_minibatch
from repro.ops.lognorm import log_normalize
from repro.ops.sigridhash import SigridHasher

#: Seed TorchArrow's DLRM recipe uses for SigridHash; any fixed value works.
DEFAULT_HASH_SEED = 0xC0FFEE


@dataclass
class OpCounts:
    """Work counters for one preprocessed mini-batch.

    These are the quantities every hardware model is parameterized on:
    element counts per operation plus the binary-search depth for Bucketize.
    """

    rows: int
    log_elements: int  # dense values normalized by Log
    bucketize_elements: int  # dense values digitized by Bucketize
    bucket_boundaries: int  # m — binary-search space per Bucketize element
    hash_elements: int  # sparse ids normalized by SigridHash
    fill_elements: int  # values touched by the fill ops
    format_elements: int  # values packed during format conversion
    raw_dense_values: int
    raw_sparse_values: int

    @property
    def search_steps_per_element(self) -> float:
        """Binary-search iterations per Bucketize element: ceil(log2(m+1))."""
        return float(int(np.ceil(np.log2(self.bucket_boundaries + 1))))

    @property
    def transform_elements(self) -> int:
        """Total elements touched by the three offloaded ops."""
        return self.log_elements + self.bucketize_elements + self.hash_elements

    @classmethod
    def expected_for(cls, spec: ModelSpec, batch_size: Optional[int] = None) -> "OpCounts":
        """Analytic counts for one batch of ``spec`` (expected values)."""
        rows = batch_size if batch_size is not None else spec.batch_size
        sparse_values = int(round(rows * spec.sparse_elements_per_sample()))
        dense_values = rows * spec.num_dense
        generated = rows * spec.num_generated_sparse
        return cls(
            rows=rows,
            log_elements=dense_values,
            bucketize_elements=generated,
            bucket_boundaries=spec.bucket_size,
            hash_elements=sparse_values,
            fill_elements=dense_values,
            format_elements=dense_values + sparse_values + generated,
            raw_dense_values=dense_values,
            raw_sparse_values=sparse_values,
        )


class PreprocessingPipeline:
    """Executable Transform phase for one Table I model."""

    def __init__(
        self,
        spec: ModelSpec,
        boundaries: Optional[Dict[str, np.ndarray]] = None,
        hash_seed: int = DEFAULT_HASH_SEED,
        generator_seed: int = 0,
        max_sparse_length: Optional[int] = None,
        dense_clamp: Optional[Tuple[float, float]] = None,
    ) -> None:
        """``max_sparse_length`` truncates interaction histories before
        hashing; ``dense_clamp=(low, high)`` bounds dense outliers before
        Log — both optional steps from production TorchArrow recipes."""
        if max_sparse_length is not None and max_sparse_length <= 0:
            raise PipelineError("max_sparse_length must be positive")
        self.spec = spec
        self.hash_seed = hash_seed
        self.generator_seed = generator_seed
        self.max_sparse_length = max_sparse_length
        self.dense_clamp = dense_clamp
        self.schema = spec.schema()
        if boundaries is None:
            gen = SyntheticTableGenerator(spec, seed=generator_seed)
            boundaries = {
                name: gen.bucket_boundaries(name)
                for name in spec.bucketize_source_names
            }
        missing = [n for n in spec.bucketize_source_names if n not in boundaries]
        if missing:
            raise PipelineError(f"missing bucket boundaries for {missing}")
        for name, edges in boundaries.items():
            if len(edges) != spec.bucket_size:
                raise PipelineError(
                    f"boundaries for {name!r} have {len(edges)} edges, "
                    f"Table I says bucket size {spec.bucket_size}"
                )
        self.boundaries = boundaries
        #: embedding-table sizes: hashed features use the model's average
        #: table size; generated features have bucket_size + 1 rows.
        self.table_sizes: Dict[str, int] = {}
        for name in self.schema.sparse_names:
            self.table_sizes[name] = spec.avg_embeddings_per_table
        for name in spec.generated_sparse_names:
            self.table_sizes[name] = spec.bucket_size + 1
        # per-feature op kernels, prepared once per pipeline instead of per
        # batch: boundary validation and hash constants leave the batch loop
        self._bucketizers: Dict[str, Bucketizer] = {
            name: Bucketizer(self.boundaries[name])
            for name in spec.bucketize_source_names
        }
        self._hashers: Dict[str, SigridHasher] = {
            name: SigridHasher(hash_seed, self.table_sizes[name])
            for name in self.schema.sparse_names
        }
        self._sparse_order: List[str] = (
            self.schema.sparse_names + spec.generated_sparse_names
        )

    # -- execution --------------------------------------------------------

    def run(self, raw: TableData, batch_id: int = 0) -> Tuple[MiniBatch, OpCounts]:
        """Transform one raw partition into a MiniBatch, counting the work."""
        label_name = self.schema.label.name
        if label_name not in raw:
            raise PipelineError(f"raw table is missing the label column {label_name!r}")
        labels = np.asarray(raw[label_name])
        rows = len(labels)

        fill_elements = 0
        # 1. fill + feature generation -----------------------------------
        filled_dense: Dict[str, np.ndarray] = {}
        for name in self.schema.dense_names:
            if name not in raw:
                raise PipelineError(f"raw table is missing dense column {name!r}")
            column = fill_dense(raw[name])
            if self.dense_clamp is not None:
                column = clamp(column, *self.dense_clamp)
            filled_dense[name] = column
            fill_elements += rows

        generated: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        bucketize_elements = 0
        for source, target in zip(
            self.spec.bucketize_source_names, self.spec.generated_sparse_names
        ):
            ids = self._bucketizers[source](filled_dense[source])
            lengths = np.ones(rows, dtype=np.int32)
            generated[target] = (lengths, ids)
            bucketize_elements += rows

        # 2. normalization -------------------------------------------------
        normalized_dense = {
            name: log_normalize(values) for name, values in filled_dense.items()
        }
        log_elements = rows * len(normalized_dense)

        hashed_sparse: Dict[str, Tuple[np.ndarray, np.ndarray]] = {}
        hash_elements = 0
        for name in self.schema.sparse_names:
            if name not in raw:
                raise PipelineError(f"raw table is missing sparse column {name!r}")
            lengths, values = raw[name]
            if self.max_sparse_length is not None:
                lengths, values = truncate_list(
                    lengths, values, self.max_sparse_length
                )
            lengths, values = fill_sparse(lengths, values)
            fill_elements += len(values)
            hashed = self._hashers[name](values)
            hashed_sparse[name] = (np.asarray(lengths, dtype=np.int32), hashed)
            hash_elements += len(values)

        # 3. format conversion ---------------------------------------------
        all_sparse = dict(hashed_sparse)
        all_sparse.update(generated)
        batch = to_minibatch(
            dense_columns=normalized_dense,
            sparse_columns=all_sparse,
            labels=labels,
            dense_order=self.schema.dense_names,
            sparse_order=self._sparse_order,
            batch_id=batch_id,
        )
        counts = OpCounts(
            rows=rows,
            log_elements=log_elements,
            bucketize_elements=bucketize_elements,
            bucket_boundaries=self.spec.bucket_size,
            hash_elements=hash_elements,
            fill_elements=fill_elements,
            format_elements=int(batch.dense.size + batch.sparse.values.size
                                + batch.sparse.lengths.size),
            raw_dense_values=rows * len(self.schema.dense_names),
            raw_sparse_values=hash_elements,
        )
        return batch, counts

    def run_many(
        self,
        raws: Iterable[TableData],
        start_batch_id: int = 0,
    ) -> List[Tuple[MiniBatch, OpCounts]]:
        """Transform a stream of raw partitions with one prepared pipeline.

        The fused form of the Transform phase: boundary structures, hash
        constants, and the column order are prepared once (at construction)
        and amortized over every batch, instead of a naive driver paying
        pipeline setup — including synthetic boundary generation — per
        partition.  Batch ids are assigned sequentially from
        ``start_batch_id``, matching the partition order.
        """
        return [
            self.run(raw, batch_id=start_batch_id + index)
            for index, raw in enumerate(raws)
        ]

    def required_columns(self) -> Tuple[str, ...]:
        """Columns the Extract phase must fetch (everything this model uses)."""
        return tuple(
            [self.schema.label.name]
            + self.schema.dense_names
            + self.schema.sparse_names
        )

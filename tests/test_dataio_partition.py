"""Tests for row partitioning and placement."""

import numpy as np
import pytest

from repro.dataio.columnar import ColumnarFileReader
from repro.dataio.partition import (
    Partition,
    RowPartitioner,
    partition_stats,
    place_round_robin,
)
from repro.errors import PartitionError
from repro.features.specs import get_model
from repro.features.synthetic import generate_raw_table


@pytest.fixture(scope="module")
def rm1_table():
    spec = get_model("RM1")
    return spec, generate_raw_table(spec, 100)


class TestRowPartitioner:
    def test_partition_row_ranges(self, rm1_table):
        spec, data = rm1_table
        parts = RowPartitioner(spec.schema(), rows_per_partition=32).partition_all(data)
        assert [p.num_rows for p in parts] == [32, 32, 32, 4]
        assert parts[0].row_start == 0
        assert parts[-1].row_stop == 100
        assert [p.index for p in parts] == [0, 1, 2, 3]

    def test_each_partition_is_valid_file(self, rm1_table):
        spec, data = rm1_table
        parts = RowPartitioner(spec.schema(), rows_per_partition=40).partition_all(data)
        for part in parts:
            reader = ColumnarFileReader(part.file_bytes)
            assert reader.num_rows == part.num_rows

    def test_partitions_reassemble_original(self, rm1_table):
        spec, data = rm1_table
        parts = RowPartitioner(spec.schema(), rows_per_partition=33).partition_all(data)
        dense_chunks = [
            ColumnarFileReader(p.file_bytes).read_column("int_0") for p in parts
        ]
        np.testing.assert_array_equal(np.concatenate(dense_chunks), data["int_0"])
        sparse_values = [
            ColumnarFileReader(p.file_bytes).read_column("cat_3")[1] for p in parts
        ]
        np.testing.assert_array_equal(
            np.concatenate(sparse_values), data["cat_3"][1]
        )

    def test_empty_table_rejected(self, rm1_table):
        spec, data = rm1_table
        empty = {k: (v[0][:0], v[1][:0]) if isinstance(v, tuple) else v[:0]
                 for k, v in data.items()}
        with pytest.raises(PartitionError, match="empty"):
            RowPartitioner(spec.schema()).partition_all(empty)

    def test_bad_partition_size(self, rm1_table):
        spec, _ = rm1_table
        with pytest.raises(PartitionError):
            RowPartitioner(spec.schema(), rows_per_partition=0)


class TestPlacement:
    def _parts(self, n):
        return [
            Partition(index=i, row_start=i * 10, row_stop=(i + 1) * 10, file_bytes=b"x")
            for i in range(n)
        ]

    def test_round_robin_spread(self):
        placement = place_round_robin(self._parts(7), 3)
        assert [p.index for p in placement[0]] == [0, 3, 6]
        assert [p.index for p in placement[1]] == [1, 4]
        assert [p.index for p in placement[2]] == [2, 5]

    def test_zero_devices_rejected(self):
        with pytest.raises(PartitionError):
            place_round_robin(self._parts(2), 0)

    def test_stats(self):
        total_rows, total_bytes, mean = partition_stats(self._parts(4))
        assert total_rows == 40
        assert total_bytes == 4
        assert mean == pytest.approx(0.1)

    def test_stats_empty_rejected(self):
        with pytest.raises(PartitionError):
            partition_stats([])

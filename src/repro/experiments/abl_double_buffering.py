"""Ablation — double buffering (pipelining) in the PreSto device.

Section IV-C's second design optimization: "each processing element employs
double-buffering to overlap the next feature value's data fetch operation
with the current feature value's generation and normalization".  At device
scale this is what lets consecutive mini-batches overlap across the
P2P/decode/transform/format/load stages.

The ablation disables that overlap (throughput = batch / end-to-end latency,
like a serial worker) and re-derives Figure 11/14: without pipelining a
single SmartSSD no longer beats Disagg(32), and the ISP allocation per
8-GPU node roughly quadruples — i.e. the optimization carries the headline
results.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.systems import DisaggCpuSystem, PreStoSystem
from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    models,
    register_experiment,
)
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.training.gpu import GpuTrainingModel


@dataclass(frozen=True)
class DoubleBufferingResult(ExperimentResult):
    """Pipelined vs serial device throughput and provisioning."""

    pipelined_throughput: Dict[str, float]
    serial_throughput: Dict[str, float]
    pipelined_units: Dict[str, int]
    serial_units: Dict[str, int]
    disagg32_throughput: Dict[str, float]

    def gain(self, model: str) -> float:
        """Throughput gain from pipelining for one model."""
        return self.pipelined_throughput[model] / self.serial_throughput[model]

    @property
    def mean_gain(self) -> float:
        values = [self.gain(m) for m in self.pipelined_throughput]
        return sum(values) / len(values)

    def claims(self) -> List[PaperClaim]:
        serial_beats_32 = sum(
            1
            for m in self.serial_throughput
            if self.serial_throughput[m] > self.disagg32_throughput[m]
        )
        return [
            PaperClaim("pipelining gain (x, mean)", 4.0, self.mean_gain, 0.35),
            PaperClaim(
                "models where a *serial* SmartSSD still beats Disagg(32)",
                0.0,
                float(serial_beats_32),
                1.0,
            ),
            PaperClaim(
                "max ISP units without pipelining",
                9.0 * 4,
                float(max(self.serial_units.values())),
                0.35,
            ),
        ]

    def rows(self) -> List[Tuple]:
        return [
            (
                m,
                self.pipelined_throughput[m] / 1e3,
                self.serial_throughput[m] / 1e3,
                self.gain(m),
                self.pipelined_units[m],
                self.serial_units[m],
            )
            for m in self.pipelined_throughput
        ]

    def columns(self) -> List[str]:
        return [
            "model",
            "pipelined k-samples/s",
            "serial k-samples/s",
            "gain (x)",
            "units (pipelined)",
            "units (serial)",
        ]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title="Ablation (double buffering): device throughput and 8-GPU provisioning",
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("abl-pipeline", title="Ablation: double buffering", kind="ablation", order=210)
def run(calibration: Calibration = CALIBRATION) -> DoubleBufferingResult:
    """Run the double-buffering ablation."""
    gpu = GpuTrainingModel(calibration)
    pipelined_tput: Dict[str, float] = {}
    serial_tput: Dict[str, float] = {}
    pipelined_units: Dict[str, int] = {}
    serial_units: Dict[str, int] = {}
    disagg32: Dict[str, float] = {}
    for spec in models():
        system = PreStoSystem(spec, calibration)
        worker = system.make_worker()
        demand = gpu.node_throughput(spec, 8)

        pipelined = worker.throughput()
        serial = spec.batch_size / worker.batch_latency()
        pipelined_tput[spec.name] = pipelined
        serial_tput[spec.name] = serial
        pipelined_units[spec.name] = math.ceil(demand / pipelined)
        serial_units[spec.name] = math.ceil(demand / serial)
        disagg32[spec.name] = DisaggCpuSystem(spec, calibration).aggregate_throughput(32)
    return DoubleBufferingResult(
        pipelined_throughput=pipelined_tput,
        serial_throughput=serial_tput,
        pipelined_units=pipelined_units,
        serial_units=serial_units,
        disagg32_throughput=disagg32,
    )

"""Tests for the streaming preprocessing service: lifecycle records, the
bounded queue, the worker pool, sources, the service itself, and the
line-oriented socket protocol — all in-process, no external network."""

import dataclasses
import json
import threading
import time

import pytest

from repro.api import PreprocessJob
from repro.errors import (
    ConfigurationError,
    JobNotFoundError,
    QueueClosedError,
    QueueFullError,
    ServeError,
)
from repro.serve import (
    BoundedJobQueue,
    DirectoryJobSource,
    JobLogIndex,
    JobRecord,
    PreprocessService,
    ServiceClient,
    ServiceServer,
    SourceRegistry,
    SourceWatcher,
    StageEvent,
    SyntheticJobSource,
    WorkerPool,
    read_endpoint,
)

JOB = PreprocessJob(model="RM1", num_rows=256, num_shards=1)


def fast_runner(job, record_stage):
    """Instant stand-in for the data plane: digest derives from the seed."""
    record_stage("generate", "started", {})
    record_stage("generate", "completed", {"elapsed_s": 0.0, "rows": job.num_rows})
    return f"digest-{job.seed}"


# ---------------------------------------------------------------------------
# records
# ---------------------------------------------------------------------------


class TestStageEvent:
    def test_round_trip(self):
        event = StageEvent(
            "extract", "completed", at=12.5, elapsed_s=0.25,
            metrics={"bytes_read": 100.0},
        )
        rebuilt = StageEvent.from_dict(event.to_dict())
        assert rebuilt == event

    def test_failed_requires_error(self):
        with pytest.raises(ServeError, match="error details"):
            StageEvent("extract", "failed", at=1.0)
        StageEvent("extract", "failed", at=1.0, error="boom")  # fine

    def test_bad_status_rejected(self):
        with pytest.raises(ServeError, match="status"):
            StageEvent("extract", "exploded", at=1.0)

    def test_unknown_keys_rejected(self):
        with pytest.raises(ServeError, match="unknown"):
            StageEvent.from_dict({"stage": "x", "status": "started", "at": 1.0,
                                  "bogus": 1})


class TestJobRecord:
    def test_dict_round_trip(self):
        record = (
            JobRecord(job_id="job-1", job=JOB, submitted_at=1.0)
            .mark_running(at=2.0)
            .with_stage(StageEvent("generate", "started", at=2.1))
            .with_stage(StageEvent("generate", "completed", at=2.2,
                                   elapsed_s=0.1, metrics={"rows": 256.0}))
            .mark_completed(at=3.0, digest="abc123")
        )
        rebuilt = JobRecord.from_dict(record.to_dict())
        assert rebuilt == record
        assert rebuilt.job == JOB
        assert rebuilt.stages == record.stages

    def test_json_round_trip(self):
        record = JobRecord(job_id="job-1", job=JOB, submitted_at=1.0)
        rebuilt = JobRecord.from_dict(json.loads(json.dumps(record.to_dict())))
        assert rebuilt == record

    def test_transitions(self):
        record = JobRecord(job_id="j", job=JOB, submitted_at=1.0)
        assert record.state == "queued" and not record.is_terminal
        running = record.mark_running(at=2.0)
        assert running.attempts == 1 and running.started_at == 2.0
        again = running.mark_running(at=5.0)
        assert again.attempts == 2
        assert again.started_at == 2.0  # first start is preserved
        done = again.mark_completed(at=6.0, digest="d")
        assert done.is_terminal and done.completed_at == 6.0

    def test_failed_requires_error(self):
        record = JobRecord(job_id="j", job=JOB)
        with pytest.raises(ServeError, match="error details"):
            dataclasses.replace(record, state="failed")

    def test_completed_requires_digest(self):
        record = JobRecord(job_id="j", job=JOB)
        with pytest.raises(ServeError, match="digest"):
            dataclasses.replace(record, state="completed")

    def test_bad_state_rejected(self):
        with pytest.raises(ServeError, match="state"):
            JobRecord(job_id="j", job=JOB, state="paused")

    def test_unknown_keys_rejected(self):
        data = JobRecord(job_id="j", job=JOB).to_dict()
        data["surprise"] = 1
        with pytest.raises(ServeError, match="unknown"):
            JobRecord.from_dict(data)


class TestJobLogIndex:
    def test_last_line_per_job_wins(self, tmp_path):
        index = JobLogIndex(str(tmp_path / "jobs.jsonl"))
        record = JobRecord(job_id="job-1", job=JOB, submitted_at=1.0)
        index.append(record)
        index.append(record.mark_running(at=2.0))
        index.append(record.mark_running(at=2.0).mark_completed(3.0, "d"))
        loaded = index.load()
        assert [r.state for r in loaded] == ["completed"]
        assert loaded[0].digest == "d"

    def test_most_recently_completed_first(self, tmp_path):
        index = JobLogIndex(str(tmp_path / "jobs.jsonl"))
        early = JobRecord(job_id="job-1", job=JOB, submitted_at=1.0)
        late = JobRecord(job_id="job-2", job=JOB, submitted_at=2.0)
        index.append(early.mark_running(3.0).mark_completed(9.0, "d1"))
        index.append(late.mark_running(4.0).mark_completed(5.0, "d2"))
        assert [r.job_id for r in index.load()] == ["job-1", "job-2"]

    def test_missing_file_is_empty(self, tmp_path):
        assert JobLogIndex(str(tmp_path / "nothing.jsonl")).load() == []

    def test_torn_final_line_tolerated(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        index = JobLogIndex(str(path))
        index.append(JobRecord(job_id="job-1", job=JOB, submitted_at=1.0))
        with open(path, "a") as handle:
            handle.write('{"job_id": "job-2", "tru')  # killed mid-append
        loaded = index.load()
        assert [r.job_id for r in loaded] == ["job-1"]

    def test_interior_corruption_is_loud(self, tmp_path):
        path = tmp_path / "jobs.jsonl"
        index = JobLogIndex(str(path))
        index.append(JobRecord(job_id="job-1", job=JOB, submitted_at=1.0))
        with open(path, "a") as handle:
            handle.write("garbage\n")  # complete line: not a torn append
        index.append(JobRecord(job_id="job-2", job=JOB, submitted_at=2.0))
        with pytest.raises(ServeError, match="line 2"):
            index.load()


# ---------------------------------------------------------------------------
# queue
# ---------------------------------------------------------------------------


class TestBoundedJobQueue:
    def test_fifo(self):
        queue = BoundedJobQueue(capacity=4)
        for item in "abc":
            queue.put(item)
        assert [queue.get() for _ in range(3)] == ["a", "b", "c"]

    def test_reject_policy_raises_when_full(self):
        queue = BoundedJobQueue(capacity=2, policy="reject")
        queue.put("a")
        queue.put("b")
        with pytest.raises(QueueFullError):
            queue.put("c")
        assert len(queue) == 2 and queue.free == 0

    def test_block_policy_times_out(self):
        queue = BoundedJobQueue(capacity=1, policy="block")
        queue.put("a")
        start = time.monotonic()
        with pytest.raises(QueueFullError):
            queue.put("b", timeout=0.05)
        assert time.monotonic() - start >= 0.04

    def test_blocked_put_released_by_get(self):
        queue = BoundedJobQueue(capacity=1, policy="block")
        queue.put("a")
        done = threading.Event()

        def producer():
            queue.put("b", timeout=5.0)
            done.set()

        thread = threading.Thread(target=producer, daemon=True)
        thread.start()
        assert queue.get() == "a"
        assert done.wait(5.0)
        assert queue.get() == "b"

    def test_closed_refuses_puts_and_drains_gets(self):
        queue = BoundedJobQueue(capacity=4)
        queue.put("a")
        queue.close()
        with pytest.raises(QueueClosedError):
            queue.put("b")
        assert queue.free == 0
        assert queue.get() == "a"  # drain what was queued
        with pytest.raises(QueueClosedError):
            queue.get()

    def test_get_timeout(self):
        queue = BoundedJobQueue(capacity=1)
        with pytest.raises(TimeoutError):
            queue.get(timeout=0.05)

    def test_cancel_removes_matching(self):
        queue = BoundedJobQueue(capacity=8)
        for item in ("a1", "b1", "a2"):
            queue.put(item)
        removed = queue.cancel(lambda item: item.startswith("a"))
        assert removed == ["a1", "a2"]
        assert queue.snapshot() == ["b1"]

    def test_invalid_construction(self):
        with pytest.raises(ServeError):
            BoundedJobQueue(capacity=0)
        with pytest.raises(ServeError):
            BoundedJobQueue(policy="drop")


# ---------------------------------------------------------------------------
# worker pool
# ---------------------------------------------------------------------------


class TestWorkerPool:
    def _pool(self, runner, **kwargs):
        queue = BoundedJobQueue(capacity=32)
        done, errors = [], []
        kwargs.setdefault("num_workers", 2)
        pool = WorkerPool(
            queue,
            runner,
            on_done=lambda item, result, error: (
                errors.append((item, error)) if error else done.append(
                    (item, result)
                )
            ),
            **kwargs,
        )
        return queue, pool, done, errors

    def test_processes_all_items(self):
        queue, pool, done, errors = self._pool(lambda item, attempt: item * 2)
        pool.start()
        for n in range(10):
            queue.put(n)
        assert pool.drain(timeout=10.0)
        assert sorted(done) == [(n, n * 2) for n in range(10)]
        assert errors == []

    def test_retry_backoff_is_exponential(self):
        attempts, delays = [], []

        def flaky(item, attempt):
            attempts.append(attempt)
            if attempt <= 3:
                raise ValueError("transient")
            return "ok"

        queue, pool, done, errors = self._pool(
            flaky,
            num_workers=1,
            max_retries=3,
            backoff_s=0.1,
            backoff_factor=2.0,
            sleep=delays.append,
        )
        pool.start()
        queue.put("job")
        assert pool.drain(timeout=10.0)
        assert attempts == [1, 2, 3, 4]
        assert delays == pytest.approx([0.1, 0.2, 0.4])
        assert done == [("job", "ok")] and errors == []

    def test_retries_exhausted_reports_failure(self):
        def always_broken(item, attempt):
            raise ValueError("permanent")

        queue, pool, done, errors = self._pool(
            always_broken, max_retries=2, backoff_s=0.0
        )
        pool.start()
        queue.put("job")
        assert pool.drain(timeout=10.0)
        assert done == []
        assert len(errors) == 1
        item, error = errors[0]
        assert item == "job" and isinstance(error, ValueError)

    def test_worker_death_replaces_worker_and_reports_job(self):
        deaths = []

        def poison(item, attempt):
            if item == "poison":
                raise SystemExit("worker crashed")
            return "ok"

        queue = BoundedJobQueue(capacity=8)
        done, errors = [], []
        pool = WorkerPool(
            queue,
            poison,
            num_workers=1,
            on_done=lambda item, result, error: (
                errors.append((item, error)) if error else done.append(item)
            ),
            on_worker_death=lambda worker, item, error: deaths.append(
                (worker, item)
            ),
        )
        pool.start()
        queue.put("poison")
        queue.put("survivor")  # must still run on the replacement worker
        assert pool.drain(timeout=10.0)
        assert done == ["survivor"]
        assert len(errors) == 1 and isinstance(errors[0][1], SystemExit)
        assert pool.workers_replaced >= 1
        assert deaths and deaths[0][1] == "poison"

    def test_stop_cancels_queued_tail(self):
        release = threading.Event()

        def slow(item, attempt):
            release.wait(10.0)
            return item

        queue, pool, done, errors = self._pool(slow, num_workers=1)
        pool.start()
        for item in ("a", "b", "c"):
            queue.put(item)
        while not pool.inflight():
            time.sleep(0.005)
        release.set()
        cancelled = pool.stop(timeout=10.0)
        # "a" was in flight (runs to completion); the tail never executes
        assert set(cancelled) <= {"b", "c"}
        assert set(cancelled) | {item for item, _ in done} == {"a", "b", "c"}

    def test_invalid_construction(self):
        queue = BoundedJobQueue()
        with pytest.raises(ServeError):
            WorkerPool(queue, lambda i, a: i, num_workers=0)
        with pytest.raises(ServeError):
            WorkerPool(queue, lambda i, a: i, max_retries=-1)


# ---------------------------------------------------------------------------
# service
# ---------------------------------------------------------------------------


class TestPreprocessService:
    def test_digest_matches_serial_batch_path(self, tmp_path):
        """The central guarantee: the service's digest is byte-identical to
        the serial ``PreprocessJob.run(parallel=False)`` digest."""
        job = PreprocessJob(model="RM1", num_rows=512, num_shards=2)
        serial = job.run(parallel=False).digest
        with PreprocessService(spool_dir=str(tmp_path), num_workers=1) as svc:
            record = svc.submit(job)
            final = svc.wait(record.job_id, timeout=120.0)
        assert final.state == "completed"
        assert final.digest == serial
        # the full pipeline is visible in the telemetry
        started = [e.stage for e in final.stages if e.status == "started"]
        completed = [e.stage for e in final.stages if e.status == "completed"]
        assert started == ["generate", "partition", "extract", "transform"]
        assert completed == started

    def test_records_persist_to_jsonl_index(self, tmp_path):
        with PreprocessService(
            spool_dir=str(tmp_path), runner=fast_runner
        ) as svc:
            first = svc.submit(JOB)
            svc.wait(first.job_id, timeout=30.0)
        index = JobLogIndex(str(tmp_path / "jobs.jsonl"))
        loaded = index.load()
        assert [r.job_id for r in loaded] == [first.job_id]
        assert loaded[0].state == "completed"
        assert loaded[0].digest == f"digest-{JOB.seed}"

    def test_reject_backpressure_is_typed_and_tombstoned(self, tmp_path):
        release = threading.Event()

        def stuck(job, record_stage):
            release.wait(30.0)
            return "digest"

        service = PreprocessService(
            spool_dir=str(tmp_path),
            queue_capacity=1,
            num_workers=1,
            policy="reject",
            runner=stuck,
        )
        service.start()
        try:
            running = service.submit(JOB)  # a worker grabs this one
            while not service.pool.inflight():
                time.sleep(0.005)
            service.submit(dataclasses.replace(JOB, seed=1))  # fills the queue
            with pytest.raises(QueueFullError):
                service.submit(dataclasses.replace(JOB, seed=2))
        finally:
            release.set()
            service.stop(drain=True, timeout=30.0)
        assert service.wait(running.job_id).state == "completed"
        # the rejected submission is not a live job but leaves a terminal
        # tombstone in the index — nothing vanishes silently
        assert len(service.jobs()) == 2
        tombstones = [
            r
            for r in JobLogIndex(str(tmp_path / "jobs.jsonl")).load()
            if r.state == "cancelled"
        ]
        assert len(tombstones) == 1
        assert "rejected" in tombstones[0].error

    def test_drain_finishes_every_queued_job(self, tmp_path):
        service = PreprocessService(
            spool_dir=str(tmp_path), num_workers=2, runner=fast_runner
        )
        service.start()
        records = [
            service.submit(dataclasses.replace(JOB, seed=i)) for i in range(8)
        ]
        service.stop(drain=True, timeout=30.0)
        final = [service.status(r.job_id) for r in records]
        assert all(r.state == "completed" for r in final)
        assert [r.digest for r in final] == [f"digest-{i}" for i in range(8)]

    def test_no_drain_cancels_queued_tail_explicitly(self, tmp_path):
        release = threading.Event()

        def stuck(job, record_stage):
            release.wait(30.0)
            return "digest"

        service = PreprocessService(
            spool_dir=str(tmp_path), num_workers=1, runner=stuck
        )
        service.start()
        records = [
            service.submit(dataclasses.replace(JOB, seed=i)) for i in range(3)
        ]
        while not service.pool.inflight():
            time.sleep(0.005)
        threading.Timer(0.1, release.set).start()
        service.stop(drain=False, timeout=30.0)
        states = {r.job_id: service.status(r.job_id).state for r in records}
        assert states[records[0].job_id] == "completed"  # in-flight finishes
        tail = [states[r.job_id] for r in records[1:]]
        assert tail == ["cancelled", "cancelled"]
        for record in records[1:]:
            assert service.status(record.job_id).error == "service shutdown"
        # every record is terminal — no orphans
        assert all(service.status(r.job_id).is_terminal for r in records)

    def test_cancel_queued_job(self, tmp_path):
        release = threading.Event()

        def stuck(job, record_stage):
            release.wait(30.0)
            return "digest"

        service = PreprocessService(num_workers=1, runner=stuck)
        service.start()
        try:
            service.submit(JOB)
            while not service.pool.inflight():
                time.sleep(0.005)
            queued = service.submit(dataclasses.replace(JOB, seed=1))
            assert service.cancel(queued.job_id) is True
            assert service.status(queued.job_id).state == "cancelled"
            # terminal records never transition again
            assert service.cancel(queued.job_id) is False
        finally:
            release.set()
            service.stop(drain=True, timeout=30.0)

    def test_cancel_unknown_job(self):
        service = PreprocessService(runner=fast_runner)
        with pytest.raises(JobNotFoundError):
            service.cancel("job-999999")

    def test_retry_then_success(self):
        calls = []

        def flaky(job, record_stage):
            calls.append(1)
            if len(calls) == 1:
                raise ValueError("transient glitch")
            return "digest-after-retry"

        service = PreprocessService(
            num_workers=1, max_retries=2, backoff_s=0.0, runner=flaky
        )
        service.start()
        record = service.submit(JOB)
        final = service.wait(record.job_id, timeout=30.0)
        service.stop(timeout=30.0)
        assert final.state == "completed"
        assert final.digest == "digest-after-retry"
        assert final.attempts == 2
        retries = [e for e in final.stages if e.stage == "retry"]
        assert len(retries) == 1
        assert retries[0].metrics["attempt"] == 1

    def test_failure_records_stage_attribution(self):
        def dies_in_extract(job, record_stage):
            record_stage("generate", "started", {})
            record_stage("generate", "completed", {})
            record_stage("extract", "started", {})
            raise ValueError("bad chunk CRC")

        service = PreprocessService(
            num_workers=1, max_retries=0, runner=dies_in_extract
        )
        service.start()
        record = service.submit(JOB)
        final = service.wait(record.job_id, timeout=30.0)
        service.stop(timeout=30.0)
        assert final.state == "failed"
        assert "bad chunk CRC" in final.error
        by_stage = {(e.stage, e.status) for e in final.stages}
        assert ("extract", "failed") in by_stage
        assert ("generate", "completed") in by_stage
        # stages that never ran are recorded explicitly as skipped
        assert ("partition", "skipped") in by_stage
        assert ("transform", "skipped") in by_stage
        failed = [e for e in final.stages if e.status == "failed"]
        assert all("bad chunk CRC" in e.error for e in failed)

    def test_watch_streams_transitions_until_terminal(self):
        service = PreprocessService(num_workers=1, runner=fast_runner)
        service.start()
        record = service.submit(JOB)
        snapshots = list(service.watch(record.job_id, timeout=30.0))
        service.stop(timeout=30.0)
        assert snapshots[0].state in ("queued", "running")
        assert snapshots[-1].state == "completed"
        assert all(not s.is_terminal for s in snapshots[:-1])

    def test_submit_after_stop_is_refused(self):
        service = PreprocessService(runner=fast_runner)
        service.start()
        service.stop(timeout=30.0)
        with pytest.raises(QueueClosedError):
            service.submit(JOB)

    def test_counts(self):
        service = PreprocessService(num_workers=1, runner=fast_runner)
        service.start()
        record = service.submit(JOB)
        service.wait(record.job_id, timeout=30.0)
        service.stop(timeout=30.0)
        assert service.counts() == {"completed": 1}


# ---------------------------------------------------------------------------
# sources
# ---------------------------------------------------------------------------


class TestDirectoryJobSource:
    def test_picks_up_each_file_once(self, tmp_path):
        source = DirectoryJobSource(str(tmp_path))
        (tmp_path / "a.json").write_text(json.dumps(JOB.to_dict()))
        jobs = source.take(10)
        assert jobs == [JOB]
        assert source.take(10) == []  # remembered, never re-read
        (tmp_path / "b.json").write_text(
            json.dumps(dataclasses.replace(JOB, seed=7).to_dict())
        )
        assert [j.seed for j in source.take(10)] == [7]

    def test_respects_limit(self, tmp_path):
        source = DirectoryJobSource(str(tmp_path))
        for i in range(5):
            (tmp_path / f"{i}.json").write_text(
                json.dumps(dataclasses.replace(JOB, seed=i).to_dict())
            )
        assert len(source.take(2)) == 2
        assert len(source.take(10)) == 3

    def test_invalid_file_rejected_loudly_not_fatally(self, tmp_path):
        source = DirectoryJobSource(str(tmp_path))
        (tmp_path / "bad.json").write_text("{not json")
        (tmp_path / "good.json").write_text(json.dumps(JOB.to_dict()))
        jobs = source.take(10)
        assert jobs == [JOB]
        assert list(source.rejected) == [str(tmp_path / "bad.json")]
        assert source.take(10) == []  # the bad file is never retried


class TestSyntheticJobSource:
    def test_emits_distinct_seeds(self):
        source = SyntheticJobSource(model="RM1", num_rows=64, count=3, seed=10)
        first = source.take(2)
        assert [j.seed for j in first] == [10, 11]
        assert not source.exhausted
        assert [j.seed for j in source.take(10)] == [12]
        assert source.exhausted
        assert source.take(10) == []

    def test_bad_count_rejected(self):
        with pytest.raises(ConfigurationError):
            SyntheticJobSource(count=0)

    def test_bad_model_fails_at_attach_time(self):
        with pytest.raises(ConfigurationError):
            SyntheticJobSource(model="NoSuchModel")


class TestSourceRegistry:
    def test_builtins_registered(self):
        from repro.serve.sources import SOURCE_REGISTRY

        assert set(SOURCE_REGISTRY.kinds()) >= {"directory", "synthetic"}
        source = SOURCE_REGISTRY.create("synthetic", model="RM1", count=1)
        assert isinstance(source, SyntheticJobSource)

    def test_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="unknown source kind"):
            SourceRegistry().create("kafkaesque")

    def test_plugin_registration(self):
        registry = SourceRegistry()
        registry.register("custom", SyntheticJobSource)
        with pytest.raises(ConfigurationError, match="already registered"):
            registry.register("custom", SyntheticJobSource)
        registry.register("custom", DirectoryJobSource, replace=True)
        assert registry.kinds() == ("custom",)


class TestSourceWatcher:
    def test_poll_respects_free_capacity(self):
        submitted = []
        watcher = SourceWatcher(
            submit=lambda job, source: submitted.append((job.seed, source)),
            free_slots=lambda: 2,
        )
        source = SyntheticJobSource(model="RM1", count=5)
        watcher.attach(source)
        assert watcher.poll_once() == 2  # only the free slots are offered
        assert watcher.poll_once() == 2
        assert watcher.poll_once() == 1
        assert [seed for seed, _ in submitted] == [0, 1, 2, 3, 4]
        assert all(name == source.name for _, name in submitted)

    def test_detach(self):
        watcher = SourceWatcher(submit=lambda j, s: None, free_slots=lambda: 8)
        source = SyntheticJobSource(model="RM1", count=1)
        watcher.attach(source)
        watcher.detach(source)
        assert watcher.poll_once() == 0

    def test_service_ingests_from_attached_source(self, tmp_path):
        with PreprocessService(
            spool_dir=str(tmp_path),
            runner=fast_runner,
            poll_interval=0.02,
        ) as service:
            service.attach_source(
                SyntheticJobSource(model="RM1", num_rows=64, count=3)
            )
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                done = service.jobs(state="completed")
                if len(done) == 3:
                    break
                time.sleep(0.02)
            assert len(service.jobs(state="completed")) == 3
            assert {r.source for r in service.jobs()} == {"synthetic:RM1"}


# ---------------------------------------------------------------------------
# protocol: submit / attach / detach over the local socket
# ---------------------------------------------------------------------------


@pytest.fixture()
def served(tmp_path):
    service = PreprocessService(
        spool_dir=str(tmp_path), num_workers=1, runner=fast_runner
    )
    server = ServiceServer(service, host="127.0.0.1", port=0)
    server.start()
    client = ServiceClient(host=server.host, port=server.port, timeout=30.0)
    yield server, client, tmp_path
    server.stop(drain=True, timeout=30.0)


class TestProtocol:
    def test_ping(self, served):
        _, client, _ = served
        assert client.ping() is True

    def test_submit_wait_round_trip(self, served):
        _, client, _ = served
        record = client.submit(JOB, wait=True, wait_timeout=30.0)
        assert isinstance(record, JobRecord)
        assert record.state == "completed"
        assert record.digest == f"digest-{JOB.seed}"
        assert record.job == JOB

    def test_detached_client_can_reattach_for_status(self, served):
        _, client, _ = served
        job_id = client.submit(JOB).job_id
        # every call is a fresh connection: submit, detach, attach, poll
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            record = client.status(job_id)
            if record.is_terminal:
                break
            time.sleep(0.02)
        assert record.state == "completed"
        assert [r.job_id for r in client.jobs()] == [job_id]
        assert client.counts() == {"completed": 1}

    def test_watch_streams_to_terminal(self, served):
        _, client, _ = served
        job_id = client.submit(JOB).job_id
        events = list(client.watch(job_id, timeout=30.0))
        assert events[-1].state == "completed"
        assert all(isinstance(e, JobRecord) for e in events)

    def test_typed_errors_cross_the_wire(self, served):
        _, client, _ = served
        with pytest.raises(JobNotFoundError):
            client.status("job-424242")
        with pytest.raises(JobNotFoundError):
            client.cancel("job-424242")

    def test_endpoint_discovery(self, served):
        server, _, tmp_path = served
        endpoint = read_endpoint(str(tmp_path))
        assert endpoint["port"] == server.port
        by_spool = ServiceClient(spool_dir=str(tmp_path), timeout=30.0)
        assert by_spool.ping() is True

    def test_missing_endpoint_is_loud(self, tmp_path):
        with pytest.raises(ServeError, match="repro serve"):
            read_endpoint(str(tmp_path / "empty"))

    def test_shutdown_drains_and_removes_endpoint(self, tmp_path):
        service = PreprocessService(
            spool_dir=str(tmp_path), num_workers=1, runner=fast_runner
        )
        server = ServiceServer(service, host="127.0.0.1", port=0)
        server.start()
        client = ServiceClient(host=server.host, port=server.port, timeout=30.0)
        job_id = client.submit(JOB).job_id
        assert client.shutdown(drain=True) is True
        assert server.wait(timeout=30.0)
        # the submitted job was drained, the endpoint file removed
        assert service.status(job_id).state == "completed"
        assert not (tmp_path / "endpoint.json").exists()
        assert (tmp_path / "jobs.jsonl").exists()

"""The experiment front door: registry, typed runs, cached + parallel runner.

The repo's evaluation surface is ~20 experiment modules (``fig3``–``fig17``,
``table1``/``table2``, seven ablations).  This module gives them the same
registry treatment :mod:`repro.api.registry` gave the *systems*:

* :class:`ExperimentRegistry` / :func:`register_experiment` — every
  experiment module decorates its ``run()`` function and thereby plugs into
  ``repro list/run/report/export``, the cache, and the parallel runner at
  once; the registry knows each experiment's id, paper title, kind
  (``figure`` / ``table`` / ``ablation``), paper order, parameter
  signature, and result type;
* :class:`ExperimentRun` — one frozen, validated record naming an
  experiment plus typed parameter overrides and calibration overrides;
  round-trips through plain dicts (``to_dict``/``from_dict``) like
  :class:`~repro.api.scenario.Scenario` and
  :class:`~repro.api.preprocess.PreprocessJob`;
* :class:`ExperimentResult` — the uniform result protocol (``columns()`` +
  ``rows()`` for export, ``claims()`` for the scoreboard, ``render()`` for
  the text report, ``to_dict()``/``from_dict()`` for the cache) with a
  type-driven JSON codec that handles the result dataclasses' nested
  dicts, tuple keys, and nested dataclasses losslessly;
* :class:`RunStore` — an on-disk JSON cache keyed by (experiment id,
  params digest, calibration digest) so repeated ``report``/``export``
  invocations replay stored results (``force=True`` bypasses);
* :func:`run_experiments` — the :class:`~repro.api.sweep.Sweep`-style
  fault-tolerant fan-out (via :class:`~repro.batch.runner.BatchRunner`)
  with deterministic, serial-identical result ordering, per-task
  retries/timeouts, journaled resume, and completed-result caching even
  when a later task fails.

Quick start::

    from repro.api import ExperimentRun

    result = ExperimentRun("fig3", params={"model": "RM1"}).run()
    print(result.render())

Registering a new experiment (see ``examples/custom_experiment.py``)::

    @register_experiment("my-sweep", title="My sweep", kind="ablation",
                         order=300)
    def run(model: str = "RM5",
            calibration: Calibration = CALIBRATION) -> MySweepResult:
        ...
"""

from __future__ import annotations

import dataclasses
import hashlib
import importlib
import inspect
import json
import os
import tempfile
import typing
import warnings
from dataclasses import dataclass, field
from pathlib import Path
from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.errors import ConfigurationError, ReproError
from repro.hardware.calibration import CALIBRATION, Calibration

#: valid values of :attr:`ExperimentSpec.kind`
EXPERIMENT_KINDS = ("figure", "table", "ablation")

#: cache format version — bump to invalidate every stored result at once
STORE_FORMAT = 1


def _package_version() -> str:
    """The installed ``repro`` version — part of every cache entry, so a
    release bump invalidates results computed by older code."""
    from repro import __version__

    return __version__


# ---------------------------------------------------------------------------
# typed JSON codec
# ---------------------------------------------------------------------------
#
# Result dataclasses carry shapes JSON cannot express directly — dicts with
# int or tuple keys, tuples of bools, nested dataclasses.  Encoding is
# structural; decoding is driven entirely by the dataclass field type hints,
# so a round-trip restores the exact Python types (and therefore the exact
# ``render()`` text).


def encode_value(value: Any) -> Any:
    """Encode ``value`` into JSON-safe data (see :func:`decode_value`)."""
    if dataclasses.is_dataclass(value) and not isinstance(value, type):
        return {
            f.name: encode_value(getattr(value, f.name))
            for f in dataclasses.fields(value)
        }
    if isinstance(value, Mapping):
        if all(isinstance(k, str) for k in value):
            return {k: encode_value(v) for k, v in value.items()}
        # non-string keys (ints, tuples) become an ordered pair list
        return [[encode_value(k), encode_value(v)] for k, v in value.items()]
    if isinstance(value, (list, tuple)):
        return [encode_value(v) for v in value]
    if value is None or isinstance(value, (bool, int, float, str)):
        return value
    raise ConfigurationError(
        f"cannot encode {type(value).__name__} value {value!r} as JSON; "
        "experiment results must be dataclasses of primitives, tuples, "
        "and dicts"
    )


def decode_value(hint: Any, value: Any) -> Any:
    """Decode JSON data produced by :func:`encode_value` back into the
    Python shape described by the type ``hint``."""
    if hint is Any or hint is None or hint is type(None):
        return value
    if dataclasses.is_dataclass(hint) and isinstance(hint, type):
        hints = typing.get_type_hints(hint)
        kwargs = {
            f.name: decode_value(hints.get(f.name, Any), value[f.name])
            for f in dataclasses.fields(hint)
        }
        return hint(**kwargs)
    origin = typing.get_origin(hint)
    if origin is None:
        if hint is bool:
            return bool(value)
        if hint is int:
            return int(value)
        if hint is float:
            # encode is identity on numbers, so a float-annotated field
            # that held an int round-trips as that int — coercing here
            # would turn a replayed 368 into 368.0 and break the replayed
            # == fresh byte-identity guarantee
            if isinstance(value, int) and not isinstance(value, bool):
                return value
            return float(value)
        if hint is str:
            return str(value)
        return value
    if origin is Union:  # Optional[T] and friends
        args = [a for a in typing.get_args(hint) if a is not type(None)]
        if value is None:
            return None
        return decode_value(args[0], value) if len(args) == 1 else value
    if origin is tuple:
        args = typing.get_args(hint)
        if len(args) == 2 and args[1] is Ellipsis:
            return tuple(decode_value(args[0], v) for v in value)
        if not args:
            return tuple(value)
        return tuple(decode_value(a, v) for a, v in zip(args, value))
    if origin is list:
        (arg,) = typing.get_args(hint) or (Any,)
        return [decode_value(arg, v) for v in value]
    if origin is dict:
        key_hint, value_hint = typing.get_args(hint) or (Any, Any)
        if isinstance(value, list):  # pair-list form (non-string keys)
            return {
                decode_value(key_hint, k): decode_value(value_hint, v)
                for k, v in value
            }
        return {
            _decode_key(key_hint, k): decode_value(value_hint, v)
            for k, v in value.items()
        }
    return value


def _decode_key(hint: Any, key: str) -> Any:
    """JSON object keys are strings; restore int/float keys from the hint."""
    if hint is int:
        return int(key)
    if hint is float:
        return float(key)
    return key


def canonical_digest(payload: Any) -> str:
    """A stable short hash of JSON-able ``payload`` (sorted keys)."""
    blob = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode()).hexdigest()[:16]


# ---------------------------------------------------------------------------
# the uniform result protocol
# ---------------------------------------------------------------------------


class ExperimentResult:
    """Base class every experiment result inherits: the uniform protocol.

    Subclasses are frozen dataclasses and provide ``columns()``, ``rows()``
    and ``render()``; ``claims()`` defaults to no claims (Table I is an
    input echo); ``to_dict()``/``from_dict()`` come for free via the typed
    codec, which is what lets :class:`RunStore` replay results from disk.
    """

    def columns(self) -> Sequence[str]:
        """Header of :meth:`rows` — the CSV/export column names."""
        raise NotImplementedError

    def rows(self) -> List[Tuple]:
        """The series the paper plots, one tuple per row."""
        raise NotImplementedError

    def render(self) -> str:
        """The text-table 'figure'."""
        raise NotImplementedError

    def claims(self) -> List:
        """Paper-vs-measured claims (default: none)."""
        return []

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict form; lossless via :meth:`from_dict`."""
        return encode_value(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentResult":
        """Rebuild a result from :meth:`to_dict` output (exact types)."""
        return decode_value(cls, dict(data))


# ---------------------------------------------------------------------------
# registry
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ExperimentParam:
    """One parameter of an experiment's runner (name + default value)."""

    name: str
    default: Any


@dataclass(frozen=True)
class ExperimentSpec:
    """Everything the harness knows about one registered experiment."""

    id: str
    title: str
    kind: str
    order: int
    runner: Callable[..., ExperimentResult]
    result_type: type
    params: Tuple[ExperimentParam, ...]
    takes_calibration: bool

    @property
    def module(self) -> str:
        """The defining module (``repro.experiments.fig3_colocated``)."""
        return self.runner.__module__

    @property
    def doc(self) -> str:
        """First line of the runner's (or its module's) docstring."""
        import sys

        text = self.runner.__doc__ or ""
        if not text:
            mod = sys.modules.get(self.module)
            text = (mod.__doc__ or "") if mod else ""
        return text.strip().splitlines()[0] if text.strip() else ""

    def param_names(self) -> Tuple[str, ...]:
        return tuple(p.name for p in self.params)

    def default_params(self) -> Dict[str, Any]:
        return {p.name: p.default for p in self.params}


class ExperimentRegistry:
    """Id -> :class:`ExperimentSpec` catalog of paper experiments."""

    def __init__(self) -> None:
        self._specs: Dict[str, ExperimentSpec] = {}

    # -- registration ------------------------------------------------------

    def register(
        self,
        id: str,
        runner: Callable[..., ExperimentResult],
        *,
        title: str,
        kind: str,
        order: int,
        replace: bool = False,
    ) -> Callable[..., ExperimentResult]:
        """Register ``runner`` under ``id``; normally used through the
        :func:`register_experiment` decorator."""
        if not isinstance(id, str) or not id.strip():
            raise ConfigurationError("experiment id must be a non-empty string")
        if not isinstance(title, str) or not title.strip():
            raise ConfigurationError(f"experiment {id!r} needs a non-empty title")
        if kind not in EXPERIMENT_KINDS:
            raise ConfigurationError(
                f"experiment {id!r}: kind must be one of {EXPERIMENT_KINDS}, "
                f"got {kind!r}"
            )
        if not isinstance(order, int):
            raise ConfigurationError(f"experiment {id!r}: order must be an int")
        if not callable(runner):
            raise ConfigurationError(f"runner for {id!r} must be callable")
        if id in self._specs and not replace:
            raise ConfigurationError(
                f"experiment {id!r} is already registered; "
                "pass replace=True to override"
            )
        # a title may only ever name one id — replace=True swaps the spec
        # under an id, it does not let one id steal another's title
        taken_titles = {
            s.title.casefold(): s.id for s in self._specs.values() if s.id != id
        }
        if title.casefold() in taken_titles:
            raise ConfigurationError(
                f"experiment title {title!r} is already registered "
                f"(id {taken_titles[title.casefold()]!r})"
            )
        spec = _introspect(id, runner, title=title, kind=kind, order=order)
        self._specs[id] = spec
        return runner

    def unregister(self, id: str) -> None:
        """Remove an experiment (mainly for tests and notebooks)."""
        del self._specs[self.canonical(id)]

    # -- lookup ------------------------------------------------------------

    def _ensure_builtins(self) -> None:
        # Importing the package imports every experiment module, each of
        # which runs its @register_experiment decorator.
        import repro.experiments  # noqa: F401

        # plugin hook: $REPRO_EXPERIMENTS is a comma-separated list of
        # importable modules that register user experiments, so they show
        # up in `repro list/run/report/export` without an in-process driver
        for name in os.environ.get("REPRO_EXPERIMENTS", "").split(","):
            name = name.strip()
            if not name:
                continue
            try:
                importlib.import_module(name)
            except ImportError as exc:
                raise ConfigurationError(
                    f"$REPRO_EXPERIMENTS names module {name!r} which cannot "
                    f"be imported: {exc}"
                )

    def canonical(self, id: str) -> str:
        """Resolve ``id`` (exact id, paper title, or case-insensitive
        either) to the registered id; raise listing the known ids."""
        self._ensure_builtins()
        if id in self._specs:
            return id
        if isinstance(id, str):
            folded = id.casefold()
            for spec in self._specs.values():
                if folded in (spec.id.casefold(), spec.title.casefold()):
                    return spec.id
        raise ConfigurationError(
            f"unknown experiment {id!r}; registered experiments: "
            + ", ".join(self.ids())
        )

    def get(self, id: str) -> ExperimentSpec:
        """The spec registered under ``id`` (or its paper title)."""
        return self._specs[self.canonical(id)]

    def ids(self, kind: Optional[str] = None) -> Tuple[str, ...]:
        """Experiment ids in paper order (optionally one kind only)."""
        return tuple(s.id for s in self.experiments(kind))

    def titles(self, kind: Optional[str] = None) -> Tuple[str, ...]:
        """Paper titles in paper order."""
        return tuple(s.title for s in self.experiments(kind))

    def experiments(self, kind: Optional[str] = None) -> Tuple[ExperimentSpec, ...]:
        """Specs sorted into paper order (``order``, then id)."""
        self._ensure_builtins()
        if kind is not None and kind not in EXPERIMENT_KINDS:
            raise ConfigurationError(
                f"kind must be one of {EXPERIMENT_KINDS}, got {kind!r}"
            )
        specs = sorted(self._specs.values(), key=lambda s: (s.order, s.id))
        if kind is not None:
            specs = [s for s in specs if s.kind == kind]
        return tuple(specs)

    # -- mapping-ish conveniences -----------------------------------------

    def __contains__(self, id: object) -> bool:
        try:
            self.canonical(id)  # type: ignore[arg-type]
        except ConfigurationError:
            return False
        return True

    def __iter__(self) -> Iterator[str]:
        return iter(self.ids())

    def __len__(self) -> int:
        self._ensure_builtins()
        return len(self._specs)


def _introspect(
    id: str,
    runner: Callable[..., ExperimentResult],
    *,
    title: str,
    kind: str,
    order: int,
) -> ExperimentSpec:
    """Derive the parameter signature and result type from ``runner``."""
    signature = inspect.signature(runner)
    try:
        hints = typing.get_type_hints(runner)
    except Exception:  # unresolvable annotations — tolerate, lose precision
        hints = {}
    result_type = hints.get("return")
    if not (
        isinstance(result_type, type)
        and issubclass(result_type, ExperimentResult)
        and dataclasses.is_dataclass(result_type)
    ):
        raise ConfigurationError(
            f"experiment {id!r}: runner must annotate its return type with "
            "an ExperimentResult dataclass (got "
            f"{getattr(result_type, '__name__', result_type)!r})"
        )
    params: List[ExperimentParam] = []
    takes_calibration = False
    for name, parameter in signature.parameters.items():
        if name == "calibration":
            takes_calibration = True
            continue
        if parameter.default is inspect.Parameter.empty:
            raise ConfigurationError(
                f"experiment {id!r}: parameter {name!r} needs a default "
                "value (every experiment must run with zero arguments)"
            )
        params.append(ExperimentParam(name=name, default=parameter.default))
    return ExperimentSpec(
        id=id,
        title=title,
        kind=kind,
        order=order,
        runner=runner,
        result_type=result_type,
        params=tuple(params),
        takes_calibration=takes_calibration,
    )


#: the process-wide experiment registry every entry point consults
EXPERIMENT_REGISTRY = ExperimentRegistry()


def register_experiment(
    id: str,
    *,
    title: str,
    kind: str,
    order: int,
    replace: bool = False,
) -> Callable[[Callable[..., ExperimentResult]], Callable[..., ExperimentResult]]:
    """Decorator registering an experiment runner with
    :data:`EXPERIMENT_REGISTRY`.  The decorated function is returned
    unchanged, so the module-level ``run()`` keeps working as before."""

    def decorate(
        runner: Callable[..., ExperimentResult]
    ) -> Callable[..., ExperimentResult]:
        return EXPERIMENT_REGISTRY.register(
            id, runner, title=title, kind=kind, order=order, replace=replace
        )

    return decorate


def available_experiments(kind: Optional[str] = None) -> Tuple[str, ...]:
    """Ids of every registered experiment, in paper order."""
    return EXPERIMENT_REGISTRY.ids(kind)


def get_experiment(id: str) -> ExperimentSpec:
    """One registered experiment's spec by id or paper title."""
    return EXPERIMENT_REGISTRY.get(id)


# ---------------------------------------------------------------------------
# ExperimentRun — the frozen, validated run record
# ---------------------------------------------------------------------------


def _freeze(value: Any) -> Any:
    """Recursively turn lists into tuples so param values hash/compare."""
    if isinstance(value, (list, tuple)):
        return tuple(_freeze(v) for v in value)
    return value


def _check_param(id: str, param: ExperimentParam, value: Any) -> Any:
    """Validate one override against the runner's default; freeze it."""
    value = _freeze(value)
    default = param.default
    if default is None:
        return value
    if isinstance(default, bool):
        if not isinstance(value, bool):
            raise ConfigurationError(
                f"experiment {id!r}: param {param.name!r} must be a bool, "
                f"got {value!r}"
            )
        return value
    if isinstance(default, int) and not isinstance(default, bool):
        if not isinstance(value, int) or isinstance(value, bool):
            raise ConfigurationError(
                f"experiment {id!r}: param {param.name!r} must be an int, "
                f"got {value!r}"
            )
        return value
    if isinstance(default, float):
        if not isinstance(value, (int, float)) or isinstance(value, bool):
            raise ConfigurationError(
                f"experiment {id!r}: param {param.name!r} must be a number, "
                f"got {value!r}"
            )
        return float(value)
    if isinstance(default, str):
        if not isinstance(value, str):
            raise ConfigurationError(
                f"experiment {id!r}: param {param.name!r} must be a string, "
                f"got {value!r}"
            )
        return value
    if isinstance(default, tuple):
        if not isinstance(value, tuple):
            raise ConfigurationError(
                f"experiment {id!r}: param {param.name!r} must be a "
                f"sequence, got {value!r}"
            )
        return value
    return value


@dataclass(frozen=True)
class ExperimentRun:
    """One declarative experiment invocation: id + params + calibration.

    Like :class:`~repro.api.scenario.Scenario`, the record is validated at
    construction (unknown experiment, unknown/ill-typed params, unknown
    calibration fields all raise), frozen, picklable, and round-trips
    through plain dicts — which is what makes the multiprocessing fan-out
    and the on-disk cache safe.
    """

    experiment: str
    params: Any = field(default_factory=tuple)
    calibration: Any = field(default_factory=tuple)

    def __post_init__(self) -> None:
        spec = EXPERIMENT_REGISTRY.get(self.experiment)
        object.__setattr__(self, "experiment", spec.id)

        raw = self.params
        items = raw.items() if isinstance(raw, Mapping) else tuple(raw or ())
        by_name = {p.name: p for p in spec.params}
        pairs: List[Tuple[str, Any]] = []
        try:
            entries = [(name, value) for name, value in items]
        except (TypeError, ValueError):
            raise ConfigurationError(
                f"experiment params must be a mapping or (name, value) "
                f"pairs, got {raw!r}"
            )
        for name, value in entries:
            if name not in by_name:
                raise ConfigurationError(
                    f"experiment {spec.id!r} has no parameter {name!r}; "
                    f"parameters: {list(by_name) or 'none'}"
                )
            pairs.append((name, _check_param(spec.id, by_name[name], value)))
        object.__setattr__(self, "params", tuple(sorted(pairs)))

        from repro.api.scenario import _normalize_overrides

        object.__setattr__(
            self, "calibration", _normalize_overrides(self.calibration)
        )

    # -- conveniences ------------------------------------------------------

    @property
    def spec(self) -> ExperimentSpec:
        """The registered spec this run targets."""
        return EXPERIMENT_REGISTRY.get(self.experiment)

    @property
    def label(self) -> str:
        """Short display name, e.g. ``fig3(model=RM1)``."""
        parts = [f"{name}={value}" for name, value in self.params]
        if self.calibration:
            parts.append("calibrated")
        return self.experiment + (f"({', '.join(parts)})" if parts else "")

    def effective_params(self) -> Dict[str, Any]:
        """Defaults merged with this run's overrides (what executes)."""
        merged = self.spec.default_params()
        merged.update(dict(self.params))
        return merged

    def build_calibration(self) -> Calibration:
        """The paper calibration with this run's overrides applied."""
        return dataclasses.replace(CALIBRATION, **dict(self.calibration))

    @property
    def digest(self) -> str:
        """Cache key: hash of (id, effective params, calibration)."""
        return canonical_digest(
            {
                "experiment": self.experiment,
                "params": encode_value(self.effective_params()),
                "calibration": dict(self.calibration),
            }
        )

    # -- execution ---------------------------------------------------------

    def run(self) -> ExperimentResult:
        """Execute the experiment and return its structured result."""
        spec = self.spec
        kwargs: Dict[str, Any] = dict(self.params)
        if spec.takes_calibration:
            kwargs["calibration"] = self.build_calibration()
        elif self.calibration:
            raise ConfigurationError(
                f"experiment {spec.id!r} does not take calibration overrides"
            )
        return spec.runner(**kwargs)

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for config files (round-trips via from_dict)."""
        return {
            "experiment": self.experiment,
            "params": encode_value(dict(self.params)),
            "calibration": dict(self.calibration),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ExperimentRun":
        """Rebuild a run from :meth:`to_dict` output (strict keys)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown run keys {sorted(unknown)}; expected {sorted(known)}"
            )
        return cls(**dict(data))


# ---------------------------------------------------------------------------
# RunStore — on-disk result cache
# ---------------------------------------------------------------------------


def default_store_root() -> Path:
    """``$REPRO_CACHE_DIR``, else the XDG cache dir (``~/.cache/repro``)."""
    env = os.environ.get("REPRO_CACHE_DIR")
    if env:
        return Path(env)
    xdg = os.environ.get("XDG_CACHE_HOME")
    base = Path(xdg) if xdg else Path.home() / ".cache"
    return base / "repro" / "experiments"


class RunStore:
    """On-disk JSON cache of experiment results.

    Layout: ``<root>/<experiment-id>/<digest>.json`` where the digest keys
    (experiment id, effective params, calibration overrides).  Entries are
    self-describing — they embed the run record and the result's encoded
    fields — and are decoded back into the exact result dataclass through
    the registry.  Unreadable, stale-format, or other-package-version
    entries count as misses and are overwritten on the next save; results
    computed by a different ``repro`` release never replay silently.
    (Within one version the cache cannot see source edits — pass ``force``
    after changing experiment logic in development.)
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        self.root = Path(root) if root is not None else default_store_root()

    def path(self, run: ExperimentRun) -> Path:
        """Where ``run``'s cached result lives (whether or not it exists)."""
        return self.root / run.experiment / f"{run.digest}.json"

    def load(self, run: ExperimentRun) -> Optional[ExperimentResult]:
        """The cached result for ``run``, or ``None`` on a miss."""
        path = self.path(run)
        try:
            payload = json.loads(path.read_text())
        except (OSError, ValueError):
            return None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != STORE_FORMAT
            or payload.get("version") != _package_version()
        ):
            return None
        try:
            result_type = EXPERIMENT_REGISTRY.get(run.experiment).result_type
            return result_type.from_dict(payload["result"])
        except (ConfigurationError, KeyError, TypeError, ValueError):
            return None

    def save(self, run: ExperimentRun, result: ExperimentResult) -> Path:
        """Persist ``result`` for ``run``; returns the entry path."""
        path = self.path(run)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = {
            "format": STORE_FORMAT,
            "version": _package_version(),
            "run": run.to_dict(),
            "result": result.to_dict(),
        }
        # unique temp name: concurrent savers of the same run must not race
        fd, tmp = tempfile.mkstemp(
            dir=path.parent, prefix=path.stem, suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "w") as handle:
                # No sort_keys: result dicts must round-trip in insertion
                # order so replayed results reduce (sum over dict values,
                # etc.) byte-identically to freshly computed ones.
                handle.write(json.dumps(payload, indent=1))
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        return path

    def fetch(
        self, run: ExperimentRun, force: bool = False
    ) -> Tuple[ExperimentResult, bool]:
        """``(result, hit)`` — cached when available, else executed + saved.

        ``force=True`` skips the lookup (the fresh result still overwrites
        the cache entry).
        """
        if not force:
            cached = self.load(run)
            if cached is not None:
                return cached, True
        result = run.run()
        self.save(run, result)
        return result, False


# ---------------------------------------------------------------------------
# the parallel runner
# ---------------------------------------------------------------------------


def _execute_run(task: Tuple[ExperimentRun, str]) -> ExperimentResult:
    """Module-level so pool workers can unpickle it.

    The task carries the experiment's defining module so that pool workers
    started with the ``spawn`` method (macOS/Windows defaults) can import a
    *user-registered* experiment before looking it up — ``_ensure_builtins``
    only covers the modules under :mod:`repro.experiments`.
    """
    run, module = task
    try:
        importlib.import_module(module)
    except ImportError:
        pass  # e.g. defined in __main__; the registry lookup will explain
    return run.run()


def run_experiments(
    runs: Sequence[ExperimentRun],
    parallel: bool = False,
    processes: Optional[int] = None,
    store: Optional[RunStore] = None,
    force: bool = False,
    *,
    policy: Optional["BatchPolicy"] = None,
    failure_mode: Optional[str] = None,
    journal: Optional["BatchJournal"] = None,
    resume: bool = False,
) -> Union[List[ExperimentResult], List["BatchOutcome"]]:
    """Execute ``runs``; results come back in input order either way.

    With a ``store``, cached results are replayed (unless ``force``) and
    fresh ones are saved.  Execution goes through the fault-tolerant
    :class:`~repro.batch.runner.BatchRunner`: every completed task is
    cached *as it finishes*, so a later task failing in ``strict`` mode
    (typed :class:`~repro.errors.BatchTaskError`) no longer discards the
    results already computed.  ``failure_mode="degrade"`` returns one
    :class:`~repro.batch.outcomes.BatchOutcome` per run (``result`` holds
    the :class:`ExperimentResult` when ok) so callers can render partial
    reports.  With a ``journal``, ``resume=True`` replays completed runs
    from it and re-executes the rest; ``processes`` must be positive and
    is always clamped to the pending-task count.
    """
    from repro.batch import BatchRunner
    from repro.batch.policy import merge_policy

    runs = list(runs)
    for run in runs:
        if not isinstance(run, ExperimentRun):
            raise ConfigurationError(
                f"run_experiments takes ExperimentRun records, got {run!r}"
            )
    batch_policy = merge_policy(policy, processes, failure_mode)
    precomputed: Dict[int, ExperimentResult] = {}
    for index, run in enumerate(runs):
        cached = store.load(run) if (store is not None and not force) else None
        if cached is not None:
            precomputed[index] = cached

    def _save_fresh(outcome: "BatchOutcome") -> None:
        # attempts == 0 marks a result replayed from the cache itself —
        # only freshly executed tasks are (re)saved, each as it lands,
        # even when a later task fails the batch in strict mode
        if store is None or not outcome.ok or outcome.attempts == 0:
            return
        run = runs[outcome.index]
        try:
            store.save(run, outcome.result)
        except (ReproError, OSError) as exc:
            # caching is best-effort: an unwritable cache must not
            # discard results that were already computed
            warnings.warn(
                f"could not cache {run.label}: {exc}",
                RuntimeWarning,
                stacklevel=2,
            )

    runner = BatchRunner(
        _execute_run,
        policy=batch_policy,
        journal=journal,
        task_key=lambda index, task: task[0].digest,
        task_label=lambda index, task: task[0].label,
        encode_result=lambda index, result: result.to_dict(),
        decode_result=lambda index, payload: (
            EXPERIMENT_REGISTRY.get(runs[index].experiment)
            .result_type.from_dict(payload)
        ),
        on_outcome=_save_fresh,
    )
    tasks = [(run, run.spec.module) for run in runs]
    misses = len(runs) - len(precomputed)
    fan_out = (
        parallel
        and misses > 1
        and batch_policy.worker_count(misses) > 1
    )
    outcomes = runner.run(
        tasks, parallel=fan_out, resume=resume, precomputed=precomputed
    )
    if batch_policy.failure_mode == "degrade":
        return outcomes
    return [outcome.result for outcome in outcomes]

"""Benchmark: regenerate the paper's Fig4 via repro.experiments.fig4_cores_required."""

from conftest import assert_claims, report

from repro.experiments import fig4_cores_required


def test_fig4(benchmark):
    """Time the fig4 experiment and verify its paper claims."""
    result = benchmark(fig4_cores_required.run)
    report(result)
    assert_claims(result)

"""RPC accounting — reproduces Figure 13.

Figure 13 reports "the aggregate latency incurred during any RPC calls
executed for inter-node communication during the course of data
preprocessing".  Aggregate means *summed across all calls*, including
concurrent ones — so this accounting is deliberately separate from the
worker latency models (where bulk transfers appear once, on the critical
path).

Per preprocessed mini-batch:

* **Disagg** pays (a) per-column fetch requests to the storage node, (b) the
  raw-data transfer (with read amplification), (c) the train-ready tensor
  response to the train manager, and (d) control-plane calls;
* **PreSto** eliminates (a) and (b) entirely — raw data moves over the
  SmartSSD-internal P2P path, which is not the network — leaving only the
  tensor response and control plane.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.features.specs import ModelSpec
from repro.hardware.calibration import CALIBRATION, Calibration

#: fixed cost of issuing one column-chunk fetch request (client + server)
PER_COLUMN_REQUEST_OVERHEAD = 0.1e-3
#: control-plane calls per batch (queue notify, credit return)
CONTROL_CALLS_PER_BATCH = 2


@dataclass(frozen=True)
class RpcBatchCosts:
    """Aggregate per-batch RPC seconds, split by purpose."""

    fetch_requests: float
    raw_data_transfer: float
    tensor_response: float
    control: float

    @property
    def total(self) -> float:
        """Total aggregate RPC latency per mini-batch (Fig. 13 y-value)."""
        return (
            self.fetch_requests
            + self.raw_data_transfer
            + self.tensor_response
            + self.control
        )


class RpcAccounting:
    """Per-batch aggregate RPC time for each system design."""

    def __init__(self, calibration: Calibration = CALIBRATION) -> None:
        self.cal = calibration

    def _columns_read(self, spec: ModelSpec) -> int:
        """Columns the Extract phase requests: label + dense + sparse."""
        return 1 + spec.num_dense + spec.num_sparse

    def _tensor_response(self, spec: ModelSpec) -> float:
        bytes_out = self.cal.train_ready_batch_bytes(spec)
        rpc_bw = self.cal.network_bandwidth * self.cal.network_rpc_efficiency
        return self.cal.rpc_request_overhead + bytes_out / rpc_bw

    def _control(self) -> float:
        return CONTROL_CALLS_PER_BATCH * self.cal.rpc_request_overhead

    def disagg_batch(self, spec: ModelSpec) -> RpcBatchCosts:
        """Aggregate RPC costs of the CPU-centric disaggregated design."""
        cal = self.cal
        bytes_in = cal.encoded_batch_bytes(spec)
        read_bw = cal.network_bandwidth * cal.network_read_efficiency
        return RpcBatchCosts(
            fetch_requests=self._columns_read(spec) * PER_COLUMN_REQUEST_OVERHEAD,
            raw_data_transfer=bytes_in * cal.storage_protocol_overhead / read_bw,
            tensor_response=self._tensor_response(spec),
            control=self._control(),
        )

    def presto_batch(self, spec: ModelSpec) -> RpcBatchCosts:
        """Aggregate RPC costs of PreSto: no raw-data movement on the wire."""
        return RpcBatchCosts(
            fetch_requests=0.0,
            raw_data_transfer=0.0,
            tensor_response=self._tensor_response(spec),
            control=self._control(),
        )

    def reduction(self, spec: ModelSpec) -> float:
        """Disagg/PreSto aggregate-RPC ratio (paper: 2.9x on average)."""
        return self.disagg_batch(spec).total / self.presto_batch(spec).total

"""Cost/energy analysis: the Section V-C cost-efficiency metric (CapEx +
OpEx over a 3-year duration), energy-efficiency (performance/Watt), and
shared normalization helpers."""

from repro.analysis.cost import CostBreakdown, cost_efficiency, opex
from repro.analysis.energy import energy_efficiency, preprocessing_energy_per_epoch
from repro.analysis.metrics import geometric_mean, normalize_to, speedup

__all__ = [
    "CostBreakdown",
    "cost_efficiency",
    "opex",
    "energy_efficiency",
    "preprocessing_energy_per_epoch",
    "geometric_mean",
    "normalize_to",
    "speedup",
]

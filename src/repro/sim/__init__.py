"""Minimal discrete-event simulation engine.

A generator-based DES in the style of SimPy, sized to what the end-to-end
pipeline model needs: a simulated clock, processes that ``yield`` timeouts /
resource requests / queue operations, FCFS servers, and bounded
producer-consumer stores (the paper's "input queue" in Figure 9).
"""

from repro.sim.engine import Engine, Process, Timeout
from repro.sim.resources import Server, Store

__all__ = ["Engine", "Process", "Timeout", "Server", "Store"]

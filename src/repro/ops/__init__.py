"""Functional preprocessing operators (TorchArrow stand-ins).

These kernels implement the exact transformations the paper offloads:

* :func:`bucketize` — Algorithm 1, feature generation via binary search;
* :func:`sigrid_hash` — Algorithm 2, feature normalization via seeded hash;
* :func:`log_normalize` — dense feature normalization;
* :func:`fill_dense` / :func:`fill_sparse` — missing-value handling;
* :func:`to_minibatch` — format conversion into train-ready tensors;
* :class:`PreprocessingPipeline` — the full per-model op graph.
"""

from repro.ops.bucketize import Bucketizer, bucketize, search_bucket_id
from repro.ops.sigridhash import (
    SigridHasher,
    hash64,
    sigrid_hash,
    sigrid_hash_scalar,
)
from repro.ops.lognorm import log_normalize
from repro.ops.clip import clamp, truncate_list
from repro.ops.fill import fill_dense, fill_sparse
from repro.ops.format import to_minibatch
from repro.ops.pipeline import PreprocessingPipeline, OpCounts

__all__ = [
    "Bucketizer",
    "bucketize",
    "search_bucket_id",
    "SigridHasher",
    "sigrid_hash",
    "sigrid_hash_scalar",
    "hash64",
    "log_normalize",
    "clamp",
    "truncate_list",
    "fill_dense",
    "fill_sparse",
    "to_minibatch",
    "PreprocessingPipeline",
    "OpCounts",
]

"""Tests for the clamp and truncate_list operators."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OpError, PipelineError
from repro.features.specs import get_model
from repro.features.synthetic import generate_raw_table
from repro.ops.clip import clamp, truncate_list
from repro.ops.pipeline import PreprocessingPipeline


class TestClamp:
    def test_bounds(self):
        out = clamp(np.array([-5.0, 0.5, 99.0]), 0.0, 10.0)
        np.testing.assert_array_equal(out, [0.0, 0.5, 10.0])

    def test_nan_passthrough(self):
        assert np.isnan(clamp(np.array([np.nan]), 0.0, 1.0))[0]

    def test_empty_range_rejected(self):
        with pytest.raises(OpError, match="empty"):
            clamp(np.array([1.0]), 5.0, 1.0)

    def test_2d_rejected(self):
        with pytest.raises(OpError):
            clamp(np.zeros((2, 2)), 0.0, 1.0)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=50))
    @settings(max_examples=30, deadline=None)
    def test_always_within_bounds(self, values):
        out = clamp(np.array(values, dtype=np.float64), -10.0, 10.0)
        assert np.all(out >= -10.0)
        assert np.all(out <= 10.0)


class TestTruncateList:
    def test_keeps_tail(self):
        lengths = np.array([4, 1], dtype=np.int32)
        values = np.array([1, 2, 3, 4, 9], dtype=np.int64)
        new_lengths, new_values = truncate_list(lengths, values, 2)
        assert new_lengths.tolist() == [2, 1]
        assert new_values.tolist() == [3, 4, 9]  # last two of row 0

    def test_noop_when_short(self):
        lengths = np.array([1, 2], dtype=np.int32)
        values = np.array([7, 8, 9], dtype=np.int64)
        new_lengths, new_values = truncate_list(lengths, values, 5)
        np.testing.assert_array_equal(new_lengths, lengths)
        np.testing.assert_array_equal(new_values, values)

    def test_empty_rows_preserved(self):
        lengths = np.array([0, 3], dtype=np.int32)
        values = np.array([1, 2, 3], dtype=np.int64)
        new_lengths, new_values = truncate_list(lengths, values, 1)
        assert new_lengths.tolist() == [0, 1]
        assert new_values.tolist() == [3]

    def test_invalid_inputs(self):
        with pytest.raises(OpError):
            truncate_list(np.array([1]), np.array([1]), 0)
        with pytest.raises(OpError, match="sum"):
            truncate_list(np.array([3]), np.array([1]), 2)

    @given(
        lengths=st.lists(st.integers(min_value=0, max_value=10), min_size=1, max_size=30),
        max_length=st.integers(min_value=1, max_value=12),
    )
    @settings(max_examples=40, deadline=None)
    def test_invariants(self, lengths, max_length):
        """Lengths capped, values are each row's suffix, totals consistent."""
        lengths = np.array(lengths, dtype=np.int32)
        values = np.arange(int(lengths.sum()), dtype=np.int64)
        new_lengths, new_values = truncate_list(lengths, values, max_length)
        assert np.all(new_lengths <= max_length)
        assert np.all(new_lengths <= lengths)
        assert int(new_lengths.sum()) == len(new_values)
        in_off = np.concatenate(([0], np.cumsum(lengths)))
        out_off = np.concatenate(([0], np.cumsum(new_lengths)))
        for row in range(len(lengths)):
            kept = new_values[out_off[row] : out_off[row + 1]]
            original = values[in_off[row] : in_off[row + 1]]
            np.testing.assert_array_equal(kept, original[len(original) - len(kept):])


class TestPipelineIntegration:
    def test_truncation_reduces_hash_work(self):
        spec = get_model("RM2")
        raw = generate_raw_table(spec, 64)
        plain = PreprocessingPipeline(spec)
        truncated = PreprocessingPipeline(spec, max_sparse_length=5)
        _, counts_plain = plain.run(raw)
        _, counts_truncated = truncated.run(raw)
        assert counts_truncated.hash_elements < counts_plain.hash_elements

    def test_clamp_bounds_dense_output(self):
        spec = get_model("RM1")
        raw = generate_raw_table(spec, 64)
        pipe = PreprocessingPipeline(spec, dense_clamp=(0.0, 50.0))
        batch, _ = pipe.run(raw)
        assert batch.dense.max() <= np.log1p(50.0) + 1e-6

    def test_bad_max_length_rejected(self):
        with pytest.raises(PipelineError):
            PreprocessingPipeline(get_model("RM1"), max_sparse_length=0)

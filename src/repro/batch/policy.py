"""Per-task execution policy for the fault-tolerant batch runner.

A :class:`BatchPolicy` is the frozen, dict-round-trippable knob set that
decides how one batch run treats misbehaving tasks: how often a raising
task is retried (``max_retries`` with exponential backoff), how long a
task may run before the stuck worker is terminated and replaced
(``task_timeout_s``), how many worker processes to use (``processes``),
and whether a non-ok task aborts the batch with a typed error
(``strict``) or becomes a per-task :class:`~repro.batch.outcomes.\
BatchOutcome` in a partial result (``degrade``).

The policy is recorded in the batch journal's run header, so a resumed
run can see exactly how the interrupted one was configured.
"""

from __future__ import annotations

import dataclasses
import os
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional

from repro.errors import ConfigurationError

#: how a batch reacts to a task that ends non-ok: ``strict`` stops
#: dispatching, drains in-flight work, and raises a typed error;
#: ``degrade`` keeps going and returns every task's outcome record.
FAILURE_MODES = ("strict", "degrade")


@dataclass(frozen=True)
class BatchPolicy:
    """How one batch run treats retries, timeouts, and failures."""

    max_retries: int = 1
    backoff_s: float = 0.05
    backoff_factor: float = 2.0
    task_timeout_s: Optional[float] = None
    failure_mode: str = "strict"
    processes: Optional[int] = None

    def __post_init__(self) -> None:
        if not isinstance(self.max_retries, int) or self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be a non-negative int, "
                f"got {self.max_retries!r}"
            )
        if not isinstance(self.backoff_s, (int, float)) or self.backoff_s < 0:
            raise ConfigurationError(
                f"backoff_s must be non-negative, got {self.backoff_s!r}"
            )
        if (
            not isinstance(self.backoff_factor, (int, float))
            or self.backoff_factor < 1.0
        ):
            raise ConfigurationError(
                f"backoff_factor must be >= 1.0, got {self.backoff_factor!r}"
            )
        if self.task_timeout_s is not None and (
            not isinstance(self.task_timeout_s, (int, float))
            or self.task_timeout_s <= 0
        ):
            raise ConfigurationError(
                f"task_timeout_s must be positive (or None), "
                f"got {self.task_timeout_s!r}"
            )
        if self.failure_mode not in FAILURE_MODES:
            raise ConfigurationError(
                f"failure_mode must be one of {FAILURE_MODES}, "
                f"got {self.failure_mode!r}"
            )
        if self.processes is not None and (
            not isinstance(self.processes, int) or self.processes < 1
        ):
            raise ConfigurationError(
                f"processes must be a positive int (or None for the "
                f"cpu-count default), got {self.processes!r}"
            )

    def worker_count(self, tasks: int) -> int:
        """Pool size for ``tasks`` pending tasks: never more workers than
        tasks, even when ``processes`` is set explicitly."""
        configured = self.processes or (os.cpu_count() or 2)
        return max(1, min(tasks, configured))

    def backoff_for(self, attempt: int) -> float:
        """Delay before retry number ``attempt`` (1-based): exponential,
        ``backoff_s * backoff_factor ** (attempt - 1)``."""
        return self.backoff_s * self.backoff_factor ** max(0, attempt - 1)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "max_retries": self.max_retries,
            "backoff_s": self.backoff_s,
            "backoff_factor": self.backoff_factor,
            "task_timeout_s": self.task_timeout_s,
            "failure_mode": self.failure_mode,
            "processes": self.processes,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "BatchPolicy":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown BatchPolicy keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(data))


def merge_policy(
    policy: Optional[BatchPolicy],
    processes: Optional[int] = None,
    failure_mode: Optional[str] = None,
) -> BatchPolicy:
    """Fold the batch entry points' convenience kwargs into one policy.

    ``Sweep.run`` and ``run_experiments`` accept ``processes`` and
    ``failure_mode`` directly for the common cases; explicit values
    override the given (or default) policy, and validation — including
    rejecting ``processes=0`` — happens in :class:`BatchPolicy`.
    """
    if policy is None:
        policy = BatchPolicy()
    elif not isinstance(policy, BatchPolicy):
        raise ConfigurationError(
            f"policy must be a BatchPolicy, got {policy!r}"
        )
    overrides: Dict[str, Any] = {}
    if processes is not None:
        overrides["processes"] = processes
    if failure_mode is not None:
        overrides["failure_mode"] = failure_mode
    if not overrides:
        return policy
    return BatchPolicy.from_dict({**policy.to_dict(), **overrides})

"""repro.api — the declarative front door for every experiment.

Five pieces:

* :class:`SystemRegistry` / :func:`register_system` — a catalog of system
  design points; user systems plug in next to the paper's six;
* :class:`Scenario` — one frozen, validated, dict-round-trippable record
  describing model x system x deployment; ``.run()`` simulates the full
  pipeline and returns a uniform :class:`RunResult`;
* :class:`Sweep` — a grid of scenarios executed serially or across a
  ``multiprocessing`` pool with deterministic result ordering;
* :class:`PreprocessJob` — the data-plane scenario: one declarative
  sharded preprocessing run through :class:`repro.exec.ShardExecutor`,
  with a content digest proving parallel == serial output;
* :class:`ExperimentRegistry` / :func:`register_experiment` /
  :class:`ExperimentRun` / :class:`RunStore` — the paper-experiment
  catalog: every figure/table/ablation module registers its runner, runs
  are frozen dict-round-trippable records, results follow one protocol
  (``columns``/``rows``/``claims``/``render``/``to_dict``), an on-disk
  cache replays repeated invocations, and :func:`run_experiments` fans
  out across a process pool with deterministic ordering.
"""

from repro.api.registry import (
    REGISTRY,
    SystemRegistry,
    available_systems,
    get_system,
    register_system,
)
from repro.api.experiment import (
    EXPERIMENT_KINDS,
    EXPERIMENT_REGISTRY,
    ExperimentParam,
    ExperimentRegistry,
    ExperimentResult,
    ExperimentRun,
    ExperimentSpec,
    RunStore,
    available_experiments,
    get_experiment,
    register_experiment,
    run_experiments,
)
from repro.api.preprocess import (
    PreprocessJob,
    PreprocessRunResult,
    minibatch_digest,
)
from repro.api.result import RunResult
from repro.api.scenario import PROVISION_MODES, Scenario, calibration_overrides
from repro.api.sweep import Sweep

__all__ = [
    "EXPERIMENT_KINDS",
    "EXPERIMENT_REGISTRY",
    "ExperimentParam",
    "ExperimentRegistry",
    "ExperimentResult",
    "ExperimentRun",
    "ExperimentSpec",
    "RunStore",
    "available_experiments",
    "get_experiment",
    "register_experiment",
    "run_experiments",
    "REGISTRY",
    "SystemRegistry",
    "available_systems",
    "get_system",
    "register_system",
    "RunResult",
    "PROVISION_MODES",
    "Scenario",
    "calibration_overrides",
    "Sweep",
    "PreprocessJob",
    "PreprocessRunResult",
    "minibatch_digest",
]

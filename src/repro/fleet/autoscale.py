"""Autoscaling — provisioning policies that resize pools over simulated time.

The fleet operator doesn't provision a static pool; capacity follows
load.  An autoscaler is consulted once per scheduler step with a frozen
:class:`PoolSnapshot` of one pool and answers one question: how many
nodes *should* this pool have.  The simulator enacts the answer — new
nodes come online only after the pool's ``scaleup_latency_s`` (capacity
is never free or instant), shrinking removes idle nodes only (running
jobs are never evicted by the autoscaler), and every capacity change
lands in the pool's capacity-hour ledger that
:func:`repro.analysis.cost.capacity_cost` turns into dollars.

Like placement policies, autoscalers live in a registry
(:func:`register_autoscaler`) so ``repro fleet --autoscale`` and the
experiments resolve them by name.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from repro.errors import ConfigurationError

#: the built-in provisioning policies
AUTOSCALE_KINDS = ("fixed", "target-utilization", "queue-depth")


@dataclass(frozen=True)
class PoolSnapshot:
    """What an autoscaler sees of one pool at one step (all workers)."""

    nodes: int  # up + pending nodes (committed capacity)
    workers_per_node: int
    busy_workers: int  # workers running jobs right now
    queued_workers: int  # aggregate demand of the queued jobs
    min_nodes: int
    max_nodes: int

    @property
    def capacity(self) -> int:
        return self.nodes * self.workers_per_node

    @property
    def utilization(self) -> float:
        return self.busy_workers / self.capacity if self.capacity else 0.0

    def clamp(self, nodes: int) -> int:
        return max(self.min_nodes, min(self.max_nodes, nodes))


class Autoscaler:
    """Base autoscaler: hold the current node count (``fixed``).

    Subclasses that can ever *raise* a pool's node count must set
    ``can_grow = True`` — the simulator uses it to decide whether a job
    larger than today's capacity could ever be placed (keep it queued
    until the pool grows) or never will be (reject it up front instead
    of letting it head-of-line block the queue forever).
    """

    name = "fixed"
    can_grow = False

    def target_nodes(self, pool: PoolSnapshot) -> int:
        """The node count this pool should converge to."""
        return pool.clamp(pool.nodes)


class AutoscalerRegistry:
    """Name -> :class:`Autoscaler` factory catalog."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[[], Autoscaler]] = {}

    def register(
        self, name: str, factory: Callable[[], Autoscaler], replace: bool = False
    ) -> Callable[[], Autoscaler]:
        if not isinstance(name, str) or not name.strip():
            raise ConfigurationError(
                "autoscaler name must be a non-empty string"
            )
        if not callable(factory):
            raise ConfigurationError(f"factory for {name!r} must be callable")
        if name in self._factories and not replace:
            raise ConfigurationError(
                f"autoscaler {name!r} is already registered; "
                "pass replace=True to override"
            )
        self._factories[name] = factory
        return factory

    def unregister(self, name: str) -> None:
        del self._factories[name]

    def create(self, name: str) -> Autoscaler:
        if name not in self._factories:
            raise ConfigurationError(
                f"unknown autoscaler {name!r}; registered autoscalers: "
                + ", ".join(self.names())
            )
        scaler = self._factories[name]()
        scaler.name = name
        return scaler

    def names(self) -> Tuple[str, ...]:
        return tuple(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)


#: the process-wide autoscaler catalog
AUTOSCALER_REGISTRY = AutoscalerRegistry()


def register_autoscaler(
    name: str, *, replace: bool = False
) -> Callable[[Callable[[], Autoscaler]], Callable[[], Autoscaler]]:
    """Class decorator registering an autoscaler by name."""

    def decorate(factory: Callable[[], Autoscaler]):
        return AUTOSCALER_REGISTRY.register(name, factory, replace=replace)

    return decorate


def get_autoscaler(name: str) -> Autoscaler:
    """Instantiate one registered autoscaler by name."""
    return AUTOSCALER_REGISTRY.create(name)


def available_autoscalers() -> Tuple[str, ...]:
    """Registered autoscaler names, registration order."""
    return AUTOSCALER_REGISTRY.names()


@register_autoscaler("fixed")
class FixedAutoscaler(Autoscaler):
    """Static provisioning: the pool keeps its declared node count."""


@register_autoscaler("target-utilization")
class TargetUtilizationAutoscaler(Autoscaler):
    """Track a worker-utilization setpoint (default 70%).

    Sizes the pool so ``busy / capacity`` sits at the target; demand
    from the queue counts toward busy so a backlog pulls capacity up
    before jobs time out in the queue.
    """

    can_grow = True

    def __init__(self, target: float = 0.7) -> None:
        if not (0.0 < target <= 1.0):
            raise ConfigurationError(
                f"utilization target must be in (0, 1], got {target!r}"
            )
        self.target = target

    def target_nodes(self, pool: PoolSnapshot) -> int:
        demand = pool.busy_workers + pool.queued_workers
        wanted = math.ceil(
            demand / (self.target * pool.workers_per_node)
        ) if demand else pool.min_nodes
        return pool.clamp(wanted)


@register_autoscaler("queue-depth")
class QueueDepthAutoscaler(Autoscaler):
    """Chase the backlog: size the pool to exactly the workers running
    plus queued jobs need (no utilization headroom, unlike
    ``target-utilization``), and shed nodes the moment workers sit idle.

    Demand is sized absolutely — never added on top of the current node
    count — because queued jobs stay queued for the whole scale-up
    latency; re-adding the same backlog to committed capacity every step
    would compound into a roughly ``scaleup_latency_s / step_s``-fold
    overshoot.
    """

    can_grow = True

    def target_nodes(self, pool: PoolSnapshot) -> int:
        demand = pool.busy_workers + pool.queued_workers
        if not demand:
            return pool.clamp(pool.min_nodes)
        return pool.clamp(math.ceil(demand / pool.workers_per_node))

"""Benchmark: regenerate the paper's Fig5 via repro.experiments.fig5_breakdown."""

from conftest import assert_claims, report

from repro.experiments import fig5_breakdown


def test_fig5(benchmark):
    """Time the fig5 experiment and verify its paper claims."""
    result = benchmark(fig5_breakdown.run)
    report(result)
    assert_claims(result)

"""Render a `repro report --json` payload as a Markdown claims scoreboard.

CI runs a fast registry-driven subset of the report, pipes the JSON here,
and appends the output to ``$GITHUB_STEP_SUMMARY`` — a per-run record of
which paper claims hold, next to the perf trend.  Report-only: exit code is
always 0; the test suite, not CI formatting, gates claim regressions.

Usage:
    python benchmarks/claims_summary.py report.json
    python -m repro.cli report --json | python benchmarks/claims_summary.py -
"""

from __future__ import annotations

import json
import sys


def render(payload: dict) -> str:
    scoreboard = payload.get("scoreboard", {})
    held = scoreboard.get("held", 0)
    total = scoreboard.get("total", 0)
    lines = [
        "## Paper claims scoreboard",
        "",
        f"**{held}/{total} claims within tolerance**",
        "",
        "| experiment | claim | paper | measured | err | holds |",
        "| --- | --- | ---: | ---: | ---: | :---: |",
    ]
    for experiment in payload.get("experiments", []):
        title = experiment.get("title", experiment.get("id", "?"))
        for claim in experiment.get("claims", []):
            status = "✅" if claim["holds"] else "❌"
            lines.append(
                f"| {title} | {claim['description']} "
                f"| {claim['paper_value']:g} "
                f"| {claim['measured_value']:.4g} "
                f"| {100 * claim['relative_error']:.0f}% "
                f"| {status} |"
            )
    lines.append("")
    return "\n".join(lines)


def main(argv: list) -> int:
    if len(argv) != 2:
        print(__doc__, file=sys.stderr)
        return 2
    if argv[1] == "-":
        payload = json.load(sys.stdin)
    else:
        with open(argv[1]) as handle:
            payload = json.load(handle)
    print(render(payload))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

"""Unit constants and helpers shared across the performance models.

All simulation times are seconds (float), sizes are bytes (int or float),
bandwidths are bytes/second, and frequencies are Hz.  The constants below
exist so model code reads like the paper ("10 Gbps Ethernet", "223 MHz")
instead of raw exponents.
"""

from __future__ import annotations

# --- sizes -----------------------------------------------------------------
KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

KB = 1_000
MB = 1_000 * KB
GB = 1_000 * MB
TB = 1_000 * GB

# --- time ------------------------------------------------------------------
NANOSECOND = 1e-9
MICROSECOND = 1e-6
MILLISECOND = 1e-3
SECOND = 1.0
HOUR = 3600.0
DAY = 24 * HOUR
YEAR = 365 * DAY

# --- rates -----------------------------------------------------------------
MHZ = 1e6
GHZ = 1e9

GBPS = 1e9 / 8.0  # 1 gigabit/s expressed in bytes/s
GB_PER_S = 1e9

# --- power / cost ----------------------------------------------------------
WATT = 1.0
KILOWATT_HOUR = 1_000.0 * HOUR  # joules in one kWh


def gbps(value: float) -> float:
    """Convert a link speed in gigabits/second to bytes/second."""
    return value * GBPS


def gb_per_s(value: float) -> float:
    """Convert gigabytes/second to bytes/second."""
    return value * GB_PER_S


def mhz(value: float) -> float:
    """Convert megahertz to hertz."""
    return value * MHZ


def joules_to_kwh(joules: float) -> float:
    """Convert energy in joules to kilowatt-hours."""
    return joules / KILOWATT_HOUR


def pretty_bytes(num_bytes: float) -> str:
    """Render a byte count with a binary suffix, for reports and repr()s."""
    value = float(num_bytes)
    for suffix in ("B", "KiB", "MiB", "GiB"):
        if abs(value) < 1024.0:
            return f"{value:.1f} {suffix}"
        value /= 1024.0
    return f"{value:.1f} TiB"


def pretty_time(seconds: float) -> str:
    """Render a duration with an appropriate sub-second suffix."""
    if seconds >= 1.0:
        return f"{seconds:.3f} s"
    if seconds >= MILLISECOND:
        return f"{seconds / MILLISECOND:.3f} ms"
    if seconds >= MICROSECOND:
        return f"{seconds / MICROSECOND:.3f} us"
    return f"{seconds / NANOSECOND:.1f} ns"

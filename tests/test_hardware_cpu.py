"""Tests for the CPU worker cost model."""

import pytest

from repro.features.specs import all_models, get_model
from repro.hardware.calibration import Calibration
from repro.hardware.cpu import CpuCoreModel
from repro.ops.pipeline import OpCounts


@pytest.fixture(scope="module")
def model():
    return CpuCoreModel()


class TestBatchLatency:
    def test_all_steps_positive(self, model):
        lat = model.batch_latency(get_model("RM5"))
        for step, value in lat.as_dict().items():
            assert value > 0, step

    def test_total_is_sum(self, model):
        lat = model.batch_latency(get_model("RM3"))
        assert lat.total == pytest.approx(sum(lat.as_dict().values()))

    def test_transform_share_dominates(self, model):
        """The paper's central characterization: generation + normalization
        are the bottleneck on CPUs (~79% on average)."""
        shares = [model.batch_latency(s).transform_share for s in all_models()]
        assert all(0.6 < share < 0.9 for share in shares)
        assert sum(shares) / len(shares) == pytest.approx(0.79, abs=0.03)

    def test_production_models_much_slower(self, model):
        rm1 = model.batch_latency(get_model("RM1")).total
        rm5 = model.batch_latency(get_model("RM5")).total
        assert 10 < rm5 / rm1 < 20  # paper: ~14x

    def test_bucket_size_increases_bucketize(self, model):
        """RM3->RM5 share configs except bucket size (1024 -> 4096)."""
        rm3 = model.batch_latency(get_model("RM3")).bucketize
        rm5 = model.batch_latency(get_model("RM5")).bucketize
        assert rm5 > rm3

    def test_more_generated_features_increase_bucketize(self, model):
        """RM2 (21 generated) vs RM3 (42 generated), same bucket size."""
        rm2 = model.batch_latency(get_model("RM2")).bucketize
        rm3 = model.batch_latency(get_model("RM3")).bucketize
        assert rm3 == pytest.approx(2 * rm2, rel=0.01)

    def test_local_storage_cheaper_read(self, model):
        spec = get_model("RM5")
        remote = model.batch_latency(spec, remote_storage=True).extract_read
        local = model.batch_latency(spec, remote_storage=False).extract_read
        assert local < remote

    def test_custom_counts_respected(self, model):
        spec = get_model("RM1")
        half = OpCounts.expected_for(spec, spec.batch_size // 2)
        full = model.batch_latency(spec)
        partial = model.batch_latency(spec, counts=half)
        assert partial.sigridhash == pytest.approx(full.sigridhash / 2)


class TestThroughput:
    def test_core_throughput_matches_latency(self, model):
        spec = get_model("RM4")
        latency = model.batch_latency(spec).total
        assert model.core_throughput(spec) == pytest.approx(
            spec.batch_size / latency
        )

    def test_disagg_scales_linearly(self, model):
        spec = get_model("RM5")
        single = model.disagg_throughput(spec, 1)
        assert model.disagg_throughput(spec, 64) == pytest.approx(64 * single)

    def test_disagg_zero_cores(self, model):
        assert model.disagg_throughput(get_model("RM1"), 0) == 0.0

    def test_disagg_negative_rejected(self, model):
        with pytest.raises(ValueError):
            model.disagg_throughput(get_model("RM1"), -1)

    def test_colocated_derated_vs_disagg(self, model):
        spec = get_model("RM5")
        assert model.colocated_throughput(spec, 1) < model.disagg_throughput(spec, 1)

    def test_colocated_scaling_fifteen_x(self, model):
        spec = get_model("RM5")
        ratio = model.colocated_throughput(spec, 16) / model.colocated_throughput(
            spec, 1
        )
        assert ratio == pytest.approx(15.0, rel=0.02)

    def test_cores_required_monotone_in_target(self, model):
        spec = get_model("RM2")
        assert model.cores_required(spec, 1e6) >= model.cores_required(spec, 1e5)

    def test_cores_required_zero_target(self, model):
        assert model.cores_required(get_model("RM1"), 0.0) == 0


class TestCalibrationSensitivity:
    def test_slower_hash_slows_only_hash(self):
        base = CpuCoreModel()
        slow = CpuCoreModel(Calibration(cpu_hash_per_element=380e-9))
        spec = get_model("RM5")
        assert slow.batch_latency(spec).sigridhash == pytest.approx(
            2 * base.batch_latency(spec).sigridhash
        )
        assert slow.batch_latency(spec).log == pytest.approx(
            base.batch_latency(spec).log
        )

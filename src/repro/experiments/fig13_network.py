"""Figure 13 — aggregate RPC latency for inter-node data movement.

Per-mini-batch aggregate RPC time of Disagg and PreSto, normalized to
PreSto (the paper normalizes per model; the headline is a 2.9x average
reduction because PreSto never moves raw feature data over the network).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    models,
    register_experiment,
)
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.network.rpc import RpcAccounting, RpcBatchCosts


@dataclass(frozen=True)
class Fig13Result(ExperimentResult):
    """Per-model aggregate RPC costs for both designs."""

    disagg: Dict[str, RpcBatchCosts]
    presto: Dict[str, RpcBatchCosts]

    def reduction(self, model: str) -> float:
        """Disagg/PreSto aggregate RPC time."""
        return self.disagg[model].total / self.presto[model].total

    @property
    def mean_reduction(self) -> float:
        """Average across models (paper: 2.9)."""
        values = [self.reduction(m) for m in self.disagg]
        return sum(values) / len(values)

    def claims(self) -> List[PaperClaim]:
        return [
            PaperClaim("mean RPC-time reduction", 2.9, self.mean_reduction, 0.15),
            PaperClaim(
                "PreSto moves zero raw bytes on the wire",
                0.0,
                max(c.raw_data_transfer for c in self.presto.values()),
                0.0,
            ),
        ]

    def rows(self) -> List[Tuple]:
        out = []
        for model in self.disagg:
            base = self.presto[model].total
            out.append(
                (
                    model,
                    self.disagg[model].total / base,
                    self.presto[model].total / base,
                    1e3 * self.disagg[model].total,
                    1e3 * self.presto[model].total,
                )
            )
        return out

    def columns(self) -> List[str]:
        return ["model", "Disagg (norm)", "PreSto (norm)", "Disagg (ms)", "PreSto (ms)"]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title="Figure 13: aggregate RPC latency per mini-batch",
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("fig13", title="Figure 13", kind="figure", order=90)
def run(calibration: Calibration = CALIBRATION) -> Fig13Result:
    """Regenerate Figure 13."""
    accounting = RpcAccounting(calibration)
    disagg = {spec.name: accounting.disagg_batch(spec) for spec in models()}
    presto = {spec.name: accounting.presto_batch(spec) for spec in models()}
    return Fig13Result(disagg=disagg, presto=presto)

"""Bounded FIFO work queue with explicit backpressure.

The streaming service never buffers unboundedly: the queue holds at most
``capacity`` jobs, and a submission against a full queue either *blocks*
until a worker frees a slot (``policy="block"``, the default — optionally
bounded by a timeout) or is *rejected* immediately (``policy="reject"``).
Both outcomes surface as a typed :class:`~repro.errors.QueueFullError`, so
producers always learn about backpressure explicitly instead of stalling
silently or dropping work.

``close()`` starts the drain: no further puts are accepted, getters consume
whatever is queued, and once empty every waiter is released with
:class:`~repro.errors.QueueClosedError` — the worker pool's shutdown signal.
"""

from __future__ import annotations

import threading
from collections import deque
from typing import Callable, List, Optional, TypeVar

from repro.errors import QueueClosedError, QueueFullError, ServeError
from repro.faults.injector import fault_point

T = TypeVar("T")

#: how a full queue treats a new submission
QUEUE_POLICIES = ("block", "reject")


class BoundedJobQueue:
    """Thread-safe bounded FIFO with block-or-reject backpressure."""

    def __init__(self, capacity: int = 16, policy: str = "block") -> None:
        if not isinstance(capacity, int) or capacity <= 0:
            raise ServeError(
                f"queue capacity must be a positive int, got {capacity!r}"
            )
        if policy not in QUEUE_POLICIES:
            raise ServeError(
                f"queue policy must be one of {QUEUE_POLICIES}, got {policy!r}"
            )
        self.capacity = capacity
        self.policy = policy
        self._items: deque = deque()
        self._closed = False
        self._lock = threading.Lock()
        self._not_full = threading.Condition(self._lock)
        self._not_empty = threading.Condition(self._lock)

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)

    @property
    def closed(self) -> bool:
        with self._lock:
            return self._closed

    @property
    def free(self) -> int:
        """Open slots right now (0 once closed — nothing may enter)."""
        with self._lock:
            if self._closed:
                return 0
            return self.capacity - len(self._items)

    # -- producer side -------------------------------------------------------

    def put(self, item: T, timeout: Optional[float] = None) -> None:
        """Enqueue ``item``, honoring the backpressure policy.

        Raises :class:`QueueFullError` when the queue stays full (instantly
        under ``reject``; after ``timeout`` seconds under ``block`` — no
        timeout means wait indefinitely) and :class:`QueueClosedError` once
        the queue has been closed.
        """
        # fault point: producer-side turbulence — a delayed put, outside
        # the lock so injected stalls never block consumers
        fault_point("queue-stall", item=item)
        with self._not_full:
            if self._closed:
                raise QueueClosedError("queue is closed to new work")
            if len(self._items) >= self.capacity:
                if self.policy == "reject":
                    raise QueueFullError(
                        f"queue is full ({self.capacity} jobs) and policy "
                        "is 'reject'"
                    )
                if not self._not_full.wait_for(
                    lambda: self._closed or len(self._items) < self.capacity,
                    timeout=timeout,
                ):
                    raise QueueFullError(
                        f"queue stayed full ({self.capacity} jobs) for "
                        f"{timeout}s"
                    )
                if self._closed:
                    raise QueueClosedError("queue closed while waiting")
            self._items.append(item)
            self._not_empty.notify()

    def restore(self, items: List[T]) -> int:
        """Re-enqueue recovered jobs, bypassing the capacity bound.

        The crash-recovery path: a restarted service may find more
        interrupted jobs in its index than the queue's capacity, and
        blocking here before the pool starts would deadlock the daemon.
        Capacity bounds *new* submissions; recovered work is owed.  Items
        land ahead of nothing (the queue is empty at recovery time) in the
        given order.  Returns how many were enqueued.
        """
        with self._lock:
            if self._closed:
                raise QueueClosedError("queue is closed to new work")
            for item in items:
                self._items.append(item)
            if items:
                self._not_empty.notify_all()
            return len(items)

    # -- consumer side -------------------------------------------------------

    def get(self, timeout: Optional[float] = None) -> T:
        """Dequeue the oldest item; block until one arrives.

        Raises :class:`QueueClosedError` once the queue is closed *and*
        drained (the consumer's signal to exit), and :class:`QueueFullError`
        never — only :class:`QueueClosedError` or a ``TimeoutError`` when a
        ``timeout`` is given and nothing arrives.
        """
        with self._not_empty:
            if not self._not_empty.wait_for(
                lambda: self._items or self._closed, timeout=timeout
            ):
                raise TimeoutError(f"no work arrived within {timeout}s")
            if not self._items:
                raise QueueClosedError("queue is closed and drained")
            item = self._items.popleft()
            self._not_full.notify()
            return item

    # -- lifecycle -----------------------------------------------------------

    def cancel(self, predicate: Callable[[T], bool]) -> List[T]:
        """Remove and return every queued item matching ``predicate``."""
        with self._lock:
            kept, removed = deque(), []
            for item in self._items:
                if predicate(item):
                    removed.append(item)
                else:
                    kept.append(item)
            self._items = kept
            if removed:
                self._not_full.notify_all()
            return removed

    def snapshot(self) -> List[T]:
        """The queued items, oldest first (for status displays)."""
        with self._lock:
            return list(self._items)

    def close(self) -> None:
        """Refuse new work; release all waiters once drained."""
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()

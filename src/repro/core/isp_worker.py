"""PreSto ISP preprocessing worker — one SmartSSD device.

The worker's timing comes from the accelerator pipeline model (P2P extract,
hardwired decode, parallel transform units, double buffering), so its
throughput is set by the slowest stage rather than the end-to-end latency.

The functional path runs the *same* kernels as the CPU worker (the FPGA
units implement identical algorithms — Algorithm 1 and 2), so a PreSto
mini-batch is bit-identical to a baseline mini-batch; tests assert this,
which is the reproduction's stand-in for the prototype's correctness
validation.
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from repro.dataio.columnar import ColumnarFileReader
from repro.features.minibatch import MiniBatch
from repro.features.specs import ModelSpec
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.storage.smartssd import SmartSsd
from repro.core.worker import PreprocessingWorker
from repro.ops.pipeline import OpCounts, PreprocessingPipeline


class IspPreprocessingWorker(PreprocessingWorker):
    """One PreSto preprocessing worker bound to one SmartSSD."""

    kind = "PreSto"

    def __init__(
        self,
        spec: ModelSpec,
        device: Optional[SmartSsd] = None,
        calibration: Calibration = CALIBRATION,
        pipeline: Optional[PreprocessingPipeline] = None,
    ) -> None:
        super().__init__(spec)
        self.cal = calibration
        self.device = device or SmartSsd("smartssd-0", calibration)
        self.pipeline = pipeline or PreprocessingPipeline(spec)

    # -- performance -----------------------------------------------------------

    def batch_breakdown(self) -> Dict[str, float]:
        """Figure 12 step breakdown for one mini-batch on one SmartSSD."""
        stages = self.device.preprocess_stages(self.spec)
        breakdown = stages.as_dict()
        # split host orchestration between Extract bookkeeping and Else the
        # way AcceleratorStages.extract accounts it
        breakdown["extract_read"] = stages.ingress + 0.5 * stages.host
        breakdown["else_time"] = 0.5 * stages.host
        return breakdown

    def throughput(self) -> float:
        """Pipeline-bottleneck throughput (double-buffered stages)."""
        return self.device.throughput(self.spec)

    # -- functional execution ----------------------------------------------------

    def preprocess_partition(
        self, file_bytes: bytes, batch_id: int = 0
    ) -> Tuple[MiniBatch, OpCounts]:
        """Run the in-storage pipeline functionally on one partition.

        Identical kernels to the CPU baseline: the FPGA units are
        functionally transparent accelerations of Algorithms 1 and 2.
        """
        reader = ColumnarFileReader(file_bytes)
        raw = reader.read_columns(self.pipeline.required_columns())
        return self.pipeline.run(raw, batch_id=batch_id)

    def preprocess_local(
        self, dataset: str, index: int, storage
    ) -> Tuple[MiniBatch, OpCounts]:
        """Preprocess a partition stored on *this* worker's device.

        Raises if the partition lives elsewhere — PreSto never moves raw
        data across devices (the locality property of Section IV-B).
        """
        from repro.errors import ConfigurationError

        device = storage.device_of(dataset, index)
        if device is not self.device:
            raise ConfigurationError(
                f"partition {index} of {dataset!r} is not local to {self.device.name}"
            )
        key = storage.partition_key(dataset, index)
        return self.preprocess_partition(self.device.ssd.read_object(key), index)

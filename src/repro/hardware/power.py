"""Power-draw models for every preprocessing design point.

The paper measures system power with Intel PCM (CPU nodes), Vivado (FPGA),
and nvidia-smi (GPU).  This module plays those meters: each design point's
preprocessing-side power as a function of its provisioned resources.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.hardware.calibration import CALIBRATION, Calibration


@dataclass(frozen=True)
class DevicePower:
    """Nameplate and measured-active power of one device."""

    name: str
    tdp: float
    active: float


def _device_table(cal: Calibration) -> Dict[str, DevicePower]:
    return {
        "smartssd": DevicePower("SmartSSD", cal.smartssd_tdp, cal.smartssd_active_power),
        "a100": DevicePower("A100", cal.a100_tdp, cal.a100_preproc_active_power),
        "u280": DevicePower("U280", cal.u280_tdp, cal.u280_active_power),
        "cpu_core": DevicePower(
            "CPU core share", cal.cpu_core_power, cal.cpu_core_power
        ),
    }


#: Devices under the default calibration.
DEVICE_POWER: Dict[str, DevicePower] = _device_table(CALIBRATION)


class PowerModel:
    """Preprocessing-side power of each system design point (watts)."""

    def __init__(self, calibration: Calibration = CALIBRATION) -> None:
        self.cal = calibration
        self.devices = _device_table(calibration)

    def disagg_cpu_power(self, num_cores: int) -> float:
        """Disaggregated CPU pool: per-core share of loaded node power."""
        if num_cores < 0:
            raise ValueError("num_cores must be non-negative")
        return num_cores * self.cal.cpu_core_power

    def disagg_cpu_nodes(self, num_cores: int) -> int:
        """Whole server nodes needed to host ``num_cores`` (Fig. 14 text:
        367 cores = 12 nodes)."""
        return math.ceil(num_cores / self.cal.cpu_cores_per_node)

    def presto_power(self, num_units: int, worst_case: bool = False) -> float:
        """PreSto: ISP units plus the storage host's orchestration share.

        ``worst_case=True`` uses the 25 W NVMe TDP per card — the paper's
        "(9 x 25) = 225 W of worst-case power" bound — and omits the host
        share to mirror that quote.
        """
        if num_units < 0:
            raise ValueError("num_units must be non-negative")
        if worst_case:
            return num_units * self.cal.smartssd_tdp
        return num_units * self.cal.smartssd_active_power + self.cal.presto_host_power

    def accelerator_pool_power(self, device: str, num_devices: int) -> float:
        """Disaggregated accelerator pool (Fig. 7(b)): active device power
        plus the same host orchestration share per pool."""
        if device not in self.devices:
            raise ValueError(f"unknown device {device!r}")
        return (
            num_devices * self.devices[device].active + self.cal.presto_host_power
        )

    def preprocessing_energy(self, power_watts: float, duration_s: float) -> float:
        """Joules consumed by a preprocessing configuration over a run."""
        if duration_s < 0:
            raise ValueError("duration must be non-negative")
        return power_watts * duration_s

"""Figure 14 — ISP units vs CPU cores to sustain an 8xA100 node.

For every model: how many PreSto SmartSSDs and how many disaggregated CPU
cores close the preprocessing/training gap.

Paper claims: at most 9 ISP units (225 W worst case at 25 W/card) vs up to
367 cores (12 CPU server nodes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.systems import DisaggCpuSystem, PreStoSystem
from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    models,
    register_experiment,
)
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.hardware.power import PowerModel

NUM_GPUS = 8


@dataclass(frozen=True)
class Fig14Result(ExperimentResult):
    """Provisioned resources per model."""

    isp_units: Dict[str, int]
    cpu_cores: Dict[str, int]
    cpu_nodes: Dict[str, int]
    worst_case_isp_power: Dict[str, float]

    @property
    def max_units(self) -> int:
        """Largest ISP allocation (paper: 9)."""
        return max(self.isp_units.values())

    @property
    def max_cores(self) -> int:
        """Largest CPU allocation (paper: 367)."""
        return max(self.cpu_cores.values())

    def claims(self) -> List[PaperClaim]:
        return [
            PaperClaim("max ISP units", 9, self.max_units, 0.15),
            PaperClaim("max CPU cores", 367, self.max_cores, 0.10),
            PaperClaim(
                "worst-case ISP power at max units (W)",
                225.0,
                max(self.worst_case_isp_power.values()),
                0.15,
            ),
            PaperClaim(
                "CPU nodes at max cores",
                12,
                max(self.cpu_nodes.values()),
                0.10,
            ),
        ]

    def rows(self) -> List[Tuple]:
        return [
            (
                model,
                self.isp_units[model],
                self.cpu_cores[model],
                self.cpu_nodes[model],
                self.worst_case_isp_power[model],
            )
            for model in self.isp_units
        ]

    def columns(self) -> List[str]:
        return ["model", "ISP units", "CPU cores", "CPU nodes", "ISP worst-case W"]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title="Figure 14: resources to sustain an 8xA100 training node",
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("fig14", title="Figure 14", kind="figure", order=100)
def run(calibration: Calibration = CALIBRATION) -> Fig14Result:
    """Regenerate Figure 14."""
    power = PowerModel(calibration)
    units: Dict[str, int] = {}
    cores: Dict[str, int] = {}
    nodes: Dict[str, int] = {}
    isp_power: Dict[str, float] = {}
    for spec in models():
        presto_plan = PreStoSystem(spec, calibration).provision_for(NUM_GPUS)
        cpu_plan = DisaggCpuSystem(spec, calibration).provision_for(NUM_GPUS)
        units[spec.name] = presto_plan.num_workers
        cores[spec.name] = cpu_plan.num_workers
        nodes[spec.name] = power.disagg_cpu_nodes(cpu_plan.num_workers)
        isp_power[spec.name] = power.presto_power(
            presto_plan.num_workers, worst_case=True
        )
    return Fig14Result(
        isp_units=units,
        cpu_cores=cores,
        cpu_nodes=nodes,
        worst_case_isp_power=isp_power,
    )

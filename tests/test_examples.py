"""Smoke tests: every example script runs to completion as a subprocess."""

import pathlib
import subprocess
import sys

import pytest

EXAMPLES_DIR = pathlib.Path(__file__).resolve().parent.parent / "examples"
EXAMPLES = sorted(EXAMPLES_DIR.glob("*.py"))


def test_examples_present():
    names = {path.name for path in EXAMPLES}
    assert "quickstart.py" in names
    assert len(EXAMPLES) >= 3  # the deliverable floor; we ship five


@pytest.mark.parametrize("script", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, str(script)],
        capture_output=True,
        text=True,
        timeout=300,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    assert len(result.stdout) > 100  # produced a real report

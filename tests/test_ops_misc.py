"""Tests for Log normalization, fill ops, and format conversion."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OpError
from repro.ops.fill import fill_dense, fill_sparse
from repro.ops.format import to_minibatch
from repro.ops.lognorm import log_normalize


class TestLogNormalize:
    def test_basic_values(self):
        out = log_normalize(np.array([0.0, np.e - 1.0]))
        np.testing.assert_allclose(out, [0.0, 1.0], rtol=1e-6)

    def test_negative_clamped(self):
        assert log_normalize(np.array([-5.0]))[0] == 0.0

    def test_nan_treated_as_zero(self):
        assert log_normalize(np.array([np.nan]))[0] == 0.0

    def test_output_dtype(self):
        assert log_normalize(np.array([1.0])).dtype == np.float32

    def test_monotone(self):
        values = np.array([0.0, 1.0, 10.0, 100.0])
        out = log_normalize(values)
        assert np.all(np.diff(out) > 0)

    def test_2d_rejected(self):
        with pytest.raises(OpError):
            log_normalize(np.zeros((2, 2)))

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6), max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_always_finite_nonnegative(self, values):
        out = log_normalize(np.array(values, dtype=np.float64))
        assert np.all(np.isfinite(out))
        assert np.all(out >= 0)


class TestFillDense:
    def test_fills_nans(self):
        out = fill_dense(np.array([1.0, np.nan, 3.0]), fill_value=9.0)
        np.testing.assert_array_equal(out, [1.0, 9.0, 3.0])

    def test_no_nans_copy(self):
        values = np.array([1.0, 2.0], dtype=np.float32)
        out = fill_dense(values)
        out[0] = 99.0
        assert values[0] == 1.0  # input untouched

    def test_2d_rejected(self):
        with pytest.raises(OpError):
            fill_dense(np.zeros((2, 2)))


class TestFillSparse:
    def test_empty_rows_get_default(self):
        lengths = np.array([2, 0, 1], dtype=np.int32)
        values = np.array([10, 11, 12], dtype=np.int64)
        new_lengths, new_values = fill_sparse(lengths, values, default_id=0)
        assert new_lengths.tolist() == [2, 1, 1]
        assert new_values.tolist() == [10, 11, 0, 12]

    def test_no_empty_rows_passthrough(self):
        lengths = np.array([1, 2], dtype=np.int32)
        values = np.array([1, 2, 3], dtype=np.int64)
        new_lengths, new_values = fill_sparse(lengths, values)
        np.testing.assert_array_equal(new_lengths, lengths)
        np.testing.assert_array_equal(new_values, values)

    def test_all_empty(self):
        new_lengths, new_values = fill_sparse(
            np.zeros(3, dtype=np.int32), np.array([], dtype=np.int64), default_id=7
        )
        assert new_lengths.tolist() == [1, 1, 1]
        assert new_values.tolist() == [7, 7, 7]

    def test_mismatched_inputs_rejected(self):
        with pytest.raises(OpError, match="sum"):
            fill_sparse(np.array([2]), np.array([1, 2, 3]))

    @given(
        lengths=st.lists(st.integers(min_value=0, max_value=4), min_size=1, max_size=40)
    )
    @settings(max_examples=40, deadline=None)
    def test_conservation_property(self, lengths):
        """Values are conserved; only empty rows gain one default entry."""
        lengths = np.array(lengths, dtype=np.int32)
        values = np.arange(int(lengths.sum()), dtype=np.int64) + 100
        new_lengths, new_values = fill_sparse(lengths, values, default_id=-1)
        assert np.all(new_lengths >= 1)
        assert int(new_lengths.sum()) == len(new_values)
        # non-default values preserved in order
        kept = new_values[new_values != -1]
        np.testing.assert_array_equal(kept, values)


class TestToMinibatch:
    def _inputs(self, batch=4):
        dense = {"d0": np.arange(batch, dtype=np.float32)}
        sparse = {
            "s0": (
                np.ones(batch, dtype=np.int32),
                np.arange(batch, dtype=np.int64),
            )
        }
        labels = np.zeros(batch, dtype=np.int8)
        return dense, sparse, labels

    def test_basic_assembly(self):
        dense, sparse, labels = self._inputs()
        mb = to_minibatch(dense, sparse, labels, ["d0"], ["s0"], batch_id=5)
        assert mb.batch_size == 4
        assert mb.dense.shape == (4, 1)
        assert mb.sparse.keys == ["s0"]
        assert mb.batch_id == 5

    def test_missing_dense_rejected(self):
        dense, sparse, labels = self._inputs()
        with pytest.raises(OpError, match="missing dense"):
            to_minibatch(dense, sparse, labels, ["d0", "d1"], ["s0"])

    def test_missing_sparse_rejected(self):
        dense, sparse, labels = self._inputs()
        with pytest.raises(OpError, match="missing sparse"):
            to_minibatch(dense, sparse, labels, ["d0"], ["s0", "s1"])

    def test_batch_mismatch_rejected(self):
        dense, sparse, labels = self._inputs()
        dense["d0"] = dense["d0"][:-1]
        with pytest.raises(OpError):
            to_minibatch(dense, sparse, labels, ["d0"], ["s0"])

    def test_column_order_respected(self):
        batch = 3
        dense = {
            "a": np.full(batch, 1.0, dtype=np.float32),
            "b": np.full(batch, 2.0, dtype=np.float32),
        }
        sparse = {
            "s0": (np.ones(batch, dtype=np.int32), np.zeros(batch, dtype=np.int64))
        }
        mb = to_minibatch(dense, sparse, np.zeros(batch), ["b", "a"], ["s0"])
        assert mb.dense[0, 0] == 2.0
        assert mb.dense[0, 1] == 1.0

    def test_no_dense_rejected(self):
        _, sparse, labels = self._inputs()
        with pytest.raises(OpError, match="at least one dense"):
            to_minibatch({}, sparse, labels, [], ["s0"])

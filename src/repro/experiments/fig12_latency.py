"""Figure 12 — single-worker latency breakdown and PreSto speedup.

For every model: the per-step latency of one Disagg CPU worker and one
PreSto SmartSSD worker (each normalized to Disagg's total), plus PreSto's
end-to-end speedup.

Paper claims: 9.6x average / 11.6x maximum speedup; PreSto's Extract step
(P2P transfer + decoding, less parallelizable) averages ~40.8% of its time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.cpu_worker import CpuPreprocessingWorker
from repro.core.isp_worker import IspPreprocessingWorker
from repro.core.worker import BREAKDOWN_STEPS
from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    models,
    register_experiment,
)
from repro.hardware.calibration import CALIBRATION, Calibration


@dataclass(frozen=True)
class Fig12Result(ExperimentResult):
    """Breakdowns (seconds) for both designs per model."""

    disagg: Dict[str, Dict[str, float]]
    presto: Dict[str, Dict[str, float]]

    def speedup(self, model: str) -> float:
        """Disagg total / PreSto total for one model."""
        return sum(self.disagg[model].values()) / sum(self.presto[model].values())

    @property
    def mean_speedup(self) -> float:
        """Average across models (paper: 9.6)."""
        values = [self.speedup(m) for m in self.disagg]
        return sum(values) / len(values)

    @property
    def max_speedup(self) -> float:
        """Best case (paper: 11.6)."""
        return max(self.speedup(m) for m in self.disagg)

    def presto_extract_share(self, model: str) -> float:
        """Extract fraction of PreSto's time (paper average: 0.408)."""
        steps = self.presto[model]
        total = sum(steps.values())
        extract = steps["extract_read"] + steps["extract_decode"]
        return extract / total

    @property
    def mean_extract_share(self) -> float:
        values = [self.presto_extract_share(m) for m in self.presto]
        return sum(values) / len(values)

    def claims(self) -> List[PaperClaim]:
        return [
            PaperClaim("mean end-to-end speedup", 9.6, self.mean_speedup, 0.15),
            PaperClaim("max end-to-end speedup", 11.6, self.max_speedup, 0.15),
            PaperClaim("mean PreSto Extract share", 0.408, self.mean_extract_share, 0.20),
        ]

    def rows(self) -> List[Tuple]:
        out = []
        for model in self.disagg:
            disagg_total = sum(self.disagg[model].values())
            for design, steps in (("Disagg", self.disagg[model]), ("PreSto", self.presto[model])):
                normalized = [steps[s] / disagg_total for s in BREAKDOWN_STEPS]
                out.append((model, design, *normalized, sum(normalized)))
        return out

    def columns(self) -> List[str]:
        return ["model", "design"] + list(BREAKDOWN_STEPS) + ["total"]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title="Figure 12: latency breakdown normalized to Disagg total",
        )
        speeds = format_table(
            ["model", "speedup (x)"],
            [(m, self.speedup(m)) for m in self.disagg],
            title="PreSto end-to-end speedup",
        )
        return (
            table
            + "\n"
            + speeds
            + "\n"
            + "\n".join(c.render() for c in self.claims())
        )


@register_experiment("fig12", title="Figure 12", kind="figure", order=80)
def run(calibration: Calibration = CALIBRATION) -> Fig12Result:
    """Regenerate Figure 12."""
    disagg: Dict[str, Dict[str, float]] = {}
    presto: Dict[str, Dict[str, float]] = {}
    for spec in models():
        disagg[spec.name] = CpuPreprocessingWorker(spec, calibration).batch_breakdown()
        presto[spec.name] = IspPreprocessingWorker(
            spec, calibration=calibration
        ).batch_breakdown()
    return Fig12Result(disagg=disagg, presto=presto)

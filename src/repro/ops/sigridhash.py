"""SigridHash — sparse feature normalization (Algorithm 2 of the paper).

Maps raw (arbitrarily large) categorical ids into the index range of the
model's embedding table: ``c[i] = ComputeHash(a[i], seed) mod max_value``.

The hash is a seeded 64-bit finalizer in the splitmix64 / MurmurHash3
fmix64 family — the same construction TorchArrow's SigridHash uses
(a Twang-style 64-bit mix).  It is:

* deterministic given (value, seed),
* uniform over the 64-bit space (verified by property tests),
* cheap enough to be evaluated per element, which is exactly why the paper's
  FPGA maps it onto DSP-based parallel hash units.

A vectorized numpy path operates on whole columns; the scalar path is the
literal Algorithm 2 transcription used by tests as a cross-check.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.errors import OpError

_MASK64 = (1 << 64) - 1

# splitmix64 constants
_GAMMA = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def hash64(value: int, seed: int = 0) -> int:
    """Seeded 64-bit mix of one integer (scalar reference implementation)."""
    h = (value + _GAMMA * (seed + 1)) & _MASK64
    h ^= h >> 30
    h = (h * _MIX1) & _MASK64
    h ^= h >> 27
    h = (h * _MIX2) & _MASK64
    h ^= h >> 31
    return h


def sigrid_hash_scalar(value: int, seed: int, max_value: int) -> int:
    """Algorithm 2, one element: ``ComputeHash(a[i], s) mod d``."""
    if max_value <= 0:
        raise OpError("max_value must be positive")
    return hash64(value, seed) % max_value


def _hash64_vec(
    values: np.ndarray, seed: int, gamma: Optional[np.uint64] = None
) -> np.ndarray:
    """Vectorized splitmix64 over an int64/uint64 column."""
    h = values.astype(np.uint64, copy=False)
    with np.errstate(over="ignore"):
        if gamma is None:
            gamma = np.uint64((_GAMMA * (seed + 1)) & _MASK64)
        if h is values:
            # uint64 input: the add allocates the owned intermediate
            h = h + gamma
        else:
            # astype already copied; every later op can run in place
            h += gamma
        h ^= h >> np.uint64(30)
        h *= np.uint64(_MIX1)
        h ^= h >> np.uint64(27)
        h *= np.uint64(_MIX2)
        h ^= h >> np.uint64(31)
    return h


class SigridHasher:
    """SigridHash with the per-(seed, table) constants computed once.

    The seeded gamma and the modulus are scalar uint64 conversions that
    ``sigrid_hash`` otherwise rebuilds on every batch of every feature;
    a pipeline holds one ``SigridHasher`` per sparse feature instead.
    """

    __slots__ = ("seed", "max_value", "_gamma", "_modulus")

    def __init__(self, seed: int, max_value: int) -> None:
        if max_value <= 0:
            raise OpError("max_value must be positive")
        self.seed = seed
        self.max_value = max_value
        self._gamma = np.uint64((_GAMMA * (seed + 1)) & _MASK64)
        self._modulus = np.uint64(max_value)

    def __call__(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values)
        if values.ndim != 1:
            raise OpError(
                f"sigrid_hash input must be 1-D, got shape {values.shape}"
            )
        if not np.issubdtype(values.dtype, np.integer):
            raise OpError("sigrid_hash input must be integer ids")
        hashed = _hash64_vec(values, self.seed, self._gamma)
        return (hashed % self._modulus).astype(np.int64)


def sigrid_hash(values: np.ndarray, seed: int, max_value: int) -> np.ndarray:
    """Normalize a flat column of sparse ids into ``[0, max_value)``.

    Output dtype is int64 (indices are later narrowed to int32 for the
    train-ready tensors; ``max_value`` must fit in int32 for that to be
    lossless, which Table I's 500,000-row tables satisfy).  One-shot form
    of :class:`SigridHasher`; pipelines cache the prepared form instead.
    """
    return SigridHasher(seed, max_value)(values)

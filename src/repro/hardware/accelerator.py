"""PreSto accelerator timing model (the Figure 10 microarchitecture).

The SmartSSD FPGA hosts a hardwired Decoder unit, a Bucketize-based feature
generation unit, and SigridHash/Log feature normalization units, all fed
from device DRAM with double buffering so fetch overlaps compute
(Section IV-C).  The model exposes:

* per-stage times for one mini-batch (P2P read, decode, the three transform
  ops, format conversion, output load) — the Figure 12 breakdown;
* end-to-end latency = sum of stages (+ host orchestration);
* steady-state throughput = batch / max-stage: double buffering pipelines
  consecutive mini-batches across stages, which is how one SmartSSD with a
  ~10x latency advantage over a core shows a ~45x throughput advantage
  (Fig. 11 vs Fig. 12).

The same class models the discrete-U280 variants of Figure 16 via a unit
scale factor and different ingress/egress links.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.features.specs import ModelSpec
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.ops.pipeline import OpCounts


@dataclass
class AcceleratorStages:
    """Per-stage seconds for one mini-batch on one PreSto device."""

    ingress: float  # P2P (SmartSSD) or PCIe/network transfer of raw bytes
    decode: float  # hardwired columnar decoder
    bucketize: float
    sigridhash: float
    log: float
    format_conversion: float
    load: float  # ship train-ready tensors to the train manager
    host: float  # host-side orchestration (XRT + RPC), overlapped

    @property
    def extract(self) -> float:
        """The Extract step as Figure 12 reports it for PreSto: P2P transfer
        + decoding, plus the half of host orchestration that issues reads."""
        return self.ingress + self.decode + 0.5 * self.host

    @property
    def else_time(self) -> float:
        """Residual host orchestration not attributable to Extract."""
        return 0.5 * self.host

    @property
    def transform_time(self) -> float:
        """Feature generation + normalization on the FPGA units."""
        return self.bucketize + self.sigridhash + self.log

    @property
    def latency(self) -> float:
        """End-to-end seconds to produce one mini-batch (first-batch latency)."""
        return (
            self.ingress
            + self.decode
            + self.transform_time
            + self.format_conversion
            + self.load
            + self.host
        )

    @property
    def bottleneck(self) -> float:
        """Slowest pipeline stage.  The three transform units form one
        double-buffered stage; host orchestration is not a stage because the
        preprocess manager overlaps it across the batches in flight."""
        return max(
            self.ingress,
            self.decode,
            self.transform_time,
            self.format_conversion,
            self.load,
        )

    def as_dict(self) -> Dict[str, float]:
        """Figure-12-style breakdown: step name -> seconds."""
        return {
            "extract_read": self.ingress,
            "extract_decode": self.decode,
            "bucketize": self.bucketize,
            "sigridhash": self.sigridhash,
            "log": self.log,
            "format_conversion": self.format_conversion,
            "else_time": self.host,
            "load": self.load,
        }


class AcceleratorModel:
    """Timing model of one PreSto device (SmartSSD by default).

    ``unit_scale > 1`` models a larger FPGA (the U280 is synthesized with 2x
    the Decoder/generation/normalization units, Section VI-C).  ``ingress``
    selects how raw bytes reach the device; ``egress`` how train-ready
    tensors leave the preprocessing side.
    """

    def __init__(
        self,
        calibration: Calibration = CALIBRATION,
        unit_scale: float = 1.0,
        ingress_bw: Optional[float] = None,
        egress_bw: Optional[float] = None,
        host_overhead: Optional[float] = None,
    ) -> None:
        if unit_scale <= 0:
            raise ValueError("unit_scale must be positive")
        self.cal = calibration
        self.unit_scale = unit_scale
        self.ingress_bw = (
            ingress_bw if ingress_bw is not None else calibration.p2p_bandwidth
        )
        self.egress_bw = (
            egress_bw
            if egress_bw is not None
            else calibration.network_bandwidth * calibration.network_rpc_efficiency
        )
        self.host_overhead = (
            host_overhead
            if host_overhead is not None
            else calibration.accel_host_overhead
        )

    # -- stage times -------------------------------------------------------

    def batch_stages(
        self, spec: ModelSpec, counts: Optional[OpCounts] = None
    ) -> AcceleratorStages:
        """Per-stage times for one mini-batch of ``spec``."""
        cal = self.cal
        if counts is None:
            counts = OpCounts.expected_for(spec)
        bytes_in = cal.encoded_bytes_per_sample(spec) * counts.rows
        bytes_out = spec.train_ready_bytes_per_sample() * counts.rows

        hash_rate = cal.accel_element_rate(cal.accel_hash_lanes) * self.unit_scale
        log_rate = cal.accel_element_rate(cal.accel_log_lanes) * self.unit_scale
        bucket_rate = (
            cal.accel_element_rate(cal.accel_bucketize_lanes) * self.unit_scale
        )
        format_rate = cal.accel_element_rate(cal.accel_format_lanes) * self.unit_scale

        return AcceleratorStages(
            ingress=bytes_in / self.ingress_bw,
            decode=bytes_in / (cal.accel_decode_bw * self.unit_scale),
            bucketize=counts.bucketize_elements / bucket_rate,
            sigridhash=counts.hash_elements / hash_rate,
            log=counts.log_elements / log_rate,
            format_conversion=counts.format_elements / format_rate,
            load=bytes_out / self.egress_bw,
            host=self.host_overhead,
        )

    # -- aggregate metrics ----------------------------------------------------

    def batch_latency(self, spec: ModelSpec) -> float:
        """End-to-end seconds to preprocess one mini-batch."""
        return self.batch_stages(spec).latency

    def device_throughput(self, spec: ModelSpec, batch_size: Optional[int] = None) -> float:
        """Steady-state samples/s of one device (pipeline bottleneck)."""
        counts = OpCounts.expected_for(spec, batch_size)
        return counts.rows / self.batch_stages(spec, counts).bottleneck

    def op_time(self, spec: ModelSpec, op: str) -> float:
        """Seconds one device spends in one transform op per mini-batch,
        including its share of per-batch host invocation (Fig. 17)."""
        stages = self.batch_stages(spec)
        per_op = {
            "bucketize": stages.bucketize,
            "sigridhash": stages.sigridhash,
            "log": stages.log,
        }
        if op not in per_op:
            raise ValueError(f"unknown transform op {op!r}")
        # each offloaded op pays one kernel invocation from the host budget
        invocation = self.host_overhead / 10.0
        return per_op[op] + invocation

"""The uniform record every scenario run produces.

:class:`RunResult` flattens the quantities the paper's figures and tables
consume — utilization, supply/demand throughputs, provisioning, power, and
CapEx — into one frozen row, so sweeps can be tabulated, serialized, and
compared without knowing which system produced them.
"""

from __future__ import annotations

from dataclasses import dataclass, fields
from typing import Any, Dict, Mapping, TYPE_CHECKING

from repro.errors import ConfigurationError

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.api.scenario import Scenario


@dataclass(frozen=True)
class RunResult:
    """Outcome of one :meth:`Scenario.run` — a full pipeline simulation."""

    scenario: "Scenario"
    num_workers: int  # workers actually launched
    num_batches: int
    wall_time: float  # simulated seconds end to end
    training_time: float  # seconds the GPUs spent training
    wait_time: float  # seconds the GPUs starved on the input queue
    first_batch_time: float  # pipeline warmup latency
    gpu_utilization: float  # training_time / wall_time
    steady_state_utilization: float  # warmup excluded
    preprocessing_throughput: float  # samples/s actually supplied
    training_throughput: float  # samples/s consumed end to end
    training_demand: float  # T: samples/s the GPUs can absorb
    worker_throughput: float  # P: samples/s of one worker
    headroom: float  # supply capacity over demand (>=1: never starves)
    power_watts: float  # preprocessing-side power at num_workers
    capex_dollars: float  # preprocessing-side capital expenditure

    @property
    def starved(self) -> bool:
        """Whether preprocessing failed to keep the GPUs busy."""
        return self.steady_state_utilization < 0.99

    def to_dict(self) -> Dict[str, Any]:
        """JSON-able flat record (scenario nested as its own dict)."""
        out: Dict[str, Any] = {}
        for spec_field in fields(self):
            value = getattr(self, spec_field.name)
            out[spec_field.name] = (
                value.to_dict() if spec_field.name == "scenario" else value
            )
        return out

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunResult":
        """Rebuild a result from :meth:`to_dict` output (strict keys).

        The round trip is exact — sweep journals rely on it to replay a
        completed scenario's result byte-identically on resume.
        """
        from repro.api.scenario import Scenario

        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown RunResult keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        payload = dict(data)
        payload["scenario"] = Scenario.from_dict(payload["scenario"])
        return cls(**payload)

    def summary(self) -> str:
        """One human-readable line for logs and CLI output."""
        s = self.scenario
        return (
            f"{s.model}/{s.system}: {self.num_workers} workers feed "
            f"{s.num_gpus} GPU(s) at {100 * self.gpu_utilization:.1f}% util "
            f"({self.preprocessing_throughput:,.0f} samples/s supplied, "
            f"{self.power_watts:,.0f} W, ${self.capex_dollars:,.0f} CapEx)"
        )

"""Benchmark: ablation/sensitivity study repro.experiments.abl_multijob."""

from conftest import assert_claims, report

from repro.experiments import abl_multijob


def test_ablfleet(benchmark):
    """Time the abl_multijob study and verify its expected-shape claims."""
    result = benchmark(abl_multijob.run)
    report(result)
    assert_claims(result)

"""CPU-centric preprocessing worker cost model.

One CPU core runs one preprocessing worker that executes the full ETL
sequence serially for one mini-batch (the TorchRec worker-per-core software
architecture, Section II-D).  This model maps one mini-batch's
:class:`~repro.ops.pipeline.OpCounts` to per-step latencies — the breakdown
of Figures 5 and 12 — and to a per-core throughput, which the paper's
analytical model scales linearly across cores.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, fields
from typing import Dict, Optional

from repro.features.specs import ModelSpec
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.ops.pipeline import OpCounts


@dataclass
class CpuStepLatencies:
    """Per-step seconds to preprocess one mini-batch on one core.

    Field order matches the paper's Figure 5 legend.
    """

    extract_read: float
    extract_decode: float
    bucketize: float
    sigridhash: float
    log: float
    format_conversion: float
    else_time: float
    load: float

    @property
    def total(self) -> float:
        """End-to-end seconds per mini-batch."""
        return sum(getattr(self, f.name) for f in fields(self))

    @property
    def transform_time(self) -> float:
        """Feature generation + normalization time (the offloaded ops)."""
        return self.bucketize + self.sigridhash + self.log

    @property
    def transform_share(self) -> float:
        """Fraction of total time in Bucketize + SigridHash + Log."""
        return self.transform_time / self.total

    def as_dict(self) -> Dict[str, float]:
        """Step name -> seconds, in Figure 5 legend order."""
        return {f.name: getattr(self, f.name) for f in fields(self)}


class CpuCoreModel:
    """Latency/throughput model of one preprocessing worker on one core."""

    def __init__(self, calibration: Calibration = CALIBRATION) -> None:
        self.cal = calibration

    # -- per-step latencies -------------------------------------------------

    def batch_latency(
        self,
        spec: ModelSpec,
        counts: Optional[OpCounts] = None,
        remote_storage: bool = True,
    ) -> CpuStepLatencies:
        """Per-step latency of one mini-batch on one core.

        ``remote_storage=True`` charges Extract(Read) for fetching the raw
        partition over the network from the storage node (the disaggregated
        design); ``False`` reads from a local SSD (co-located design reading
        a local cache/mount — the paper's Fig. 3 setup still fetches
        remotely, so experiments pass True unless stated).
        """
        cal = self.cal
        if counts is None:
            counts = OpCounts.expected_for(spec)
        bytes_in = cal.encoded_bytes_per_sample(spec) * counts.rows
        bytes_out = spec.train_ready_bytes_per_sample() * counts.rows

        if remote_storage:
            read_bw = cal.network_bandwidth * cal.network_read_efficiency
            extract_read = (
                cal.rpc_request_overhead
                + bytes_in * cal.storage_protocol_overhead / read_bw
            )
        else:
            extract_read = cal.ssd_read_latency + bytes_in / cal.ssd_read_bw

        extract_decode = bytes_in * cal.cpu_decode_per_byte
        per_element_bucketize = (
            cal.cpu_bucketize_base
            + cal.cpu_bucketize_per_step * counts.search_steps_per_element
        )
        bucketize = counts.bucketize_elements * per_element_bucketize
        sigridhash = counts.hash_elements * cal.cpu_hash_per_element
        log = counts.log_elements * cal.cpu_log_per_element
        format_conversion = counts.format_elements * cal.cpu_format_per_element
        else_time = (
            counts.fill_elements * cal.cpu_fill_per_element + cal.cpu_batch_overhead
        )
        rpc_bw = cal.network_bandwidth * cal.network_rpc_efficiency
        load = bytes_out / cal.cpu_load_copy_bw + bytes_out / rpc_bw

        return CpuStepLatencies(
            extract_read=extract_read,
            extract_decode=extract_decode,
            bucketize=bucketize,
            sigridhash=sigridhash,
            log=log,
            format_conversion=format_conversion,
            else_time=else_time,
            load=load,
        )

    # -- throughput ---------------------------------------------------------------

    def core_throughput(self, spec: ModelSpec, batch_size: Optional[int] = None) -> float:
        """Steady-state samples/s of one dedicated (disaggregated) core."""
        counts = OpCounts.expected_for(spec, batch_size)
        latency = self.batch_latency(spec, counts).total
        return counts.rows / latency

    def disagg_throughput(self, spec: ModelSpec, num_cores: int) -> float:
        """Aggregate samples/s of ``num_cores`` disaggregated workers.

        Disaggregated scaling is linear (Section V-B: preprocessing is
        embarrassingly parallel and throughput-bound).
        """
        if num_cores < 0:
            raise ValueError("num_cores must be non-negative")
        return num_cores * self.core_throughput(spec)

    def colocated_throughput(self, spec: ModelSpec, num_cores: int) -> float:
        """Aggregate samples/s of ``num_cores`` workers sharing the training
        node (Fig. 3): de-rated by co-location interference and mildly
        sub-linear in the worker count."""
        if num_cores <= 0:
            return 0.0
        single = self.core_throughput(spec) * self.cal.colocation_factor
        return single * num_cores**self.cal.colocation_scaling_exponent

    def cores_required(self, spec: ModelSpec, target_throughput: float) -> int:
        """Disaggregated cores needed to sustain ``target_throughput``."""
        if target_throughput <= 0:
            return 0
        return math.ceil(target_throughput / self.core_throughput(spec))

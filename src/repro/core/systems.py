"""System design points: the paper's baseline and proposed architectures.

Each system binds a worker technology to a deployment shape and answers the
questions the evaluation asks of it: aggregate throughput at a worker count,
workers needed for a training job, preprocessing-side power, and CapEx —
the inputs to Figures 3, 4, 11, 14, 15, and 16.
"""

from __future__ import annotations

import abc

from repro.errors import ConfigurationError
from repro.features.specs import ModelSpec
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.hardware.cpu import CpuCoreModel
from repro.hardware.power import PowerModel
from repro.api.registry import register_system
from repro.core.accel_worker import GpuPoolWorker, PreStoU280Worker, U280PoolWorker
from repro.core.cpu_worker import CpuPreprocessingWorker
from repro.core.isp_worker import IspPreprocessingWorker
from repro.core.provision import ProvisioningPlan, provision
from repro.core.worker import PreprocessingWorker


class PreprocessingSystem(abc.ABC):
    """One deployment design point for RecSys data preprocessing."""

    name: str = "abstract"

    def __init__(self, spec: ModelSpec, calibration: Calibration = CALIBRATION) -> None:
        self.spec = spec
        self.cal = calibration
        self.power_model = PowerModel(calibration)

    # -- worker technology ---------------------------------------------------

    @abc.abstractmethod
    def make_worker(self) -> PreprocessingWorker:
        """Instantiate one worker of this system's technology."""

    def worker_throughput(self) -> float:
        """P: samples/s of one worker."""
        return self.make_worker().throughput()

    # -- scaling ------------------------------------------------------------------

    def aggregate_throughput(self, num_workers: int) -> float:
        """Samples/s of ``num_workers`` workers (linear by default)."""
        if num_workers < 0:
            raise ConfigurationError("num_workers must be non-negative")
        return num_workers * self.worker_throughput()

    def provision_for(self, num_gpus: int = 8) -> ProvisioningPlan:
        """Workers needed to feed ``num_gpus`` training GPUs (T/P)."""
        return provision(self.spec, self.worker_throughput(), num_gpus, self.cal)

    # -- cost/power ------------------------------------------------------------------

    @abc.abstractmethod
    def power(self, num_workers: int) -> float:
        """Preprocessing-side power at ``num_workers`` workers (watts)."""

    @abc.abstractmethod
    def capex(self, num_workers: int) -> float:
        """Preprocessing-side capital expenditure (dollars)."""


@register_system("Disagg")
class DisaggCpuSystem(PreprocessingSystem):
    """Baseline: disaggregated pool of CPU preprocessing servers."""

    name = "Disagg"

    def make_worker(self) -> PreprocessingWorker:
        return CpuPreprocessingWorker(self.spec, self.cal, remote_storage=True)

    def power(self, num_workers: int) -> float:
        return self.power_model.disagg_cpu_power(num_workers)

    def capex(self, num_workers: int) -> float:
        return num_workers * self.cal.cpu_core_price

    def nodes(self, num_workers: int) -> int:
        """Whole CPU servers hosting the workers."""
        return self.power_model.disagg_cpu_nodes(num_workers)


@register_system("Co-located", aliases=("Colocated",))
class CoLocatedCpuSystem(PreprocessingSystem):
    """CPU workers sharing the GPU training node (Figure 2(a))."""

    name = "Co-located"

    def __init__(
        self,
        spec: ModelSpec,
        calibration: Calibration = CALIBRATION,
        max_cores_per_gpu: int = 16,
    ) -> None:
        super().__init__(spec, calibration)
        self.max_cores_per_gpu = max_cores_per_gpu
        self._cpu_model = CpuCoreModel(calibration)

    def make_worker(self) -> PreprocessingWorker:
        return CpuPreprocessingWorker(self.spec, self.cal, remote_storage=True)

    def aggregate_throughput(self, num_workers: int) -> float:
        """Co-location interference makes scaling mildly sub-linear."""
        if num_workers < 0:
            raise ConfigurationError("num_workers must be non-negative")
        if num_workers > self.max_cores_per_gpu:
            raise ConfigurationError(
                f"co-located design caps at {self.max_cores_per_gpu} cores per GPU"
            )
        return self._cpu_model.colocated_throughput(self.spec, num_workers)

    def provision_for(self, num_gpus: int = 8) -> ProvisioningPlan:
        """Co-location cannot elastically allocate workers: the budget is
        fixed at ``max_cores_per_gpu``.  Raises when even the full budget
        cannot sustain the training demand (the Fig. 3 situation)."""
        from repro.training.gpu import GpuTrainingModel

        per_gpu_demand = GpuTrainingModel(self.cal).max_training_throughput(self.spec)
        for cores in range(1, self.max_cores_per_gpu + 1):
            supply = self._cpu_model.colocated_throughput(self.spec, cores)
            if supply >= per_gpu_demand:
                return ProvisioningPlan(
                    spec_name=self.spec.name,
                    training_throughput=per_gpu_demand * num_gpus,
                    worker_throughput=supply / cores,
                    num_workers=cores * num_gpus,
                )
        raise ConfigurationError(
            f"{self.spec.name}: {self.max_cores_per_gpu} co-located cores per GPU "
            f"supply only "
            f"{self._cpu_model.colocated_throughput(self.spec, self.max_cores_per_gpu):,.0f} "
            f"samples/s of the {per_gpu_demand:,.0f} demanded"
        )

    def power(self, num_workers: int) -> float:
        return num_workers * self.cal.cpu_core_power

    def capex(self, num_workers: int) -> float:
        return 0.0  # the host cores come with the training node


@register_system("PreSto", aliases=("PreSto (SmartSSD)",))
class PreStoSystem(PreprocessingSystem):
    """The proposal: SmartSSD ISP units inside the storage system."""

    name = "PreSto"

    def make_worker(self) -> PreprocessingWorker:
        return IspPreprocessingWorker(self.spec, calibration=self.cal)

    def power(self, num_workers: int, worst_case: bool = False) -> float:
        return self.power_model.presto_power(num_workers, worst_case=worst_case)

    def capex(self, num_workers: int) -> float:
        return (
            num_workers * self.cal.smartssd_price + self.cal.presto_host_share_price
        )


@register_system("A100")
class A100PoolSystem(PreprocessingSystem):
    """Disaggregated pool of A100 GPUs running NVTabular-style preprocessing."""

    name = "A100"

    def make_worker(self) -> PreprocessingWorker:
        return GpuPoolWorker(self.spec, self.cal)

    def power(self, num_workers: int) -> float:
        return self.power_model.accelerator_pool_power("a100", num_workers)

    def capex(self, num_workers: int) -> float:
        return num_workers * self.cal.a100_price + self.cal.presto_host_share_price


@register_system("U280")
class U280PoolSystem(PreprocessingSystem):
    """Disaggregated pool of discrete U280 FPGA preprocessors."""

    name = "U280"

    def make_worker(self) -> PreprocessingWorker:
        return U280PoolWorker(self.spec, self.cal)

    def power(self, num_workers: int) -> float:
        return self.power_model.accelerator_pool_power("u280", num_workers)

    def capex(self, num_workers: int) -> float:
        return num_workers * self.cal.u280_price + self.cal.presto_host_share_price


@register_system("PreSto (U280)", aliases=("PreSto-U280",))
class PreStoU280System(PreprocessingSystem):
    """A U280 integrated in the storage node ("PreSto (U280)")."""

    name = "PreSto (U280)"

    def make_worker(self) -> PreprocessingWorker:
        return PreStoU280Worker(self.spec, self.cal)

    def power(self, num_workers: int) -> float:
        return self.power_model.accelerator_pool_power("u280", num_workers)

    def capex(self, num_workers: int) -> float:
        return num_workers * self.cal.u280_price + self.cal.presto_host_share_price

"""Server-node configurations of the PoC prototype (Section V-B).

Three node types appear in the paper's testbed:

* the **storage node** — hosts the distributed storage devices (plain SSDs
  for the baseline, SmartSSDs for PreSto);
* **CPU nodes** — two-socket Xeon Gold 6242 servers pooled for
  disaggregated preprocessing (32 cores each);
* the **GPU training node** — an EPYC host with A100 GPUs.

Nodes carry their price/power characteristics for the TCO analysis.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Union

from repro.errors import ConfigurationError
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.storage.smartssd import SmartSsd
from repro.storage.ssd import SsdModel


@dataclass
class StorageNode:
    """The storage-system node: a set of SSD or SmartSSD devices."""

    name: str = "storage-node"
    devices: List[Union[SsdModel, SmartSsd]] = field(default_factory=list)
    calibration: Calibration = field(default=CALIBRATION, repr=False)

    def add_device(self, device: Union[SsdModel, SmartSsd]) -> None:
        """Attach one storage device."""
        self.devices.append(device)

    @property
    def smartssds(self) -> List[SmartSsd]:
        """ISP-capable devices on this node."""
        return [d for d in self.devices if isinstance(d, SmartSsd)]

    @property
    def plain_ssds(self) -> List[SsdModel]:
        """Conventional SSDs on this node."""
        return [d for d in self.devices if isinstance(d, SsdModel)]

    def device_for(self, key: str) -> Union[SsdModel, SmartSsd]:
        """The device holding object ``key``."""
        for device in self.devices:
            ssd = device.ssd if isinstance(device, SmartSsd) else device
            if ssd.has_object(key):
                return device
        raise ConfigurationError(f"no device on {self.name} holds {key!r}")


@dataclass
class CpuNode:
    """One disaggregated preprocessing server (2-socket Xeon 6242 class)."""

    name: str = "cpu-node"
    calibration: Calibration = field(default=CALIBRATION, repr=False)

    @property
    def num_cores(self) -> int:
        """Preprocessing worker slots on this node."""
        return self.calibration.cpu_cores_per_node

    @property
    def power(self) -> float:
        """Loaded node power draw (watts)."""
        return self.calibration.cpu_node_power

    @property
    def price(self) -> float:
        """Node CapEx (dollars)."""
        return self.calibration.cpu_node_price


@dataclass
class GpuNode:
    """The GPU training node (up to 8 A100s, DGX-class)."""

    name: str = "gpu-node"
    num_gpus: int = 8
    calibration: Calibration = field(default=CALIBRATION, repr=False)

    def __post_init__(self) -> None:
        if self.num_gpus <= 0:
            raise ConfigurationError("GpuNode needs at least one GPU")

    @property
    def colocated_cores_per_gpu(self) -> int:
        """Host cores available per GPU for co-located preprocessing
        (DGX A100: 128 cores / 8 GPUs = 16)."""
        return 16

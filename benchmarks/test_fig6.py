"""Benchmark: regenerate the paper's Fig6 via repro.experiments.fig6_utilization."""

from conftest import assert_claims, report

from repro.experiments import fig6_utilization


def test_fig6(benchmark):
    """Time the fig6 experiment and verify its paper claims."""
    result = benchmark(fig6_utilization.run)
    report(result)
    assert_claims(result)

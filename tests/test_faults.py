"""Tests for the deterministic fault-injection harness: plans, the
injector, every probe site's behavior, index durability/healing/compaction,
the watchdog, crash recovery, and the chaos matrix — all in-process."""

import json
import os
import threading
import time

import pytest

from repro.api import PreprocessJob
from repro.dataio.rowformat import RowFileReader, RowFileWriter
from repro.dataio.schema import TableSchema
from repro.errors import (
    ConfigurationError,
    FaultError,
    FormatError,
    JobTimeoutError,
    ServeError,
)
from repro.faults import (
    FAULT_POINTS,
    FaultInjector,
    FaultPlan,
    FaultRule,
    active_injector,
    fault_point,
    fault_stage,
    install,
    installed,
    uninstall,
)
from repro.faults.chaos import (
    check_report,
    deterministic_view,
    plan_for,
    run_chaos,
    run_episode,
)
from repro.serve import (
    BoundedJobQueue,
    JobLogIndex,
    JobRecord,
    PreprocessService,
    WorkerPool,
)

JOB = PreprocessJob(model="RM1", num_rows=256, num_shards=1)


def fast_runner(job, record_stage):
    record_stage("generate", "started", {})
    record_stage("generate", "completed", {"elapsed_s": 0.0, "rows": job.num_rows})
    return f"digest-{job.seed}"


@pytest.fixture(autouse=True)
def no_leaked_injector():
    """Every test starts and ends with probes disabled."""
    uninstall()
    yield
    uninstall()


# ---------------------------------------------------------------------------
# plans and rules
# ---------------------------------------------------------------------------


class TestFaultRule:
    def test_default_action_per_point(self):
        assert FaultRule("worker-crash").action == "crash"
        assert FaultRule("torn-write").action == "torn"
        assert FaultRule("disk-full").action == "enospc"

    def test_unknown_point_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault point"):
            FaultRule("no-such-point")

    def test_unknown_action_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown fault action"):
            FaultRule("worker-crash", action="explode")

    def test_rate_bounds(self):
        with pytest.raises(ConfigurationError, match="rate"):
            FaultRule("worker-crash", rate=1.5)
        with pytest.raises(ConfigurationError, match="rate"):
            FaultRule("worker-crash", rate=-0.1)

    def test_dict_round_trip(self):
        rule = FaultRule(
            "hung-stage", rate=0.5, key="job_id",
            match={"stage": "transform"}, delay_s=1.0, max_fires=3,
        )
        assert FaultRule.from_dict(rule.to_dict()) == rule

    def test_unknown_keys_rejected(self):
        with pytest.raises(ConfigurationError, match="unknown FaultRule keys"):
            FaultRule.from_dict({"point": "worker-crash", "bogus": 1})

    def test_match_filter(self):
        rule = FaultRule("hung-stage", match={"stage": "transform"})
        assert rule.matches({"stage": "transform", "seed": 1})
        assert not rule.matches({"stage": "extract"})
        assert not rule.matches({})


class TestFaultPlan:
    def test_json_round_trip(self, tmp_path):
        plan = FaultPlan(
            seed=11,
            rules=(FaultRule("worker-crash", rate=0.25),
                   FaultRule("torn-write", key="job_id")),
        )
        assert FaultPlan.from_json(plan.to_json()) == plan
        path = str(tmp_path / "plan.json")
        plan.save(path)
        assert FaultPlan.load(path) == plan

    def test_hash01_is_pure_and_uniform_ish(self):
        plan = FaultPlan(seed=3)
        values = [plan.hash01("worker-crash", f"job-{i}") for i in range(200)]
        assert values == [
            plan.hash01("worker-crash", f"job-{i}") for i in range(200)
        ]
        assert all(0.0 <= v < 1.0 for v in values)
        assert 40 < sum(v < 0.5 for v in values) < 160

    def test_seed_changes_decisions(self):
        a = FaultPlan(seed=1)
        b = FaultPlan(seed=2)
        assert [a.hash01("conn-drop", str(i)) for i in range(8)] != [
            b.hash01("conn-drop", str(i)) for i in range(8)
        ]

    def test_catalog_covers_default_actions(self):
        from repro.faults import DEFAULT_ACTIONS

        assert set(DEFAULT_ACTIONS) == set(FAULT_POINTS)


# ---------------------------------------------------------------------------
# the injector and the probes
# ---------------------------------------------------------------------------


class TestFaultInjector:
    def test_probes_are_noops_when_disabled(self):
        assert active_injector() is None
        assert fault_point("worker-crash", item="job-000001") is None
        fault_stage("transform", seed=1)  # must not raise

    def test_installed_scoping(self):
        injector = FaultInjector(FaultPlan(seed=0))
        with installed(injector) as active:
            assert active_injector() is active
        assert active_injector() is None

    def test_install_uninstall(self):
        injector = install(FaultInjector(FaultPlan(seed=0)))
        assert active_injector() is injector
        uninstall()
        assert active_injector() is None

    def test_error_action_raises_fault_error(self):
        plan = FaultPlan(seed=0, rules=(FaultRule("stage-error", rate=1.0),))
        with installed(FaultInjector(plan)):
            with pytest.raises(FaultError, match="injected fault"):
                fault_stage("transform", seed=1)

    def test_crash_action_raises_system_exit(self):
        plan = FaultPlan(seed=0, rules=(FaultRule("worker-crash", rate=1.0),))
        with installed(FaultInjector(plan)):
            with pytest.raises(SystemExit):
                fault_point("worker-crash", item="job-000001")

    def test_enospc_action_raises_oserror(self):
        import errno

        plan = FaultPlan(seed=0, rules=(FaultRule("disk-full", rate=1.0),))
        with installed(FaultInjector(plan)):
            with pytest.raises(OSError) as excinfo:
                fault_point("disk-full", job_id="job-000001")
        assert excinfo.value.errno == errno.ENOSPC

    def test_cooperative_action_returned_not_executed(self):
        plan = FaultPlan(seed=0, rules=(FaultRule("torn-write", rate=1.0),))
        with installed(FaultInjector(plan)):
            rule = fault_point("torn-write", job_id="job-000001")
        assert rule is not None and rule.action == "torn"

    def test_rate_keyed_firing_is_deterministic(self):
        plan = FaultPlan(seed=5, rules=(FaultRule("worker-crash", rate=0.5),))

        def fired_jobs():
            injector = FaultInjector(plan)
            hit = []
            with installed(injector):
                for i in range(20):
                    try:
                        fault_point("worker-crash", item=f"job-{i:06d}")
                    except SystemExit:
                        hit.append(i)
            return hit

        first = fired_jobs()
        assert first == fired_jobs()
        assert 0 < len(first) < 20  # rate 0.5 fires some, not all

    def test_max_fires_caps_firing(self):
        plan = FaultPlan(
            seed=0,
            rules=(FaultRule("stage-error", rate=1.0, max_fires=2),),
        )
        injector = FaultInjector(plan)
        with installed(injector):
            for _ in range(2):
                with pytest.raises(FaultError):
                    fault_point("stage-error", seed=_)
            assert fault_point("stage-error", seed=99) is None
        assert injector.fire_counts() == {"stage-error:error": 2}

    def test_max_fires_is_per_rule(self):
        # two rules on one point each get their own max_fires budget:
        # the first rule's fires must not consume the second's cap
        plan = FaultPlan(
            seed=0,
            rules=(
                FaultRule("stage-error", action="delay", rate=1.0,
                          delay_s=0.0, max_fires=1),
                FaultRule("stage-error", action="error", rate=1.0,
                          max_fires=1),
            ),
        )
        injector = FaultInjector(plan)
        with installed(injector):
            fault_point("stage-error", seed=1)  # rule 1: delay, no raise
            with pytest.raises(FaultError):
                fault_point("stage-error", seed=2)  # rule 2's own budget
            assert fault_point("stage-error", seed=3) is None  # both spent
        assert injector.fire_counts() == {
            "stage-error:delay": 1, "stage-error:error": 1,
        }

    def test_match_restricts_stage(self):
        plan = FaultPlan(
            seed=0,
            rules=(FaultRule("stage-error", rate=1.0,
                             match={"stage": "transform"}),),
        )
        with installed(FaultInjector(plan)):
            fault_stage("extract", seed=1)  # no match, no fire
            with pytest.raises(FaultError):
                fault_stage("transform", seed=1)

    def test_hang_released_by_uninstall(self):
        plan = FaultPlan(
            seed=0, rules=(FaultRule("hung-stage", rate=1.0, delay_s=30.0),)
        )
        injector = install(FaultInjector(plan))
        released = threading.Event()

        def hangs():
            fault_stage("transform", seed=1)
            released.set()

        thread = threading.Thread(target=hangs, daemon=True)
        thread.start()
        time.sleep(0.05)
        assert not released.is_set()
        uninstall()  # releases the injected hang
        assert released.wait(timeout=5.0)
        assert injector.fire_counts() == {"hung-stage:hang": 1}

    def test_fired_audit_trail(self):
        plan = FaultPlan(seed=0, rules=(FaultRule("queue-stall", rate=1.0,
                                                  delay_s=0.0),))
        injector = FaultInjector(plan)
        with installed(injector):
            fault_point("queue-stall", item="job-000001")
        assert injector.fired() == [
            {"point": "queue-stall", "action": "delay", "key": "job-000001"}
        ]


# ---------------------------------------------------------------------------
# index durability, healing, compaction
# ---------------------------------------------------------------------------


class TestIndexDurability:
    def _record(self, n=1, state="queued"):
        record = JobRecord(job_id=f"job-{n:06d}", job=JOB, submitted_at=1.0)
        if state == "completed":
            record = record.mark_completed(2.0, "digest")
        return record

    def test_fsync_append_round_trips(self, tmp_path):
        index = JobLogIndex(str(tmp_path / "jobs.jsonl"), fsync=True)
        index.append(self._record(1))
        index.append(self._record(1, "completed"))
        [loaded] = index.load()
        assert loaded.state == "completed"

    def test_torn_write_heals_on_next_append(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        index = JobLogIndex(path)
        index.append(self._record(1))
        plan = FaultPlan(seed=0, rules=(FaultRule("torn-write", rate=1.0),))
        with installed(FaultInjector(plan)):
            with pytest.raises(FaultError, match="torn"):
                index.append(self._record(2))
        # the torn half-line is on disk but load() tolerates a torn tail
        with open(path) as handle:
            assert not handle.read().endswith("\n")
        assert [r.job_id for r in index.load()] == ["job-000001"]
        # the next (clean) append truncates the torn tail first
        index.append(self._record(3))
        loaded = {r.job_id for r in index.load()}
        assert loaded == {"job-000001", "job-000003"}
        with open(path) as handle:
            lines = handle.readlines()
        assert all(line.endswith("\n") for line in lines)
        assert len(lines) == 2

    def test_torn_tail_healed_across_restart(self, tmp_path):
        # a daemon SIGKILL'd mid-append leaves a newline-less half-line; a
        # fresh index on the same path (the restarted daemon) must truncate
        # it before its first append, never concatenate onto it
        path = str(tmp_path / "jobs.jsonl")
        index = JobLogIndex(path)
        index.append(self._record(1))
        with open(path, "a") as handle:
            handle.write('{"job_id": "job-0000')  # torn: no newline
        restarted = JobLogIndex(path)
        restarted.append(self._record(2))
        loaded = {r.job_id for r in restarted.load()}
        assert loaded == {"job-000001", "job-000002"}
        with open(path) as handle:
            lines = handle.readlines()
        assert len(lines) == 2
        assert all(line.endswith("\n") for line in lines)

    def test_whole_file_torn_healed_across_restart(self, tmp_path):
        # the degenerate case: the very first append was torn, so the
        # whole file is one half-line — heal truncates back to empty
        path = str(tmp_path / "jobs.jsonl")
        with open(path, "w") as handle:
            handle.write('{"job_id"')
        restarted = JobLogIndex(path)
        restarted.append(self._record(1))
        assert [r.job_id for r in restarted.load()] == ["job-000001"]

    def test_disk_full_append_raises_before_writing(self, tmp_path):
        path = str(tmp_path / "jobs.jsonl")
        index = JobLogIndex(path)
        plan = FaultPlan(seed=0, rules=(FaultRule("disk-full", rate=1.0),))
        with installed(FaultInjector(plan)):
            with pytest.raises(OSError):
                index.append(self._record(1))
        assert not os.path.exists(path)

    def test_compact_keeps_latest_record_per_job(self, tmp_path):
        index = JobLogIndex(str(tmp_path / "jobs.jsonl"))
        for n in (1, 2, 3):
            record = self._record(n)
            index.append(record)
            index.append(record.mark_running(2.0))
            index.append(record.mark_running(2.0).mark_completed(3.0, f"d{n}"))
        kept = index.compact()
        assert kept == 3
        assert index.compactions == 1
        with open(index.path) as handle:
            assert len(handle.readlines()) == 3
        loaded = {r.job_id: r for r in index.load()}
        assert loaded["job-000002"].digest == "d2"

    def test_maybe_compact_thresholds(self, tmp_path):
        index = JobLogIndex(
            str(tmp_path / "jobs.jsonl"),
            compact_min_lines=4, compact_ratio=2.0,
        )
        record = self._record(1)
        index.append(record)
        assert not index.maybe_compact()  # 1 line < max(4, 2*1)
        for _ in range(5):
            index.append(record.mark_running(2.0))
        assert index.maybe_compact()  # 6 lines >= max(4, 2)
        with open(index.path) as handle:
            assert len(handle.readlines()) == 1

    def test_knob_validation(self, tmp_path):
        with pytest.raises(ServeError):
            JobLogIndex(str(tmp_path / "i"), compact_min_lines=0)
        with pytest.raises(ServeError):
            JobLogIndex(str(tmp_path / "i"), compact_ratio=0.5)


# ---------------------------------------------------------------------------
# service resilience: spool faults, watchdog, recovery
# ---------------------------------------------------------------------------


class TestServiceFaults:
    def test_service_survives_torn_index_writes(self, tmp_path):
        plan = FaultPlan(seed=0, rules=(FaultRule("torn-write", rate=1.0),))
        with installed(FaultInjector(plan)):
            with PreprocessService(
                spool_dir=str(tmp_path), num_workers=1, runner=fast_runner
            ) as service:
                record = service.submit(JOB)
                final = service.wait(record.job_id, timeout=30.0)
        assert final.state == "completed"
        assert final.digest == "digest-0"
        assert service.index_errors  # every append was torn, all audited

    def test_watchdog_fails_hung_job_and_replaces_worker(self, tmp_path):
        plan = FaultPlan(
            seed=0, rules=(FaultRule("hung-stage", rate=1.0, delay_s=60.0,
                                     key="seed", match={"seed": 1}),)
        )
        with installed(FaultInjector(plan)):
            with PreprocessService(
                spool_dir=str(tmp_path),
                num_workers=2,
                job_timeout_s=0.3,
                backoff_s=0.01,
            ) as service:
                hung = service.submit(
                    PreprocessJob(model="RM1", num_rows=128, seed=1)
                )
                fine = service.submit(
                    PreprocessJob(model="RM1", num_rows=128, seed=2)
                )
                hung_final = service.wait(hung.job_id, timeout=30.0)
                fine_final = service.wait(fine.job_id, timeout=30.0)
                deadline = time.monotonic() + 5.0
                while (service.pool.alive_workers() != 2
                       and time.monotonic() < deadline):
                    time.sleep(0.02)
                assert service.pool.alive_workers() == 2
        assert hung_final.state == "failed"
        assert "deadline" in hung_final.error
        assert any(e.stage == "deadline" for e in hung_final.stages)
        assert fine_final.state == "completed"
        assert service.pool.jobs_timed_out == 1
        assert service.pool.workers_replaced >= 1

    def test_pool_rejects_bad_timeout(self):
        queue = BoundedJobQueue()
        with pytest.raises(ServeError):
            WorkerPool(queue, lambda i, a: i, job_timeout_s=0)

    def test_timeout_error_is_typed(self):
        assert issubclass(JobTimeoutError, ServeError)

    def test_recovery_marks_and_requeues_interrupted(self, tmp_path):
        index = JobLogIndex(str(tmp_path / "jobs.jsonl"))
        queued = JobRecord(job_id="job-000001", job=JOB, submitted_at=1.0)
        index.append(queued)
        index.append(
            JobRecord(job_id="job-000002", job=JOB, submitted_at=1.0)
            .mark_running(2.0)
        )
        index.append(
            JobRecord(job_id="job-000003", job=JOB, submitted_at=1.0)
            .mark_completed(3.0, "done-digest")
        )
        service = PreprocessService(
            spool_dir=str(tmp_path), num_workers=1, runner=fast_runner
        )
        service.start()
        assert service.recovered_jobs == ["job-000001", "job-000002"]
        for job_id in service.recovered_jobs:
            assert service.wait(job_id, timeout=30.0).state == "completed"
        # terminal history is visible but untouched
        assert service.status("job-000003").digest == "done-digest"
        # new ids never collide with recovered ones
        record = service.submit(JOB)
        assert record.job_id == "job-000004"
        service.wait(record.job_id, timeout=30.0)
        service.stop(drain=True)

    def test_recovery_backlog_exceeding_queue_capacity(self, tmp_path):
        index = JobLogIndex(str(tmp_path / "jobs.jsonl"))
        for n in range(1, 9):
            index.append(
                JobRecord(job_id=f"job-{n:06d}", job=JOB, submitted_at=1.0)
            )
        service = PreprocessService(
            spool_dir=str(tmp_path),
            queue_capacity=2,  # backlog of 8 must not deadlock startup
            num_workers=2,
            runner=fast_runner,
        )
        service.start()
        assert len(service.recovered_jobs) == 8
        for job_id in service.recovered_jobs:
            assert service.wait(job_id, timeout=30.0).state == "completed"
        service.stop(drain=True)

    def test_recovery_requeues_in_numeric_order(self, tmp_path):
        # job-10 must follow job-2: submission order, not lexicographic
        index = JobLogIndex(str(tmp_path / "jobs.jsonl"))
        for n in (10, 2, 11, 1):
            index.append(
                JobRecord(job_id=f"job-{n}", job=JOB, submitted_at=float(n))
            )
        service = PreprocessService(
            spool_dir=str(tmp_path), num_workers=1, runner=fast_runner
        )
        service.start()
        assert service.recovered_jobs == ["job-1", "job-2", "job-10", "job-11"]
        for job_id in service.recovered_jobs:
            assert service.wait(job_id, timeout=30.0).state == "completed"
        service.stop(drain=True)

    def test_late_success_after_timeout_reports_once(self):
        # a worker finishing after the watchdog abandoned it must not
        # issue a second terminal report: the claim token goes to exactly
        # one of them (here the watchdog's JobTimeoutError wins)
        queue = BoundedJobQueue(capacity=4)
        release = threading.Event()
        reports = []

        def runner(item, attempt):
            release.wait(10.0)
            return "late-result"

        pool = WorkerPool(
            queue,
            runner,
            num_workers=1,
            max_retries=0,
            job_timeout_s=0.1,
            watchdog_interval_s=0.02,
            on_done=lambda item, result, error: reports.append(
                (item, result, error)
            ),
        )
        pool.start()
        queue.put("job-000001")
        deadline = time.monotonic() + 10.0
        while not reports and time.monotonic() < deadline:
            time.sleep(0.01)
        release.set()  # the stuck worker now finishes — and goes nowhere
        time.sleep(0.2)
        assert len(reports) == 1
        item, result, error = reports[0]
        assert item == "job-000001" and result is None
        assert isinstance(error, JobTimeoutError)
        pool.stop(timeout=10.0)

    def test_recovery_can_be_disabled(self, tmp_path):
        index = JobLogIndex(str(tmp_path / "jobs.jsonl"))
        index.append(JobRecord(job_id="job-000001", job=JOB, submitted_at=1.0))
        service = PreprocessService(
            spool_dir=str(tmp_path), runner=fast_runner, recover=False
        )
        service.start()
        assert service.recovered_jobs == []
        assert service.jobs() == []
        service.stop(drain=True)

    def test_interrupted_job_is_cancellable(self, tmp_path):
        index = JobLogIndex(str(tmp_path / "jobs.jsonl"))
        index.append(JobRecord(job_id="job-000001", job=JOB, submitted_at=1.0))
        slow = threading.Event()

        def gated_runner(job, record_stage):
            slow.wait(10.0)
            return "digest"

        service = PreprocessService(
            spool_dir=str(tmp_path), num_workers=1, runner=gated_runner
        )
        # cancel before start(): the record is interrupted, still queued
        service._recover_on_start = True
        service.start()
        # the single worker may have grabbed it already; cancel is then a no-op
        outcome = service.cancel("job-000001")
        slow.set()
        final = service.wait("job-000001", timeout=30.0)
        assert final.state in ("cancelled", "completed")
        assert outcome == (final.state == "cancelled")
        service.stop(drain=True)


# ---------------------------------------------------------------------------
# remaining probe sites
# ---------------------------------------------------------------------------


class TestProbeSites:
    def test_queue_stall_delays_put(self):
        plan = FaultPlan(
            seed=0, rules=(FaultRule("queue-stall", rate=1.0, delay_s=0.2),)
        )
        queue = BoundedJobQueue(capacity=4)
        with installed(FaultInjector(plan)):
            start = time.perf_counter()
            queue.put("job-000001")
            assert time.perf_counter() - start >= 0.15
        assert queue.get() == "job-000001"

    def test_row_corrupt_is_caught_loudly(self):
        import numpy as np

        schema = TableSchema.with_counts(1, 1)
        data = {
            "label": np.array([1, 0], dtype=np.int8),
            schema.dense_names[0]: np.array([1.0, 2.0], dtype=np.float32),
            schema.sparse_names[0]: (
                np.array([1, 1], dtype=np.int32),
                np.array([7, 8], dtype=np.int64),
            ),
        }
        writer = RowFileWriter(schema)
        clean = writer.write(data)
        plan = FaultPlan(seed=0, rules=(FaultRule("row-corrupt", rate=1.0),))
        with installed(FaultInjector(plan)):
            corrupt = writer.write(data)
        assert corrupt != clean
        RowFileReader(clean)  # clean bytes parse fine
        with pytest.raises(FormatError):
            RowFileReader(corrupt)

    def test_conn_drop_surfaces_as_protocol_error(self, tmp_path):
        from repro.errors import ProtocolError
        from repro.serve import ServiceClient, ServiceServer

        plan = FaultPlan(
            seed=0, rules=(FaultRule("conn-drop", rate=1.0, max_fires=1),)
        )
        with installed(FaultInjector(plan)):
            service = PreprocessService(
                spool_dir=str(tmp_path), num_workers=1, runner=fast_runner
            )
            with ServiceServer(service) as server:
                client = ServiceClient(host=server.host, port=server.port)
                with pytest.raises(ProtocolError):
                    client.ping()  # first reply dropped
                assert client.ping()  # max_fires exhausted; daemon intact


# ---------------------------------------------------------------------------
# the chaos matrix
# ---------------------------------------------------------------------------


class TestChaos:
    def test_plan_for_rejects_unknown_fault(self):
        with pytest.raises(ConfigurationError, match="unknown fault class"):
            plan_for("meteor-strike", seed=0, job_timeout_s=1.0)

    def test_single_episode_invariants(self, tmp_path):
        report = run_episode(
            "worker-crash",
            seed=7,
            spool_dir=str(tmp_path / "ep"),
            num_jobs=4,
            rows=128,
            job_timeout_s=5.0,
            runner=fast_runner,
            verify_serial=False,
        )
        assert report["violations"] == []
        assert report["jobs"] == 4
        assert sum(report["states"].values()) == 4

    def test_matrix_is_deterministic_per_seed(self):
        kwargs = dict(
            num_jobs=4, rows=128, job_timeout_s=2.0,
            runner=fast_runner, verify_serial=False,
        )
        first = deterministic_view(
            run_chaos(("worker-crash", "torn-write"), seed=7, **kwargs)
        )
        second = deterministic_view(
            run_chaos(("worker-crash", "torn-write"), seed=7, **kwargs)
        )
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )
        assert first["ok"]

    def test_check_report_raises_on_violations(self):
        from repro.errors import ChaosError

        report = {
            "episodes": [
                {"fault": "torn-write", "violations": ["digest mismatch"]}
            ]
        }
        with pytest.raises(ChaosError, match="digest mismatch"):
            check_report(report)

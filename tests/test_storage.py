"""Tests for SSD/SmartSSD devices, nodes, and the distributed cluster."""

import pytest

from repro.dataio.partition import RowPartitioner
from repro.errors import CapacityError, ConfigurationError
from repro.features.specs import get_model
from repro.features.synthetic import generate_raw_table
from repro.storage.cluster import DistributedStorage, PlacementPolicy
from repro.storage.node import CpuNode, GpuNode, StorageNode
from repro.storage.smartssd import SmartSsd
from repro.storage.ssd import SsdModel


class TestSsdModel:
    def test_object_store_roundtrip(self):
        ssd = SsdModel("d0")
        ssd.write_object("k", b"hello")
        assert ssd.read_object("k") == b"hello"
        assert ssd.num_objects == 1
        assert ssd.bytes_stored == 5
        assert ssd.bytes_read == 5

    def test_duplicate_key_rejected(self):
        ssd = SsdModel("d0")
        ssd.write_object("k", b"x")
        with pytest.raises(ConfigurationError, match="already"):
            ssd.write_object("k", b"y")

    def test_missing_key(self):
        with pytest.raises(ConfigurationError, match="no object"):
            SsdModel("d0").read_object("nope")

    def test_capacity_enforced(self):
        ssd = SsdModel("d0", capacity_bytes=10)
        with pytest.raises(CapacityError, match="full"):
            ssd.write_object("k", b"x" * 11)

    def test_read_time(self):
        ssd = SsdModel("d0", read_bw=1e9, read_latency=1e-4)
        assert ssd.read_time(1e9) == pytest.approx(1.0 + 1e-4)
        with pytest.raises(ConfigurationError):
            ssd.read_time(-1)

    def test_silent_read_skips_counters(self):
        ssd = SsdModel("d0")
        ssd.write_object("k", b"abc")
        ssd.read_object_silent("k")
        assert ssd.bytes_read == 0


class TestSmartSsd:
    def test_composition(self):
        dev = SmartSsd("isp0")
        assert dev.ssd.name == "isp0/ssd"
        assert dev.tdp <= 25.0
        assert dev.active_power <= dev.tdp

    def test_p2p_faster_than_network_wire(self):
        dev = SmartSsd("isp0")
        from repro.hardware.calibration import CALIBRATION

        bytes_ = 50e6
        p2p = dev.p2p_time(bytes_)
        network = bytes_ / CALIBRATION.network_bandwidth
        assert p2p < network

    def test_throughput_and_latency(self):
        dev = SmartSsd("isp0")
        spec = get_model("RM5")
        assert dev.throughput(spec) > 0
        assert dev.batch_latency(spec) > 0
        assert dev.batches_preprocessed == 1


class TestNodes:
    def test_cpu_node(self):
        node = CpuNode()
        assert node.num_cores == 32
        assert node.power == 350.0
        assert node.price == 12_000.0

    def test_gpu_node(self):
        node = GpuNode(num_gpus=8)
        assert node.colocated_cores_per_gpu == 16
        with pytest.raises(ConfigurationError):
            GpuNode(num_gpus=0)

    def test_storage_node_device_kinds(self):
        node = StorageNode()
        node.add_device(SsdModel("plain"))
        node.add_device(SmartSsd("smart"))
        assert len(node.plain_ssds) == 1
        assert len(node.smartssds) == 1

    def test_storage_node_device_for(self):
        node = StorageNode()
        ssd = SsdModel("plain")
        ssd.write_object("k", b"x")
        node.add_device(ssd)
        assert node.device_for("k") is ssd
        with pytest.raises(ConfigurationError):
            node.device_for("missing")


class TestDistributedStorage:
    @pytest.fixture(scope="class")
    def stored(self):
        spec = get_model("RM1")
        data = generate_raw_table(spec, 96)
        parts = RowPartitioner(spec.schema(), rows_per_partition=32).partition_all(data)
        devices = [SmartSsd(f"isp{i}") for i in range(2)]
        storage = DistributedStorage(devices)
        storage.store_partitions("criteo", parts)
        return storage, parts, devices

    def test_round_robin_placement(self, stored):
        storage, parts, devices = stored
        assert storage.device_of("criteo", 0) is devices[0]
        assert storage.device_of("criteo", 1) is devices[1]
        assert storage.device_of("criteo", 2) is devices[0]

    def test_read_back_bytes(self, stored):
        storage, parts, _ = stored
        assert storage.read_partition("criteo", 1) == parts[1].file_bytes

    def test_partitions_on_device(self, stored):
        storage, parts, _ = stored
        keys = storage.partitions_on(0, "criteo")
        assert len(keys) == 2  # partitions 0 and 2

    def test_counters(self, stored):
        storage, parts, _ = stored
        assert storage.num_partitions == 3
        assert storage.total_bytes() == sum(p.size for p in parts)

    def test_missing_partition(self, stored):
        storage, _, _ = stored
        with pytest.raises(ConfigurationError, match="not stored"):
            storage.device_of("criteo", 99)

    def test_bad_device_index(self, stored):
        storage, _, _ = stored
        with pytest.raises(ConfigurationError):
            storage.partitions_on(5)

    def test_empty_cluster_rejected(self):
        with pytest.raises(ConfigurationError):
            DistributedStorage([])

    def test_fill_first_policy(self):
        spec = get_model("RM1")
        data = generate_raw_table(spec, 64)
        parts = RowPartitioner(spec.schema(), rows_per_partition=32).partition_all(data)
        storage = DistributedStorage(
            [SsdModel("a"), SsdModel("b")], policy=PlacementPolicy.FILL_FIRST
        )
        storage.store_partitions("d", parts)
        assert len(storage.partitions_on(0)) == 2
        assert len(storage.partitions_on(1)) == 0

"""repro.api — the declarative front door for every experiment.

Five pieces:

* :class:`SystemRegistry` / :func:`register_system` — a catalog of system
  design points; user systems plug in next to the paper's six;
* :class:`Scenario` — one frozen, validated, dict-round-trippable record
  describing model x system x deployment; ``.run()`` simulates the full
  pipeline and returns a uniform :class:`RunResult`;
* :class:`Sweep` — a grid of scenarios executed serially or through the
  fault-tolerant batch tier (:class:`BatchRunner`) with deterministic
  result ordering, per-task retries/timeouts, and journaled resume;
* :class:`PreprocessJob` — the data-plane scenario: one declarative
  sharded preprocessing run through :class:`repro.exec.ShardExecutor`,
  with a content digest proving parallel == serial output;
* the streaming-service surface — :class:`JobRecord` / :class:`StageEvent`
  lifecycle records and the :data:`SOURCE_REGISTRY` /
  :func:`register_source` job-source plugin catalog behind ``repro serve``
  (the service itself lives in :mod:`repro.serve`);
* :class:`ExperimentRegistry` / :func:`register_experiment` /
  :class:`ExperimentRun` / :class:`RunStore` — the paper-experiment
  catalog: every figure/table/ablation module registers its runner, runs
  are frozen dict-round-trippable records, results follow one protocol
  (``columns``/``rows``/``claims``/``render``/``to_dict``), an on-disk
  cache replays repeated invocations, and :func:`run_experiments` fans
  out across a process pool with deterministic ordering.
"""

from repro.api.registry import (
    REGISTRY,
    SystemRegistry,
    available_systems,
    get_system,
    register_system,
)
from repro.api.experiment import (
    EXPERIMENT_KINDS,
    EXPERIMENT_REGISTRY,
    ExperimentParam,
    ExperimentRegistry,
    ExperimentResult,
    ExperimentRun,
    ExperimentSpec,
    RunStore,
    available_experiments,
    get_experiment,
    register_experiment,
    run_experiments,
)
from repro.api.preprocess import (
    PreprocessJob,
    PreprocessRunResult,
    minibatch_digest,
)
from repro.api.result import RunResult
from repro.api.scenario import PROVISION_MODES, Scenario, calibration_overrides
from repro.api.sweep import Sweep
from repro.batch import (
    FAILURE_MODES,
    OUTCOME_STATES,
    BatchJournal,
    BatchOutcome,
    BatchPolicy,
    BatchRunner,
)

# the serve-layer job/record types and source plugins are part of the API
# surface, but repro.serve builds on the modules above (its records hold
# PreprocessJobs), so they re-export lazily to keep the import acyclic
_SERVE_EXPORTS = {
    "JobLogIndex": "repro.serve.records",
    "JobRecord": "repro.serve.records",
    "StageEvent": "repro.serve.records",
    "SOURCE_REGISTRY": "repro.serve.sources",
    "JobSource": "repro.serve.sources",
    "SourceRegistry": "repro.serve.sources",
    "register_source": "repro.serve.sources",
}


def __getattr__(name):
    if name in _SERVE_EXPORTS:
        import importlib

        return getattr(importlib.import_module(_SERVE_EXPORTS[name]), name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__():
    return sorted(set(globals()) | set(_SERVE_EXPORTS))

__all__ = [
    "EXPERIMENT_KINDS",
    "EXPERIMENT_REGISTRY",
    "ExperimentParam",
    "ExperimentRegistry",
    "ExperimentResult",
    "ExperimentRun",
    "ExperimentSpec",
    "RunStore",
    "available_experiments",
    "get_experiment",
    "register_experiment",
    "run_experiments",
    "REGISTRY",
    "SystemRegistry",
    "available_systems",
    "get_system",
    "register_system",
    "RunResult",
    "PROVISION_MODES",
    "Scenario",
    "calibration_overrides",
    "Sweep",
    "PreprocessJob",
    "PreprocessRunResult",
    "minibatch_digest",
    "BatchJournal",
    "BatchOutcome",
    "BatchPolicy",
    "BatchRunner",
    "FAILURE_MODES",
    "OUTCOME_STATES",
    "JobLogIndex",
    "JobRecord",
    "StageEvent",
    "SOURCE_REGISTRY",
    "JobSource",
    "SourceRegistry",
    "register_source",
]

"""The streaming preprocessing service, end to end and in-process.

The batch path (`examples/full_data_path.py`) preprocesses one table and
exits; this example runs preprocessing as the *service* the deployment
story needs: an always-on daemon that producers stream work into and
training jobs poll results out of.

1. **start the service** — bounded queue, persistent worker pool, a spool
   directory holding the JSONL job index;
2. **submit directly** — a client submits a job and tails its lifecycle
   (queued -> running -> per-stage telemetry -> completed);
3. **attach a source** — a synthetic traffic source feeds a stream of jobs
   through the watcher, capacity-aware;
4. **verify the guarantee** — every digest is byte-identical to the serial
   batch path for the same spec;
5. **shut down** — drain everything, then audit the on-disk job index.

Run:  python examples/streaming_preprocess.py
"""

import tempfile

from repro.api import PreprocessJob
from repro.serve import (
    JobLogIndex,
    PreprocessService,
    SyntheticJobSource,
)

MODEL = "RM1"
ROWS = 2048
SHARDS = 2


def main() -> None:
    spool = tempfile.mkdtemp(prefix="repro-serve-example-")

    # 1. start the service -------------------------------------------------
    service = PreprocessService(
        spool_dir=spool,
        queue_capacity=8,
        num_workers=2,
        poll_interval=0.05,
    )
    service.start()
    print(f"service up: spool {spool}, "
          f"{service.pool.num_workers} workers, "
          f"queue {service.queue.capacity}/{service.queue.policy}")

    # 2. submit one job and watch its lifecycle ----------------------------
    job = PreprocessJob(model=MODEL, num_rows=ROWS, num_shards=SHARDS)
    record = service.submit(job)
    print(f"\nsubmitted {record.job_id} ({job.label}); streaming transitions:")
    for snapshot in service.watch(record.job_id, timeout=120.0):
        stage = snapshot.stages[-1].stage if snapshot.stages else "-"
        print(f"  {snapshot.job_id}  {snapshot.state:9s}  "
              f"stages recorded: {len(snapshot.stages):2d}  (last: {stage})")
    final = service.status(record.job_id)
    print(f"completed with digest {final.digest[:20]}... "
          f"after {final.attempts} attempt(s)")
    for event in final.stages:
        elapsed = f"{event.elapsed_s * 1e3:7.1f} ms" if event.elapsed_s else " " * 10
        print(f"    {event.stage:10s} {event.status:9s} {elapsed}")

    # 3. attach a synthetic traffic source ---------------------------------
    source = SyntheticJobSource(
        model=MODEL, num_rows=ROWS, num_shards=SHARDS, count=4, seed=100
    )
    service.attach_source(source)
    print(f"\nattached {source.name}: {source.count} jobs of {ROWS} rows")
    while len(service.jobs(state="completed")) < 1 + source.count:
        service.wait(service.jobs()[-1].job_id, timeout=120.0)
    print(f"stream drained: {service.counts()}")

    # 4. the guarantee: service digests == serial batch digests ------------
    print("\nverifying digests against the serial batch path:")
    for done in service.jobs(state="completed"):
        serial = done.job.run(parallel=False).digest
        matches = "ok" if serial == done.digest else "MISMATCH"
        print(f"  {done.job_id}  seed={done.job.seed:3d}  "
              f"{done.digest[:16]}...  {matches}")
        assert serial == done.digest

    # 5. drain and audit the on-disk index ---------------------------------
    service.stop(drain=True, timeout=120.0)
    index = JobLogIndex(f"{spool}/jobs.jsonl")
    print(f"\nservice stopped; {spool}/jobs.jsonl holds the full history:")
    for entry in index.load():
        print(f"  {entry.job_id}  {entry.state:9s}  source={entry.source}")


if __name__ == "__main__":
    main()

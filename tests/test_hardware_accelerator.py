"""Tests for the PreSto accelerator timing model."""

import pytest

from repro.features.specs import all_models, get_model
from repro.hardware.accelerator import AcceleratorModel
from repro.hardware.cpu import CpuCoreModel


@pytest.fixture(scope="module")
def accel():
    return AcceleratorModel()


class TestStages:
    def test_all_stages_positive(self, accel):
        stages = accel.batch_stages(get_model("RM5"))
        for name, value in stages.as_dict().items():
            assert value > 0, name

    def test_latency_is_sum_of_path(self, accel):
        stages = accel.batch_stages(get_model("RM2"))
        expected = (
            stages.ingress
            + stages.decode
            + stages.bucketize
            + stages.sigridhash
            + stages.log
            + stages.format_conversion
            + stages.load
            + stages.host
        )
        assert stages.latency == pytest.approx(expected)

    def test_bottleneck_is_max_stage(self, accel):
        stages = accel.batch_stages(get_model("RM5"))
        assert stages.bottleneck == max(
            stages.ingress,
            stages.decode,
            stages.transform_time,
            stages.format_conversion,
            stages.load,
        )

    def test_extract_includes_half_host(self, accel):
        stages = accel.batch_stages(get_model("RM5"))
        assert stages.extract == pytest.approx(
            stages.ingress + stages.decode + 0.5 * stages.host
        )
        assert stages.else_time == pytest.approx(0.5 * stages.host)

    def test_decode_is_the_rm5_bottleneck(self, accel):
        """Section VI-A: decoding is the least parallelizable stage."""
        stages = accel.batch_stages(get_model("RM5"))
        assert stages.bottleneck == pytest.approx(stages.decode)


class TestSpeedAndScale:
    def test_throughput_exceeds_serial_rate(self, accel):
        """Pipelining: device throughput beats batch/latency."""
        spec = get_model("RM5")
        serial = spec.batch_size / accel.batch_latency(spec)
        assert accel.device_throughput(spec) > 1.5 * serial

    def test_transform_much_faster_than_cpu(self, accel):
        """The offloaded ops see large per-op gains from the parallel units."""
        spec = get_model("RM5")
        cpu = CpuCoreModel().batch_latency(spec)
        stages = accel.batch_stages(spec)
        assert cpu.sigridhash / stages.sigridhash > 30
        assert cpu.log / stages.log > 20
        assert cpu.bucketize / stages.bucketize > 50

    def test_unit_scale_speeds_compute_stages(self):
        base = AcceleratorModel(unit_scale=1.0)
        doubled = AcceleratorModel(unit_scale=2.0)
        spec = get_model("RM5")
        assert doubled.batch_stages(spec).sigridhash == pytest.approx(
            base.batch_stages(spec).sigridhash / 2
        )
        assert doubled.batch_stages(spec).decode == pytest.approx(
            base.batch_stages(spec).decode / 2
        )

    def test_unit_scale_does_not_change_ingress(self):
        base = AcceleratorModel(unit_scale=1.0)
        doubled = AcceleratorModel(unit_scale=2.0)
        spec = get_model("RM5")
        assert doubled.batch_stages(spec).ingress == pytest.approx(
            base.batch_stages(spec).ingress
        )

    def test_custom_links(self):
        slow = AcceleratorModel(ingress_bw=1e9, egress_bw=1e9)
        fast = AcceleratorModel(ingress_bw=1e10, egress_bw=1e10)
        spec = get_model("RM3")
        assert slow.batch_stages(spec).ingress > fast.batch_stages(spec).ingress
        assert slow.batch_stages(spec).load > fast.batch_stages(spec).load

    def test_invalid_unit_scale(self):
        with pytest.raises(ValueError):
            AcceleratorModel(unit_scale=0.0)


class TestPerOpTimes:
    def test_op_times_include_invocation(self, accel):
        spec = get_model("RM5")
        stages = accel.batch_stages(spec)
        assert accel.op_time(spec, "sigridhash") > stages.sigridhash

    def test_unknown_op_rejected(self, accel):
        with pytest.raises(ValueError, match="unknown transform op"):
            accel.op_time(get_model("RM1"), "resize")

    def test_op_time_scales_with_features(self, accel):
        spec = get_model("RM5")
        doubled = spec.scaled(2)
        assert accel.op_time(doubled, "log") > accel.op_time(spec, "log")


class TestEndToEndShape:
    def test_speedup_band_across_models(self, accel):
        """End-to-end single-worker speedups should sit in the paper's
        5-12x band with production models near the top."""
        cpu = CpuCoreModel()
        speedups = {}
        for spec in all_models():
            speedups[spec.name] = (
                cpu.batch_latency(spec).total / accel.batch_latency(spec)
            )
        assert 4.0 < speedups["RM1"] < 8.0
        assert 9.0 < speedups["RM5"] < 12.5
        assert speedups["RM5"] > speedups["RM2"]

"""Bring your own dataset: define a custom model spec and evaluate PreSto.

The paper's Table I covers Criteo and four Meta-like synthetics, but a
downstream user will have their own feature mix.  This example defines a
custom RecSys configuration, runs the full functional pipeline on generated
data, and asks the performance models the questions that matter when
deciding whether in-storage preprocessing pays off for *this* workload:

* where does single-worker preprocessing time go on CPUs?
* what speedup does the PreSto accelerator deliver?
* how many CPU cores vs SmartSSDs does one 8-GPU node need?

Run:  python examples/custom_dataset.py
"""

from repro import CpuPreprocessingWorker, IspPreprocessingWorker, ModelSpec
from repro.core.systems import DisaggCpuSystem, PreStoSystem
from repro.core.worker import BREAKDOWN_STEPS
from repro.features.specs import MLPSpec
from repro.features.synthetic import SyntheticTableGenerator
from repro.ops.pipeline import PreprocessingPipeline
from repro.experiments.common import format_table
from repro.units import pretty_time

#: A mid-sized production model: wider than Criteo, narrower than RM5.
CUSTOM = ModelSpec(
    name="ShopFeed",
    num_dense=128,
    num_sparse=24,
    avg_sparse_length=12,
    num_generated_sparse=16,
    bucket_size=2048,
    bottom_mlp=MLPSpec((256, 128)),
    top_mlp=MLPSpec((512, 256, 1)),
    num_tables=40,  # 24 hashed + 16 bucketized
    avg_embeddings_per_table=2_000_000,
)


def main() -> None:
    spec = CUSTOM
    print(f"Custom model {spec.name!r}: {spec.num_dense} dense, "
          f"{spec.num_sparse} sparse (avg len {spec.avg_sparse_length}), "
          f"{spec.num_generated_sparse} generated, bucket {spec.bucket_size}")

    # functional sanity: generate data and run the real pipeline
    generator = SyntheticTableGenerator(spec, seed=1)
    pipeline = PreprocessingPipeline(spec)
    batch, counts = pipeline.run(generator.generate(512))
    batch.validate_index_range(pipeline.table_sizes)
    print(f"\nFunctional check: 512 rows -> dense {batch.dense.shape}, "
          f"{batch.sparse.num_keys} embedding-index features, "
          f"{counts.transform_elements} transformed elements — OK")

    # single-worker breakdown: CPU vs PreSto
    cpu = CpuPreprocessingWorker(spec)
    isp = IspPreprocessingWorker(spec)
    cpu_steps = cpu.batch_breakdown()
    isp_steps = isp.batch_breakdown()
    rows = [
        (step, 1e3 * cpu_steps[step], 1e3 * isp_steps[step])
        for step in BREAKDOWN_STEPS
    ]
    rows.append(("TOTAL", 1e3 * cpu.batch_latency(), 1e3 * isp.batch_latency()))
    print()
    print(format_table(
        ["step", "CPU core (ms)", "SmartSSD (ms)"],
        rows,
        title=f"Per-mini-batch latency breakdown ({spec.batch_size} samples)",
    ))
    print(f"\nPreSto end-to-end speedup: "
          f"{cpu.batch_latency() / isp.batch_latency():.1f}x "
          f"(CPU batch takes {pretty_time(cpu.batch_latency())})")

    # provisioning for one 8-GPU node
    disagg_plan = DisaggCpuSystem(spec).provision_for(8)
    presto_plan = PreStoSystem(spec).provision_for(8)
    print(f"\nTo sustain one 8-GPU node "
          f"({disagg_plan.training_throughput:,.0f} samples/s):")
    print(f"  Disagg : {disagg_plan.num_workers} CPU cores")
    print(f"  PreSto : {presto_plan.num_workers} SmartSSDs")


if __name__ == "__main__":
    main()

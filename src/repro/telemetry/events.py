"""The unified timing-event schema — run → task → stage, one record shape.

Three subsystems already measure themselves: the batch tier journals one
terminal line per task (:class:`~repro.batch.journal.BatchJournal`), the
serve tier persists per-stage :class:`~repro.serve.records.StageEvent`
telemetry through its :class:`~repro.serve.records.JobLogIndex`, and
``repro bench`` writes per-kernel timings to ``BENCH_kernels.json``.
Each speaks its own dialect.  This module flattens all three into one
frozen, dict-round-trippable :class:`TimingEvent`:

* ``source`` — which subsystem measured it (``batch``/``serve``/``bench``);
* ``run_id`` — the run the event belongs to (journal run id, spool name,
  bench mode);
* ``task`` — the unit of work: an experiment label (``fig11``), a job's
  content label (``RM1 x8192/4``), or a bench op (``varint_encode``);
* ``stage`` — where inside the task: the batch tier's whole-task
  ``"task"`` stage, a pipeline stage (``extract``/``transform``), the
  serve tier's whole-job ``"job"`` rollup, or a bench variant;
* ``elapsed_s``/``attempts``/``outcome`` — the measurement itself, plus
  auxiliary ``metrics`` (``ns_per_element``, ``mb_per_s``, ...);
* ``cached`` — the timing is a replay stamp, not a measurement (a batch
  result prefilled from the RunStore or the journal).  Trend summaries
  skip cached events so a cache hit can never masquerade as a 1000x
  speedup.

The extractors (`events_from_batch_journal`, `events_from_job_index`,
`events_from_bench_report`) are read-only: they parse the artifacts the
subsystems already write — no subsystem grows a telemetry dependency.
"""

from __future__ import annotations

import dataclasses
import json
import os
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple, Union

from repro.errors import TelemetryError

#: every subsystem that can emit timing events
EVENT_SOURCES = ("batch", "serve", "bench", "fleet")

#: every outcome a timing event can carry.  ``ok`` timings feed trend
#: comparison; the rest are kept for attribution (a task that flipped
#: from ok to failed should be visible, not silently absent).
EVENT_OUTCOMES = ("ok", "failed", "timeout", "interrupted", "cancelled",
                  "skipped")

#: the batch tier times whole tasks, not stages — this is its stage name
TASK_STAGE = "task"
#: the serve tier's whole-job rollup stage (submit -> terminal)
JOB_STAGE = "job"

#: serve job/stage statuses -> event outcomes
_SERVE_OUTCOMES = {
    "completed": "ok",
    "failed": "failed",
    "cancelled": "cancelled",
    "interrupted": "interrupted",
    "skipped": "skipped",
}


@dataclass(frozen=True)
class TimingEvent:
    """One structured timing measurement (see module docstring)."""

    source: str
    run_id: str
    task: str
    stage: str
    outcome: str
    elapsed_s: Optional[float] = None
    attempts: int = 1
    cached: bool = False
    at: Optional[float] = None
    metrics: Mapping[str, float] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.source not in EVENT_SOURCES:
            raise TelemetryError(
                f"event source must be one of {EVENT_SOURCES}, "
                f"got {self.source!r}"
            )
        for name in ("run_id", "task", "stage"):
            value = getattr(self, name)
            if not isinstance(value, str) or not value.strip():
                raise TelemetryError(
                    f"event {name} must be a non-empty string, got {value!r}"
                )
        if self.outcome not in EVENT_OUTCOMES:
            raise TelemetryError(
                f"event outcome must be one of {EVENT_OUTCOMES}, "
                f"got {self.outcome!r}"
            )
        if self.elapsed_s is not None:
            if (
                not isinstance(self.elapsed_s, (int, float))
                or isinstance(self.elapsed_s, bool)
                or self.elapsed_s < 0
            ):
                raise TelemetryError(
                    f"event elapsed_s must be a non-negative number or None, "
                    f"got {self.elapsed_s!r}"
                )
            object.__setattr__(self, "elapsed_s", float(self.elapsed_s))
        if not isinstance(self.attempts, int) or self.attempts < 0:
            raise TelemetryError(
                f"event attempts must be a non-negative int, "
                f"got {self.attempts!r}"
            )
        metrics = dict(self.metrics)
        for name, value in metrics.items():
            if not isinstance(name, str) or not name.strip():
                raise TelemetryError(
                    f"metric names must be non-empty strings, got {name!r}"
                )
            if not isinstance(value, (int, float)) or isinstance(value, bool):
                raise TelemetryError(
                    f"metric {name!r} must be a number, got {value!r}"
                )
        object.__setattr__(self, "metrics", metrics)

    @property
    def key(self) -> str:
        """The comparable series this event contributes to."""
        return f"{self.source}/{self.task}/{self.stage}"

    def metric_values(self) -> Dict[str, float]:
        """Every comparable scalar: ``elapsed_s`` (when timed) + metrics."""
        values: Dict[str, float] = {}
        if self.elapsed_s is not None:
            values["elapsed_s"] = self.elapsed_s
        values.update(self.metrics)
        return values

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "run_id": self.run_id,
            "task": self.task,
            "stage": self.stage,
            "outcome": self.outcome,
            "elapsed_s": self.elapsed_s,
            "attempts": self.attempts,
            "cached": self.cached,
            "at": self.at,
            "metrics": dict(self.metrics),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TimingEvent":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise TelemetryError(
                f"unknown TimingEvent keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(data))


# ---------------------------------------------------------------------------
# extractors
# ---------------------------------------------------------------------------


def events_from_batch_journal(
    path: str, run_id: Optional[str] = None
) -> List[TimingEvent]:
    """Timing events from one batch run journal (one per terminal task line).

    ``task`` is the journaled human label (``fig11``) when present — older
    journals written before labels were stamped fall back to the content
    key.  Cache-prefilled completions (``attempts == 0`` or an explicit
    ``cached`` stamp) come back with ``cached=True`` so trend summaries
    can skip them.
    """
    from repro.batch.journal import BatchJournal

    journal = BatchJournal(path)
    state = journal.load()
    resolved = (
        state.run_id or run_id
        or os.path.splitext(os.path.basename(path))[0]
    )
    events = []
    for index in sorted(state.outcomes):
        line = state.outcomes[index]
        attempts = int(line.get("attempts") or 0)
        elapsed = line.get("elapsed_s")
        events.append(TimingEvent(
            source="batch",
            run_id=resolved,
            task=str(line.get("label") or line.get("key")),
            stage=TASK_STAGE,
            outcome=str(line.get("status")),
            elapsed_s=float(elapsed) if elapsed is not None else None,
            attempts=attempts,
            cached=bool(line.get("cached")) or attempts == 0,
            at=line.get("at"),
        ))
    return events


def events_from_job_index(
    path: str, run_id: Optional[str] = None
) -> List[TimingEvent]:
    """Timing events from a serve-tier job index (jobs.jsonl).

    Each job contributes one event per recorded pipeline stage
    (``generate``/``partition``/``extract``/``transform``/...) plus one
    whole-job ``"job"`` rollup (submit -> terminal wall time).  ``task``
    is the job's *content* label (model x rows/shards), not its job id —
    job ids are unique per run and would never line up across runs.
    Non-terminal records (a live daemon's queued/running jobs) are
    skipped; they have nothing to time yet.
    """
    from repro.serve.records import JobLogIndex

    if not os.path.exists(path):
        raise TelemetryError(f"serve job index {path} does not exist")
    resolved = run_id or os.path.basename(
        os.path.dirname(os.path.abspath(path))
    ) or "serve"
    events = []
    for record in JobLogIndex(path).load():
        outcome = _SERVE_OUTCOMES.get(record.state)
        if outcome is None:
            continue  # queued/running: still in flight
        task = record.job.label
        for stage_event in record.stages:
            stage_outcome = _SERVE_OUTCOMES.get(
                stage_event.status,
                "ok" if stage_event.status == "completed" else None,
            )
            if stage_outcome is None:
                continue  # "started" markers carry no timing
            events.append(TimingEvent(
                source="serve",
                run_id=resolved,
                task=task,
                stage=stage_event.stage,
                outcome=stage_outcome,
                elapsed_s=stage_event.elapsed_s,
                attempts=record.attempts,
                at=stage_event.at,
                metrics=dict(stage_event.metrics),
            ))
        job_elapsed = None
        if record.completed_at is not None and record.started_at is not None:
            job_elapsed = max(0.0, record.completed_at - record.started_at)
        events.append(TimingEvent(
            source="serve",
            run_id=resolved,
            task=task,
            stage=JOB_STAGE,
            outcome=outcome,
            elapsed_s=job_elapsed,
            attempts=record.attempts,
            at=record.completed_at,
        ))
    return events


def events_from_bench_report(
    report: Union[str, Mapping[str, Any]], run_id: Optional[str] = None
) -> List[TimingEvent]:
    """Timing events from a ``repro bench`` JSON report (path or payload).

    One event per (op, variant) result; ``ns_per_element`` — the
    machine-portable trajectory metric — and ``mb_per_s`` ride in
    ``metrics`` next to the raw best-of-reps ``elapsed_s``.
    """
    if isinstance(report, str):
        try:
            with open(report) as handle:
                report = json.load(handle)
        except (OSError, ValueError) as exc:
            raise TelemetryError(f"cannot read bench report {report}: {exc}")
    if not isinstance(report, Mapping) or "results" not in report:
        raise TelemetryError(
            "bench report must be a mapping with a 'results' list "
            "(the BENCH_kernels.json shape)"
        )
    resolved = run_id or (
        "bench-quick" if report.get("quick") else "bench-full"
    )
    events = []
    for entry in report["results"]:
        try:
            metrics = {"ns_per_element": float(entry["ns_per_element"]),
                       "mb_per_s": float(entry["mb_per_s"])}
            if "speedup_vs_scalar" in entry:
                metrics["speedup_vs_scalar"] = float(
                    entry["speedup_vs_scalar"]
                )
            events.append(TimingEvent(
                source="bench",
                run_id=resolved,
                task=str(entry["op"]),
                stage=str(entry["variant"]),
                outcome="ok",
                elapsed_s=float(entry["elapsed_s"]),
                metrics=metrics,
            ))
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(
                f"malformed bench result entry {entry!r}: {exc}"
            )
    return events


def events_from_fleet_result(
    result: Union[str, Mapping[str, Any], Any], run_id: Optional[str] = None
) -> List[TimingEvent]:
    """Timing events from a fleet run (a FleetResult, its dict, or a JSON
    file holding one).

    Delegates to :meth:`~repro.fleet.result.FleetResult.telemetry_events`:
    per-job ``queue``/``run`` events keyed by model, per-pool ``capacity``
    events carrying the utilization/energy/cost metrics, and one
    whole-run ``fleet/run`` rollup.
    """
    from repro.fleet.result import FleetResult

    if isinstance(result, str):
        try:
            with open(result) as handle:
                result = json.load(handle)
        except (OSError, ValueError) as exc:
            raise TelemetryError(f"cannot read fleet result {result}: {exc}")
    if isinstance(result, Mapping):
        try:
            result = FleetResult.from_dict(result)
        except (KeyError, TypeError, ValueError) as exc:
            raise TelemetryError(f"malformed fleet result payload: {exc}")
    if not isinstance(result, FleetResult):
        raise TelemetryError(
            f"expected a FleetResult, its dict, or a JSON path, "
            f"got {result!r}"
        )
    resolved = run_id or f"fleet-{result.trace_kind}-{result.trace_seed}"
    return result.telemetry_events(resolved)


def collect_events(
    batch_journals: Tuple[str, ...] = (),
    serve_indexes: Tuple[str, ...] = (),
    bench_reports: Tuple[str, ...] = (),
    fleet_results: Tuple[str, ...] = (),
    run_id: Optional[str] = None,
) -> List[TimingEvent]:
    """Extract and concatenate events from any mix of the four sources."""
    events: List[TimingEvent] = []
    for path in batch_journals:
        events.extend(events_from_batch_journal(path, run_id=run_id))
    for path in serve_indexes:
        events.extend(events_from_job_index(path, run_id=run_id))
    for path in bench_reports:
        events.extend(events_from_bench_report(path, run_id=run_id))
    for path in fleet_results:
        events.extend(events_from_fleet_result(path, run_id=run_id))
    return events

"""Table II — FPGA resource utilization of the PreSto accelerator.

Renders per-unit LUT/REG/BRAM/URAM/DSP utilization of the default SmartSSD
configuration and checks it against the paper's synthesized numbers, plus a
feasibility check that the 2x U280 configuration fits its larger part.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    register_experiment,
)
from repro.hardware.fpga import (
    RESOURCE_KINDS,
    SMARTSSD_FPGA,
    U280_FPGA,
    UNIT_ORDER,
    fits,
    resource_table,
)

#: Table II verbatim (percent).
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "Decode": {"LUT": 18.84, "REG": 8.49, "BRAM": 25.08, "URAM": 0.0, "DSP": 0.0},
    "Bucketize": {"LUT": 7.88, "REG": 4.28, "BRAM": 6.19, "URAM": 27.59, "DSP": 0.0},
    "SigridHash": {"LUT": 23.11, "REG": 12.47, "BRAM": 11.89, "URAM": 0.0, "DSP": 19.19},
    "Log": {"LUT": 4.18, "REG": 2.79, "BRAM": 4.89, "URAM": 0.0, "DSP": 10.62},
    "Total": {"LUT": 54.02, "REG": 28.03, "BRAM": 48.05, "URAM": 27.59, "DSP": 29.81},
}


@dataclass(frozen=True)
class Table2Result(ExperimentResult):
    """Measured utilization plus the U280 feasibility check."""

    utilization: Dict[str, Dict[str, float]]
    u280_fits_2x: bool

    def max_abs_error(self) -> float:
        """Largest |measured - paper| percentage point across all cells."""
        worst = 0.0
        for unit, row in PAPER_TABLE2.items():
            for kind in RESOURCE_KINDS:
                worst = max(worst, abs(self.utilization[unit][kind] - row[kind]))
        return worst

    def claims(self) -> List[PaperClaim]:
        return [
            PaperClaim("max cell error (pp)", 0.0, self.max_abs_error(), 1.0),
            PaperClaim("2x design fits U280", 1.0, 1.0 if self.u280_fits_2x else 0.0, 0.0),
        ]

    def rows(self) -> List[Tuple]:
        out = []
        for unit in UNIT_ORDER + ["Total"]:
            out.append(
                (unit,)
                + tuple(self.utilization[unit][kind] for kind in RESOURCE_KINDS)
            )
        return out

    def columns(self) -> List[str]:
        return ["unit"] + [f"{k} (%)" for k in RESOURCE_KINDS]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title=(
                f"Table II: PreSto resource utilization on {SMARTSSD_FPGA.name} "
                f"@ {SMARTSSD_FPGA.clock_hz / 1e6:.0f} MHz"
            ),
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("table2", title="Table II", kind="table", order=60)
def run() -> Table2Result:
    """Regenerate Table II."""
    return Table2Result(
        utilization=resource_table(SMARTSSD_FPGA),
        u280_fits_2x=fits(U280_FPGA, lane_scale=2.0),
    )

"""Sensitivity — datacenter link speed.

PreSto's advantage partly rests on *not* moving raw data over the network.
This sweep re-evaluates the single-worker speedup (Fig. 12's metric) and the
PreSto device's bottleneck stage across link generations (1/10/25/40/100
GbE).  Expected shape: faster links narrow Disagg's Extract(Read) cost only
slightly (it was never the bottleneck — Fig. 5), so the speedup stays within
a tight band; at very fast links PreSto's own egress (Load) stops being a
pipeline stage worth worrying about and its throughput saturates at the
decoder.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Tuple

from repro.core.cpu_worker import CpuPreprocessingWorker
from repro.core.isp_worker import IspPreprocessingWorker
from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    register_experiment,
)
from repro.features.specs import get_model
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.units import gbps

LINK_GBPS = (1.0, 10.0, 25.0, 40.0, 100.0)


@dataclass(frozen=True)
class NetworkSweepResult(ExperimentResult):
    """Per-link-speed speedups and PreSto throughput."""

    model: str
    links: Tuple[float, ...]
    speedup: Tuple[float, ...]
    presto_throughput: Tuple[float, ...]
    disagg_read_share: Tuple[float, ...]

    def claims(self) -> List[PaperClaim]:
        at_10 = self.speedup[self.links.index(10.0)]
        spread = max(self.speedup[1:]) / min(self.speedup[1:])  # 10 GbE up
        return [
            PaperClaim("speedup at 10 GbE (the paper's testbed)", 10.9, at_10, 0.10),
            PaperClaim(
                "speedup stable across >=10 GbE links (spread)", 1.0, spread, 0.25
            ),
            PaperClaim(
                "PreSto throughput saturates (100 GbE / 25 GbE)",
                1.0,
                self.presto_throughput[-1] / self.presto_throughput[2],
                0.10,
            ),
        ]

    def rows(self) -> List[Tuple]:
        return [
            (
                f"{int(link)} GbE",
                s,
                tput / 1e3,
                100.0 * share,
            )
            for link, s, tput, share in zip(
                self.links, self.speedup, self.presto_throughput, self.disagg_read_share
            )
        ]

    def columns(self) -> List[str]:
        return [
            "link",
            "PreSto speedup (x)",
            "PreSto k-samples/s",
            "Disagg Extract(Read) share (%)",
        ]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title=f"Sensitivity (link speed, {self.model})",
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("abl-network", title="Sensitivity: link speed", kind="ablation", order=230)
def run(model: str = "RM5", calibration: Calibration = CALIBRATION) -> NetworkSweepResult:
    """Sweep the network bandwidth."""
    spec = get_model(model)
    speedups: List[float] = []
    throughput: List[float] = []
    read_share: List[float] = []
    for link in LINK_GBPS:
        cal = dataclasses.replace(calibration, network_bandwidth=gbps(link))
        cpu = CpuPreprocessingWorker(spec, cal)
        isp = IspPreprocessingWorker(spec, calibration=cal)
        cpu_breakdown = cpu.batch_breakdown()
        cpu_total = sum(cpu_breakdown.values())
        speedups.append(cpu_total / isp.batch_latency())
        throughput.append(isp.throughput())
        read_share.append(cpu_breakdown["extract_read"] / cpu_total)
    return NetworkSweepResult(
        model=spec.name,
        links=LINK_GBPS,
        speedup=tuple(speedups),
        presto_throughput=tuple(throughput),
        disagg_read_share=tuple(read_share),
    )

"""Declarative system registry — the catalog behind the Scenario API.

Every preprocessing design point (the paper's six, plus any user-defined
ones) registers itself under a stable name with the global
:data:`REGISTRY`, usually via the :func:`register_system` class decorator::

    @register_system("PreSto-Gen2")
    class PreStoGen2System(PreStoSystem):
        ...

Scenarios, sweeps, the CLI, and the experiment harness all construct
systems by name through the registry, so a new design point plugs into
every entry point at once without touching core code.

This module deliberately imports nothing from :mod:`repro.core` at module
level (the built-in systems import *us* to register themselves); the
built-ins are pulled in lazily on first lookup.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, Tuple, TYPE_CHECKING

from repro.errors import ConfigurationError
from repro.hardware.calibration import CALIBRATION, Calibration

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.systems import PreprocessingSystem
    from repro.features.specs import ModelSpec

#: a factory builds one system instance for a model spec and calibration
SystemFactory = Callable[..., "PreprocessingSystem"]


class SystemRegistry:
    """Name -> factory catalog of preprocessing system design points."""

    def __init__(self) -> None:
        self._factories: Dict[str, SystemFactory] = {}
        self._aliases: Dict[str, str] = {}

    # -- registration ------------------------------------------------------

    def register(
        self,
        name: str,
        factory: SystemFactory,
        aliases: Tuple[str, ...] = (),
        replace: bool = False,
    ) -> SystemFactory:
        """Register ``factory`` under ``name`` (and optional aliases).

        Re-registering a taken name raises unless ``replace=True``.
        """
        if not isinstance(name, str) or not name.strip():
            raise ConfigurationError("system name must be a non-empty string")
        if not callable(factory):
            raise ConfigurationError(f"factory for {name!r} must be callable")
        taken = set(self._factories) | set(self._aliases)
        for label in (name, *aliases):
            if label in taken and not replace:
                raise ConfigurationError(
                    f"system {label!r} is already registered; "
                    "pass replace=True to override"
                )
        self._factories[name] = factory
        for alias in aliases:
            self._aliases[alias] = name
        return factory

    def unregister(self, name: str) -> None:
        """Remove a design point (mainly for tests and notebooks)."""
        canonical = self.canonical(name)
        del self._factories[canonical]
        self._aliases = {a: n for a, n in self._aliases.items() if n != canonical}

    # -- lookup ------------------------------------------------------------

    def _ensure_builtins(self) -> None:
        # Importing the module runs its @register_system decorators.
        import repro.core.systems  # noqa: F401

    def canonical(self, name: str) -> str:
        """Resolve ``name`` (exact, alias, or case-insensitive) to the
        registered canonical name; raise listing the known names."""
        self._ensure_builtins()
        if name in self._factories:
            return name
        if name in self._aliases:
            return self._aliases[name]
        if isinstance(name, str):
            folded = name.casefold()
            for label in (*self._factories, *self._aliases):
                if label.casefold() == folded:
                    return self._aliases.get(label, label)
        raise ConfigurationError(
            f"unknown system {name!r}; registered systems: "
            + ", ".join(self.names())
        )

    def get(self, name: str) -> SystemFactory:
        """The factory registered under ``name``."""
        return self._factories[self.canonical(name)]

    def create(
        self,
        name: str,
        spec: "ModelSpec",
        calibration: Calibration = CALIBRATION,
    ) -> "PreprocessingSystem":
        """Instantiate the named system for ``spec``."""
        return self.get(name)(spec, calibration)

    def names(self) -> Tuple[str, ...]:
        """Canonical names in registration order (built-ins first)."""
        self._ensure_builtins()
        return tuple(self._factories)

    # -- mapping-ish conveniences -----------------------------------------

    def __contains__(self, name: object) -> bool:
        try:
            self.canonical(name)  # type: ignore[arg-type]
        except ConfigurationError:
            return False
        return True

    def __iter__(self) -> Iterator[str]:
        return iter(self.names())

    def __len__(self) -> int:
        return len(self.names())


#: the process-wide registry every entry point consults
REGISTRY = SystemRegistry()


def register_system(
    name: str, *, aliases: Tuple[str, ...] = (), replace: bool = False
) -> Callable[[SystemFactory], SystemFactory]:
    """Class decorator registering a design point with :data:`REGISTRY`."""

    def decorate(factory: SystemFactory) -> SystemFactory:
        return REGISTRY.register(name, factory, aliases=aliases, replace=replace)

    return decorate


def available_systems() -> Tuple[str, ...]:
    """Canonical names of every registered system design point."""
    return REGISTRY.names()


def get_system(
    name: str, spec: "ModelSpec", calibration: Calibration = CALIBRATION
) -> "PreprocessingSystem":
    """Construct one registered system by name."""
    return REGISTRY.create(name, spec, calibration)

"""Calibrated model constants — the single source of every tunable.

The paper evaluates a real PoC prototype (Xeon Gold 6242 preprocessing
nodes, one SmartSSD, an A100 training node on 10 GbE) and scales it out with
an analytical model (Section V-B).  This module plays the role of those PoC
*measurements*: each constant below is anchored to a number the paper
reports, and the derived figures are expected to land on the paper's shapes:

* Fig. 3  — 15x core scaling, <20% GPU utilization at 16 co-located cores;
* Fig. 4  — 367 CPU cores to feed 8 A100s on RM5;
* Fig. 5  — Bucketize+SigridHash+Log ~= 79% of CPU preprocessing time,
            RM5 ~14x RM1 end-to-end;
* Fig. 12 — 9.6x average / 11.6x max PreSto speedup, Extract ~40.8% of
            PreSto's time;
* Fig. 11 — one SmartSSD beats Disagg(32), Disagg(64) modestly ahead;
* Fig. 14 — at most 9 ISP units per 8-GPU node;
* Fig. 15 — 11.3x energy-efficiency, 4.3x cost-efficiency on average;
* Fig. 16 — ~2.5x over A100 preprocessing, ~5% behind a disaggregated U280.

CPU per-element costs are *effective* costs of the TorchArrow/Velox pipeline
(including framework dispatch and materialization overhead), not hand-tuned
SIMD kernels — that gap is precisely the paper's motivation for
domain-specific acceleration.  Kernel-level microarchitecture numbers used
only by the Figure 6 characterization live in :mod:`repro.hardware.cache`.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.features.specs import ModelSpec
from repro.units import GBPS, GB_PER_S, MHZ


@dataclass(frozen=True)
class Calibration:
    """All tunable constants of the performance models."""

    # --- CPU-centric preprocessing (per core, Xeon Gold 6242 class) -------
    #: effective Log normalization cost per dense element (seconds)
    cpu_log_per_element: float = 140e-9
    #: effective SigridHash cost per sparse id (seconds)
    cpu_hash_per_element: float = 190e-9
    #: Bucketize: fixed per-element cost plus per-binary-search-step cost
    cpu_bucketize_base: float = 60e-9
    cpu_bucketize_per_step: float = 70e-9
    #: columnar decode cost per encoded byte (~200 MB/s effective)
    cpu_decode_per_byte: float = 5e-9
    #: format conversion cost per packed element
    cpu_format_per_element: float = 10e-9
    #: missing-value fill cost per touched element (part of "Else")
    cpu_fill_per_element: float = 6e-9
    #: fixed per-mini-batch worker overhead: batch setup, dispatch ("Else")
    cpu_batch_overhead: float = 15e-3
    #: memcpy of the train-ready tensors into the RPC buffer (bytes/s)
    cpu_load_copy_bw: float = 2.0 * GB_PER_S

    # --- network (10 GbE, PyTorch RPC) -------------------------------------
    #: raw link bandwidth
    network_bandwidth: float = 10.0 * GBPS
    #: achievable fraction for bulk raw-data reads (sequential, streamed)
    network_read_efficiency: float = 1.0
    #: achievable fraction for tensor RPC responses (serialization framing)
    network_rpc_efficiency: float = 0.72
    #: fixed latency per RPC round trip
    rpc_request_overhead: float = 0.5e-3
    #: read amplification of remote raw fetches: row-group framing, footer
    #: metadata, and label/offset chunks fetched alongside the wanted columns
    storage_protocol_overhead: float = 1.35

    # --- storage devices -----------------------------------------------------
    #: plain datacenter NVMe SSD sequential read
    ssd_read_bw: float = 3.0 * GB_PER_S
    ssd_read_latency: float = 80e-6
    #: SmartSSD P2P (SSD -> FPGA DRAM over the internal PCIe switch)
    p2p_bandwidth: float = 2.0 * GB_PER_S

    # --- PreSto accelerator (SmartSSD FPGA @ 223 MHz, Table II) -----------
    accelerator_clock_hz: float = 223.0 * MHZ
    #: hardwired Parquet decoder aggregate throughput (bytes/s); decoding is
    #: the least parallelizable stage (Section VI-A)
    accel_decode_bw: float = 0.94 * GB_PER_S
    #: parallel processing elements per unit (elements/cycle aggregate)
    accel_hash_lanes: int = 2
    accel_log_lanes: int = 1
    accel_bucketize_lanes: int = 1
    accel_format_lanes: int = 1
    #: host-side orchestration per batch (XRT kernel management + RPC); half
    #: is accounted to Extract (issuing P2P reads), half to Else
    accel_host_overhead: float = 25e-3

    # --- co-located preprocessing (Fig. 3) ---------------------------------
    #: throughput de-rating when preprocessing shares the training node
    colocation_factor: float = 0.55
    #: multi-worker scaling exponent: eff(n) = n**exp (15x at 16 cores)
    colocation_scaling_exponent: float = 0.977

    # --- A100 training model (per GPU) ---------------------------------------
    gpu_peak_flops: float = 312e12  # fp16 tensor core peak
    gpu_flops_efficiency: float = 0.35
    gpu_gather_bw: float = 317e9  # effective HBM bw for random embedding rows
    gpu_iteration_overhead: float = 8e-3  # framework/optimizer host work
    gpu_kernel_overhead_per_table: float = 80e-6  # fwd+bwd+optimizer kernels
    #: optimizer traffic multiplier on embedding bytes (grad + momentum)
    gpu_embedding_traffic_multiplier: float = 4.0

    # --- alternative preprocessing accelerators (Fig. 16) -----------------
    #: NVTabular on A100: per-kernel overhead dominates the many tiny
    #: per-column kernels (Section VI-C: "challenging for the GPU to
    #: amortize the cost of CUDA kernel launches")
    gpu_preproc_kernel_overhead: float = 85e-6
    gpu_preproc_element_rate: float = 100e9  # elements/s once launched
    gpu_preproc_pcie_bw: float = 20e9
    #: U280 accelerator = PreSto units scaled by its larger fabric
    u280_unit_scale: float = 2.0
    u280_pcie_bw: float = 6.0 * GB_PER_S

    # --- power (watts) -------------------------------------------------------
    #: measured draw of one SmartSSD during preprocessing (TDP is 25 W)
    smartssd_active_power: float = 16.0
    smartssd_tdp: float = 25.0
    #: per-core share of a loaded 2-socket Xeon 6242 node (350 W / 32 cores)
    cpu_node_power: float = 350.0
    cpu_cores_per_node: int = 32
    #: storage-host orchestration share attributed to PreSto
    presto_host_power: float = 150.0
    a100_tdp: float = 250.0
    a100_preproc_active_power: float = 100.0  # underutilized during preproc
    u280_tdp: float = 225.0
    u280_active_power: float = 46.0

    # --- cost (US dollars; Section V-C) --------------------------------------
    cpu_node_price: float = 12_000.0  # Dell R640-class 2-socket node
    smartssd_price: float = 2_500.0
    presto_host_share_price: float = 3_000.0
    a100_price: float = 10_000.0
    u280_price: float = 7_500.0
    electricity_per_kwh: float = 0.0733
    amortization_years: float = 3.0

    # --- dataset byte model ---------------------------------------------------
    #: encoded bytes per dense value (float32 PLAIN)
    bytes_per_dense_value: float = 4.0
    #: encoded bytes per sparse id (zig-zag varint of ~40-bit ids)
    bytes_per_sparse_id: float = 6.0
    #: encoded bytes per sparse length entry (varint of small counts)
    bytes_per_length_entry: float = 1.2
    #: file framing overhead (headers, CRCs, footer) as a fraction
    file_format_overhead: float = 0.02

    # -- derived helpers ------------------------------------------------------

    def encoded_bytes_per_sample(self, spec: ModelSpec) -> float:
        """Encoded bytes one sample contributes to the columns a pipeline
        reads (validated against the real writer by tests)."""
        dense = self.bytes_per_dense_value * spec.num_dense
        ids = self.bytes_per_sparse_id * spec.sparse_elements_per_sample()
        lengths = self.bytes_per_length_entry * spec.num_sparse
        return (dense + ids + lengths) * (1.0 + self.file_format_overhead)

    def encoded_batch_bytes(self, spec: ModelSpec, batch_size: int = None) -> float:
        """Encoded bytes of one mini-batch partition."""
        rows = batch_size if batch_size is not None else spec.batch_size
        return self.encoded_bytes_per_sample(spec) * rows

    def train_ready_batch_bytes(self, spec: ModelSpec, batch_size: int = None) -> float:
        """Train-ready tensor bytes of one mini-batch (the Load payload)."""
        rows = batch_size if batch_size is not None else spec.batch_size
        return spec.train_ready_bytes_per_sample() * rows

    def accel_element_rate(self, lanes: int) -> float:
        """Aggregate elements/s of a unit with ``lanes`` pipelined PEs."""
        return lanes * self.accelerator_clock_hz

    @property
    def cpu_core_power(self) -> float:
        """Per-core share of a preprocessing node's power draw."""
        return self.cpu_node_power / self.cpu_cores_per_node

    @property
    def cpu_core_price(self) -> float:
        """Per-core share of a preprocessing node's price."""
        return self.cpu_node_price / self.cpu_cores_per_node

    @property
    def amortization_hours(self) -> float:
        """Duration used by the cost-efficiency metric (3 years)."""
        return self.amortization_years * 365.0 * 24.0


#: The default, paper-anchored calibration used by every experiment.
CALIBRATION = Calibration()

"""repro — a reproduction of PreSto (ISCA 2024).

PreSto is an in-storage data preprocessing system for training
recommendation models (Lee, Kim, Rhu; ISCA 2024).  This package provides:

* a functional RecSys preprocessing library (columnar storage, the
  Bucketize / SigridHash / Log operators, train-ready mini-batch formats);
* calibrated performance models for CPU-centric preprocessing, the PreSto
  SmartSSD accelerator, GPU/FPGA alternatives, networks, and DLRM training;
* a discrete-event simulator coupling preprocessing to training;
* an experiment harness regenerating every table and figure of the paper's
  evaluation (see :mod:`repro.experiments.report`).

Quick start::

    from repro import get_model, PreStoSystem

    spec = get_model("RM5")
    presto = PreStoSystem(spec)
    plan = presto.provision_for(num_gpus=8)
    print(plan.num_workers, "SmartSSDs feed 8 A100s")
"""

from repro.features.specs import (
    DEFAULT_BATCH_SIZE,
    MODEL_NAMES,
    RECSYS_MODELS,
    ModelSpec,
    all_models,
    get_model,
)
from repro.features.minibatch import KeyedJaggedTensor, MiniBatch
from repro.features.synthetic import SyntheticTableGenerator, generate_raw_table
from repro.ops.pipeline import OpCounts, PreprocessingPipeline
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.core.systems import (
    A100PoolSystem,
    CoLocatedCpuSystem,
    DisaggCpuSystem,
    PreStoSystem,
    PreStoU280System,
    U280PoolSystem,
)
from repro.core.cpu_worker import CpuPreprocessingWorker
from repro.core.isp_worker import IspPreprocessingWorker
from repro.core.endtoend import EndToEndSimulation
from repro.core.provision import ProvisioningPlan, provision

__version__ = "0.1.0"

__all__ = [
    "DEFAULT_BATCH_SIZE",
    "MODEL_NAMES",
    "RECSYS_MODELS",
    "ModelSpec",
    "all_models",
    "get_model",
    "KeyedJaggedTensor",
    "MiniBatch",
    "SyntheticTableGenerator",
    "generate_raw_table",
    "OpCounts",
    "PreprocessingPipeline",
    "CALIBRATION",
    "Calibration",
    "A100PoolSystem",
    "CoLocatedCpuSystem",
    "DisaggCpuSystem",
    "PreStoSystem",
    "PreStoU280System",
    "U280PoolSystem",
    "CpuPreprocessingWorker",
    "IspPreprocessingWorker",
    "EndToEndSimulation",
    "ProvisioningPlan",
    "provision",
]

"""Model and dataset configurations from Table I of the paper.

Each :class:`ModelSpec` captures one row of Table I: the preprocessing
configuration (feature counts, average sparse feature length, how many new
sparse features Bucketize generates, and the bucket count ``m``) plus the
RecSys model architecture (bottom/top MLP layer widths, embedding-table count
and size).

RM1 is the public Criteo dataset; RM2–RM5 are the paper's synthetic
production-scale configurations based on Meta's published characteristics
(Zhao et al., ISCA 2022).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.dataio.schema import TableSchema
from repro.errors import ConfigurationError

#: Training mini-batch size used throughout the paper's evaluation.
DEFAULT_BATCH_SIZE = 8192

#: Embedding dimension used by the DLRM cost model (Criteo DLRM default).
DEFAULT_EMBEDDING_DIM = 128


@dataclass(frozen=True)
class MLPSpec:
    """Layer widths of one MLP stack, e.g. ``(512, 256, 128)``."""

    layers: Tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.layers or any(w <= 0 for w in self.layers):
            raise ConfigurationError(f"invalid MLP layers {self.layers}")

    def macs(self, input_width: int) -> int:
        """Multiply-accumulate count of one forward pass through the stack."""
        total = 0
        width = input_width
        for layer in self.layers:
            total += width * layer
            width = layer
        return total

    @property
    def output_width(self) -> int:
        """Width of the final layer."""
        return self.layers[-1]

    def __str__(self) -> str:
        return "-".join(str(w) for w in self.layers)


@dataclass(frozen=True)
class ModelSpec:
    """One row of Table I: preprocessing config + model architecture."""

    name: str
    num_dense: int
    num_sparse: int
    avg_sparse_length: int
    num_generated_sparse: int
    bucket_size: int
    bottom_mlp: MLPSpec
    top_mlp: MLPSpec
    num_tables: int
    avg_embeddings_per_table: int
    is_public: bool = False
    embedding_dim: int = DEFAULT_EMBEDDING_DIM
    batch_size: int = DEFAULT_BATCH_SIZE
    #: fraction of rows where a dense value is missing (needs fill);
    #: Criteo has pervasive missing values.
    dense_missing_rate: float = 0.05

    def __post_init__(self) -> None:
        if self.num_generated_sparse > self.num_dense:
            raise ConfigurationError(
                f"{self.name}: cannot generate {self.num_generated_sparse} sparse "
                f"features from only {self.num_dense} dense features"
            )
        expected_tables = self.num_sparse + self.num_generated_sparse
        if self.num_tables != expected_tables:
            raise ConfigurationError(
                f"{self.name}: Table I lists {self.num_tables} embedding tables but "
                f"sparse({self.num_sparse}) + generated({self.num_generated_sparse}) "
                f"= {expected_tables}"
            )

    # -- derived quantities used across the models --------------------------

    def schema(self) -> TableSchema:
        """Raw-data table schema for this model's dataset."""
        return TableSchema.with_counts(self.num_dense, self.num_sparse)

    @property
    def generated_sparse_names(self) -> List[str]:
        """Names of the Bucketize-generated features (from the first k dense)."""
        return [f"bucket_int_{i}" for i in range(self.num_generated_sparse)]

    @property
    def bucketize_source_names(self) -> List[str]:
        """Dense features that feed Bucketize, in order."""
        return [f"int_{i}" for i in range(self.num_generated_sparse)]

    def dense_elements_per_sample(self) -> int:
        """Dense values touched per sample (Log normalization input size)."""
        return self.num_dense

    def sparse_elements_per_sample(self) -> float:
        """Raw sparse ids per sample (SigridHash input size)."""
        return self.num_sparse * self.avg_sparse_length

    def bucketize_elements_per_sample(self) -> int:
        """Dense values digitized per sample (Bucketize input size)."""
        return self.num_generated_sparse

    def embedding_indices_per_sample(self) -> float:
        """Embedding-lookup indices per sample after preprocessing."""
        return self.sparse_elements_per_sample() + self.num_generated_sparse

    def raw_bytes_per_sample(self) -> float:
        """Approximate raw (decoded) bytes of one sample's needed columns.

        4 B per dense float, 8 B per sparse id, 4 B per sparse length entry,
        1 B label.  Used only as a coarse sanity bound; the functional layer
        measures real encoded sizes.
        """
        return (
            1
            + 4 * self.num_dense
            + 8 * self.sparse_elements_per_sample()
            + 4 * self.num_sparse
        )

    def train_ready_bytes_per_sample(self) -> float:
        """Bytes of one preprocessed sample (the Load stage payload).

        Dense tensor float32 + int32 embedding indices + int32 lengths per
        sparse feature + float32 label.
        """
        return (
            4 * self.num_dense
            + 4 * self.embedding_indices_per_sample()
            + 4 * (self.num_sparse + self.num_generated_sparse)
            + 4
        )

    def scaled(self, feature_scale: int, name: str = None) -> "ModelSpec":
        """Scale feature counts by an integer factor (Fig. 17 sensitivity).

        Dense, sparse, and generated feature counts all scale together,
        matching "the number of generated, sparse, and dense features are
        changed" in Section VI-D.
        """
        if feature_scale < 1:
            raise ConfigurationError("feature_scale must be >= 1")
        return ModelSpec(
            name=name or f"{self.name}x{feature_scale}",
            num_dense=self.num_dense * feature_scale,
            num_sparse=self.num_sparse * feature_scale,
            avg_sparse_length=self.avg_sparse_length,
            num_generated_sparse=self.num_generated_sparse * feature_scale,
            bucket_size=self.bucket_size,
            bottom_mlp=self.bottom_mlp,
            top_mlp=self.top_mlp,
            num_tables=(self.num_sparse + self.num_generated_sparse) * feature_scale,
            avg_embeddings_per_table=self.avg_embeddings_per_table,
            is_public=False,
            embedding_dim=self.embedding_dim,
            batch_size=self.batch_size,
            dense_missing_rate=self.dense_missing_rate,
        )


_BOTTOM = MLPSpec((512, 256, 128))
_TOP = MLPSpec((1024, 1024, 512, 256, 1))

#: Table I, verbatim.
RECSYS_MODELS: Dict[str, ModelSpec] = {
    "RM1": ModelSpec(
        name="RM1",
        num_dense=13,
        num_sparse=26,
        avg_sparse_length=1,
        num_generated_sparse=13,
        bucket_size=1024,
        bottom_mlp=_BOTTOM,
        top_mlp=_TOP,
        num_tables=39,
        avg_embeddings_per_table=500_000,
        is_public=True,
    ),
    "RM2": ModelSpec(
        name="RM2",
        num_dense=504,
        num_sparse=42,
        avg_sparse_length=20,
        num_generated_sparse=21,
        bucket_size=1024,
        bottom_mlp=_BOTTOM,
        top_mlp=_TOP,
        num_tables=63,
        avg_embeddings_per_table=500_000,
    ),
    "RM3": ModelSpec(
        name="RM3",
        num_dense=504,
        num_sparse=42,
        avg_sparse_length=20,
        num_generated_sparse=42,
        bucket_size=1024,
        bottom_mlp=_BOTTOM,
        top_mlp=_TOP,
        num_tables=84,
        avg_embeddings_per_table=500_000,
    ),
    "RM4": ModelSpec(
        name="RM4",
        num_dense=504,
        num_sparse=42,
        avg_sparse_length=20,
        num_generated_sparse=42,
        bucket_size=2048,
        bottom_mlp=_BOTTOM,
        top_mlp=_TOP,
        num_tables=84,
        avg_embeddings_per_table=500_000,
    ),
    "RM5": ModelSpec(
        name="RM5",
        num_dense=504,
        num_sparse=42,
        avg_sparse_length=20,
        num_generated_sparse=42,
        bucket_size=4096,
        bottom_mlp=_BOTTOM,
        top_mlp=_TOP,
        num_tables=84,
        avg_embeddings_per_table=500_000,
    ),
}

#: Evaluation order used by every figure.
MODEL_NAMES: List[str] = ["RM1", "RM2", "RM3", "RM4", "RM5"]


def get_model(name: str) -> ModelSpec:
    """Look up a Table I model by name (case-insensitive)."""
    key = name.upper()
    if key not in RECSYS_MODELS:
        raise ConfigurationError(
            f"unknown model {name!r}; expected one of {MODEL_NAMES}"
        )
    return RECSYS_MODELS[key]


def all_models() -> List[ModelSpec]:
    """All Table I models in evaluation order."""
    return [RECSYS_MODELS[name] for name in MODEL_NAMES]

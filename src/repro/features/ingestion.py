"""Data generation and ingestion — the first stage of Figure 1.

Before any preprocessing, the paper's pipeline has inference servers logging
end-user interactions through a logging engine (Meta's Scribe), and
streaming/batch engines (Spark) that *label* and *filter* those events
before they land in the data warehouse as raw feature tables.  This module
implements that upstream path functionally:

* :class:`InteractionEvent` — one logged (user, item, features) interaction;
* :class:`LoggingEngine` — an append-only, category-partitioned event log
  with bounded buffering (Scribe's role);
* :class:`StreamingLabeler` — joins impression events with later click
  events inside an attribution window to produce the binary label
  (the "label" work Figure 1 assigns to the streaming/batch engine);
* :class:`EventFilter` — drops bot/malformed events (the "filter" work);
* :class:`Warehouse` — batches labeled events of one model's schema into
  the raw :data:`TableData` the preprocessing pipeline consumes.

The synthetic generators in :mod:`repro.features.synthetic` shortcut this
path for speed; integration tests run the full path on small volumes and
check the warehouse output is schema-valid and preprocessable.
"""

from __future__ import annotations

import collections
from dataclasses import dataclass
from typing import Callable, Deque, Dict, Iterable, List, Optional, Tuple

import numpy as np

from repro.dataio.columnar import TableData
from repro.errors import CapacityError, ConfigurationError
from repro.features.specs import ModelSpec


@dataclass(frozen=True)
class InteractionEvent:
    """One logged end-user interaction with the inference service."""

    event_id: int
    user_id: int
    timestamp: float
    kind: str  # "impression" or "click"
    dense: Tuple[float, ...] = ()
    sparse: Tuple[Tuple[int, ...], ...] = ()

    def is_impression(self) -> bool:
        return self.kind == "impression"

    def is_click(self) -> bool:
        return self.kind == "click"


class LoggingEngine:
    """Append-only buffered event log, one category per event kind.

    Mirrors Scribe's role: producers append, consumers drain per category in
    arrival order.  The buffer is bounded; overflowing it raises (real
    deployments shed load — the error surfaces the condition instead).
    """

    def __init__(self, buffer_capacity: int = 1_000_000) -> None:
        if buffer_capacity <= 0:
            raise ConfigurationError("buffer_capacity must be positive")
        self.buffer_capacity = buffer_capacity
        self._categories: Dict[str, Deque[InteractionEvent]] = collections.defaultdict(
            collections.deque
        )
        self.total_logged = 0
        self.total_drained = 0

    def log(self, event: InteractionEvent) -> None:
        """Append one event to its category."""
        if self.buffered >= self.buffer_capacity:
            raise CapacityError("logging engine buffer overflow")
        self._categories[event.kind].append(event)
        self.total_logged += 1

    def log_many(self, events: Iterable[InteractionEvent]) -> None:
        """Append a batch of events."""
        for event in events:
            self.log(event)

    def drain(self, kind: str, limit: Optional[int] = None) -> List[InteractionEvent]:
        """Remove and return up to ``limit`` events of one category."""
        queue = self._categories.get(kind)
        if not queue:
            return []
        count = len(queue) if limit is None else min(limit, len(queue))
        out = [queue.popleft() for _ in range(count)]
        self.total_drained += count
        return out

    @property
    def buffered(self) -> int:
        """Events currently held across all categories."""
        return sum(len(q) for q in self._categories.values())


class EventFilter:
    """Drops bot traffic and malformed events (the 'filter' stage)."""

    def __init__(
        self,
        spec: ModelSpec,
        is_bot: Optional[Callable[[InteractionEvent], bool]] = None,
    ) -> None:
        self.spec = spec
        self.is_bot = is_bot or (lambda event: False)
        self.dropped_malformed = 0
        self.dropped_bots = 0

    def _well_formed(self, event: InteractionEvent) -> bool:
        if len(event.dense) != self.spec.num_dense:
            return False
        if len(event.sparse) != self.spec.num_sparse:
            return False
        return all(
            all(raw_id >= 0 for raw_id in feature) for feature in event.sparse
        )

    def apply(self, events: Iterable[InteractionEvent]) -> List[InteractionEvent]:
        """Return the events that survive filtering."""
        kept = []
        for event in events:
            if not self._well_formed(event):
                self.dropped_malformed += 1
            elif self.is_bot(event):
                self.dropped_bots += 1
            else:
                kept.append(event)
        return kept


@dataclass
class LabeledExample:
    """One impression joined with its click outcome."""

    event: InteractionEvent
    label: int


class StreamingLabeler:
    """Click attribution: label impressions by later clicks from the same
    user within an attribution window (the 'label' stage)."""

    def __init__(self, attribution_window: float = 3600.0) -> None:
        if attribution_window <= 0:
            raise ConfigurationError("attribution_window must be positive")
        self.attribution_window = attribution_window

    def label(
        self,
        impressions: Iterable[InteractionEvent],
        clicks: Iterable[InteractionEvent],
    ) -> List[LabeledExample]:
        """Join impressions with clicks; label 1 iff a click by the same
        user falls in ``(t_impression, t_impression + window]``."""
        clicks_by_user: Dict[int, List[float]] = collections.defaultdict(list)
        for click in clicks:
            if not click.is_click():
                raise ConfigurationError(f"event {click.event_id} is not a click")
            clicks_by_user[click.user_id].append(click.timestamp)
        for times in clicks_by_user.values():
            times.sort()

        labeled = []
        for impression in impressions:
            if not impression.is_impression():
                raise ConfigurationError(
                    f"event {impression.event_id} is not an impression"
                )
            times = clicks_by_user.get(impression.user_id, ())
            start = impression.timestamp
            stop = start + self.attribution_window
            clicked = any(start < t <= stop for t in times)
            labeled.append(LabeledExample(event=impression, label=int(clicked)))
        return labeled


class Warehouse:
    """Accumulates labeled examples and emits raw feature tables.

    The warehouse is the hand-off point of Figure 1: downstream, these
    tables are partitioned into columnar files and placed on the
    (Smart)SSDs of the distributed storage system.
    """

    def __init__(self, spec: ModelSpec) -> None:
        self.spec = spec
        self.schema = spec.schema()
        self._examples: List[LabeledExample] = []

    def ingest(self, examples: Iterable[LabeledExample]) -> None:
        """Append labeled examples (already filtered)."""
        self._examples.extend(examples)

    def __len__(self) -> int:
        return len(self._examples)

    def to_table(self, max_rows: Optional[int] = None) -> TableData:
        """Materialize (and consume) up to ``max_rows`` examples as a raw
        table matching the model's schema."""
        if not self._examples:
            raise ConfigurationError("warehouse is empty")
        count = len(self._examples) if max_rows is None else min(max_rows, len(self._examples))
        rows, self._examples = self._examples[:count], self._examples[count:]

        # column-major assembly: one np.fromiter pass per output array
        # instead of a per-example list comprehension per column
        data: TableData = {
            self.schema.label.name: np.fromiter(
                (example.label for example in rows), dtype=np.int8, count=count
            )
        }
        # indexing per column (not flattening the per-event tuples) keeps the
        # pre-rewrite semantics for malformed events: extra dense values are
        # ignored, missing ones raise, and rows never shift out of alignment
        for column_index, column in enumerate(self.schema.dense):
            data[column.name] = np.fromiter(
                (example.event.dense[column_index] for example in rows),
                dtype=np.float32,
                count=count,
            )
        for column_index, column in enumerate(self.schema.sparse):
            lengths = np.fromiter(
                (len(example.event.sparse[column_index]) for example in rows),
                dtype=np.int32,
                count=count,
            )
            values = np.fromiter(
                (
                    raw_id
                    for example in rows
                    for raw_id in example.event.sparse[column_index]
                ),
                dtype=np.int64,
                count=int(lengths.sum()),
            )
            data[column.name] = (lengths, values)
        return data


class InferenceServerSimulator:
    """Generates a plausible event stream for the full ingestion path.

    Each simulated user sees impressions and clicks on some of them within
    the attribution window; a configurable fraction of the traffic is bot
    noise the filter must drop.
    """

    def __init__(
        self,
        spec: ModelSpec,
        seed: int = 0,
        ctr: float = 0.1,
        bot_fraction: float = 0.05,
    ) -> None:
        if not 0 <= bot_fraction < 1:
            raise ConfigurationError("bot_fraction must be in [0, 1)")
        self.spec = spec
        self.ctr = ctr
        self.bot_fraction = bot_fraction
        self._rng = np.random.default_rng(seed)
        self._next_event_id = 0

    def _event_id(self) -> int:
        self._next_event_id += 1
        return self._next_event_id

    def _features(self) -> Tuple[Tuple[float, ...], Tuple[Tuple[int, ...], ...]]:
        rng = self._rng
        dense = tuple(
            float(v) for v in np.floor(rng.lognormal(1.5, 1.2, self.spec.num_dense))
        )
        sparse = []
        for _ in range(self.spec.num_sparse):
            length = max(int(rng.poisson(self.spec.avg_sparse_length)), 0)
            sparse.append(tuple(int(v) for v in rng.integers(0, 2**40, length)))
        return dense, tuple(sparse)

    def generate(
        self, num_impressions: int
    ) -> Tuple[List[InteractionEvent], List[InteractionEvent]]:
        """Return (impressions, clicks); bots emit impressions with
        user_id < 0 so a simple predicate can identify them."""
        if num_impressions <= 0:
            raise ConfigurationError("num_impressions must be positive")
        impressions: List[InteractionEvent] = []
        clicks: List[InteractionEvent] = []
        for i in range(num_impressions):
            is_bot = self._rng.random() < self.bot_fraction
            user = -int(self._rng.integers(1, 1000)) if is_bot else int(
                self._rng.integers(0, 10_000)
            )
            timestamp = float(i)
            dense, sparse = self._features()
            impressions.append(
                InteractionEvent(
                    event_id=self._event_id(),
                    user_id=user,
                    timestamp=timestamp,
                    kind="impression",
                    dense=dense,
                    sparse=sparse,
                )
            )
            if not is_bot and self._rng.random() < self.ctr:
                clicks.append(
                    InteractionEvent(
                        event_id=self._event_id(),
                        user_id=user,
                        timestamp=timestamp + float(self._rng.uniform(1.0, 600.0)),
                        kind="click",
                    )
                )
        return impressions, clicks


def run_ingestion(
    spec: ModelSpec,
    num_impressions: int,
    seed: int = 0,
    attribution_window: float = 3600.0,
) -> Tuple[TableData, Dict[str, int]]:
    """End-to-end Figure 1 data-generation stage: simulate inference
    traffic, log it, filter it, label it, and land it in the warehouse.

    Returns the raw table plus ingestion statistics.
    """
    simulator = InferenceServerSimulator(spec, seed=seed)
    impressions, clicks = simulator.generate(num_impressions)

    log = LoggingEngine()
    log.log_many(impressions)
    log.log_many(clicks)

    event_filter = EventFilter(spec, is_bot=lambda e: e.user_id < 0)
    surviving = event_filter.apply(log.drain("impression"))
    labeler = StreamingLabeler(attribution_window=attribution_window)
    labeled = labeler.label(surviving, log.drain("click"))

    warehouse = Warehouse(spec)
    warehouse.ingest(labeled)
    table = warehouse.to_table()
    stats = {
        "impressions": len(impressions),
        "clicks": len(clicks),
        "dropped_bots": event_filter.dropped_bots,
        "dropped_malformed": event_filter.dropped_malformed,
        "rows": len(table[spec.schema().label.name]),
        "positives": int(table[spec.schema().label.name].sum()),
    }
    return table, stats

"""Tests for the command-line interface."""

import time

import pytest

from repro.api import EXPERIMENT_REGISTRY
from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        assert parser.parse_args(["report"]).command == "report"
        assert parser.parse_args(["list"]).command == "list"
        args = parser.parse_args(["run", "fig12", "fig13"])
        assert args.ids == ["fig12", "fig13"]
        args = parser.parse_args(["provision", "RM5", "--gpus", "4"])
        assert args.model == "RM5"
        assert args.gpus == 4


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for command_id in EXPERIMENT_REGISTRY.ids():
            assert command_id in out

    def test_run_single(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_run_ablation(self, capsys):
        assert main(["run", "abl-lanes"]) == 0
        assert "lane sweep" in capsys.readouterr().out

    def test_run_unknown_id(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["run", "fig99"])

    def test_provision(self, capsys):
        assert main(["provision", "RM5"]) == 0
        out = capsys.readouterr().out
        assert "PreSto" in out
        assert "367" in out  # the Disagg allocation

    def test_provision_lowercase(self, capsys):
        assert main(["provision", "rm1"]) == 0
        assert "RM1" in capsys.readouterr().out

    def test_every_run_id_works(self, capsys):
        # the cheap ones; fig11/15 style experiments are covered elsewhere
        for command_id in ("fig3", "fig6", "table2", "abl-batch"):
            assert main(["run", command_id]) == 0
        assert capsys.readouterr().out


class TestExport:
    def test_export_selected(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["export", "--dir", str(tmp_path), "fig4", "table1"]) == 0
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["fig4.csv", "table1.csv"]
        content = (tmp_path / "fig4.csv").read_text()
        assert "RM5" in content and "367" in content


class TestBench:
    def test_bench_quick_writes_json(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_kernels.json"
        # tiny seed-stable run; --quick keeps it a few seconds
        assert main(["bench", "--quick", "--out", str(out_path)]) == 0
        table = capsys.readouterr().out
        assert "varint_encode" in table
        assert "rowfile_write" in table

        report = json.loads(out_path.read_text())
        assert report["schema_version"] == 1
        assert report["quick"] is True
        ops = {entry["op"] for entry in report["results"]}
        assert {
            "varint_encode",
            "varint_decode",
            "varint_roundtrip",
            "rle_encode",
            "rle_decode",
            "rowfile_write",
            "rowfile_read",
            "ingestion_assembly",
            "engine_events",
            "sigrid_hash",
        } <= ops
        for entry in report["results"]:
            assert entry["elapsed_s"] > 0
            assert entry["ns_per_element"] > 0
            assert entry["mb_per_s"] > 0
        # every scalar/vectorized pair carries the measured speedup
        speedups = [
            entry["speedup_vs_scalar"]
            for entry in report["results"]
            if entry["variant"] == "vectorized" and "speedup_vs_scalar" in entry
        ]
        assert len(speedups) >= 5
        assert all(s > 0 for s in speedups)

    def test_bench_json_mode_skips_table(self, tmp_path, capsys):
        import json

        assert main(["bench", "--quick", "--json", "--out", ""]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["quick"] is True


class TestPreprocess:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["preprocess"])
        assert args.model == "RM1"
        assert args.shards == 1
        assert not args.check

    def test_serial_run_with_check_flag_ignored(self, capsys):
        # --check is meaningful only for parallel runs; serial just runs
        assert main(
            ["preprocess", "--rows", "64", "--shards", "2", "--serial",
             "--check"]
        ) == 0
        out = capsys.readouterr().out
        assert "digest" in out
        assert "rows/s" in out.replace(",", "")
        assert "byte-identical" not in out  # no redundant serial self-check

    def test_check_asserts_byte_identity(self, capsys):
        assert main(
            ["preprocess", "--rows", "48", "--shards", "4", "--processes",
             "2", "--check"]
        ) == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_json_payload(self, capsys):
        import json as json_mod

        assert main(
            ["preprocess", "--rows", "32", "--shards", "2", "--serial",
             "--json"]
        ) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["num_shards"] == 2
        assert payload["num_rows"] == 32
        assert payload["job"]["model"] == "RM1"
        assert len(payload["digest"]) == 64

    def test_unknown_model_exits(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["preprocess", "--model", "RM99", "--rows", "16"])


class TestServeCli:
    def test_parser_serve_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.spool == ".repro-serve"
        assert args.queue == 16 and args.workers == 2
        assert args.policy == "block"
        args = build_parser().parse_args(
            ["serve", "--queue", "4", "--policy", "reject",
             "--synthetic", "RM1:512:2:3", "--watch", "inbox"]
        )
        assert args.queue == 4 and args.policy == "reject"
        assert args.synthetic == ["RM1:512:2:3"]
        assert args.watch == ["inbox"]

    def test_parser_client_commands(self):
        parser = build_parser()
        args = parser.parse_args(["submit", "--rows", "128", "--wait"])
        assert args.rows == 128 and args.wait
        args = parser.parse_args(["status", "job-000001", "--follow"])
        assert args.job_id == "job-000001" and args.follow
        args = parser.parse_args(["jobs", "--state", "completed"])
        assert args.state == "completed"
        args = parser.parse_args(["shutdown", "--no-drain"])
        assert args.no_drain

    def test_parse_synthetic_spec(self):
        from repro.cli import _parse_synthetic

        source = _parse_synthetic("RM2:1024:4:7")
        assert source.count == 7
        with pytest.raises(SystemExit):
            _parse_synthetic("")
        with pytest.raises(SystemExit):
            _parse_synthetic("RM1:not-a-number")
        with pytest.raises(SystemExit):
            _parse_synthetic("RM1:1:2:3:4")

    def test_client_without_daemon_exits_loudly(self, tmp_path):
        with pytest.raises(SystemExit, match="repro serve"):
            main(["jobs", "--spool", str(tmp_path / "no-daemon")])

    def test_daemon_round_trip_through_cli(self, tmp_path, capsys):
        """serve -> submit --wait -> jobs -> shutdown, all via main()."""
        import json as json_mod
        import threading

        spool = str(tmp_path / "spool")
        daemon = threading.Thread(
            target=main,
            args=(["serve", "--spool", spool, "--workers", "1"],),
            daemon=True,
        )
        daemon.start()
        endpoint = tmp_path / "spool" / "endpoint.json"
        # wait until the daemon is up AND its banner has flushed, so the
        # captured stdout below contains only the client commands' output
        banner = ""
        deadline = time.monotonic() + 30.0
        while time.monotonic() < deadline:
            banner += capsys.readouterr().out
            if endpoint.exists() and "listening" in banner:
                break
            time.sleep(0.02)
        assert endpoint.exists() and "listening" in banner

        assert main(
            ["submit", "--spool", spool, "--rows", "256", "--shards", "2",
             "--wait", "--json"]
        ) == 0
        record = json_mod.loads(capsys.readouterr().out)
        assert record["state"] == "completed"
        assert len(record["digest"]) == 64
        # the digest matches the serial batch path for the same spec
        assert main(
            ["preprocess", "--rows", "256", "--shards", "2", "--serial",
             "--json"]
        ) == 0
        serial = json_mod.loads(capsys.readouterr().out)
        assert serial["digest"] == record["digest"]

        assert main(["jobs", "--spool", spool]) == 0
        assert record["job_id"] in capsys.readouterr().out
        assert main(["shutdown", "--spool", spool]) == 0
        daemon.join(timeout=30.0)
        assert not daemon.is_alive()
        assert not endpoint.exists()
        assert (tmp_path / "spool" / "jobs.jsonl").exists()


class TestChaos:
    def test_chaos_json_deterministic(self, capsys):
        import json as json_mod

        argv = [
            "chaos", "--seed", "7", "--jobs", "3", "--rows", "128",
            "--shards", "2", "--timeout", "2", "--faults", "worker-crash",
            "--json",
        ]
        assert main(argv) == 0
        first = json_mod.loads(capsys.readouterr().out)
        assert first["ok"] is True
        assert first["faults"] == ["worker-crash"]
        assert len(first["episodes"]) == 1
        episode = first["episodes"][0]
        assert episode["jobs"] >= 3
        assert not episode["violations"]
        assert "elapsed_s" not in episode  # deterministic view only

        assert main(argv) == 0
        second = json_mod.loads(capsys.readouterr().out)
        assert second == first

    def test_chaos_table_output(self, capsys):
        assert main(
            ["chaos", "--seed", "3", "--jobs", "2", "--rows", "128",
             "--timeout", "2", "--faults", "torn-write"]
        ) == 0
        out = capsys.readouterr().out
        assert "Chaos matrix (seed 3)" in out
        assert "torn-write" in out
        assert "all invariants held" in out

    def test_chaos_rejects_unknown_fault(self):
        with pytest.raises(SystemExit, match="unknown fault class"):
            main(["chaos", "--faults", "bogus"])

"""Ablation — processing-element (lane) count of the transform units.

Section IV-C sizes each unit "to right-size its compute units for data
preprocessing under a tighter power budget".  This sweep scales every
transform unit's lane count together and reports (a) device throughput and
(b) whether the design still fits the SmartSSD's FPGA — locating the knee
that justifies the paper's small default configuration: past the point
where decode/ingress dominates, more lanes buy nothing but fabric.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    register_experiment,
)
from repro.features.specs import get_model
from repro.hardware.accelerator import AcceleratorModel
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.hardware.fpga import SMARTSSD_FPGA, fits

LANE_SCALES = (1, 2, 4, 8)


@dataclass(frozen=True)
class LaneSweepResult(ExperimentResult):
    """Per-scale throughput / transform time / fit."""

    model: str
    scales: Tuple[int, ...]
    throughput: Tuple[float, ...]
    transform_ms: Tuple[float, ...]
    fits_smartssd: Tuple[bool, ...]

    @property
    def knee_scale(self) -> int:
        """Smallest scale within 2% of the best achievable throughput."""
        best = max(self.throughput)
        for scale, tput in zip(self.scales, self.throughput):
            if tput >= 0.98 * best:
                return scale
        return self.scales[-1]

    def claims(self) -> List[PaperClaim]:
        gain_2x = self.throughput[1] / self.throughput[0]
        return [
            PaperClaim("throughput knee at small scale", 1.0, float(self.knee_scale), 1.0),
            PaperClaim(
                "2x lanes buys little end-to-end (decode-bound)", 1.03, gain_2x, 0.10
            ),
            PaperClaim(
                "default design fits the SmartSSD FPGA",
                1.0,
                1.0 if self.fits_smartssd[0] else 0.0,
                0.0,
            ),
        ]

    def rows(self) -> List[Tuple]:
        return [
            (
                f"{scale}x",
                tput / 1e3,
                ms,
                "yes" if ok else "NO",
            )
            for scale, tput, ms, ok in zip(
                self.scales, self.throughput, self.transform_ms, self.fits_smartssd
            )
        ]

    def columns(self) -> List[str]:
        return ["lane scale", "k-samples/s", "transform (ms)", "fits SmartSSD"]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title=(
                f"Ablation (unit lane sweep, {self.model}): knee at "
                f"{self.knee_scale}x — transform stops mattering once "
                f"decode/ingress dominate"
            ),
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("abl-lanes", title="Ablation: unit lane sweep", kind="ablation", order=220)
def run(model: str = "RM5", calibration: Calibration = CALIBRATION) -> LaneSweepResult:
    """Sweep the transform-unit lane scale.

    Only the transform units scale; the decoder and links stay fixed — the
    question is precisely whether more transform lanes help.
    """
    spec = get_model(model)
    throughput: List[float] = []
    transform_ms: List[float] = []
    fit_flags: List[bool] = []
    for scale in LANE_SCALES:
        scaled = dataclasses.replace(
            calibration,
            accel_hash_lanes=calibration.accel_hash_lanes * scale,
            accel_log_lanes=calibration.accel_log_lanes * scale,
            accel_bucketize_lanes=calibration.accel_bucketize_lanes * scale,
        )
        accel = AcceleratorModel(scaled)
        stages = accel.batch_stages(spec)
        throughput.append(accel.device_throughput(spec))
        transform_ms.append(1e3 * stages.transform_time)
        fit_flags.append(fits(SMARTSSD_FPGA, lane_scale=scale))
    return LaneSweepResult(
        model=spec.name,
        scales=LANE_SCALES,
        throughput=tuple(throughput),
        transform_ms=tuple(transform_ms),
        fits_smartssd=tuple(fit_flags),
    )

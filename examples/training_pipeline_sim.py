"""End-to-end training-pipeline simulation: who keeps the GPU busy?

Declares the full Figure 9 flow as `Scenario` records for three deployments
on the production-scale RM5 model:

* co-located preprocessing (16 host cores, the DGX budget) — starves the GPU;
* a disaggregated CPU pool provisioned via T/P — keeps it busy with ~367 cores;
* PreSto — keeps it busy with 9 SmartSSDs.

All three scenarios run concurrently through a `Sweep` (one process per
scenario) and the results come back in declaration order.

Run:  python examples/training_pipeline_sim.py
"""

from repro import Scenario, Sweep, get_model
from repro.experiments.common import format_table

DEPLOYMENTS = [
    # co-location cannot elastically allocate: the budget is 16 host cores
    ("Co-located (16 cores, 1 GPU)",
     Scenario(model="RM5", system="Co-located", num_gpus=1, num_workers=16,
              num_batches=60)),
    ("Disagg CPU pool (T/P, 8 GPUs)",
     Scenario(model="RM5", system="Disagg", num_gpus=8, num_batches=400)),
    ("PreSto ISP (T/P, 8 GPUs)",
     Scenario(model="RM5", system="PreSto", num_gpus=8, num_batches=400)),
]


def main() -> None:
    spec = get_model("RM5")
    print(f"Simulating {spec.name} training pipelines "
          f"(batch {spec.batch_size})...\n")

    sweep = Sweep([scenario for _, scenario in DEPLOYMENTS])
    results = sweep.run()  # parallel; deterministic ordering
    rows = [
        (
            name,
            result.num_workers,
            result.wall_time,
            100.0 * result.gpu_utilization,
            100.0 * result.steady_state_utilization,
            result.training_throughput,
        )
        for (name, _), result in zip(DEPLOYMENTS, results)
    ]
    print(
        format_table(
            [
                "deployment",
                "workers",
                "sim wall (s)",
                "GPU util (%)",
                "steady util (%)",
                "samples/s",
            ],
            rows,
            title="End-to-end pipeline simulation (RM5)",
        )
    )
    print(
        "\nThe co-located design caps at 16 workers and starves the GPU; both "
        "provisioned designs sustain training, but PreSto does it with 9 "
        "devices instead of hundreds of cores."
    )


if __name__ == "__main__":
    main()

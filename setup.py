"""Legacy shim so `pip install -e . --no-build-isolation --no-use-pep517`
works offline (no wheel package available in this environment)."""
from setuptools import setup

setup()

"""Tests for the synthetic raw-data generators."""

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.features.specs import get_model
from repro.features.synthetic import RAW_ID_SPACE, SyntheticTableGenerator


class TestGeneration:
    def test_schema_complete(self):
        spec = get_model("RM1")
        data = SyntheticTableGenerator(spec).generate(32)
        schema = spec.schema()
        for column in schema.columns():
            assert column.name in data

    def test_deterministic_per_seed(self):
        spec = get_model("RM1")
        a = SyntheticTableGenerator(spec, seed=1).generate(16)
        b = SyntheticTableGenerator(spec, seed=1).generate(16)
        np.testing.assert_array_equal(a["int_0"], b["int_0"])
        np.testing.assert_array_equal(a["cat_0"][1], b["cat_0"][1])

    def test_different_seeds_differ(self):
        spec = get_model("RM1")
        a = SyntheticTableGenerator(spec, seed=1).generate(64)
        b = SyntheticTableGenerator(spec, seed=2).generate(64)
        assert not np.array_equal(
            np.nan_to_num(a["int_0"]), np.nan_to_num(b["int_0"])
        )

    def test_partitions_independent(self):
        spec = get_model("RM1")
        gen = SyntheticTableGenerator(spec, seed=0)
        p0 = gen.generate(32, partition=0)
        p1 = gen.generate(32, partition=1)
        assert not np.array_equal(np.nan_to_num(p0["int_0"]), np.nan_to_num(p1["int_0"]))

    def test_criteo_sparse_length_fixed_one(self):
        spec = get_model("RM1")
        data = SyntheticTableGenerator(spec).generate(64)
        lengths, _ = data["cat_0"]
        assert np.all(lengths == 1)

    def test_production_sparse_lengths_average(self):
        spec = get_model("RM2")
        data = SyntheticTableGenerator(spec, seed=0).generate(512)
        all_lengths = np.concatenate(
            [data[name][0] for name in spec.schema().sparse_names]
        )
        assert float(all_lengths.mean()) == pytest.approx(20.0, rel=0.05)

    def test_dense_missing_rate(self):
        spec = get_model("RM1")
        data = SyntheticTableGenerator(spec, seed=0).generate(2000)
        stacked = np.concatenate([data[n] for n in spec.schema().dense_names])
        missing = float(np.isnan(stacked).mean())
        assert missing == pytest.approx(spec.dense_missing_rate, rel=0.25)

    def test_ids_within_raw_space(self):
        spec = get_model("RM2")
        data = SyntheticTableGenerator(spec, seed=0).generate(64)
        _, values = data["cat_0"]
        assert values.min() >= 0
        assert values.max() < RAW_ID_SPACE

    def test_labels_are_clicks(self):
        spec = get_model("RM1")
        data = SyntheticTableGenerator(spec, seed=0, ctr=0.5).generate(2000)
        rate = float(data["label"].mean())
        assert rate == pytest.approx(0.5, abs=0.05)

    def test_invalid_args(self):
        spec = get_model("RM1")
        with pytest.raises(ConfigurationError):
            SyntheticTableGenerator(spec, ctr=1.5)
        with pytest.raises(ConfigurationError):
            SyntheticTableGenerator(spec, zipf_exponent=0.5)
        with pytest.raises(ConfigurationError):
            SyntheticTableGenerator(spec).generate(0)


class TestBucketBoundaries:
    def test_strictly_increasing_and_sized(self):
        spec = get_model("RM5")
        gen = SyntheticTableGenerator(spec)
        edges = gen.bucket_boundaries("int_0")
        assert len(edges) == spec.bucket_size
        assert np.all(np.diff(edges) > 0)

    def test_per_feature_boundaries_differ(self):
        gen = SyntheticTableGenerator(get_model("RM1"))
        a = gen.bucket_boundaries("int_0")
        b = gen.bucket_boundaries("int_1")
        assert not np.array_equal(a, b)

    def test_deterministic(self):
        spec = get_model("RM1")
        a = SyntheticTableGenerator(spec, seed=3).bucket_boundaries("int_0")
        b = SyntheticTableGenerator(spec, seed=3).bucket_boundaries("int_0")
        np.testing.assert_array_equal(a, b)

"""Distributed storage cluster with partition placement.

Figure 1's data-storage stage: the logical table is sharded into
per-mini-batch partitions; each partition is one columnar file stored
*contiguously on a single device* so ISP can preprocess it locally.  The
cluster spreads partitions across devices round-robin (the paper's example
stores consecutive partitions on different SSDs).
"""

from __future__ import annotations

import enum
from typing import Dict, List, Optional, Sequence, Union

from repro.dataio.partition import Partition
from repro.errors import ConfigurationError
from repro.storage.smartssd import SmartSsd
from repro.storage.ssd import SsdModel

Device = Union[SsdModel, SmartSsd]


class PlacementPolicy(enum.Enum):
    """How partitions map to devices."""

    ROUND_ROBIN = "round_robin"
    FILL_FIRST = "fill_first"


def _underlying_ssd(device: Device) -> SsdModel:
    return device.ssd if isinstance(device, SmartSsd) else device


class DistributedStorage:
    """A set of storage devices holding a partitioned dataset."""

    def __init__(
        self,
        devices: Sequence[Device],
        policy: PlacementPolicy = PlacementPolicy.ROUND_ROBIN,
    ) -> None:
        if not devices:
            raise ConfigurationError("a storage cluster needs devices")
        self.devices: List[Device] = list(devices)
        self.policy = policy
        self._placement: Dict[str, int] = {}

    # -- placement -----------------------------------------------------------

    @staticmethod
    def partition_key(dataset: str, index: int) -> str:
        """Canonical object key of one partition."""
        return f"{dataset}/partition-{index:06d}"

    def store_partitions(self, dataset: str, partitions: Sequence[Partition]) -> None:
        """Place every partition on a device per the policy."""
        for order, partition in enumerate(partitions):
            key = self.partition_key(dataset, partition.index)
            device_idx = self._choose_device(order, len(partition.file_bytes))
            _underlying_ssd(self.devices[device_idx]).write_object(
                key, partition.file_bytes
            )
            self._placement[key] = device_idx

    def _choose_device(self, order: int, size: int) -> int:
        if self.policy is PlacementPolicy.ROUND_ROBIN:
            return order % len(self.devices)
        for idx, device in enumerate(self.devices):
            ssd = _underlying_ssd(device)
            if ssd.bytes_stored + size <= ssd.capacity_bytes:
                return idx
        raise ConfigurationError("no device has room for this partition")

    # -- lookup ------------------------------------------------------------------

    def device_of(self, dataset: str, index: int) -> Device:
        """The device holding one partition (ISP locality queries)."""
        key = self.partition_key(dataset, index)
        if key not in self._placement:
            raise ConfigurationError(f"partition {key!r} not stored")
        return self.devices[self._placement[key]]

    def read_partition(self, dataset: str, index: int) -> bytes:
        """Read one partition's columnar file bytes."""
        key = self.partition_key(dataset, index)
        device = self.device_of(dataset, index)
        return _underlying_ssd(device).read_object(key)

    def partitions_on(self, device_index: int, dataset: Optional[str] = None) -> List[str]:
        """Keys of partitions placed on one device."""
        if device_index < 0 or device_index >= len(self.devices):
            raise ConfigurationError(f"no device {device_index}")
        keys = [k for k, d in self._placement.items() if d == device_index]
        if dataset is not None:
            keys = [k for k in keys if k.startswith(f"{dataset}/")]
        return sorted(keys)

    @property
    def num_partitions(self) -> int:
        """Total partitions stored across the cluster."""
        return len(self._placement)

    def total_bytes(self) -> float:
        """Bytes stored across all devices."""
        return sum(_underlying_ssd(d).bytes_stored for d in self.devices)

"""Unit and property tests for the column-chunk encodings."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataio.encoding import (
    Encoding,
    best_encoding,
    decode_column,
    encode_column,
    encoded_size,
    read_uvarint,
    write_uvarint,
)
from repro.errors import EncodingError


class TestVarintPrimitives:
    def test_roundtrip_small(self):
        buf = bytearray()
        write_uvarint(0, buf)
        write_uvarint(127, buf)
        write_uvarint(128, buf)
        value, offset = read_uvarint(bytes(buf), 0)
        assert value == 0
        value, offset = read_uvarint(bytes(buf), offset)
        assert value == 127
        value, offset = read_uvarint(bytes(buf), offset)
        assert value == 128
        assert offset == len(buf)

    def test_negative_rejected(self):
        with pytest.raises(EncodingError):
            write_uvarint(-1, bytearray())

    def test_truncated_varint(self):
        with pytest.raises(EncodingError):
            read_uvarint(b"\x80", 0)

    def test_overlong_varint(self):
        with pytest.raises(EncodingError):
            read_uvarint(b"\x80" * 11 + b"\x01", 0)

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_roundtrip_property(self, value):
        buf = bytearray()
        write_uvarint(value, buf)
        decoded, offset = read_uvarint(bytes(buf), 0)
        assert decoded == value
        assert offset == len(buf)


class TestCodecRoundtrips:
    @pytest.mark.parametrize("encoding", list(Encoding))
    def test_int64_roundtrip(self, encoding):
        values = np.array([0, 1, -5, 1 << 40, -(1 << 40), 7, 7, 7], dtype=np.int64)
        decoded = decode_column(encode_column(values, encoding))
        np.testing.assert_array_equal(decoded, values)
        assert decoded.dtype == np.int64

    def test_plain_float32(self):
        values = np.array([1.5, -2.25, np.nan, 0.0], dtype=np.float32)
        decoded = decode_column(encode_column(values, Encoding.PLAIN))
        np.testing.assert_array_equal(
            np.nan_to_num(decoded, nan=-1), np.nan_to_num(values, nan=-1)
        )

    def test_empty_column(self):
        for encoding in Encoding:
            values = np.array([], dtype=np.int64)
            decoded = decode_column(encode_column(values, encoding))
            assert len(decoded) == 0

    def test_int8_labels_rle(self):
        labels = np.array([0] * 100 + [1] * 3 + [0] * 50, dtype=np.int8)
        chunk = encode_column(labels, Encoding.RLE)
        assert len(chunk) < labels.nbytes  # RLE actually compresses runs
        np.testing.assert_array_equal(decode_column(chunk), labels)

    def test_varint_compresses_small_ids(self):
        values = np.arange(1000, dtype=np.int64) % 100
        assert encoded_size(values, Encoding.VARINT) < encoded_size(
            values, Encoding.PLAIN
        )

    def test_dictionary_compresses_low_cardinality(self):
        values = np.array([123456789] * 500 + [987654321] * 500, dtype=np.int64)
        assert encoded_size(values, Encoding.DICTIONARY) < encoded_size(
            values, Encoding.PLAIN
        )

    @given(
        st.lists(st.integers(min_value=-(2**62), max_value=2**62), max_size=200),
        st.sampled_from(list(Encoding)),
    )
    @settings(max_examples=60, deadline=None)
    def test_roundtrip_property(self, values, encoding):
        column = np.array(values, dtype=np.int64)
        decoded = decode_column(encode_column(column, encoding))
        np.testing.assert_array_equal(decoded, column)


class TestFramingAndErrors:
    def test_crc_detects_corruption(self):
        chunk = bytearray(encode_column(np.arange(100, dtype=np.int64), Encoding.PLAIN))
        chunk[10] ^= 0xFF
        with pytest.raises(EncodingError, match="CRC"):
            decode_column(bytes(chunk))

    def test_too_short_chunk(self):
        with pytest.raises(EncodingError, match="too short"):
            decode_column(b"\x00\x01")

    def test_unknown_encoding_byte(self):
        chunk = bytearray(encode_column(np.arange(4, dtype=np.int64), Encoding.PLAIN))
        # flip the codec byte and fix the CRC by re-encoding manually
        import struct
        import zlib

        body = bytes([99]) + bytes(chunk[1:-4])
        crc = zlib.crc32(body) & 0xFFFFFFFF
        with pytest.raises(EncodingError, match="unknown encoding"):
            decode_column(body + struct.pack("<I", crc))

    def test_non_integer_rle_rejected(self):
        with pytest.raises(EncodingError):
            encode_column(np.zeros(4, dtype=np.float32), Encoding.RLE)

    def test_2d_rejected(self):
        with pytest.raises(EncodingError):
            encode_column(np.zeros((2, 2), dtype=np.int64), Encoding.PLAIN)

    def test_unsupported_dtype(self):
        with pytest.raises(EncodingError):
            encode_column(np.zeros(4, dtype=np.uint16), Encoding.PLAIN)


class TestBestEncoding:
    def test_floats_are_plain(self):
        assert best_encoding(np.zeros(16, dtype=np.float32)) is Encoding.PLAIN

    def test_runs_pick_rle(self):
        values = np.zeros(10_000, dtype=np.int64)
        assert best_encoding(values) is Encoding.RLE

    def test_best_is_minimal(self):
        values = np.arange(500, dtype=np.int64)
        chosen = best_encoding(values)
        sizes = {enc: encoded_size(values, enc) for enc in Encoding}
        assert sizes[chosen] == min(sizes.values())

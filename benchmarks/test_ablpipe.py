"""Benchmark: ablation/sensitivity study repro.experiments.abl_double_buffering."""

from conftest import assert_claims, report

from repro.experiments import abl_double_buffering


def test_ablpipe(benchmark):
    """Time the abl_double_buffering study and verify its expected-shape claims."""
    result = benchmark(abl_double_buffering.run)
    report(result)
    assert_claims(result)

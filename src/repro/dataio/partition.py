"""Row-range partitioning of a logical table into columnar files.

Section IV-B of the paper: "A group of rows within the tabular data is
sharded into partitions and different partitions are stored as independent
columnar files in a distributed storage system", and — crucially for PreSto's
scalability argument — all blocks of one partition are stored contiguously on
a *single* storage device (Meta's Tectonic behaviour), so a mini-batch can be
preprocessed entirely locally by one SmartSSD.

A partition is sized to hold exactly one training mini-batch by default
(8,192 rows), matching the paper's batch size.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

import numpy as np

from repro.dataio.columnar import ColumnarFileWriter, TableData
from repro.dataio.schema import ColumnKind, TableSchema
from repro.errors import PartitionError


@dataclass(frozen=True)
class Partition:
    """One shard of the table: a contiguous row range and its file bytes."""

    index: int
    row_start: int
    row_stop: int
    file_bytes: bytes

    @property
    def num_rows(self) -> int:
        """Rows contained in this partition."""
        return self.row_stop - self.row_start

    @property
    def size(self) -> int:
        """Encoded size of this partition's columnar file."""
        return len(self.file_bytes)


class RowPartitioner:
    """Slice a table into per-mini-batch partitions, each its own file."""

    def __init__(
        self,
        schema: TableSchema,
        rows_per_partition: int = 8192,
        row_group_size: int = 8192,
    ) -> None:
        if rows_per_partition <= 0:
            raise PartitionError("rows_per_partition must be positive")
        self.schema = schema
        self.rows_per_partition = rows_per_partition
        self._writer = ColumnarFileWriter(schema, row_group_size=row_group_size)

    def _slice(self, data: TableData, start: int, stop: int) -> TableData:
        out: TableData = {}
        for column in self.schema.columns():
            raw = data[column.name]
            if column.kind is ColumnKind.SPARSE:
                lengths, values = raw
                offsets = np.concatenate(([0], np.cumsum(lengths)))
                out[column.name] = (
                    np.asarray(lengths[start:stop], dtype=np.int32),
                    np.asarray(
                        values[offsets[start] : offsets[stop]], dtype=np.int64
                    ),
                )
            else:
                out[column.name] = np.asarray(raw[start:stop])
        return out

    def partitions(self, data: TableData) -> Iterator[Partition]:
        """Yield partitions of ``data`` in row order."""
        num_rows = len(data[self.schema.label.name])
        if num_rows == 0:
            raise PartitionError("cannot partition an empty table")
        for index, start in enumerate(range(0, num_rows, self.rows_per_partition)):
            stop = min(start + self.rows_per_partition, num_rows)
            shard = self._slice(data, start, stop)
            yield Partition(
                index=index,
                row_start=start,
                row_stop=stop,
                file_bytes=self._writer.write(shard),
            )

    def partition_all(self, data: TableData) -> List[Partition]:
        """Materialize every partition (small tables / tests)."""
        return list(self.partitions(data))


def place_round_robin(
    partitions: List[Partition], num_devices: int
) -> Dict[int, List[Partition]]:
    """Assign partitions to storage devices round-robin.

    Mirrors the paper's Figure 1 where consecutive partitions land on
    different SSDs of the distributed storage system.
    """
    if num_devices <= 0:
        raise PartitionError("need at least one storage device")
    placement: Dict[int, List[Partition]] = {d: [] for d in range(num_devices)}
    for partition in partitions:
        placement[partition.index % num_devices].append(partition)
    return placement


def partition_stats(partitions: List[Partition]) -> Tuple[int, int, float]:
    """Return (total_rows, total_bytes, mean_bytes_per_row) of a partition set."""
    if not partitions:
        raise PartitionError("no partitions given")
    total_rows = sum(p.num_rows for p in partitions)
    total_bytes = sum(p.size for p in partitions)
    return total_rows, total_bytes, total_bytes / max(total_rows, 1)

"""Tests for the columnar file format: round trips, selective reads,
row groups, corruption handling."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dataio.columnar import (
    ColumnarFileReader,
    ColumnarFileWriter,
    write_table,
)
from repro.dataio.schema import TableSchema
from repro.errors import FormatError, SchemaError


def make_table(num_rows=64, num_dense=2, num_sparse=2, seed=0):
    rng = np.random.default_rng(seed)
    schema = TableSchema.with_counts(num_dense, num_sparse)
    data = {"label": (rng.random(num_rows) < 0.5).astype(np.int8)}
    for name in schema.dense_names:
        data[name] = rng.random(num_rows).astype(np.float32)
    for name in schema.sparse_names:
        lengths = rng.integers(0, 5, num_rows).astype(np.int32)
        values = rng.integers(0, 1 << 30, int(lengths.sum())).astype(np.int64)
        data[name] = (lengths, values)
    return schema, data


class TestRoundTrip:
    def test_full_roundtrip(self):
        schema, data = make_table()
        buf = write_table(schema, data, row_group_size=16)
        reader = ColumnarFileReader(buf)
        assert reader.num_rows == 64
        for name in schema.dense_names:
            np.testing.assert_array_equal(reader.read_column(name), data[name])
        for name in schema.sparse_names:
            lengths, values = reader.read_column(name)
            np.testing.assert_array_equal(lengths, data[name][0])
            np.testing.assert_array_equal(values, data[name][1])
        np.testing.assert_array_equal(reader.read_column("label"), data["label"])

    def test_row_group_boundary_not_multiple(self):
        schema, data = make_table(num_rows=50)
        buf = write_table(schema, data, row_group_size=16)  # 50 = 3*16 + 2
        reader = ColumnarFileReader(buf)
        assert reader.footer.row_group_rows == [16, 16, 16, 2]
        np.testing.assert_array_equal(reader.read_column("int_0"), data["int_0"])

    def test_single_row_table(self):
        schema, data = make_table(num_rows=1)
        reader = ColumnarFileReader(write_table(schema, data))
        assert reader.num_rows == 1

    def test_sparse_with_all_empty_rows(self):
        schema = TableSchema.with_counts(1, 1)
        data = {
            "label": np.zeros(4, dtype=np.int8),
            "int_0": np.zeros(4, dtype=np.float32),
            "cat_0": (np.zeros(4, dtype=np.int32), np.array([], dtype=np.int64)),
        }
        reader = ColumnarFileReader(write_table(schema, data))
        lengths, values = reader.read_column("cat_0")
        assert lengths.tolist() == [0, 0, 0, 0]
        assert len(values) == 0


class TestSelectiveReads:
    def test_reads_only_requested_columns(self):
        schema, data = make_table(num_dense=4, num_sparse=4)
        buf = write_table(schema, data)
        reader = ColumnarFileReader(buf)
        reader.read_columns(["int_0", "cat_0"])
        partial = reader.bytes_read

        full_reader = ColumnarFileReader(buf)
        full_reader.read_columns(
            ["label"] + schema.dense_names + schema.sparse_names
        )
        assert partial < full_reader.bytes_read

    def test_bytes_read_matches_footer(self):
        schema, data = make_table()
        reader = ColumnarFileReader(write_table(schema, data))
        reader.read_column("int_1")
        assert reader.bytes_read == reader.footer.column_bytes("int_1")

    def test_read_row_group(self):
        schema, data = make_table(num_rows=40)
        reader = ColumnarFileReader(write_table(schema, data, row_group_size=10))
        group = reader.read_row_group(2, ["int_0", "cat_0", "label"])
        np.testing.assert_array_equal(group["int_0"], data["int_0"][20:30])
        np.testing.assert_array_equal(group["label"], data["label"][20:30])
        lengths, values = group["cat_0"]
        np.testing.assert_array_equal(lengths, data["cat_0"][0][20:30])

    def test_row_group_out_of_range(self):
        schema, data = make_table()
        reader = ColumnarFileReader(write_table(schema, data))
        with pytest.raises(FormatError, match="out of range"):
            reader.read_row_group(99, ["int_0"])

    def test_unknown_column(self):
        schema, data = make_table()
        reader = ColumnarFileReader(write_table(schema, data))
        with pytest.raises(FormatError):
            reader.read_column("does_not_exist")


class TestWriterValidation:
    def test_missing_column_rejected(self):
        schema, data = make_table()
        del data["int_0"]
        with pytest.raises(SchemaError, match="int_0"):
            write_table(schema, data)

    def test_bad_row_group_size(self):
        schema, _ = make_table()
        with pytest.raises(FormatError):
            ColumnarFileWriter(schema, row_group_size=0)

    def test_inconsistent_lengths_rejected(self):
        schema, data = make_table()
        lengths, values = data["cat_0"]
        data["cat_0"] = (lengths, values[:-1])
        with pytest.raises(SchemaError):
            write_table(schema, data)


class TestFileLevelErrors:
    def test_bad_magic(self):
        with pytest.raises(FormatError, match="magic"):
            ColumnarFileReader(b"NOTAFILE" * 10)

    def test_too_small(self):
        with pytest.raises(FormatError, match="too small"):
            ColumnarFileReader(b"x")

    def test_truncated_footer(self):
        schema, data = make_table()
        buf = write_table(schema, data)
        with pytest.raises(FormatError):
            ColumnarFileReader(buf[: len(buf) // 2] + buf[-10:])


class TestPropertyRoundTrip:
    @given(
        num_rows=st.integers(min_value=1, max_value=120),
        row_group=st.integers(min_value=1, max_value=64),
        seed=st.integers(min_value=0, max_value=10_000),
    )
    @settings(max_examples=25, deadline=None)
    def test_any_shape_roundtrips(self, num_rows, row_group, seed):
        schema, data = make_table(num_rows=num_rows, seed=seed)
        reader = ColumnarFileReader(
            write_table(schema, data, row_group_size=row_group)
        )
        assert reader.num_rows == num_rows
        np.testing.assert_array_equal(reader.read_column("int_0"), data["int_0"])
        lengths, values = reader.read_column("cat_1")
        np.testing.assert_array_equal(lengths, data["cat_1"][0])
        np.testing.assert_array_equal(values, data["cat_1"][1])

"""Microbenchmarks of the functional preprocessing kernels.

These measure this reproduction's *actual* numpy kernel throughput (not the
calibrated models) on mini-batch-sized columns — useful for comparing the
functional layer against the paper's per-op characterization.
"""

import numpy as np
import pytest

from repro.features.specs import get_model
from repro.features.synthetic import SyntheticTableGenerator
from repro.ops.bucketize import bucketize
from repro.ops.lognorm import log_normalize
from repro.ops.sigridhash import sigrid_hash

BATCH = 8192


@pytest.fixture(scope="module")
def rm5_column():
    spec = get_model("RM5")
    gen = SyntheticTableGenerator(spec, seed=0)
    rng = np.random.default_rng(0)
    dense = rng.lognormal(1.5, 1.2, BATCH).astype(np.float64)
    sparse = rng.integers(0, 2**40, BATCH * 20).astype(np.int64)
    boundaries = gen.bucket_boundaries("int_0")
    return dense, sparse, boundaries


def test_bucketize_kernel(benchmark, rm5_column):
    """Digitize one dense column of a mini-batch (m=4096 boundaries)."""
    dense, _, boundaries = rm5_column
    out = benchmark(bucketize, dense, boundaries)
    assert out.max() <= len(boundaries)


def test_sigridhash_kernel(benchmark, rm5_column):
    """Hash one sparse column of a mini-batch (avg length 20)."""
    _, sparse, _ = rm5_column
    out = benchmark(sigrid_hash, sparse, 0xC0FFEE, 500_000)
    assert out.max() < 500_000


def test_log_kernel(benchmark, rm5_column):
    """Log-normalize one dense column of a mini-batch."""
    dense, _, _ = rm5_column
    out = benchmark(log_normalize, dense)
    assert np.all(out >= 0)


def test_full_pipeline_rm1(benchmark):
    """The entire Transform phase on a small RM1 batch (functional layer)."""
    from repro.features.synthetic import generate_raw_table
    from repro.ops.pipeline import PreprocessingPipeline

    spec = get_model("RM1")
    pipe = PreprocessingPipeline(spec)
    raw = generate_raw_table(spec, 1024)
    batch, _ = benchmark(pipe.run, raw)
    assert batch.batch_size == 1024

"""Tests for unit helpers."""

import pytest

from repro import units


class TestConversions:
    def test_gbps(self):
        assert units.gbps(10.0) == pytest.approx(1.25e9)

    def test_gb_per_s(self):
        assert units.gb_per_s(3.0) == pytest.approx(3e9)

    def test_mhz(self):
        assert units.mhz(223.0) == pytest.approx(223e6)

    def test_joules_to_kwh(self):
        assert units.joules_to_kwh(3_600_000.0) == pytest.approx(1.0)

    def test_year_consistency(self):
        assert units.YEAR == pytest.approx(365 * 24 * 3600.0)


class TestPrettyPrinting:
    def test_pretty_bytes(self):
        assert units.pretty_bytes(512) == "512.0 B"
        assert units.pretty_bytes(2048) == "2.0 KiB"
        assert units.pretty_bytes(5 * units.MIB) == "5.0 MiB"
        assert units.pretty_bytes(3 * units.GIB) == "3.0 GiB"
        assert "TiB" in units.pretty_bytes(5 * 1024 * units.GIB)

    def test_pretty_time_ranges(self):
        assert units.pretty_time(2.0) == "2.000 s"
        assert units.pretty_time(5e-3) == "5.000 ms"
        assert units.pretty_time(5e-6) == "5.000 us"
        assert "ns" in units.pretty_time(5e-9)

"""Tests for the data-generation/ingestion substrate (Figure 1, stage 1)."""

import numpy as np
import pytest

from repro.errors import CapacityError, ConfigurationError
from repro.features.ingestion import (
    EventFilter,
    InferenceServerSimulator,
    InteractionEvent,
    LabeledExample,
    LoggingEngine,
    StreamingLabeler,
    Warehouse,
    run_ingestion,
)
from repro.features.specs import get_model
from repro.ops.pipeline import PreprocessingPipeline


def impression(event_id, user, t, spec=None, dense=None, sparse=None):
    spec = spec or get_model("RM1")
    return InteractionEvent(
        event_id=event_id,
        user_id=user,
        timestamp=t,
        kind="impression",
        dense=dense if dense is not None else tuple([1.0] * spec.num_dense),
        sparse=sparse
        if sparse is not None
        else tuple((7,) for _ in range(spec.num_sparse)),
    )


def click(event_id, user, t):
    return InteractionEvent(event_id=event_id, user_id=user, timestamp=t, kind="click")


class TestLoggingEngine:
    def test_log_and_drain_fifo(self):
        log = LoggingEngine()
        log.log(impression(1, 10, 0.0))
        log.log(impression(2, 11, 1.0))
        drained = log.drain("impression")
        assert [e.event_id for e in drained] == [1, 2]
        assert log.buffered == 0
        assert log.total_logged == 2
        assert log.total_drained == 2

    def test_categories_independent(self):
        log = LoggingEngine()
        log.log(impression(1, 10, 0.0))
        log.log(click(2, 10, 5.0))
        assert len(log.drain("click")) == 1
        assert len(log.drain("impression")) == 1

    def test_drain_limit(self):
        log = LoggingEngine()
        log.log_many(impression(i, i, float(i)) for i in range(5))
        assert len(log.drain("impression", limit=2)) == 2
        assert log.buffered == 3

    def test_overflow(self):
        log = LoggingEngine(buffer_capacity=1)
        log.log(impression(1, 10, 0.0))
        with pytest.raises(CapacityError, match="overflow"):
            log.log(impression(2, 11, 1.0))

    def test_drain_empty(self):
        assert LoggingEngine().drain("impression") == []


class TestEventFilter:
    def test_drops_bots(self):
        spec = get_model("RM1")
        events = [impression(1, -5, 0.0), impression(2, 5, 0.0)]
        filt = EventFilter(spec, is_bot=lambda e: e.user_id < 0)
        kept = filt.apply(events)
        assert [e.event_id for e in kept] == [2]
        assert filt.dropped_bots == 1

    def test_drops_malformed(self):
        spec = get_model("RM1")
        bad_dense = impression(1, 5, 0.0, dense=(1.0,))  # too few dense
        bad_sparse = impression(2, 5, 0.0, sparse=((-1,),) * spec.num_sparse)
        filt = EventFilter(spec)
        assert filt.apply([bad_dense, bad_sparse]) == []
        assert filt.dropped_malformed == 2


class TestStreamingLabeler:
    def test_click_within_window_labels_one(self):
        labeler = StreamingLabeler(attribution_window=100.0)
        labeled = labeler.label(
            [impression(1, 10, 0.0)], [click(2, 10, 50.0)]
        )
        assert labeled[0].label == 1

    def test_click_outside_window_labels_zero(self):
        labeler = StreamingLabeler(attribution_window=10.0)
        labeled = labeler.label([impression(1, 10, 0.0)], [click(2, 10, 50.0)])
        assert labeled[0].label == 0

    def test_click_from_other_user_ignored(self):
        labeler = StreamingLabeler()
        labeled = labeler.label([impression(1, 10, 0.0)], [click(2, 99, 5.0)])
        assert labeled[0].label == 0

    def test_click_before_impression_ignored(self):
        labeler = StreamingLabeler()
        labeled = labeler.label([impression(1, 10, 100.0)], [click(2, 10, 50.0)])
        assert labeled[0].label == 0

    def test_kind_validation(self):
        labeler = StreamingLabeler()
        with pytest.raises(ConfigurationError, match="not a click"):
            labeler.label([impression(1, 10, 0.0)], [impression(2, 10, 1.0)])
        with pytest.raises(ConfigurationError, match="not an impression"):
            labeler.label([click(1, 10, 0.0)], [])

    def test_bad_window(self):
        with pytest.raises(ConfigurationError):
            StreamingLabeler(attribution_window=0.0)


class TestWarehouse:
    def test_table_schema_complete(self):
        spec = get_model("RM1")
        warehouse = Warehouse(spec)
        labeler = StreamingLabeler()
        warehouse.ingest(
            labeler.label([impression(i, i, 0.0) for i in range(4)], [])
        )
        table = warehouse.to_table()
        for column in spec.schema().columns():
            assert column.name in table
        assert len(table["label"]) == 4
        assert len(warehouse) == 0  # consumed

    def test_partial_materialization(self):
        spec = get_model("RM1")
        warehouse = Warehouse(spec)
        labeler = StreamingLabeler()
        warehouse.ingest(labeler.label([impression(i, i, 0.0) for i in range(5)], []))
        table = warehouse.to_table(max_rows=2)
        assert len(table["label"]) == 2
        assert len(warehouse) == 3

    def test_empty_warehouse(self):
        with pytest.raises(ConfigurationError, match="empty"):
            Warehouse(get_model("RM1")).to_table()


class TestEndToEndIngestion:
    def test_full_path_produces_preprocessable_table(self):
        spec = get_model("RM1")
        table, stats = run_ingestion(spec, num_impressions=200, seed=1)
        assert stats["rows"] == stats["impressions"] - stats["dropped_bots"]
        assert stats["dropped_malformed"] == 0
        assert 0 < stats["positives"] < stats["rows"]
        # the warehouse output feeds straight into the Transform phase
        batch, counts = PreprocessingPipeline(spec).run(table)
        assert batch.batch_size == stats["rows"]
        batch.validate_index_range(PreprocessingPipeline(spec).table_sizes)

    def test_bot_fraction_zero(self):
        spec = get_model("RM1")
        sim = InferenceServerSimulator(spec, seed=0, bot_fraction=0.0)
        impressions, _ = sim.generate(50)
        assert all(e.user_id >= 0 for e in impressions)

    def test_simulator_validation(self):
        spec = get_model("RM1")
        with pytest.raises(ConfigurationError):
            InferenceServerSimulator(spec, bot_fraction=1.5)
        with pytest.raises(ConfigurationError):
            InferenceServerSimulator(spec).generate(0)

    def test_deterministic(self):
        spec = get_model("RM1")
        t1, s1 = run_ingestion(spec, 100, seed=9)
        t2, s2 = run_ingestion(spec, 100, seed=9)
        assert s1 == s2
        np.testing.assert_array_equal(t1["label"], t2["label"])


class TestBatchAssemblyAlignment:
    def test_extra_dense_values_do_not_shift_rows(self):
        # an over-long dense tuple on one event must not misalign the
        # columns assembled for subsequent rows (regression test for the
        # column-major fromiter rewrite)
        spec = get_model("RM1")
        warehouse = Warehouse(spec)
        events = [
            impression(1, 1, 0.0, spec=spec),
            impression(
                2, 2, 1.0, spec=spec,
                dense=tuple([2.0] * spec.num_dense) + (99.0,),  # one extra
            ),
            impression(3, 3, 2.0, spec=spec,
                       dense=tuple([3.0] * spec.num_dense)),
        ]
        warehouse.ingest(LabeledExample(event=e, label=0) for e in events)
        table = warehouse.to_table()
        first_dense = spec.schema().dense_names[0]
        np.testing.assert_array_equal(
            table[first_dense], np.array([1.0, 2.0, 3.0], dtype=np.float32)
        )

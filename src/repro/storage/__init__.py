"""Storage substrate: SSD and SmartSSD device models, node configurations,
and the distributed storage cluster with partition placement (Figure 1's
data-storage stage and Figure 8's PreSto-augmented storage system)."""

from repro.storage.ssd import SsdModel
from repro.storage.smartssd import SmartSsd
from repro.storage.node import StorageNode, CpuNode, GpuNode
from repro.storage.cluster import DistributedStorage, PlacementPolicy

__all__ = [
    "SsdModel",
    "SmartSsd",
    "StorageNode",
    "CpuNode",
    "GpuNode",
    "DistributedStorage",
    "PlacementPolicy",
]

"""Line-oriented JSON protocol: attach, submit, stream, detach.

External processes talk to a running :class:`PreprocessService` over a
local TCP socket, one JSON object per line:

    -> {"op": "submit", "job": {"model": "RM1", "num_rows": 4096, ...}}
    <- {"ok": true, "result": {"job_id": "job-000001", "state": "queued", ...}}

    -> {"op": "watch", "job_id": "job-000001"}
    <- {"ok": true, "event": {... "state": "running", ...}}
    <- {"ok": true, "event": {... "state": "completed", ...}, "done": true}

Ops: ``ping``, ``submit`` (optional ``"wait": true`` blocks until
terminal), ``status``, ``jobs`` (optional ``"state"`` filter), ``cancel``,
``watch`` (streams a line per transition — the minibatch-ready
notification feed), ``counts``, and ``shutdown`` (optional ``"drain"``,
default true).  Failures come back as ``{"ok": false, "error": ...,
"kind": "<error class>"}`` and :class:`ServiceClient` re-raises the typed
:mod:`repro.errors` family, so backpressure (``QueueFullError``) is as
explicit across the wire as in process.

Every client request opens a fresh connection — attaching and detaching is
the protocol's default mode; the daemon's state lives in the service, not
the socket.  The server writes ``endpoint.json`` (host, port, pid) into the
spool directory so clients can discover a daemon by spool path alone.
"""

from __future__ import annotations

import json
import os
import socket
import socketserver
import threading
from typing import Any, Dict, Iterator, List, Optional

from repro import errors
from repro.errors import ProtocolError, ReproError, ServeError
from repro.faults.injector import fault_point
from repro.serve.records import JobRecord
from repro.serve.service import PreprocessService

#: protocol revision, negotiated nowhere — checked in ping for sanity
PROTOCOL_VERSION = 1

ENDPOINT_FILENAME = "endpoint.json"


def _error_payload(exc: BaseException) -> Dict[str, Any]:
    return {"ok": False, "error": str(exc), "kind": type(exc).__name__}


def _raise_remote(payload: Dict[str, Any]) -> None:
    """Re-raise a server-side error as its typed local counterpart."""
    kind = payload.get("kind", "ServeError")
    message = payload.get("error", "remote error")
    exc_type = getattr(errors, kind, None)
    if isinstance(exc_type, type) and issubclass(exc_type, ReproError):
        raise exc_type(message)
    if kind == "TimeoutError":
        raise TimeoutError(message)
    raise ServeError(f"{kind}: {message}")


class _Handler(socketserver.StreamRequestHandler):
    """One connection: read request lines, answer (or stream) per line."""

    def handle(self) -> None:
        for raw in self.rfile:
            line = raw.decode("utf-8").strip()
            if not line:
                continue
            try:
                request = json.loads(line)
                if not isinstance(request, dict) or "op" not in request:
                    raise ProtocolError(
                        "requests must be JSON objects with an 'op' key"
                    )
                keep_going = self._dispatch(request)
            except (ValueError, ReproError, TimeoutError) as exc:
                keep_going = self._send(_error_payload(exc))
            except BrokenPipeError:
                return
            if not keep_going:
                return

    def _send(self, payload: Dict[str, Any]) -> bool:
        # fault point: the connection dies mid-reply — the client sees EOF
        # (or a half line) instead of an answer; service state is unaffected
        if fault_point("conn-drop") is not None:
            try:
                self.connection.shutdown(socket.SHUT_RDWR)
            except OSError:
                pass
            return False
        try:
            self.wfile.write((json.dumps(payload) + "\n").encode("utf-8"))
            self.wfile.flush()
            return True
        except (BrokenPipeError, ConnectionResetError, OSError):
            return False  # client detached mid-stream: fine, stop sending

    def _dispatch(self, request: Dict[str, Any]) -> bool:
        server: "ServiceServer" = self.server  # type: ignore[assignment]
        service = server.service
        op = request["op"]
        if op == "ping":
            return self._send(
                {"ok": True, "result": "pong", "version": PROTOCOL_VERSION}
            )
        if op == "submit":
            if "job" not in request:
                raise ProtocolError("submit needs a 'job' object")
            record = service.submit(
                request["job"],
                source=request.get("source", "client"),
                timeout=request.get("timeout"),
            )
            if request.get("wait"):
                record = service.wait(
                    record.job_id, timeout=request.get("wait_timeout")
                )
            return self._send({"ok": True, "result": record.to_dict()})
        if op == "status":
            record = service.status(_job_id(request))
            return self._send({"ok": True, "result": record.to_dict()})
        if op == "jobs":
            records = service.jobs(state=request.get("state"))
            return self._send(
                {"ok": True, "result": [r.to_dict() for r in records]}
            )
        if op == "counts":
            return self._send({"ok": True, "result": service.counts()})
        if op == "cancel":
            cancelled = service.cancel(_job_id(request))
            return self._send({"ok": True, "result": {"cancelled": cancelled}})
        if op == "watch":
            for record in service.watch(
                _job_id(request), timeout=request.get("timeout")
            ):
                payload: Dict[str, Any] = {"ok": True, "event": record.to_dict()}
                if record.is_terminal:
                    payload["done"] = True
                if not self._send(payload):
                    return False  # client detached; daemon keeps running
            return True
        if op == "shutdown":
            drain = request.get("drain", True)
            self._send({"ok": True, "result": {"draining": bool(drain)}})
            server.request_shutdown(drain=drain)
            return False
        raise ProtocolError(f"unknown op {request['op']!r}")


def _job_id(request: Dict[str, Any]) -> str:
    job_id = request.get("job_id")
    if not isinstance(job_id, str) or not job_id:
        raise ProtocolError(f"{request['op']} needs a 'job_id' string")
    return job_id


class _TcpServer(socketserver.ThreadingTCPServer):
    allow_reuse_address = True
    daemon_threads = True


class ServiceServer:
    """Serve one :class:`PreprocessService` on a local TCP endpoint."""

    def __init__(
        self,
        service: PreprocessService,
        host: str = "127.0.0.1",
        port: int = 0,
    ) -> None:
        self.service = service
        self._server = _TcpServer((host, port), _Handler)
        self._server.service = service  # type: ignore[attr-defined]
        self._server.request_shutdown = self.request_shutdown  # type: ignore[attr-defined]
        self.host, self.port = self._server.server_address[:2]
        self._thread: Optional[threading.Thread] = None
        self._shutdown_drain: Optional[bool] = None
        self._done = threading.Event()

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> "ServiceServer":
        """Start the service and accept connections on a daemon thread."""
        self.service.start()
        self._write_endpoint()
        self._thread = threading.Thread(
            target=self._server.serve_forever,
            kwargs={"poll_interval": 0.05},
            name="serve-acceptor",
            daemon=True,
        )
        self._thread.start()
        return self

    def request_shutdown(self, drain: bool = True) -> None:
        """Initiate shutdown from a handler thread (returns immediately)."""
        self._shutdown_drain = drain
        threading.Thread(target=self.stop, kwargs={"drain": drain},
                         name="serve-shutdown", daemon=True).start()

    def stop(self, drain: bool = True, timeout: Optional[float] = None) -> None:
        """Stop accepting, stop the service (drain or cancel), clean up."""
        if self._done.is_set():
            return
        self._server.shutdown()
        self._server.server_close()
        self.service.stop(drain=drain, timeout=timeout)
        self._remove_endpoint()
        self._done.set()

    def wait(self, timeout: Optional[float] = None) -> bool:
        """Block until a shutdown request has fully completed."""
        return self._done.wait(timeout)

    def __enter__(self) -> "ServiceServer":
        return self.start()

    def __exit__(self, exc_type, exc, tb) -> None:
        self.stop(drain=exc_type is None)

    # -- endpoint discovery --------------------------------------------------

    @property
    def endpoint_path(self) -> Optional[str]:
        if self.service.spool_dir is None:
            return None
        return os.path.join(self.service.spool_dir, ENDPOINT_FILENAME)

    def _write_endpoint(self) -> None:
        if self.endpoint_path is None:
            return
        payload = {"host": self.host, "port": self.port, "pid": os.getpid(),
                   "version": PROTOCOL_VERSION}
        # atomic publish: a client racing the daemon's startup (or a crash
        # mid-write) must see either no endpoint or a complete one — never
        # a half-written JSON object
        tmp = f"{self.endpoint_path}.tmp.{os.getpid()}"
        with open(tmp, "w") as handle:
            json.dump(payload, handle, indent=2)
            handle.write("\n")
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, self.endpoint_path)

    def _remove_endpoint(self) -> None:
        if self.endpoint_path is not None:
            try:
                os.remove(self.endpoint_path)
            except OSError:
                pass


def read_endpoint(spool_dir: str, check_alive: bool = True) -> Dict[str, Any]:
    """Read a daemon's ``endpoint.json`` from its spool directory.

    A SIGKILLed daemon never removes its endpoint file, so by default the
    recorded pid is checked: if that process no longer exists the endpoint
    is *stale* and a clear "daemon died" error is raised instead of letting
    the caller time out against a dead port (pass ``check_alive=False`` to
    read the payload regardless, e.g. for diagnostics).
    """
    path = os.path.join(spool_dir, ENDPOINT_FILENAME)
    try:
        with open(path) as handle:
            payload = json.load(handle)
    except FileNotFoundError:
        raise ServeError(
            f"no daemon endpoint at {path} — is `repro serve` running "
            "with this spool?"
        )
    except ValueError as exc:
        raise ServeError(f"corrupt endpoint file {path}: {exc}")
    if "host" not in payload or "port" not in payload:
        raise ServeError(f"endpoint file {path} lacks host/port")
    pid = payload.get("pid")
    if check_alive and isinstance(pid, int):
        if not _pid_alive(pid):
            raise ServeError(
                f"stale endpoint {path}: daemon pid {pid} died without "
                "cleaning up — restart `repro serve` on this spool to "
                "recover its interrupted jobs"
            )
    return payload


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (signal 0 probe)."""
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True  # exists, owned by someone else
    except OSError:
        return True  # can't tell: don't invent staleness
    return True


class ServiceClient:
    """Attach-per-request client for the serve protocol."""

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        spool_dir: Optional[str] = None,
        timeout: Optional[float] = 30.0,
    ) -> None:
        if host is None or port is None:
            if spool_dir is None:
                raise ServeError(
                    "client needs host+port or a spool_dir with endpoint.json"
                )
            endpoint = read_endpoint(spool_dir)
            host = host or endpoint["host"]
            port = port or int(endpoint["port"])
        self.host = host
        self.port = port
        self.timeout = timeout

    # -- plumbing ------------------------------------------------------------

    def _connect(self, timeout: Optional[float] = None) -> socket.socket:
        try:
            return socket.create_connection(
                (self.host, self.port),
                timeout=self.timeout if timeout is None else timeout,
            )
        except OSError as exc:
            raise ServeError(
                f"cannot reach daemon at {self.host}:{self.port}: {exc}"
            )

    def _roundtrip(self, request: Dict[str, Any]) -> Dict[str, Any]:
        # blocking ops (submit --wait) outlive the default socket timeout:
        # wait as long as the caller asked, or indefinitely if unbounded
        socket_timeout: Optional[float] = self.timeout
        if request.get("wait") or request["op"] == "watch":
            wait_timeout = request.get("wait_timeout", request.get("timeout"))
            socket_timeout = (
                None if wait_timeout is None else float(wait_timeout) + 10.0
            )
        with self._connect(timeout=socket_timeout) as conn:
            conn.sendall((json.dumps(request) + "\n").encode("utf-8"))
            reader = conn.makefile("r", encoding="utf-8")
            line = reader.readline()
        if not line:
            raise ProtocolError("daemon closed the connection without replying")
        payload = json.loads(line)
        if not payload.get("ok"):
            _raise_remote(payload)
        return payload

    # -- the client surface --------------------------------------------------

    def ping(self) -> bool:
        return self._roundtrip({"op": "ping"})["result"] == "pong"

    def submit(
        self,
        job,
        source: str = "client",
        wait: bool = False,
        wait_timeout: Optional[float] = None,
        timeout: Optional[float] = None,
    ) -> JobRecord:
        job_dict = job.to_dict() if hasattr(job, "to_dict") else dict(job)
        request: Dict[str, Any] = {
            "op": "submit", "job": job_dict, "source": source,
        }
        if wait:
            request["wait"] = True
            if wait_timeout is not None:
                request["wait_timeout"] = wait_timeout
        if timeout is not None:
            request["timeout"] = timeout
        return JobRecord.from_dict(self._roundtrip(request)["result"])

    def status(self, job_id: str) -> JobRecord:
        payload = self._roundtrip({"op": "status", "job_id": job_id})
        return JobRecord.from_dict(payload["result"])

    def jobs(self, state: Optional[str] = None) -> List[JobRecord]:
        request: Dict[str, Any] = {"op": "jobs"}
        if state is not None:
            request["state"] = state
        payload = self._roundtrip(request)
        return [JobRecord.from_dict(r) for r in payload["result"]]

    def counts(self) -> Dict[str, int]:
        return self._roundtrip({"op": "counts"})["result"]

    def cancel(self, job_id: str) -> bool:
        payload = self._roundtrip({"op": "cancel", "job_id": job_id})
        return bool(payload["result"]["cancelled"])

    def watch(
        self, job_id: str, timeout: Optional[float] = None
    ) -> Iterator[JobRecord]:
        """Stream record snapshots until the job is terminal."""
        request: Dict[str, Any] = {"op": "watch", "job_id": job_id}
        if timeout is not None:
            request["timeout"] = timeout
        socket_timeout = None if timeout is None else float(timeout) + 10.0
        with self._connect(timeout=socket_timeout) as conn:
            conn.sendall((json.dumps(request) + "\n").encode("utf-8"))
            reader = conn.makefile("r", encoding="utf-8")
            for line in reader:
                payload = json.loads(line)
                if not payload.get("ok"):
                    _raise_remote(payload)
                yield JobRecord.from_dict(payload["event"])
                if payload.get("done"):
                    return
        raise ProtocolError("watch stream ended before the job was terminal")

    def shutdown(self, drain: bool = True) -> bool:
        payload = self._roundtrip({"op": "shutdown", "drain": drain})
        return bool(payload["result"]["draining"]) == drain

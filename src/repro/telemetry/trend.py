"""Run summaries, the committed trend store, and noise-aware comparison.

A :class:`RunSummary` is one run's timing events collapsed into comparable
per-``(source, task, stage, metric)`` samples — ``best`` (the robust
statistic for timings), ``mean``, and ``count``.  A :class:`TrendStore` is
a directory of committed summaries (``benchmarks/trend/<run-id>.json`` in
this repo), which is what turns every journaled CI run into regression
evidence the next run can be compared against.

Comparison is deliberately noise-aware, because the evidence comes from
shared CI runners:

* **best-of-N baselines** — the baseline value for a series is the best
  over the last N committed runs, so one slow baseline run cannot make
  everything after it look like an improvement (or mask a regression);
* **per-metric relative thresholds** — wall-clock ``elapsed_s`` gates at
  2x (runners vary), per-element ``ns_per_element`` at 1.5x; callers can
  override per metric;
* **direction-aware** — ``elapsed_s``/``ns_per_element`` regress upward,
  ``mb_per_s``/``speedup_vs_scalar`` regress downward;
* **absolute noise floor** — sub-``min_elapsed_s`` timings (scheduler
  jitter territory) are never regressions; they stay in the table but
  classify as within-band.

The result is a :class:`TrendComparison` whose regressions *name the
offending task and stage* — "``batch/fig11/task`` elapsed_s 0.42 → 1.31
(3.1x > 2.0x)" — which is the whole point: CI should say which experiment
moved, not "the suite got slower".
"""

from __future__ import annotations

import dataclasses
import json
import os
import time
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.errors import TelemetryError
from repro.telemetry.events import TimingEvent

#: summary file format — bump to invalidate every committed summary
SUMMARY_SCHEMA = 1

#: metrics where larger values are better (everything else regresses up)
HIGHER_IS_BETTER = ("mb_per_s", "speedup_vs_scalar")

#: default per-metric regression thresholds (current/baseline ratio in the
#: bad direction).  Wall clock gates loosest: shared runners are noisy.
DEFAULT_THRESHOLDS = {
    "elapsed_s": 2.0,
    "ns_per_element": 1.5,
    "mb_per_s": 1.5,
    "speedup_vs_scalar": 1.5,
}

#: fallback threshold for metrics not named above
DEFAULT_THRESHOLD = 1.5

#: wall-clock samples where baseline AND current sit under this many
#: seconds are scheduler jitter, never regressions
DEFAULT_MIN_ELAPSED_S = 0.05

#: how many committed runs the best-of-N baseline draws from
DEFAULT_BASELINE_RUNS = 5

_STATUSES = ("regression", "improvement", "within", "new", "missing")


def higher_is_better(metric: str) -> bool:
    """Direction of ``metric`` (throughput-style metrics regress down)."""
    return metric in HIGHER_IS_BETTER or metric.endswith("_per_s")


def threshold_for(
    metric: str, overrides: Optional[Mapping[str, float]] = None
) -> float:
    """The regression threshold for ``metric`` (ratio in the bad
    direction; must be > 1)."""
    table = dict(DEFAULT_THRESHOLDS)
    table.update(overrides or {})
    value = float(table.get(metric, DEFAULT_THRESHOLD))
    if value <= 1.0:
        raise TelemetryError(
            f"threshold for {metric!r} must be > 1, got {value!r}"
        )
    return value


@dataclass(frozen=True)
class MetricSample:
    """One comparable scalar series from one run."""

    source: str
    task: str
    stage: str
    metric: str
    best: float
    mean: float
    count: int
    outcome: str = "ok"
    attempts: int = 1

    def __post_init__(self) -> None:
        for name in ("source", "task", "stage", "metric"):
            value = getattr(self, name)
            if not isinstance(value, str) or not value.strip():
                raise TelemetryError(
                    f"sample {name} must be a non-empty string, got {value!r}"
                )
        if not isinstance(self.count, int) or self.count < 1:
            raise TelemetryError(
                f"sample count must be a positive int, got {self.count!r}"
            )

    @property
    def key(self) -> str:
        return f"{self.source}/{self.task}/{self.stage}/{self.metric}"

    @property
    def series(self) -> str:
        """The key without the metric (names the task + stage)."""
        return f"{self.source}/{self.task}/{self.stage}"

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "task": self.task,
            "stage": self.stage,
            "metric": self.metric,
            "best": self.best,
            "mean": self.mean,
            "count": self.count,
            "outcome": self.outcome,
            "attempts": self.attempts,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "MetricSample":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise TelemetryError(
                f"unknown MetricSample keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(data))


@dataclass(frozen=True)
class RunSummary:
    """One run's samples, as committed to the trend store."""

    run_id: str
    recorded_at: Optional[float] = None
    meta: Mapping[str, str] = field(default_factory=dict)
    samples: Tuple[MetricSample, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.run_id, str) or not self.run_id.strip():
            raise TelemetryError(
                f"run_id must be a non-empty string, got {self.run_id!r}"
            )
        object.__setattr__(
            self,
            "samples",
            tuple(sorted(self.samples, key=lambda s: s.key)),
        )
        object.__setattr__(self, "meta", dict(self.meta))
        for sample in self.samples:
            if not isinstance(sample, MetricSample):
                raise TelemetryError(
                    f"samples must hold MetricSamples, got {sample!r}"
                )

    def by_key(self) -> Dict[str, MetricSample]:
        return {sample.key: sample for sample in self.samples}

    def to_dict(self) -> Dict[str, Any]:
        return {
            "schema_version": SUMMARY_SCHEMA,
            "run_id": self.run_id,
            "recorded_at": self.recorded_at,
            "meta": dict(self.meta),
            "samples": [sample.to_dict() for sample in self.samples],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunSummary":
        payload = dict(data)
        version = payload.pop("schema_version", SUMMARY_SCHEMA)
        if version != SUMMARY_SCHEMA:
            raise TelemetryError(
                f"unsupported summary schema {version!r} "
                f"(this build reads {SUMMARY_SCHEMA})"
            )
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise TelemetryError(
                f"unknown RunSummary keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        payload["samples"] = tuple(
            MetricSample.from_dict(s) for s in payload.get("samples", ())
        )
        return cls(**payload)


def summarize_events(
    events: Sequence[TimingEvent],
    run_id: str,
    recorded_at: Optional[float] = None,
    meta: Optional[Mapping[str, str]] = None,
    include_cached: bool = False,
) -> RunSummary:
    """Collapse timing events into one run's comparable samples.

    Only ``ok`` events contribute timing samples — a failed task's wall
    time measures the failure path, not the work — and cache-replayed
    events are skipped unless ``include_cached`` (a cache hit's stamp is
    bookkeeping, not a measurement).  Multiple events on the same series
    (e.g. many serve jobs with the same content label) aggregate to
    best / mean / count.
    """
    buckets: Dict[Tuple[str, str], List[Tuple[float, TimingEvent]]] = {}
    for event in events:
        if event.outcome != "ok":
            continue
        if event.cached and not include_cached:
            continue
        for metric, value in event.metric_values().items():
            buckets.setdefault((event.key, metric), []).append((value, event))
    samples = []
    for (series, metric), entries in buckets.items():
        values = [value for value, _ in entries]
        best = (
            max(values) if higher_is_better(metric) else min(values)
        )
        event = entries[0][1]
        samples.append(MetricSample(
            source=event.source,
            task=event.task,
            stage=event.stage,
            metric=metric,
            best=best,
            mean=sum(values) / len(values),
            count=len(values),
            outcome="ok",
            attempts=max(e.attempts for _, e in entries),
        ))
    return RunSummary(
        run_id=run_id,
        recorded_at=time.time() if recorded_at is None else recorded_at,
        meta=meta or {},
        samples=tuple(samples),
    )


# ---------------------------------------------------------------------------
# the committed trend store
# ---------------------------------------------------------------------------

_RUN_FILE_SUFFIX = ".json"


class TrendStore:
    """A directory of committed run summaries (one JSON file per run).

    The repo's store lives at ``benchmarks/trend/``; CI smoke jobs write
    throwaway stores in their workspace.  Files are written with sorted
    keys and a trailing newline so committed summaries diff cleanly.
    """

    def __init__(self, root: str) -> None:
        self.root = root

    def path(self, run_id: str) -> str:
        if (
            not isinstance(run_id, str)
            or not run_id.strip()
            or os.sep in run_id
            or run_id.startswith(".")
        ):
            raise TelemetryError(f"invalid trend run id {run_id!r}")
        return os.path.join(self.root, f"{run_id}{_RUN_FILE_SUFFIX}")

    def record(self, summary: RunSummary) -> str:
        """Write ``summary`` to the store; returns the file path."""
        path = self.path(summary.run_id)
        os.makedirs(self.root, exist_ok=True)
        blob = json.dumps(summary.to_dict(), indent=2, sort_keys=True)
        tmp = f"{path}.tmp"
        with open(tmp, "w") as handle:
            handle.write(blob + "\n")
        os.replace(tmp, path)
        return path

    def load(self, run_id: str) -> RunSummary:
        path = self.path(run_id)
        try:
            with open(path) as handle:
                payload = json.load(handle)
        except (OSError, ValueError) as exc:
            raise TelemetryError(f"cannot read trend summary {path}: {exc}")
        return RunSummary.from_dict(payload)

    def run_ids(self) -> List[str]:
        """Committed run ids, oldest first (by recorded_at, then id)."""
        return [summary.run_id for summary in self.summaries()]

    def summaries(self) -> List[RunSummary]:
        """Every committed summary, oldest first."""
        try:
            names = sorted(os.listdir(self.root))
        except OSError:
            return []
        loaded = []
        for name in names:
            if not name.endswith(_RUN_FILE_SUFFIX) or name.startswith("."):
                continue
            loaded.append(self.load(name[: -len(_RUN_FILE_SUFFIX)]))
        loaded.sort(key=lambda s: (s.recorded_at or 0.0, s.run_id))
        return loaded

    def baselines(
        self, count: int = DEFAULT_BASELINE_RUNS,
        exclude: Optional[str] = None,
    ) -> List[RunSummary]:
        """The newest ``count`` committed summaries (best-of-N pool),
        excluding ``exclude`` so a recorded run never baselines itself."""
        pool = [
            summary for summary in self.summaries()
            if exclude is None or summary.run_id != exclude
        ]
        return pool[-count:] if count > 0 else pool


# ---------------------------------------------------------------------------
# comparison
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class TrendDelta:
    """One series' movement between the baseline pool and the current run."""

    source: str
    task: str
    stage: str
    metric: str
    status: str
    baseline: Optional[float] = None
    current: Optional[float] = None
    ratio: Optional[float] = None
    threshold: Optional[float] = None

    def __post_init__(self) -> None:
        if self.status not in _STATUSES:
            raise TelemetryError(
                f"delta status must be one of {_STATUSES}, "
                f"got {self.status!r}"
            )

    @property
    def series(self) -> str:
        return f"{self.source}/{self.task}/{self.stage}"

    def describe(self) -> str:
        """One human line naming the task, stage, and delta."""
        if self.status == "new":
            return (
                f"{self.series} {self.metric}: new series "
                f"(current {self.current:g}, no baseline)"
            )
        if self.status == "missing":
            return (
                f"{self.series} {self.metric}: missing from this run "
                f"(baseline {self.baseline:g})"
            )
        arrow = "->"
        return (
            f"{self.series} {self.metric}: {self.baseline:g} {arrow} "
            f"{self.current:g} ({self.ratio:.2f}x vs threshold "
            f"{self.threshold:.2f}x)"
        )

    def to_dict(self) -> Dict[str, Any]:
        return {
            "source": self.source,
            "task": self.task,
            "stage": self.stage,
            "metric": self.metric,
            "status": self.status,
            "baseline": self.baseline,
            "current": self.current,
            "ratio": self.ratio,
            "threshold": self.threshold,
        }


@dataclass(frozen=True)
class TrendComparison:
    """The full current-vs-baseline verdict."""

    run_id: str
    baseline_runs: Tuple[str, ...]
    deltas: Tuple[TrendDelta, ...]

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "deltas",
            tuple(sorted(
                self.deltas,
                key=lambda d: (d.source, d.task, d.stage, d.metric),
            )),
        )

    def regressions(self) -> List[TrendDelta]:
        return [d for d in self.deltas if d.status == "regression"]

    def improvements(self) -> List[TrendDelta]:
        return [d for d in self.deltas if d.status == "improvement"]

    def counts(self) -> Dict[str, int]:
        counts = {status: 0 for status in _STATUSES}
        for delta in self.deltas:
            counts[delta.status] += 1
        return counts

    def to_dict(self) -> Dict[str, Any]:
        return {
            "run_id": self.run_id,
            "baseline_runs": list(self.baseline_runs),
            "counts": self.counts(),
            "deltas": [delta.to_dict() for delta in self.deltas],
        }


def compare_summaries(
    current: RunSummary,
    baselines: Sequence[RunSummary],
    thresholds: Optional[Mapping[str, float]] = None,
    min_elapsed_s: float = DEFAULT_MIN_ELAPSED_S,
) -> TrendComparison:
    """Compare ``current`` against the best-of-N ``baselines`` pool.

    With an empty baseline pool every series classifies ``new`` — the
    comparison still renders, it just gates nothing (first run in a fresh
    store).
    """
    baseline_best: Dict[str, MetricSample] = {}
    for summary in baselines:
        for sample in summary.samples:
            seen = baseline_best.get(sample.key)
            if seen is None:
                baseline_best[sample.key] = sample
            elif higher_is_better(sample.metric):
                if sample.best > seen.best:
                    baseline_best[sample.key] = sample
            elif sample.best < seen.best:
                baseline_best[sample.key] = sample
    deltas = []
    current_keys = current.by_key()
    for key, sample in current_keys.items():
        threshold = threshold_for(sample.metric, thresholds)
        base = baseline_best.get(key)
        if base is None:
            deltas.append(TrendDelta(
                source=sample.source, task=sample.task, stage=sample.stage,
                metric=sample.metric, status="new", current=sample.best,
            ))
            continue
        if higher_is_better(sample.metric):
            # express the ratio in the bad direction either way, so a
            # ratio above the threshold is always "worse"
            ratio = (
                base.best / sample.best if sample.best > 0 else float("inf")
            )
        else:
            ratio = (
                sample.best / base.best if base.best > 0 else float("inf")
            )
        status = "within"
        if ratio >= threshold:
            status = "regression"
        elif ratio <= 1.0 / threshold:
            status = "improvement"
        if (
            sample.metric == "elapsed_s"
            and status != "within"
            and sample.best < min_elapsed_s
            and base.best < min_elapsed_s
        ):
            status = "within"  # both sides under the jitter floor
        deltas.append(TrendDelta(
            source=sample.source, task=sample.task, stage=sample.stage,
            metric=sample.metric, status=status, baseline=base.best,
            current=sample.best, ratio=ratio, threshold=threshold,
        ))
    # a series is "missing" only when its *source* reported this run at
    # all — a batch-only gate run is not missing the bench baselines
    current_sources = {sample.source for sample in current.samples}
    for key, base in baseline_best.items():
        if key in current_keys or base.source not in current_sources:
            continue
        deltas.append(TrendDelta(
            source=base.source, task=base.task, stage=base.stage,
            metric=base.metric, status="missing", baseline=base.best,
        ))
    return TrendComparison(
        run_id=current.run_id,
        baseline_runs=tuple(s.run_id for s in baselines),
        deltas=tuple(deltas),
    )


# ---------------------------------------------------------------------------
# rendering
# ---------------------------------------------------------------------------

_TREND_MARKS = {
    "regression": "⬆ regression",
    "improvement": "⬇ improvement",
    "within": "—",
    "new": "new",
    "missing": "**missing**",
}

#: a markdown table stops listing within-band rows past this many deltas
_MARKDOWN_ROW_BUDGET = 60


def render_markdown(
    comparison: TrendComparison, title: str = "Run telemetry trend"
) -> str:
    """GitHub-flavoured markdown for ``$GITHUB_STEP_SUMMARY``."""
    counts = comparison.counts()
    baselines = (
        ", ".join(f"`{r}`" for r in comparison.baseline_runs) or "none"
    )
    lines = [
        f"### {title}",
        "",
        f"Run `{comparison.run_id}` vs best-of-N baseline ({baselines}): "
        f"**{counts['regression']} regression(s)**, "
        f"{counts['improvement']} improvement(s), {counts['within']} "
        f"within band, {counts['new']} new, {counts['missing']} missing.",
        "",
    ]
    deltas = list(comparison.deltas)
    listed = [d for d in deltas if d.status != "within"]
    if len(deltas) <= _MARKDOWN_ROW_BUDGET:
        listed = deltas
    if listed:
        lines.append(
            "| source | task | stage | metric | baseline | current | "
            "ratio | trend |"
        )
        lines.append("|---|---|---|---|---:|---:|---:|---|")
        for delta in listed:
            baseline = (
                f"{delta.baseline:g}" if delta.baseline is not None else "—"
            )
            current = (
                f"{delta.current:g}" if delta.current is not None else "—"
            )
            ratio = f"{delta.ratio:.2f}x" if delta.ratio is not None else "—"
            lines.append(
                f"| {delta.source} | {delta.task} | {delta.stage} "
                f"| {delta.metric} | {baseline} | {current} | {ratio} "
                f"| {_TREND_MARKS[delta.status]} |"
            )
    if len(deltas) > _MARKDOWN_ROW_BUDGET:
        lines.append("")
        lines.append(
            f"({counts['within']} within-band series not listed.)"
        )
    lines.append("")
    return "\n".join(lines)


def render_history(
    summaries: Sequence[RunSummary], metric: Optional[str] = None
) -> Dict[str, Any]:
    """The long-run trend payload: every series' value per committed run.

    Deterministic given the store contents (sorted series, run order by
    ``recorded_at``), which is what makes ``repro trend report --json``
    byte-stable.
    """
    run_ids = [summary.run_id for summary in summaries]
    series: Dict[str, Dict[str, Any]] = {}
    for position, summary in enumerate(summaries):
        for sample in summary.samples:
            if metric is not None and sample.metric != metric:
                continue
            entry = series.setdefault(sample.key, {
                "source": sample.source,
                "task": sample.task,
                "stage": sample.stage,
                "metric": sample.metric,
                "values": [None] * len(run_ids),
            })
            entry["values"][position] = sample.best
    return {
        "runs": run_ids,
        "series": [series[key] for key in sorted(series)],
    }

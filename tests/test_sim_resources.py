"""Tests for DES servers and stores."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Engine, Timeout
from repro.sim.resources import Server, Store


class TestServer:
    def test_single_slot_serializes(self):
        engine = Engine()
        server = Server("s", capacity=1)
        finish = []

        def proc():
            yield server.request(2.0)
            finish.append(engine.now)

        engine.spawn("a", proc())
        engine.spawn("b", proc())
        engine.run()
        assert finish == [2.0, 4.0]

    def test_multi_slot_parallelism(self):
        engine = Engine()
        server = Server("s", capacity=2)
        finish = []

        def proc():
            yield server.request(2.0)
            finish.append(engine.now)

        for _ in range(4):
            engine.spawn("p", proc())
        engine.run()
        assert finish == [2.0, 2.0, 4.0, 4.0]

    def test_utilization(self):
        engine = Engine()
        server = Server("s", capacity=2)

        def proc():
            yield server.request(1.0)

        engine.spawn("a", proc())
        engine.run()
        # one slot busy for 1s out of 2 slots x 1s
        assert server.utilization(engine.now) == pytest.approx(0.5)
        assert server.completed == 1

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Server("s", capacity=0)

    def test_negative_service_time(self):
        server = Server("s")
        with pytest.raises(SimulationError):
            server.request(-1.0)


class TestStore:
    def test_fifo_order(self):
        engine = Engine()
        store = Store("q")
        got = []

        def producer():
            for i in range(3):
                yield store.put(i)
                yield Timeout(1.0)

        def consumer():
            for _ in range(3):
                item = yield store.get()
                got.append(item)

        engine.spawn("p", producer())
        engine.spawn("c", consumer())
        engine.run()
        assert got == [0, 1, 2]

    def test_get_blocks_until_put(self):
        engine = Engine()
        store = Store("q")
        times = []

        def consumer():
            item = yield store.get()
            times.append((engine.now, item))

        def producer():
            yield Timeout(5.0)
            yield store.put("x")

        engine.spawn("c", consumer())
        engine.spawn("p", producer())
        engine.run()
        assert times == [(5.0, "x")]

    def test_put_blocks_when_full(self):
        engine = Engine()
        store = Store("q", capacity=1)
        events = []

        def producer():
            yield store.put(1)
            events.append(("put1", engine.now))
            yield store.put(2)  # blocks until the consumer drains
            events.append(("put2", engine.now))

        def consumer():
            yield Timeout(3.0)
            yield store.get()

        engine.spawn("p", producer())
        engine.spawn("c", consumer())
        engine.run()
        assert events[0] == ("put1", 0.0)
        assert events[1][1] == 3.0  # second put completed when space freed

    def test_counters(self):
        engine = Engine()
        store = Store("q")

        def producer():
            yield store.put("a")
            yield store.put("b")

        def consumer():
            yield store.get()

        engine.spawn("p", producer())
        engine.spawn("c", consumer())
        engine.run()
        assert store.total_put == 2
        assert store.total_got == 1
        assert len(store) == 1

    def test_invalid_capacity(self):
        with pytest.raises(SimulationError):
            Store("q", capacity=0)

    def test_mean_depth_positive_when_backlogged(self):
        engine = Engine()
        store = Store("q")

        def producer():
            yield store.put(1)
            yield Timeout(10.0)

        engine.spawn("p", producer())
        engine.run()
        assert store.mean_depth(engine) == pytest.approx(1.0)


class TestConservationProperty:
    @given(
        num_items=st.integers(min_value=1, max_value=50),
        capacity=st.integers(min_value=1, max_value=8),
        produce_gap=st.floats(min_value=0.0, max_value=2.0),
        consume_gap=st.floats(min_value=0.0, max_value=2.0),
    )
    @settings(max_examples=40, deadline=None)
    def test_items_conserved(self, num_items, capacity, produce_gap, consume_gap):
        """Everything produced is consumed exactly once, in order."""
        engine = Engine()
        store = Store("q", capacity=capacity)
        got = []

        def producer():
            for i in range(num_items):
                yield store.put(i)
                yield Timeout(produce_gap)

        def consumer():
            for _ in range(num_items):
                item = yield store.get()
                got.append(item)
                yield Timeout(consume_gap)

        engine.spawn("p", producer())
        engine.spawn("c", consumer())
        engine.run()
        assert got == list(range(num_items))
        assert store.total_put == store.total_got == num_items
        assert len(store) == 0

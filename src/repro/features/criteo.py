"""Loader for the real public Criteo click-logs format (RM1's dataset).

The Criteo Terabyte click logs — the dataset RM1 is built from — ship as
tab-separated text, one sample per line::

    <label> \\t <int_0> ... <int_12> \\t <cat_0> ... <cat_25>

with 13 integer ("dense") features and 26 hexadecimal categorical ("sparse")
features; any field may be empty (missing).  This module parses that format
into the reproduction's :data:`TableData` so every pipeline, worker, and
experiment in the package runs on the genuine public data when it is
available — the synthetic generator remains the default for offline use.

Criteo's sparse features are fixed length 1 per sample; missing categorical
fields become empty lists (length 0), which the pipeline's fill op pads —
the same null handling TorchArrow's DLRM recipe applies.
"""

from __future__ import annotations

import io
from typing import Iterable, List, TextIO, Tuple, Union

import numpy as np

from repro.dataio.columnar import TableData
from repro.errors import FormatError
from repro.features.specs import ModelSpec, get_model

NUM_DENSE = 13
NUM_SPARSE = 26
FIELDS_PER_LINE = 1 + NUM_DENSE + NUM_SPARSE


def parse_line(line: str, line_number: int = 0) -> Tuple[int, List[float], List[int]]:
    """Parse one Criteo TSV line into (label, dense values, sparse ids).

    Missing dense fields become NaN; missing categorical fields become -1
    sentinels that :func:`load_criteo_tsv` turns into empty lists.
    """
    fields = line.rstrip("\n").split("\t")
    if len(fields) != FIELDS_PER_LINE:
        raise FormatError(
            f"line {line_number}: expected {FIELDS_PER_LINE} tab-separated "
            f"fields, got {len(fields)}"
        )
    try:
        label = int(fields[0])
    except ValueError:
        raise FormatError(f"line {line_number}: bad label {fields[0]!r}") from None
    if label not in (0, 1):
        raise FormatError(f"line {line_number}: label must be 0/1, got {label}")

    dense: List[float] = []
    for raw in fields[1 : 1 + NUM_DENSE]:
        if raw == "":
            dense.append(float("nan"))
        else:
            try:
                dense.append(float(int(raw)))
            except ValueError:
                raise FormatError(
                    f"line {line_number}: bad integer feature {raw!r}"
                ) from None

    sparse: List[int] = []
    for raw in fields[1 + NUM_DENSE :]:
        if raw == "":
            sparse.append(-1)  # missing marker
        else:
            try:
                sparse.append(int(raw, 16))
            except ValueError:
                raise FormatError(
                    f"line {line_number}: bad categorical feature {raw!r}"
                ) from None
    return label, dense, sparse


def load_criteo_tsv(
    source: Union[str, TextIO, Iterable[str]],
    max_rows: int = None,
    spec: ModelSpec = None,
) -> TableData:
    """Parse Criteo TSV text into a raw table matching RM1's schema.

    ``source`` may be a path, an open text file, or any iterable of lines.
    """
    spec = spec or get_model("RM1")
    if spec.num_dense != NUM_DENSE or spec.num_sparse != NUM_SPARSE:
        raise FormatError(
            f"Criteo TSV has {NUM_DENSE}+{NUM_SPARSE} features; "
            f"{spec.name} expects {spec.num_dense}+{spec.num_sparse}"
        )

    if isinstance(source, str):
        with open(source, "r") as handle:
            return load_criteo_tsv(handle, max_rows=max_rows, spec=spec)

    labels: List[int] = []
    dense_rows: List[List[float]] = []
    sparse_rows: List[List[int]] = []
    for line_number, line in enumerate(source, start=1):
        if not line.strip():
            continue
        label, dense, sparse = parse_line(line, line_number)
        labels.append(label)
        dense_rows.append(dense)
        sparse_rows.append(sparse)
        if max_rows is not None and len(labels) >= max_rows:
            break
    if not labels:
        raise FormatError("no rows in Criteo TSV input")

    schema = spec.schema()
    dense_matrix = np.array(dense_rows, dtype=np.float32)
    data: TableData = {schema.label.name: np.array(labels, dtype=np.int8)}
    for column_index, name in enumerate(schema.dense_names):
        data[name] = dense_matrix[:, column_index].copy()
    for column_index, name in enumerate(schema.sparse_names):
        ids = [row[column_index] for row in sparse_rows]
        lengths = np.array([0 if v < 0 else 1 for v in ids], dtype=np.int32)
        values = np.array([v for v in ids if v >= 0], dtype=np.int64)
        data[name] = (lengths, values)
    return data


def dump_criteo_tsv(data: TableData, spec: ModelSpec = None) -> str:
    """Inverse of :func:`load_criteo_tsv`, for tests and fixtures."""
    spec = spec or get_model("RM1")
    schema = spec.schema()
    labels = data[schema.label.name]
    out = io.StringIO()
    sparse_columns = []
    for name in schema.sparse_names:
        lengths, values = data[name]
        offsets = np.concatenate(([0], np.cumsum(lengths)))
        sparse_columns.append((lengths, values, offsets))
    for row in range(len(labels)):
        fields = [str(int(labels[row]))]
        for name in schema.dense_names:
            value = data[name][row]
            fields.append("" if np.isnan(value) else str(int(value)))
        for lengths, values, offsets in sparse_columns:
            if lengths[row] == 0:
                fields.append("")
            else:
                fields.append(format(int(values[offsets[row]]), "x"))
        out.write("\t".join(fields) + "\n")
    return out.getvalue()

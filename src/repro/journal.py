"""Crash-safe append-only JSONL files — the shared journal core.

Both durable ledgers in this repo — the serve tier's
:class:`~repro.serve.records.JobLogIndex` and the batch tier's
:class:`~repro.batch.journal.BatchJournal` — are append-only JSONL files
that must survive the writer being SIGKILLed mid-append.  This module
holds the machinery they share, extracted from ``serve/records.py``:

* **torn-tail healing** — a process killed mid-``write`` leaves a final
  half-line.  On open, the journal detects a newline-less tail and arms a
  truncate-to offset at the last complete line; the next successful
  append truncates first, so a half-line never becomes loud *interior*
  corruption.  Readers tolerate exactly one torn final line and raise on
  corruption anywhere else.
* **failed-append healing** — an append that raises (disk full, injected
  torn write) remembers the pre-write size and truncates back to it
  before the next append.
* **durability** — ``fsync=True`` flushes + ``os.fsync``s every append.
* **atomic rewrite** — compaction writes a temp file in the same
  directory, fsyncs, and ``os.replace``s it over the original, so a
  crash mid-rewrite leaves the old journal intact.
* **fault probes** — every append runs the ``disk-full`` and
  ``torn-write`` fault points with the caller's context, so both tiers'
  journals are chaos-testable through one code path.

The core is deliberately schema-free: it appends and returns *lines*.
Record semantics (last line per job wins, task outcome states) stay in
the owning tier.
"""

from __future__ import annotations

import os
import threading
from typing import Any, List, Optional, Tuple

from repro.errors import FaultError
from repro.faults.injector import fault_point


class JsonlJournal:
    """One append-only JSONL file with torn-tail healing (thread-safe)."""

    def __init__(self, path: str, fsync: bool = False) -> None:
        self.path = path
        self.fsync = bool(fsync)
        self._lock = threading.Lock()
        self.lines = self._count_lines()  # lines on disk (approximate floor)
        # truncate target after a torn write; seeded from disk so a torn
        # final line a killed process left behind is healed before this
        # process's first append instead of growing interior corruption
        self._heal_to: Optional[int] = self._detect_torn_tail()
        parent = os.path.dirname(os.path.abspath(path))
        os.makedirs(parent, exist_ok=True)

    def _count_lines(self) -> int:
        try:
            with open(self.path, "rb") as handle:
                return sum(1 for _ in handle)
        except OSError:
            return 0

    def _detect_torn_tail(self) -> Optional[int]:
        """Offset just past the last complete line, or ``None`` if clean."""
        try:
            with open(self.path, "rb") as handle:
                data = handle.read()
        except OSError:
            return None
        if not data or data.endswith(b"\n"):
            return None
        return data.rfind(b"\n") + 1  # 0 when the whole file is one half-line

    # -- writing -------------------------------------------------------------

    def append(self, line: str, **fault_context: Any) -> None:
        """Durably append one line (no trailing newline expected).

        With ``fsync`` on, the line is flushed and fsynced before this
        returns; otherwise durability is left to the OS page cache.
        ``fault_context`` feeds the ``disk-full``/``torn-write`` probes so
        injection is deterministic per record identity.
        """
        with self._lock:
            # probes: disk-full raises ENOSPC before any byte lands;
            # torn-write is cooperative — enacted below, mid-line
            fault_point("disk-full", **fault_context)
            torn = fault_point("torn-write", **fault_context)
            size = os.path.getsize(self.path) if os.path.exists(self.path) else 0
            if self._heal_to is not None and self._heal_to < size:
                with open(self.path, "r+") as handle:
                    handle.truncate(self._heal_to)
                size = self._heal_to
            self._heal_to = None
            with open(self.path, "a") as handle:
                if torn is not None and torn.action == "torn":
                    handle.write(line[: max(1, len(line) // 2)])
                    handle.flush()
                    self._heal_to = size
                    raise FaultError(
                        "injected fault: journal append torn mid-line "
                        f"({self.path})"
                    )
                handle.write(line + "\n")
                if self.fsync:
                    handle.flush()
                    os.fsync(handle.fileno())
            self.lines += 1

    def rewrite(self, lines: List[str]) -> None:
        """Atomically replace the journal's contents with ``lines``.

        Temp file in the same directory + fsync + ``os.replace`` — a
        crash mid-rewrite leaves the old journal intact.  Also clears any
        remembered torn tail (the rewrite heals it by construction).
        """
        with self._lock:
            tmp = f"{self.path}.rewrite.{os.getpid()}"
            with open(tmp, "w") as handle:
                for line in lines:
                    handle.write(line + "\n")
                handle.flush()
                os.fsync(handle.fileno())
            os.replace(tmp, self.path)
            self.lines = len(lines)
            self._heal_to = None

    # -- reading -------------------------------------------------------------

    def read(self) -> List[Tuple[int, str, bool]]:
        """Every non-empty line as ``(number, text, complete)``.

        ``complete`` is ``False`` only for a newline-less final line — the
        torn tail a killed writer leaves; callers skip it silently and
        treat a parse failure on any *complete* line as loud corruption.
        """
        with self._lock:
            return self._read_locked()

    def _read_locked(self) -> List[Tuple[int, str, bool]]:
        if not os.path.exists(self.path):
            return []
        with open(self.path) as handle:
            raw = handle.readlines()
        out: List[Tuple[int, str, bool]] = []
        for number, line in enumerate(raw, start=1):
            text = line.strip()
            if not text:
                continue
            complete = line.endswith("\n") or number != len(raw)
            out.append((number, text, complete))
        return out

"""GPU-based data preprocessing model (NVTabular on an A100; Fig. 16).

Section VI-C: the GPU "performs best when the target application requires
massive compute and memory accesses", but RecSys preprocessing launches many
small per-column kernels whose launch cost the GPU cannot amortize, leading
to significant underutilization.  The model therefore charges:

* one kernel invocation per (column, op) — launch + sync + dataframe
  dispatch overhead dominates;
* elementwise compute at a high streaming rate once launched;
* PCIe transfer of raw bytes in and train-ready bytes out of the device;
* when deployed as a *disaggregated pool* (Fig. 7(b)), network ingress of
  raw data and egress of mini-batches, like any remote preprocessor.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.features.specs import ModelSpec
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.ops.pipeline import OpCounts


@dataclass(frozen=True)
class GpuPreprocStages:
    """Per-stage seconds for one mini-batch on a GPU preprocessor."""

    network_in: float
    pcie_in: float
    kernels: float
    compute: float
    pcie_out: float
    network_out: float

    @property
    def latency(self) -> float:
        """End-to-end seconds for one mini-batch."""
        return (
            self.network_in
            + self.pcie_in
            + self.kernels
            + self.compute
            + self.pcie_out
            + self.network_out
        )

    @property
    def bottleneck(self) -> float:
        """Slowest stage; batches pipeline across stages."""
        return max(
            self.network_in,
            self.pcie_in,
            self.kernels + self.compute,  # kernels serialize on one stream
            self.pcie_out,
            self.network_out,
        )

    @property
    def data_movement(self) -> float:
        """Network + PCIe time (the U280-disagg 47.6% observation applies
        the same accounting)."""
        return self.network_in + self.pcie_in + self.pcie_out + self.network_out


class GpuPreprocModel:
    """One A100 running the preprocessing pipeline via NVTabular-style ops."""

    #: kernels per column for each op category: fill+op (+materialize)
    KERNELS_PER_DENSE_COLUMN = 3  # fill, log, gather/materialize
    KERNELS_PER_SPARSE_COLUMN = 3  # fill, hash, list re-offset
    KERNELS_PER_GENERATED_COLUMN = 2  # bucketize, materialize
    FORMAT_KERNELS = 8  # final interleave/concat kernels

    def __init__(
        self, calibration: Calibration = CALIBRATION, disaggregated: bool = True
    ) -> None:
        self.cal = calibration
        self.disaggregated = disaggregated

    def kernel_count(self, spec: ModelSpec) -> int:
        """CUDA kernel launches per mini-batch."""
        return (
            spec.num_dense * self.KERNELS_PER_DENSE_COLUMN
            + spec.num_sparse * self.KERNELS_PER_SPARSE_COLUMN
            + spec.num_generated_sparse * self.KERNELS_PER_GENERATED_COLUMN
            + self.FORMAT_KERNELS
        )

    def batch_stages(
        self, spec: ModelSpec, counts: Optional[OpCounts] = None
    ) -> GpuPreprocStages:
        """Per-stage times for one mini-batch."""
        cal = self.cal
        if counts is None:
            counts = OpCounts.expected_for(spec)
        bytes_in = cal.encoded_bytes_per_sample(spec) * counts.rows
        bytes_out = spec.train_ready_bytes_per_sample() * counts.rows

        read_bw = cal.network_bandwidth * cal.network_read_efficiency
        rpc_bw = cal.network_bandwidth * cal.network_rpc_efficiency
        network_in = bytes_in / read_bw if self.disaggregated else 0.0
        network_out = bytes_out / rpc_bw if self.disaggregated else 0.0

        elements = counts.transform_elements + counts.format_elements
        return GpuPreprocStages(
            network_in=network_in,
            pcie_in=bytes_in / cal.gpu_preproc_pcie_bw,
            kernels=self.kernel_count(spec) * cal.gpu_preproc_kernel_overhead,
            compute=elements / cal.gpu_preproc_element_rate,
            pcie_out=bytes_out / cal.gpu_preproc_pcie_bw,
            network_out=network_out,
        )

    def device_throughput(self, spec: ModelSpec) -> float:
        """Steady-state samples/s of one GPU preprocessor."""
        counts = OpCounts.expected_for(spec)
        return counts.rows / self.batch_stages(spec, counts).bottleneck

    def batch_latency(self, spec: ModelSpec) -> float:
        """End-to-end seconds per mini-batch."""
        return self.batch_stages(spec).latency

"""Ablation — columnar vs row-oriented storage (the Section II-B argument).

The paper stores raw features in columnar files so the Extract phase fetches
only the wanted features.  This ablation measures the claim on real bytes:
generate an RM1-shaped table, write it in both layouts, read progressively
smaller column subsets, and compare bytes touched.

Expected shape: the row layout's bytes scanned stay ~flat regardless of the
subset (overfetch), while the columnar layout's bytes shrink with the subset.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.dataio.columnar import ColumnarFileReader, write_table
from repro.dataio.rowformat import RowFileReader, write_row_table
from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    register_experiment,
)
from repro.features.specs import get_model
from repro.features.synthetic import SyntheticTableGenerator

#: fraction of the feature columns each scenario reads
SUBSET_FRACTIONS = (1.0, 0.5, 0.25, 0.125)
ROWS = 2048


@dataclass(frozen=True)
class RowVsColumnarResult(ExperimentResult):
    """Bytes touched per layout per column-subset fraction."""

    model: str
    file_bytes_columnar: int
    file_bytes_row: int
    fractions: Tuple[float, ...]
    columnar_bytes: Tuple[int, ...]
    row_bytes: Tuple[int, ...]

    def overfetch_factor(self, index: int) -> float:
        """Row bytes over columnar bytes for one subset."""
        return self.row_bytes[index] / self.columnar_bytes[index]

    def claims(self) -> List[PaperClaim]:
        # reading 1/8 of the columns should cost ~1/8 in columnar...
        shrink = self.columnar_bytes[-1] / self.columnar_bytes[0]
        # ...while the row layout still scans ~everything
        row_shrink = self.row_bytes[-1] / self.row_bytes[0]
        return [
            PaperClaim("columnar bytes shrink with subset (<=0.25)", 0.125, shrink, 1.2),
            PaperClaim("row layout overfetches (bytes ~flat)", 1.0, row_shrink, 0.05),
            PaperClaim(
                "overfetch factor at 1/8 subset (~column ratio)",
                15.0,
                self.overfetch_factor(len(self.fractions) - 1),
                0.35,
            ),
        ]

    def rows(self) -> List[Tuple]:
        return [
            (
                f"{frac:.3g}",
                col,
                row,
                row / col,
            )
            for frac, col, row in zip(
                self.fractions, self.columnar_bytes, self.row_bytes
            )
        ]

    def columns(self) -> List[str]:
        return ["column fraction", "columnar bytes", "row-layout bytes", "overfetch (x)"]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title=(
                f"Ablation (row vs columnar, {self.model}, {ROWS} rows): bytes "
                f"touched per Extract"
            ),
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("abl-row", title="Ablation: row vs columnar", kind="ablation", order=200)
def run(model: str = "RM1", seed: int = 0) -> RowVsColumnarResult:
    """Run the ablation on real generated data."""
    spec = get_model(model)
    schema = spec.schema()
    data = SyntheticTableGenerator(spec, seed=seed).generate(ROWS)
    columnar_file = write_table(schema, data, row_group_size=ROWS)
    row_file = write_row_table(schema, data)

    all_features = schema.dense_names + schema.sparse_names
    columnar_bytes: List[int] = []
    row_bytes: List[int] = []
    for fraction in SUBSET_FRACTIONS:
        keep = max(int(len(all_features) * fraction), 1)
        wanted = ["label"] + all_features[:keep]

        columnar_reader = ColumnarFileReader(columnar_file)
        columnar_reader.read_columns(wanted)
        columnar_bytes.append(columnar_reader.bytes_read)

        row_reader = RowFileReader(row_file)
        row_reader.read_columns(wanted)
        row_bytes.append(row_reader.bytes_scanned)

    return RowVsColumnarResult(
        model=spec.name,
        file_bytes_columnar=len(columnar_file),
        file_bytes_row=len(row_file),
        fractions=SUBSET_FRACTIONS,
        columnar_bytes=tuple(columnar_bytes),
        row_bytes=tuple(row_bytes),
    )

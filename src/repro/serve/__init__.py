"""repro.serve — the streaming preprocessing service (``repro serve``).

The always-on counterpart of the batch data plane: a source watcher turns
dropped job specs and synthetic traffic into
:class:`~repro.api.PreprocessJob`s, a bounded queue applies explicit
backpressure, a persistent worker pool drives the
:class:`~repro.exec.ShardExecutor` path with per-job retry/backoff and
worker replacement, and every job's lifecycle is a frozen
:class:`JobRecord` mirrored into a JSONL index next to the spool
directory.  A line-oriented JSON socket protocol
(:class:`ServiceServer` / :class:`ServiceClient`) lets external processes
attach, submit, stream completion notifications, and detach while the
daemon keeps running.

In-process quick start::

    from repro.api import PreprocessJob
    from repro.serve import PreprocessService

    with PreprocessService(spool_dir="spool", num_workers=2) as service:
        record = service.submit(PreprocessJob(model="RM1", num_shards=4))
        final = service.wait(record.job_id)
        assert final.state == "completed"
        print(final.digest)  # == PreprocessJob(...).run().digest
"""

from repro.serve.queue import QUEUE_POLICIES, BoundedJobQueue
from repro.serve.pool import WorkerPool
from repro.serve.records import (
    JOB_STATES,
    STAGE_STATUSES,
    TERMINAL_STATES,
    JobLogIndex,
    JobRecord,
    StageEvent,
)
from repro.serve.sources import (
    SOURCE_REGISTRY,
    DirectoryJobSource,
    JobSource,
    SourceRegistry,
    SourceWatcher,
    SyntheticJobSource,
    register_source,
)
from repro.serve.service import PIPELINE_STAGES, PreprocessService
from repro.serve.protocol import (
    PROTOCOL_VERSION,
    ServiceClient,
    ServiceServer,
    read_endpoint,
)

__all__ = [
    "BoundedJobQueue",
    "QUEUE_POLICIES",
    "WorkerPool",
    "JOB_STATES",
    "STAGE_STATUSES",
    "TERMINAL_STATES",
    "JobLogIndex",
    "JobRecord",
    "StageEvent",
    "SOURCE_REGISTRY",
    "DirectoryJobSource",
    "JobSource",
    "SourceRegistry",
    "SourceWatcher",
    "SyntheticJobSource",
    "register_source",
    "PIPELINE_STAGES",
    "PreprocessService",
    "PROTOCOL_VERSION",
    "ServiceClient",
    "ServiceServer",
    "read_endpoint",
]

"""Crash-safe, resumable batch execution — the tier behind Sweep/report.

See :mod:`repro.batch.runner` for the execution model,
:mod:`repro.batch.journal` for the per-run JSONL journal and resume
semantics, :mod:`repro.batch.policy` for the retry/timeout/failure-mode
knobs, and :mod:`repro.batch.outcomes` for the per-task records.
"""

from repro.batch.journal import BatchJournal, BatchJournalState
from repro.batch.outcomes import OUTCOME_STATES, BatchOutcome
from repro.batch.policy import FAILURE_MODES, BatchPolicy
from repro.batch.runner import BatchRunner

__all__ = [
    "BatchJournal",
    "BatchJournalState",
    "BatchOutcome",
    "BatchPolicy",
    "BatchRunner",
    "FAILURE_MODES",
    "OUTCOME_STATES",
]

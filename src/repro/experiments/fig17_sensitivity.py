"""Figure 17 — sensitivity to the number of features to preprocess.

Scales RM5's feature counts by 1x / 2x / 4x and compares the per-op latency
(Bucketize, SigridHash, Log) of one Disagg CPU worker against one PreSto
device, each normalized to PreSto's 1x latency for that op, plus PreSto's
per-op speedup.

Paper claims: Disagg's latency grows ~proportionally with the feature
count; PreSto keeps large speedups at every scale (robustness).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.cpu_worker import CpuPreprocessingWorker
from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    register_experiment,
)
from repro.features.specs import get_model
from repro.hardware.accelerator import AcceleratorModel
from repro.hardware.calibration import CALIBRATION, Calibration

SCALES = (1, 2, 4)
OPS = ("bucketize", "sigridhash", "log")


@dataclass(frozen=True)
class Fig17Result(ExperimentResult):
    """Per-(op, scale) latencies for both designs."""

    disagg: Dict[Tuple[str, int], float]  # (op, scale) -> seconds
    presto: Dict[Tuple[str, int], float]

    def speedup(self, op: str, scale: int) -> float:
        """Disagg/PreSto per-op latency ratio."""
        return self.disagg[(op, scale)] / self.presto[(op, scale)]

    def disagg_growth(self, op: str) -> float:
        """Disagg latency growth from 1x to 4x (paper: ~proportional, ~4)."""
        return self.disagg[(op, 4)] / self.disagg[(op, 1)]

    def min_speedup(self) -> float:
        """Worst-case per-op speedup across the sweep."""
        return min(self.speedup(op, s) for op in OPS for s in SCALES)

    def claims(self) -> List[PaperClaim]:
        growths = [self.disagg_growth(op) for op in OPS]
        return [
            PaperClaim(
                "Disagg 4x/1x latency growth (proportional)",
                4.0,
                sum(growths) / len(growths),
                0.15,
            ),
            PaperClaim(
                "min PreSto per-op speedup (consistently significant)",
                20.0,
                self.min_speedup(),
                1.0,
            ),
        ]

    def rows(self) -> List[Tuple]:
        out = []
        for op in OPS:
            base = self.presto[(op, 1)]
            for scale in SCALES:
                out.append(
                    (
                        op,
                        f"{scale}x",
                        self.disagg[(op, scale)] / base,
                        self.presto[(op, scale)] / base,
                        self.speedup(op, scale),
                    )
                )
        return out

    def columns(self) -> List[str]:
        return ["op", "scale", "Disagg (norm)", "PreSto (norm)", "speedup (x)"]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title="Figure 17: per-op latency vs feature count (RM5 base)",
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("fig17", title="Figure 17", kind="figure", order=130)
def run(
    base_model: str = "RM5", calibration: Calibration = CALIBRATION
) -> Fig17Result:
    """Regenerate Figure 17."""
    base = get_model(base_model)
    accel = AcceleratorModel(calibration)
    disagg: Dict[Tuple[str, int], float] = {}
    presto: Dict[Tuple[str, int], float] = {}
    for scale in SCALES:
        spec = base if scale == 1 else base.scaled(scale)
        cpu_breakdown = CpuPreprocessingWorker(spec, calibration).batch_breakdown()
        for op in OPS:
            disagg[(op, scale)] = cpu_breakdown[op]
            presto[(op, scale)] = accel.op_time(spec, op)
    return Fig17Result(disagg=disagg, presto=presto)

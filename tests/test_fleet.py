"""Tests for the trace-driven fleet simulation tier: seeded arrival
traces replay byte-identically, the simulator is deterministic under
every placement-policy x autoscaler combination (with and without fault
injection), and results flow losslessly into telemetry."""

import json

import pytest

from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRule
from repro.fleet import (
    AUTOSCALE_KINDS,
    TRACE_KINDS,
    FleetResult,
    JobArrival,
    PoolSnapshot,
    PoolSpec,
    Trace,
    available_autoscalers,
    available_policies,
    generate_trace,
    get_autoscaler,
    get_policy,
    run_fleet,
)
from repro.telemetry import events_from_fleet_result

#: a small heterogeneous fleet that keeps simulator tests fast
SMALL_POOLS = (
    PoolSpec(
        name="disagg-cpu",
        system="Disagg",
        nodes=48,
        workers_per_node=32,
        min_nodes=16,
        max_nodes=96,
        scaleup_latency_s=120.0,
    ),
    PoolSpec(
        name="presto-ssd",
        system="PreSto",
        nodes=8,
        workers_per_node=8,
        min_nodes=4,
        max_nodes=32,
        scaleup_latency_s=120.0,
    ),
)


def small_trace(num_jobs=40, seed=5, kind="diurnal"):
    return generate_trace(
        kind,
        num_jobs=num_jobs,
        seed=seed,
        horizon_s=6 * 3600.0,
        mean_duration_s=1200.0,
    )


class TestTraceGeneration:
    @pytest.mark.parametrize("kind", TRACE_KINDS)
    def test_same_seed_same_trace(self, kind):
        a = generate_trace(kind, num_jobs=30, seed=9)
        b = generate_trace(kind, num_jobs=30, seed=9)
        assert a == b
        assert a.to_jsonl() == b.to_jsonl()

    def test_different_seeds_differ(self):
        a = generate_trace("diurnal", num_jobs=30, seed=1)
        b = generate_trace("diurnal", num_jobs=30, seed=2)
        assert a != b

    def test_kinds_differ(self):
        traces = {
            kind: generate_trace(kind, num_jobs=30, seed=4)
            for kind in TRACE_KINDS
        }
        jsonls = {t.to_jsonl() for t in traces.values()}
        assert len(jsonls) == len(TRACE_KINDS)

    def test_arrivals_sorted_and_unique(self):
        trace = generate_trace("bursty", num_jobs=50, seed=3)
        times = [a.submit_s for a in trace.arrivals]
        assert times == sorted(times)
        ids = [a.job_id for a in trace.arrivals]
        assert len(ids) == len(set(ids)) == 50

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigurationError, match="kind"):
            generate_trace("weibull", num_jobs=10, seed=0)

    def test_jsonl_round_trip_byte_identical(self):
        trace = generate_trace("poisson", num_jobs=25, seed=7)
        text = trace.to_jsonl()
        assert Trace.from_jsonl(text).to_jsonl() == text

    def test_save_load(self, tmp_path):
        trace = generate_trace("diurnal", num_jobs=20, seed=2)
        path = str(tmp_path / "trace.jsonl")
        trace.save(path)
        loaded = Trace.load(path)
        assert loaded == trace
        with open(path) as handle:
            header = json.loads(handle.readline())
        assert header["format"] == "repro-fleet-trace"


class TestRegistries:
    def test_builtin_policies(self):
        assert {"first-fit", "best-fit", "priority"} <= set(
            available_policies()
        )

    def test_builtin_autoscalers(self):
        assert set(AUTOSCALE_KINDS) <= set(available_autoscalers())

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigurationError):
            get_policy("round-robin")

    def test_unknown_autoscaler_rejected(self):
        with pytest.raises(ConfigurationError):
            get_autoscaler("predictive")


class TestAutoscalers:
    def snapshot(self, **kwargs):
        defaults = dict(
            nodes=8,
            workers_per_node=4,
            busy_workers=16,
            queued_workers=0,
            min_nodes=2,
            max_nodes=32,
        )
        defaults.update(kwargs)
        return PoolSnapshot(**defaults)

    def test_fixed_holds(self):
        scaler = get_autoscaler("fixed")
        assert scaler.target_nodes(self.snapshot()) == 8

    def test_target_utilization_grows_under_load(self):
        scaler = get_autoscaler("target-utilization")
        snap = self.snapshot(busy_workers=30, queued_workers=20)
        # ceil(50 / (0.7 * 4)) = 18 nodes
        assert scaler.target_nodes(snap) == 18

    def test_target_utilization_shrinks_when_idle(self):
        scaler = get_autoscaler("target-utilization")
        snap = self.snapshot(busy_workers=0, queued_workers=0)
        assert scaler.target_nodes(snap) == 2  # min_nodes

    def test_queue_depth_sizes_to_demand(self):
        scaler = get_autoscaler("queue-depth")
        snap = self.snapshot(queued_workers=9)
        # ceil((16 busy + 9 queued) / 4) — absolute, not added to nodes
        assert scaler.target_nodes(snap) == 7

    def test_queue_depth_does_not_compound_backlog(self):
        """The same backlog must not be re-added on top of capacity
        already on the way: once committed nodes cover busy + queued
        demand, the target stops growing."""
        scaler = get_autoscaler("queue-depth")
        grown = self.snapshot(nodes=20, busy_workers=16, queued_workers=9)
        assert scaler.target_nodes(grown) == 7
        assert scaler.target_nodes(grown) <= grown.nodes

    def test_queue_depth_sheds_when_idle(self):
        scaler = get_autoscaler("queue-depth")
        snap = self.snapshot(busy_workers=0, queued_workers=0)
        assert scaler.target_nodes(snap) == 2  # min_nodes

    def test_clamped_to_max(self):
        scaler = get_autoscaler("queue-depth")
        snap = self.snapshot(queued_workers=10_000)
        assert scaler.target_nodes(snap) == 32

    def test_can_grow_flags(self):
        assert get_autoscaler("fixed").can_grow is False
        assert get_autoscaler("target-utilization").can_grow is True
        assert get_autoscaler("queue-depth").can_grow is True


class TestSimulatorDeterminism:
    @pytest.mark.parametrize("policy", ("first-fit", "best-fit", "priority"))
    @pytest.mark.parametrize("autoscaler", AUTOSCALE_KINDS)
    def test_rerun_identical(self, policy, autoscaler):
        trace = small_trace(num_jobs=25, seed=13)
        runs = [
            run_fleet(
                trace, pools=SMALL_POOLS, policy=policy, autoscaler=autoscaler
            )
            for _ in range(2)
        ]
        assert runs[0].to_dict() == runs[1].to_dict()
        assert runs[0].digest == runs[1].digest
        assert runs[0].all_terminal()
        assert runs[0].completed + runs[0].rejected == runs[0].num_jobs

    def test_policies_change_outcomes_not_invariants(self):
        trace = small_trace(num_jobs=30, seed=21)
        results = {
            policy: run_fleet(trace, pools=SMALL_POOLS, policy=policy)
            for policy in ("first-fit", "best-fit", "priority")
        }
        for result in results.values():
            assert result.all_terminal()
            assert result.completed == 30

    def test_never_fitting_job_rejected(self):
        arrival = JobArrival(
            job_id="too-big",
            model="RM5",
            num_gpus=4096,
            duration_s=100.0,
            submit_s=0.0,
        )
        trace = Trace(kind="manual", seed=0, arrivals=(arrival,))
        result = run_fleet(trace, pools=SMALL_POOLS)
        assert result.rejected == 1
        assert result.jobs[0].state == "rejected"
        assert result.all_terminal()

    def test_thousand_job_acceptance(self):
        """The acceptance bar: a 1,000-job diurnal day on the default
        pools is byte-identical across two serial runs."""
        trace = generate_trace("diurnal", num_jobs=1000, seed=0)
        first = run_fleet(trace)
        second = run_fleet(trace)
        assert json.dumps(first.to_dict(), sort_keys=True) == json.dumps(
            second.to_dict(), sort_keys=True
        )
        assert first.all_terminal()
        assert first.completed + first.rejected == first.num_jobs


class TestGrowShrinkLedger:
    def empty_sim(self):
        from repro.fleet.simulator import FleetSimulator

        trace = Trace(kind="manual", seed=0, arrivals=())
        return FleetSimulator(trace, pools=SMALL_POOLS)

    def test_shrink_cancels_in_flight_growth(self):
        """grow(3) then shrink(3): the already-scheduled activate
        callback must not add phantom nodes or drive pending negative."""
        sim = self.empty_sim()
        pool = sim.pools["presto-ssd"]
        before = len(pool.nodes)
        sim._grow(pool, 3)
        sim._shrink(pool, 3)
        assert pool.pending == 0
        sim.engine.run(max_events=10)  # fire the activate callback
        assert pool.pending == 0
        assert len(pool.nodes) == before
        assert pool.committed_nodes == before

    def test_partial_cancel_activates_only_the_remainder(self):
        sim = self.empty_sim()
        pool = sim.pools["presto-ssd"]
        before = len(pool.nodes)
        sim._grow(pool, 2)
        sim._grow(pool, 3)
        sim._shrink(pool, 4)  # cancels newest growth first: all 3, then 1
        assert pool.pending == 1
        sim.engine.run(max_events=10)
        assert pool.pending == 0
        assert len(pool.nodes) == before + 1


class TestReachableCapacity:
    #: Disagg/RM5 at 8 GPUs needs 367 workers — more than the 200 this
    #: pool starts with, less than the 800 it can grow to
    TINY = (
        PoolSpec(
            name="tiny",
            system="Disagg",
            nodes=2,
            workers_per_node=100,
            min_nodes=1,
            max_nodes=8,
            scaleup_latency_s=60.0,
        ),
    )

    def trace(self):
        arrival = JobArrival(
            job_id="needs-growth",
            model="RM5",
            num_gpus=8,
            duration_s=600.0,
            submit_s=0.0,
        )
        return Trace(kind="manual", seed=0, arrivals=(arrival,))

    def test_fixed_pool_rejects_unreachable_job(self):
        """Under the non-growing autoscaler a job larger than committed
        capacity can never be placed — it must be rejected up front, not
        queue forever and hang the run."""
        result = run_fleet(self.trace(), pools=self.TINY, autoscaler="fixed")
        assert result.rejected == 1
        assert result.all_terminal()

    def test_growing_pool_serves_the_same_job(self):
        result = run_fleet(
            self.trace(), pools=self.TINY, autoscaler="target-utilization"
        )
        assert result.completed == 1
        assert result.all_terminal()


class TestFaultInjection:
    def plan(self, seed=17):
        return FaultPlan(
            seed=seed,
            rules=(
                FaultRule(point="node-down", rate=0.02),
                FaultRule(point="slow-node", rate=0.05, delay_s=300.0),
                FaultRule(point="arrival-burst", rate=0.05),
            ),
        )

    def run_faulted(self, seed=17):
        return run_fleet(
            small_trace(num_jobs=40, seed=seed),
            pools=SMALL_POOLS,
            injector=FaultInjector(self.plan(seed)),
        )

    def test_replay_identical(self):
        a = self.run_faulted()
        b = self.run_faulted()
        assert a.to_dict() == b.to_dict()

    def test_faults_fire_and_recover(self):
        result = self.run_faulted()
        assert result.fault_fires  # the plan actually did something
        assert result.all_terminal()
        assert result.reschedules == result.displacements
        # displacement (eviction) and reschedule (winning capacity again)
        # are counted on independent code paths; they must agree per job,
        # and a displaced job must finish — never strand or get rejected
        for job in result.jobs:
            assert job.reschedules == job.displacements
            if job.displacements:
                assert job.state == "completed"
        assert sum(p.node_failures for p in result.pools) == (
            result.fault_fires.get("node-down:down", 0)
        )

    def test_burst_clones_arrivals(self):
        result = self.run_faulted()
        bursts = result.fault_fires.get("arrival-burst:burst", 0)
        if bursts:
            assert result.num_jobs > 40
            assert any("+burst" in j.job_id for j in result.jobs)

    def test_burst_clone_ids_never_collide_with_trace_ids(self):
        """A recorded trace may legitimately hold an id shaped like a
        burst clone; the minted clone must skip it, not overwrite the
        real job's state."""
        arrivals = (
            JobArrival(job_id="job-x", model="RM1", num_gpus=8,
                       duration_s=300.0, submit_s=0.0),
            JobArrival(job_id="job-x+burst0", model="RM1", num_gpus=8,
                       duration_s=300.0, submit_s=100.0),
        )
        trace = Trace(kind="manual", seed=0, arrivals=arrivals)
        plan = FaultPlan(
            seed=1, rules=(FaultRule(point="arrival-burst", rate=1.0),)
        )
        result = run_fleet(
            trace, pools=SMALL_POOLS, injector=FaultInjector(plan)
        )
        ids = [job.job_id for job in result.jobs]
        assert len(ids) == len(set(ids))
        assert result.num_jobs == 6  # 2 trace arrivals + 2 clones each
        trace_job = result.jobs[
            ids.index("job-x+burst0")
        ]
        assert trace_job.submit_s == 100.0  # the real job, not a clone
        assert result.all_terminal()
        assert result.completed + result.rejected == result.num_jobs

    def test_clean_run_has_no_fires(self):
        result = run_fleet(small_trace(num_jobs=20, seed=3), pools=SMALL_POOLS)
        assert result.fault_fires == {}
        assert result.displacements == 0


class TestFleetResult:
    @pytest.fixture(scope="class")
    def result(self):
        return run_fleet(small_trace(num_jobs=20, seed=8), pools=SMALL_POOLS)

    def test_dict_round_trip(self, result):
        clone = FleetResult.from_dict(result.to_dict())
        assert clone == result
        assert clone.digest == result.digest

    def test_pool_lookup(self, result):
        assert result.pool("disagg-cpu").system == "Disagg"
        with pytest.raises(ConfigurationError):
            result.pool("nonexistent")

    def test_telemetry_events(self, result):
        events = result.telemetry_events()
        assert events
        assert all(e.source == "fleet" for e in events)
        run_events = [e for e in events if e.stage == "run"]
        assert len([e for e in run_events if e.task != "fleet"]) == (
            result.completed
        )

    def test_telemetry_extractor_from_file(self, result, tmp_path):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(result.to_dict()))
        events = events_from_fleet_result(str(path))
        assert events == result.telemetry_events(
            run_id=f"fleet-{result.trace_kind}-{result.trace_seed}"
        )


class TestFleetCli:
    def test_trace_gen_and_replay(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        assert cli_main(
            ["fleet", "trace", "gen", "--jobs", "15", "--seed", "4",
             "--out", path]
        ) == 0
        capsys.readouterr()
        assert cli_main(["fleet", "trace", "replay", path, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["byte_identical"] is True
        assert payload["jobs"] == 15

    def test_replay_detects_tampering(self, tmp_path, capsys):
        path = str(tmp_path / "t.jsonl")
        cli_main(
            ["fleet", "trace", "gen", "--jobs", "5", "--seed", "1",
             "--out", path]
        )
        with open(path) as handle:
            lines = handle.readlines()
        # reformat the last arrival: same record, different bytes
        loose = json.dumps(json.loads(lines[-1]), indent=1)
        lines[-1] = loose.replace("\n", "") + "\n"
        with open(path, "w") as handle:
            handle.writelines(lines)
        capsys.readouterr()
        assert cli_main(["fleet", "trace", "replay", path]) == 1
        # a truncated file (header/count mismatch) fails loudly at load
        with open(path, "w") as handle:
            handle.writelines(lines[:-1])
        capsys.readouterr()
        with pytest.raises(SystemExit, match="header declares"):
            cli_main(["fleet", "trace", "replay", path])

    def test_run_json_deterministic(self, tmp_path, capsys):
        argv = [
            "fleet", "run", "--kind", "poisson", "--jobs", "12",
            "--seed", "6", "--policy", "best-fit",
            "--autoscale", "queue-depth", "--faults", "node-down",
            "--json",
        ]
        assert cli_main(argv) == 0
        first = capsys.readouterr().out
        assert cli_main(argv) == 0
        second = capsys.readouterr().out
        assert first == second
        payload = json.loads(first)
        assert payload["completed"] + payload["rejected"] == (
            payload["num_jobs"]
        )

    def test_run_writes_result_file(self, tmp_path, capsys):
        out = str(tmp_path / "result.json")
        assert cli_main(
            ["fleet", "run", "--jobs", "10", "--seed", "2", "--out", out]
        ) == 0
        capsys.readouterr()
        with open(out) as handle:
            payload = json.load(handle)
        events = events_from_fleet_result(out)
        assert events
        assert payload["policy"] == "first-fit"

    def test_unknown_fault_rejected(self, capsys):
        with pytest.raises(SystemExit, match="unknown fleet fault"):
            cli_main(
                ["fleet", "run", "--jobs", "5", "--faults", "meteor-strike"]
            )

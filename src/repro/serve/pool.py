"""Persistent worker pool draining the bounded job queue.

A fixed crew of worker threads pulls job ids off a
:class:`~repro.serve.queue.BoundedJobQueue` and pushes each through the
``runner`` callable (the service's staged ShardExecutor path).  The pool
owns three responsibilities the batch executor never needed:

* **retry with backoff** — a runner that raises an ``Exception`` is retried
  up to ``max_retries`` extra times, sleeping ``backoff_s * factor**n``
  between attempts; only then is the job reported failed;
* **worker replacement** — a worker that *dies* (a ``BaseException`` such
  as ``SystemExit`` escaping the runner, the stand-in for a crashed
  process) reports the in-flight job as failed and is replaced by a fresh
  worker, so one poisoned job can never hang the queue;
* **graceful drain** — :meth:`drain` closes the queue and waits until every
  queued and in-flight job has reached a terminal report; :meth:`stop`
  instead cancels the queued tail explicitly and waits only for in-flight
  work.  Either way no job vanishes silently.

The pool is deliberately thread- (not process-) based: jobs themselves are
numpy-heavy and the per-job data plane can still fan out across processes,
while the pool layer stays cheap to start, easy to observe, and able to
share the in-memory lifecycle store.
"""

from __future__ import annotations

import itertools
import threading
import time
from typing import Any, Callable, Dict, List, Optional

from repro.errors import QueueClosedError, ServeError
from repro.serve.queue import BoundedJobQueue

#: runner(item, attempt) -> result; raising Exception triggers a retry
JobRunner = Callable[[Any, int], Any]


class WorkerPool:
    """Threaded consumers with per-job retry/backoff and self-replacement."""

    def __init__(
        self,
        queue: BoundedJobQueue,
        runner: JobRunner,
        num_workers: int = 2,
        max_retries: int = 1,
        backoff_s: float = 0.05,
        backoff_factor: float = 2.0,
        sleep: Callable[[float], None] = time.sleep,
        on_done: Optional[Callable[[Any, Any, Optional[BaseException]], None]] = None,
        on_retry: Optional[Callable[[Any, int, Exception, float], None]] = None,
        on_worker_death: Optional[
            Callable[[str, Any, BaseException], None]
        ] = None,
    ) -> None:
        if not isinstance(num_workers, int) or num_workers <= 0:
            raise ServeError(
                f"num_workers must be a positive int, got {num_workers!r}"
            )
        if not isinstance(max_retries, int) or max_retries < 0:
            raise ServeError(
                f"max_retries must be a non-negative int, got {max_retries!r}"
            )
        if backoff_s < 0 or backoff_factor <= 0:
            raise ServeError("backoff_s must be >= 0 and backoff_factor > 0")
        self.queue = queue
        self.num_workers = num_workers
        self.max_retries = max_retries
        self.backoff_s = backoff_s
        self.backoff_factor = backoff_factor
        self._runner = runner
        self._sleep = sleep
        self._on_done = on_done or (lambda item, result, error: None)
        self._on_retry = on_retry or (lambda item, attempt, error, delay: None)
        self._on_worker_death = on_worker_death or (
            lambda worker, item, error: None
        )
        self._lock = threading.Lock()
        self._threads: Dict[str, threading.Thread] = {}
        self._inflight: Dict[str, Any] = {}
        self._names = itertools.count()
        self._stopping = False
        self._started = False
        self._replaced = 0

    # -- lifecycle -----------------------------------------------------------

    def start(self) -> None:
        """Spawn the initial crew (idempotent)."""
        with self._lock:
            if self._started:
                return
            self._started = True
            for _ in range(self.num_workers):
                self._spawn_locked()

    def _spawn_locked(self) -> None:
        name = f"serve-worker-{next(self._names)}"
        thread = threading.Thread(
            target=self._worker_main, args=(name,), name=name, daemon=True
        )
        self._threads[name] = thread
        thread.start()

    @property
    def workers_replaced(self) -> int:
        """How many dead workers the pool has replaced so far."""
        with self._lock:
            return self._replaced

    def alive_workers(self) -> int:
        with self._lock:
            return sum(1 for t in self._threads.values() if t.is_alive())

    def inflight(self) -> Dict[str, Any]:
        """worker name -> item currently being executed."""
        with self._lock:
            return dict(self._inflight)

    # -- worker body ---------------------------------------------------------

    def _worker_main(self, name: str) -> None:
        current = None
        try:
            while True:
                try:
                    item = self.queue.get()
                except QueueClosedError:
                    return
                current = item
                with self._lock:
                    self._inflight[name] = item
                try:
                    self._run_one(item)
                finally:
                    with self._lock:
                        self._inflight.pop(name, None)
                current = None
        except BaseException as death:  # worker crash: report + replace
            with self._lock:
                self._inflight.pop(name, None)
            self._on_worker_death(name, current, death)
            if current is not None:
                self._on_done(current, None, death)
            with self._lock:
                if not self._stopping:
                    self._replaced += 1
                    self._spawn_locked()

    def _run_one(self, item: Any) -> None:
        """Run one job to a terminal report, retrying transient failures."""
        attempt = 0
        while True:
            attempt += 1
            try:
                result = self._runner(item, attempt)
            except Exception as error:
                if attempt > self.max_retries:
                    self._on_done(item, None, error)
                    return
                delay = self.backoff_s * self.backoff_factor ** (attempt - 1)
                self._on_retry(item, attempt, error, delay)
                if delay > 0:
                    self._sleep(delay)
                continue
            self._on_done(item, result, None)
            return

    # -- shutdown ------------------------------------------------------------

    def drain(self, timeout: Optional[float] = None) -> bool:
        """Close the queue and finish every queued + in-flight job.

        Dead workers are still replaced while draining, so the tail of the
        queue completes even if a poison job kills its worker.  Returns
        ``True`` when every worker exited within ``timeout``.
        """
        self.queue.close()
        done = self._join(timeout)
        with self._lock:
            self._stopping = True
        return done

    def stop(self, timeout: Optional[float] = None) -> List[Any]:
        """Cancel the queued tail, finish in-flight jobs, and shut down.

        Returns the queued items that were cancelled (never executed) so
        the caller can mark them explicitly — nothing disappears.
        """
        cancelled = self.queue.cancel(lambda item: True)
        self.queue.close()
        self._join(timeout)
        with self._lock:
            self._stopping = True
        return cancelled

    def _join(self, timeout: Optional[float]) -> bool:
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            with self._lock:
                threads = [t for t in self._threads.values() if t.is_alive()]
            if not threads:
                return True
            for thread in threads:
                remaining = (
                    None if deadline is None else deadline - time.monotonic()
                )
                if remaining is not None and remaining <= 0:
                    return False
                thread.join(remaining)
            # loop again: a worker may have died and been replaced mid-join

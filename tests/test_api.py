"""Tests for the declarative Scenario API: registry, Scenario, Sweep,
RunResult, and the deprecation shims over the old entry points."""

import dataclasses
import json
import pickle

import pytest

from repro.api import (
    REGISTRY,
    RunResult,
    Scenario,
    Sweep,
    available_systems,
    calibration_overrides,
    get_system,
    register_system,
)
from repro.core.provision import workers_for
from repro.core.systems import PreStoSystem
from repro.errors import ConfigurationError
from repro.features.specs import get_model
from repro.hardware.calibration import CALIBRATION

BUILTIN_SYSTEMS = ("Disagg", "Co-located", "PreSto", "A100", "U280", "PreSto (U280)")


class TestRegistry:
    def test_builtins_registered(self):
        names = available_systems()
        for name in BUILTIN_SYSTEMS:
            assert name in names

    def test_create_by_name(self):
        system = get_system("PreSto", get_model("RM1"))
        assert isinstance(system, PreStoSystem)
        assert system.worker_throughput() > 0

    def test_alias_and_case_insensitive_lookup(self):
        assert REGISTRY.canonical("PreSto (SmartSSD)") == "PreSto"
        assert REGISTRY.canonical("presto") == "PreSto"
        assert "disagg" in REGISTRY

    def test_unknown_system_lists_names(self):
        with pytest.raises(ConfigurationError, match="registered systems"):
            REGISTRY.canonical("NoSuchSystem")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ConfigurationError, match="already registered"):
            register_system("PreSto")(PreStoSystem)

    def test_register_and_unregister_custom(self):
        @register_system("Test-Custom")
        class CustomSystem(PreStoSystem):
            name = "Test-Custom"

        try:
            assert "Test-Custom" in available_systems()
            system = get_system("Test-Custom", get_model("RM1"))
            assert isinstance(system, CustomSystem)
            # and it flows straight into the Scenario front door
            plan = Scenario(model="RM1", system="Test-Custom").provision_plan()
            assert plan.num_workers >= 1
        finally:
            REGISTRY.unregister("Test-Custom")
        assert "Test-Custom" not in available_systems()

    def test_invalid_registrations(self):
        with pytest.raises(ConfigurationError, match="non-empty string"):
            REGISTRY.register("", PreStoSystem)
        with pytest.raises(ConfigurationError, match="callable"):
            REGISTRY.register("Test-NotCallable", object())


class TestScenarioValidation:
    def test_normalizes_model_and_system(self):
        scenario = Scenario(model="rm5", system="presto")
        assert scenario.model == "RM5"
        assert scenario.system == "PreSto"

    def test_unknown_model(self):
        with pytest.raises(ConfigurationError, match="unknown model"):
            Scenario(model="RM9", system="PreSto")

    def test_unknown_system(self):
        with pytest.raises(ConfigurationError, match="unknown system"):
            Scenario(model="RM1", system="Disco")

    @pytest.mark.parametrize("field", ["num_gpus", "num_batches", "queue_capacity"])
    def test_positive_ints_required(self, field):
        with pytest.raises(ConfigurationError, match=field):
            Scenario(model="RM1", system="PreSto", **{field: 0})

    def test_explicit_provision_needs_workers(self):
        with pytest.raises(ConfigurationError, match="num_workers"):
            Scenario(model="RM1", system="PreSto", provision="explicit")

    def test_bad_provision_mode(self):
        with pytest.raises(ConfigurationError, match="provision"):
            Scenario(model="RM1", system="PreSto", provision="magic")

    def test_num_workers_implies_explicit(self):
        scenario = Scenario(model="RM1", system="PreSto", num_workers=4)
        assert scenario.provision == "explicit"

    def test_zero_workers_rejected(self):
        with pytest.raises(ConfigurationError, match="num_workers"):
            Scenario(model="RM1", system="PreSto", num_workers=0)

    def test_unknown_calibration_field(self):
        with pytest.raises(ConfigurationError, match="calibration field"):
            Scenario(model="RM1", system="PreSto", calibration={"warp_speed": 9})

    def test_non_numeric_override(self):
        with pytest.raises(ConfigurationError, match="must be a number"):
            Scenario(model="RM1", system="PreSto",
                     calibration={"ssd_read_bw": "fast"})

    def test_scenario_is_frozen_and_hashable(self):
        scenario = Scenario(model="RM1", system="PreSto",
                            calibration={"ssd_read_bw": 4e9})
        with pytest.raises(dataclasses.FrozenInstanceError):
            scenario.model = "RM2"
        assert scenario == Scenario(model="RM1", system="PreSto",
                                    calibration={"ssd_read_bw": 4e9})
        assert hash(scenario)


class TestScenarioSerialization:
    def test_dict_round_trip(self):
        scenario = Scenario(model="RM3", system="U280", num_gpus=4,
                            num_batches=50, queue_capacity=8,
                            calibration={"network_bandwidth": 25e9}, seed=7)
        data = scenario.to_dict()
        assert data["calibration"] == {"network_bandwidth": 25e9}
        assert Scenario.from_dict(data) == scenario

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown scenario keys"):
            Scenario.from_dict({"model": "RM1", "system": "PreSto", "gpus": 8})

    def test_scenario_pickles(self):
        scenario = Scenario(model="RM1", system="PreSto",
                            calibration={"ssd_read_bw": 4e9})
        assert pickle.loads(pickle.dumps(scenario)) == scenario

    def test_calibration_overrides_diff(self):
        assert calibration_overrides(CALIBRATION) == {}
        custom = dataclasses.replace(CALIBRATION, ssd_read_bw=4e9)
        assert calibration_overrides(custom) == {"ssd_read_bw": 4e9}
        # overrides rebuild the same calibration instance
        scenario = Scenario(model="RM1", system="PreSto",
                            calibration=calibration_overrides(custom))
        assert scenario.build_calibration() == custom


class TestScenarioRun:
    def test_run_returns_uniform_result(self):
        result = Scenario(model="RM1", system="PreSto", num_gpus=1,
                          num_batches=100).run()
        assert isinstance(result, RunResult)
        assert result.num_workers >= 1
        assert 0.0 <= result.gpu_utilization <= 1.0
        assert result.steady_state_utilization > 0.95  # provisioned to demand
        assert result.headroom >= 1.0
        assert result.power_watts > 0
        assert result.capex_dollars > 0
        assert result.to_dict()["scenario"]["model"] == "RM1"
        assert "RM1/PreSto" in result.summary()

    def test_starved_scenario_reports_actual_supply(self):
        """Supply comes from the preprocess manager's production, not a
        copy of the training rate (the old endtoend bug)."""
        result = Scenario(model="RM5", system="Disagg", num_gpus=1,
                          num_workers=1, num_batches=10).run()
        assert result.starved
        assert result.preprocessing_throughput < result.training_demand
        assert result.headroom < 1.0

    def test_provisioned_supply_can_exceed_consumption(self):
        result = Scenario(model="RM1", system="PreSto", num_gpus=1,
                          num_batches=100).run()
        assert result.preprocessing_throughput >= result.training_throughput

    def test_calibration_override_changes_outcome(self):
        base = Scenario(model="RM5", system="Disagg", num_gpus=1,
                        num_workers=8, num_batches=20)
        slow = base.replace(calibration={"cpu_hash_per_element": 1e-6})
        fast = base.run()
        throttled = slow.run()
        assert throttled.preprocessing_throughput < fast.preprocessing_throughput

    def test_explicit_workers_respected(self):
        result = Scenario(model="RM1", system="PreSto", num_gpus=1,
                          num_workers=3, num_batches=30).run()
        assert result.num_workers == 3


class TestSweep:
    def test_grid_order_and_size(self):
        sweep = Sweep.grid(models=("RM1", "RM2"), systems=("Disagg", "PreSto"),
                           num_gpus=(1, 8))
        assert len(sweep) == 8
        assert sweep[0].label == "RM1/Disagg/1gpu"
        assert sweep[-1].label == "RM2/PreSto/8gpu"

    def test_grid_accepts_scalars(self):
        assert len(Sweep.grid(models="RM1", systems="PreSto", num_gpus=1)) == 1

    def test_empty_sweep_rejected(self):
        with pytest.raises(ConfigurationError, match="at least one"):
            Sweep([])

    def test_non_scenario_rejected(self):
        with pytest.raises(ConfigurationError, match="Scenario"):
            Sweep(["RM1/PreSto"])

    def test_parallel_matches_serial_exactly(self):
        """The acceptance bar: a parallel sweep is byte-identical to the
        same sweep run serially, in the same order."""
        sweep = Sweep.grid(models=("RM1", "RM2"), systems=("PreSto", "Disagg"),
                           num_gpus=(1,), num_batches=20)
        serial = sweep.run(parallel=False)
        parallel = sweep.run(parallel=True, processes=2)
        assert [r.scenario for r in serial] == list(sweep)
        assert serial == parallel
        serial_bytes = json.dumps([r.to_dict() for r in serial]).encode()
        parallel_bytes = json.dumps([r.to_dict() for r in parallel]).encode()
        assert serial_bytes == parallel_bytes

    def test_dict_round_trip(self):
        sweep = Sweep.grid(models=("RM1",), systems=("PreSto", "U280"))
        rebuilt = Sweep.from_dicts(sweep.to_dicts())
        assert list(rebuilt) == list(sweep)


class TestEndToEndConstruction:
    def test_endtoend_accepts_system_name(self):
        from repro.core.endtoend import EndToEndSimulation

        sim = EndToEndSimulation(get_model("RM1"), system="PreSto", num_gpus=1)
        stats = sim.run(num_batches=20, provision_to_demand=True)
        assert stats.num_batches == 20
        assert stats.num_workers >= 1

    def test_endtoend_legacy_worker_factory_still_works(self):
        from repro.core.cpu_worker import CpuPreprocessingWorker
        from repro.core.endtoend import EndToEndSimulation

        spec = get_model("RM1")
        sim = EndToEndSimulation(spec, lambda: CpuPreprocessingWorker(spec))
        stats = sim.run(num_batches=10, num_workers=2)
        assert stats.num_workers == 2

    def test_endtoend_requires_exactly_one_source(self):
        from repro.core.cpu_worker import CpuPreprocessingWorker
        from repro.core.endtoend import EndToEndSimulation

        spec = get_model("RM1")
        with pytest.raises(ConfigurationError, match="exactly one"):
            EndToEndSimulation(spec)
        with pytest.raises(ConfigurationError, match="exactly one"):
            EndToEndSimulation(
                spec, lambda: CpuPreprocessingWorker(spec), system="PreSto"
            )


class TestProvisioningBoundary:
    def test_subnormal_demand_gets_a_worker(self):
        # 5e-324 / 2.0 underflows to 0.0; ceil would allocate zero workers
        assert workers_for(5e-324, 2.0) == 1

    def test_zero_demand_stays_zero(self):
        assert workers_for(0.0, 30.0) == 0

    def test_exact_multiple_stays_tight(self):
        assert workers_for(90.0, 30.0) == 3

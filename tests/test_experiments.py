"""Tests for the experiment harness: every figure/table regenerates and its
paper claims hold within tolerance."""

import pytest

from repro.experiments import (
    fig3_colocated,
    fig4_cores_required,
    fig5_breakdown,
    fig6_utilization,
    fig11_throughput,
    fig12_latency,
    fig13_network,
    fig14_provisioning,
    fig15_efficiency,
    fig16_alternatives,
    fig17_sensitivity,
    table1_models,
    table2_resources,
)
from repro.api import EXPERIMENT_REGISTRY
from repro.experiments.report import collect_claims, render_report, run_all


@pytest.fixture(scope="module")
def results():
    return run_all()


class TestEveryExperimentRuns:
    def test_all_present(self, results):
        # 13 paper figures/tables + 7 ablations + 2 fleet experiments
        assert len(results) == 22

    @pytest.mark.parametrize(
        "name",
        list(EXPERIMENT_REGISTRY.titles("figure"))
        + list(EXPERIMENT_REGISTRY.titles("table")),
    )
    def test_renders_nonempty(self, results, name):
        text = results[name].render()
        assert len(text) > 50
        assert name.split()[0] in text  # "Figure"/"Table" appears in the title

    def test_all_claims_hold(self, results):
        """Every quantitative paper claim is within its tolerance band."""
        failing = [
            (name, claim.description, claim.paper_value, claim.measured_value)
            for name, claim in collect_claims(results)
            if not claim.holds
        ]
        assert not failing, failing

    def test_report_renders(self, results):
        report = render_report(results)
        assert "CLAIMS SCOREBOARD" in report


class TestFig3:
    def test_monotone_scaling(self):
        result = fig3_colocated.run()
        tputs = result.preprocessing_throughput
        assert all(b > a for a, b in zip(tputs, tputs[1:]))

    def test_utilization_below_20pct(self):
        result = fig3_colocated.run()
        assert result.utilization_at_16 < 0.20

    def test_rows_shape(self):
        assert len(fig3_colocated.run().rows()) == 5


class TestFig4:
    def test_rm1_needs_far_fewer(self):
        result = fig4_cores_required.run()
        assert result.cores["RM1"] < result.cores["RM2"] / 2

    def test_rm5_is_max(self):
        result = fig4_cores_required.run()
        assert result.max_cores == result.cores["RM5"] == 367


class TestFig5:
    def test_normalized_rm1_total_is_one(self):
        result = fig5_breakdown.run()
        normalized = result.normalized()
        assert sum(normalized["RM1"].values()) == pytest.approx(1.0)

    def test_latency_ordering(self):
        result = fig5_breakdown.run()
        totals = [result.total(m) for m in ("RM1", "RM2", "RM3", "RM4", "RM5")]
        assert all(b >= a for a, b in zip(totals, totals[1:]))


class TestFig11:
    def test_presto_beats_32_everywhere(self):
        result = fig11_throughput.run()
        for model in result.presto:
            assert result.presto_over_disagg32(model) > 1.0

    def test_disagg_scaling_linear(self):
        result = fig11_throughput.run()
        for model, by_cores in result.disagg.items():
            assert by_cores[64] == pytest.approx(64 * by_cores[1], rel=1e-6)


class TestFig12:
    def test_speedups_in_band(self):
        result = fig12_latency.run()
        for model in result.disagg:
            assert 4.0 < result.speedup(model) < 12.5

    def test_rm5_highest_speedup(self):
        result = fig12_latency.run()
        assert result.max_speedup == pytest.approx(result.speedup("RM5"))


class TestFig13:
    def test_reduction_everywhere(self):
        result = fig13_network.run()
        for model in result.disagg:
            assert result.reduction(model) > 1.5


class TestFig14:
    def test_units_tiny_vs_cores(self):
        result = fig14_provisioning.run()
        for model in result.isp_units:
            assert result.isp_units[model] * 30 < result.cpu_cores[model]


class TestFig15:
    def test_presto_wins_both_axes(self):
        result = fig15_efficiency.run()
        assert all(v > 1 for v in result.energy_ratio.values())
        assert all(v > 1 for v in result.cost_ratio.values())


class TestFig16:
    def test_smartssd_beats_a100(self):
        result = fig16_alternatives.run()
        for model in result.throughput:
            assert result.ratio(model, "PreSto (SmartSSD)", "A100") > 1.5

    def test_smartssd_best_perf_watt(self):
        result = fig16_alternatives.run()
        for model, designs in result.perf_per_watt.items():
            assert designs["PreSto (SmartSSD)"] == max(designs.values())


class TestFig17:
    def test_disagg_grows_linearly(self):
        result = fig17_sensitivity.run()
        for op in ("bucketize", "sigridhash", "log"):
            assert result.disagg_growth(op) == pytest.approx(4.0, rel=0.05)

    def test_speedup_grows_with_scale(self):
        result = fig17_sensitivity.run()
        for op in ("bucketize", "sigridhash", "log"):
            assert result.speedup(op, 4) >= result.speedup(op, 1)


class TestTables:
    def test_table1_matches(self):
        assert table1_models.run().matches_paper
        assert table1_models.run().mismatches() == []

    def test_table2_within_rounding(self):
        assert table2_resources.run().max_abs_error() < 0.5

    def test_fig6_samples_cover_grid(self):
        result = fig6_utilization.run()
        assert len(result.samples) == 6  # 2 models x 3 ops

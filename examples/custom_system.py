"""Register a user-defined system design point — no core changes needed.

The Scenario API's registry makes design points pluggable: decorate a
`PreprocessingSystem` subclass with `@register_system(...)` and it becomes a
first-class citizen of scenarios, sweeps, provisioning, and the CLI, right
next to the paper's six built-ins.

Here we sketch a hypothetical "PreSto-Gen2" SmartSSD — twice the FPGA
clock, a second hardwired Parquet decoder, PCIe 4.0 P2P, and leaner host
orchestration — then sweep it against the paper's designs on the
production-scale models.

Run:  python examples/custom_system.py
"""

import dataclasses

from repro import (
    PreStoSystem,
    Scenario,
    Sweep,
    available_systems,
    register_system,
)
from repro.core.isp_worker import IspPreprocessingWorker
from repro.experiments.common import format_table


@register_system("PreSto-Gen2")
class PreStoGen2System(PreStoSystem):
    """A next-generation SmartSSD: 2x clock and decoders, PCIe 4.0 P2P."""

    name = "PreSto-Gen2"

    def _gen2_calibration(self):
        return dataclasses.replace(
            self.cal,
            accelerator_clock_hz=2.0 * self.cal.accelerator_clock_hz,
            accel_decode_bw=2.0 * self.cal.accel_decode_bw,
            p2p_bandwidth=2.0 * self.cal.p2p_bandwidth,
            accel_host_overhead=0.5 * self.cal.accel_host_overhead,
        )

    def make_worker(self):
        return IspPreprocessingWorker(self.spec, calibration=self._gen2_calibration())


def main() -> None:
    print("Registered systems:", ", ".join(available_systems()))
    assert "PreSto-Gen2" in available_systems()

    # the custom design is constructible by name, like any built-in
    plan = Scenario(model="RM5", system="PreSto-Gen2", num_gpus=8).provision_plan()
    print(f"\nRM5 on 8 GPUs: {plan.num_workers} Gen2 units "
          f"(P = {plan.worker_throughput:,.0f} samples/s, "
          f"headroom {plan.headroom:.2f}x)")

    # ... and sweepable against the paper's designs, in parallel
    sweep = Sweep.grid(
        models=("RM4", "RM5"),
        systems=("PreSto", "PreSto-Gen2"),
        num_gpus=(8,),
        num_batches=300,
    )
    rows = [
        (
            r.scenario.model,
            r.scenario.system,
            r.num_workers,
            100 * r.steady_state_utilization,
            r.preprocessing_throughput,
            r.power_watts,
        )
        for r in sweep.run()
    ]
    print()
    print(format_table(
        ["model", "system", "units", "steady util (%)", "supply (samples/s)",
         "power (W)"],
        rows,
        title="Gen2 SmartSSD vs the paper's PreSto (8-GPU nodes)",
    ))
    print("\nFewer units do the same job: the registry turned a ~20-line "
          "subclass into a fully sweepable design point.")


if __name__ == "__main__":
    main()

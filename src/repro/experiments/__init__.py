"""Experiment harness: one module per paper table/figure.

Each module exposes ``run() -> <Result>`` returning a structured result with
``rows()`` (the same series the paper plots) and ``render()`` (a text table).
:mod:`repro.experiments.report` runs everything and produces the full
paper-vs-measured report used by EXPERIMENTS.md.
"""

from repro.experiments import (
    abl_batch_size,
    abl_double_buffering,
    abl_lane_sweep,
    abl_multijob,
    abl_network_contention,
    abl_network_sweep,
    abl_row_vs_columnar,
    fig3_colocated,
    fig4_cores_required,
    fig5_breakdown,
    fig6_utilization,
    table1_models,
    table2_resources,
    fig11_throughput,
    fig12_latency,
    fig13_network,
    fig14_provisioning,
    fig15_efficiency,
    fig16_alternatives,
    fig17_sensitivity,
)

__all__ = [
    "abl_batch_size",
    "abl_double_buffering",
    "abl_lane_sweep",
    "abl_multijob",
    "abl_network_contention",
    "abl_network_sweep",
    "abl_row_vs_columnar",
    "fig3_colocated",
    "fig4_cores_required",
    "fig5_breakdown",
    "fig6_utilization",
    "table1_models",
    "table2_resources",
    "fig11_throughput",
    "fig12_latency",
    "fig13_network",
    "fig14_provisioning",
    "fig15_efficiency",
    "fig16_alternatives",
    "fig17_sensitivity",
]

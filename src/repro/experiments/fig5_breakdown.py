"""Figure 5 — single-worker CPU preprocessing latency breakdown.

Latency to preprocess one mini-batch with one CPU worker, broken into the
key ETL steps and normalized to RM1's total (the paper's stacked bars).

Paper claims: feature generation + normalization average ~79% of time;
RM5's total is ~14x RM1's; preprocessing is compute-bound, not I/O-bound
(Extract(Read) is a small slice).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.core.cpu_worker import CpuPreprocessingWorker
from repro.core.worker import BREAKDOWN_STEPS
from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    models,
    register_experiment,
)
from repro.hardware.calibration import CALIBRATION, Calibration

TRANSFORM_STEPS = ("bucketize", "sigridhash", "log")


@dataclass(frozen=True)
class Fig5Result(ExperimentResult):
    """Per-model step breakdowns (seconds) plus normalized views."""

    breakdowns: Dict[str, Dict[str, float]]

    def total(self, model: str) -> float:
        """End-to-end seconds per batch for one model."""
        return sum(self.breakdowns[model].values())

    def normalized(self) -> Dict[str, Dict[str, float]]:
        """Every step scaled so RM1's total is 1.0 (the figure's y-axis)."""
        base = self.total("RM1")
        return {
            model: {step: seconds / base for step, seconds in steps.items()}
            for model, steps in self.breakdowns.items()
        }

    def transform_share(self, model: str) -> float:
        """Fraction of time in Bucketize + SigridHash + Log."""
        steps = self.breakdowns[model]
        return sum(steps[s] for s in TRANSFORM_STEPS) / self.total(model)

    @property
    def mean_transform_share(self) -> float:
        """Average across models (paper: 0.79)."""
        shares = [self.transform_share(m) for m in self.breakdowns]
        return sum(shares) / len(shares)

    @property
    def rm5_over_rm1(self) -> float:
        """Total-latency ratio (paper: ~14x)."""
        return self.total("RM5") / self.total("RM1")

    def read_share(self, model: str) -> float:
        """Extract(Read) fraction — the I/O-bound check."""
        return self.breakdowns[model]["extract_read"] / self.total(model)

    def claims(self) -> List[PaperClaim]:
        return [
            PaperClaim("mean transform share", 0.79, self.mean_transform_share, 0.10),
            PaperClaim("RM5/RM1 total latency", 14.0, self.rm5_over_rm1, 0.25),
            PaperClaim(
                "max Extract(Read) share (I/O not the bottleneck)",
                0.03,
                max(self.read_share(m) for m in self.breakdowns),
                1.0,
            ),
        ]

    def rows(self) -> List[Tuple]:
        normalized = self.normalized()
        out = []
        for model, steps in normalized.items():
            out.append(
                tuple(
                    [model]
                    + [steps[s] for s in BREAKDOWN_STEPS]
                    + [sum(steps.values())]
                )
            )
        return out

    def columns(self) -> List[str]:
        return ["model"] + list(BREAKDOWN_STEPS) + ["total"]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title="Figure 5: CPU worker latency breakdown (normalized to RM1 total)",
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("fig5", title="Figure 5", kind="figure", order=30)
def run(calibration: Calibration = CALIBRATION) -> Fig5Result:
    """Regenerate Figure 5."""
    breakdowns = {
        spec.name: CpuPreprocessingWorker(spec, calibration).batch_breakdown()
        for spec in models()
    }
    return Fig5Result(breakdowns=breakdowns)

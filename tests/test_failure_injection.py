"""Failure-injection tests: corrupted files, truncated partitions, and
mid-pipeline data damage must fail loudly (CRC/format errors), never
silently produce wrong tensors — and the streaming service must survive
the same injections without hanging its queue."""

import dataclasses
import json

import numpy as np
import pytest

from repro.api import PreprocessJob
from repro.core.cpu_worker import CpuPreprocessingWorker
from repro.dataio.columnar import ColumnarFileReader
from repro.dataio.partition import RowPartitioner
from repro.errors import EncodingError, FormatError, ReproError
from repro.features.specs import get_model
from repro.features.synthetic import generate_raw_table
from repro.serve import PreprocessService
from repro.storage.cluster import DistributedStorage
from repro.storage.smartssd import SmartSsd


@pytest.fixture(scope="module")
def partition_bytes():
    spec = get_model("RM1")
    data = generate_raw_table(spec, 64)
    parts = RowPartitioner(spec.schema(), rows_per_partition=64).partition_all(data)
    return spec, parts[0].file_bytes


class TestCorruptedPartitions:
    def test_flipped_data_byte_caught_by_crc(self, partition_bytes):
        spec, raw = partition_bytes
        worker = CpuPreprocessingWorker(spec)
        corrupted = bytearray(raw)
        corrupted[len(raw) // 3] ^= 0xFF  # inside some column chunk
        with pytest.raises(ReproError):
            worker.preprocess_partition(bytes(corrupted))

    def test_truncated_file_rejected(self, partition_bytes):
        spec, raw = partition_bytes
        with pytest.raises(FormatError):
            ColumnarFileReader(raw[: len(raw) // 2])

    def test_footer_corruption_rejected(self, partition_bytes):
        spec, raw = partition_bytes
        corrupted = bytearray(raw)
        corrupted[-12] ^= 0xFF  # inside the footer length / magic region
        with pytest.raises(FormatError):
            ColumnarFileReader(bytes(corrupted))

    def test_every_single_byte_flip_is_detected_or_harmless(self, partition_bytes):
        """Sampled single-byte corruption never yields silently different
        tensors: either an error is raised or (for unread padding) the
        output is identical."""
        spec, raw = partition_bytes
        worker = CpuPreprocessingWorker(spec)
        reference, _ = worker.preprocess_partition(raw)
        rng = np.random.default_rng(0)
        for offset in rng.integers(6, len(raw) - 10, size=25):
            corrupted = bytearray(raw)
            corrupted[offset] ^= 0x01
            try:
                batch, _ = worker.preprocess_partition(bytes(corrupted))
            except ReproError:
                continue  # detected: good
            np.testing.assert_array_equal(batch.dense, reference.dense)
            np.testing.assert_array_equal(
                batch.sparse.values, reference.sparse.values
            )


class TestStorageFailures:
    def test_reading_missing_partition(self):
        spec = get_model("RM1")
        data = generate_raw_table(spec, 64)
        parts = RowPartitioner(spec.schema(), rows_per_partition=32).partition_all(
            data
        )
        storage = DistributedStorage([SmartSsd("isp0")])
        storage.store_partitions("ds", parts)
        with pytest.raises(ReproError):
            storage.read_partition("ds", 99)

    def test_chunk_decode_error_type(self, partition_bytes):
        """Corruption inside a chunk surfaces as EncodingError specifically."""
        spec, raw = partition_bytes
        reader = ColumnarFileReader(raw)
        chunk = reader.footer.chunks_for("int_0")[0]
        corrupted = bytearray(raw)
        corrupted[chunk.offset + chunk.size // 2] ^= 0xFF
        with pytest.raises(EncodingError, match="CRC"):
            ColumnarFileReader(bytes(corrupted)).read_column("int_0")

    def test_untouched_columns_still_readable_after_corruption(self, partition_bytes):
        """Selective reads isolate damage: corrupting one column's chunk
        leaves the others decodable."""
        spec, raw = partition_bytes
        reader = ColumnarFileReader(raw)
        chunk = reader.footer.chunks_for("int_0")[0]
        corrupted = bytearray(raw)
        corrupted[chunk.offset + 4] ^= 0xFF
        damaged = ColumnarFileReader(bytes(corrupted))
        with pytest.raises(EncodingError):
            damaged.read_column("int_0")
        intact = damaged.read_column("int_1")  # different chunk: fine
        np.testing.assert_array_equal(intact, reader.read_column("int_1"))


class TestServiceFailureInjection:
    """The same failure classes injected into the streaming service: a job
    that kills its worker must be reported failed (with error details) and
    the pool must replace the worker — never hang the queue."""

    JOB = PreprocessJob(model="RM1", num_rows=256, num_shards=1)

    def test_worker_death_fails_job_and_replaces_worker(self, tmp_path):
        def lethal(job, record_stage):
            if job.seed == 13:
                raise SystemExit("simulated worker crash")
            record_stage("generate", "started", {})
            record_stage("generate", "completed", {})
            return f"digest-{job.seed}"

        service = PreprocessService(
            spool_dir=str(tmp_path), num_workers=1, runner=lethal
        )
        service.start()
        poison = service.submit(dataclasses.replace(self.JOB, seed=13))
        survivor = service.submit(dataclasses.replace(self.JOB, seed=1))
        failed = service.wait(poison.job_id, timeout=30.0)
        # the queue is not hung: the replacement worker runs the next job
        completed = service.wait(survivor.job_id, timeout=30.0)
        service.stop(drain=True, timeout=30.0)

        assert failed.state == "failed"
        assert "SystemExit" in failed.error
        assert "simulated worker crash" in failed.error
        assert completed.state == "completed"
        assert completed.digest == "digest-1"
        assert service.pool.workers_replaced >= 1
        assert service.worker_deaths  # the death is audited, not swallowed
        worker, job_id, error = service.worker_deaths[0]
        assert job_id == poison.job_id and "SystemExit" in error

    def test_data_corruption_failure_is_loud_with_stage_details(self, tmp_path):
        """A mid-pipeline ReproError (the CRC/format family above) surfaces
        as a failed record naming the stage that blew up."""

        def corrupt_extract(job, record_stage):
            record_stage("generate", "started", {})
            record_stage("generate", "completed", {})
            record_stage("extract", "started", {})
            raise EncodingError("chunk CRC mismatch in column int_0")

        service = PreprocessService(
            spool_dir=str(tmp_path),
            num_workers=1,
            max_retries=0,
            runner=corrupt_extract,
        )
        service.start()
        record = service.submit(self.JOB)
        final = service.wait(record.job_id, timeout=30.0)
        service.stop(drain=True, timeout=30.0)

        assert final.state == "failed"
        assert "CRC mismatch" in final.error
        events = {(e.stage, e.status) for e in final.stages}
        assert ("extract", "failed") in events
        assert ("transform", "skipped") in events


class TestSigkillRecovery:
    """The full crash-safety story, out of process: a daemon SIGKILLed with
    a job in flight leaves a stale endpoint and a non-terminal index line;
    a restart on the same spool must re-own and finish that job with the
    serial path's exact digest."""

    JOB_ROWS, JOB_SHARDS, JOB_SEED = 512, 2, 5

    def _spawn_daemon(self, spool, *extra):
        import os
        import subprocess
        import sys

        src = os.path.join(os.path.dirname(__file__), os.pardir, "src")
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.abspath(src) + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve", "--spool", spool,
             "--workers", "1", *extra],
            env=env,
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )

    def _wait_for_daemon(self, spool, timeout=30.0):
        import time

        from repro.serve import ServiceClient

        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                client = ServiceClient(spool_dir=spool)
                if client.ping():
                    return client
            except (ReproError, OSError):
                time.sleep(0.1)
        raise AssertionError(f"daemon on {spool} never came up")

    def test_sigkilled_daemon_recovers_on_restart(self, tmp_path):
        import json
        import os
        import signal
        import time

        from repro.errors import ServeError
        from repro.serve import ServiceClient, read_endpoint

        spool = str(tmp_path / "spool")
        plan_path = str(tmp_path / "plan.json")
        with open(plan_path, "w") as handle:
            json.dump(
                {"seed": 0,
                 "rules": [{"point": "hung-stage", "rate": 1.0,
                            "delay_s": 120.0}]},
                handle,
            )
        # first daemon: every stage hangs, so the submitted job is
        # guaranteed to still be running when SIGKILL lands
        daemon = self._spawn_daemon(spool, "--faults", plan_path)
        try:
            client = self._wait_for_daemon(spool)
            job = PreprocessJob(
                model="RM1", num_rows=self.JOB_ROWS,
                num_shards=self.JOB_SHARDS, seed=self.JOB_SEED,
            )
            record = client.submit(job)
            deadline = time.monotonic() + 30.0
            while client.status(record.job_id).state != "running":
                assert time.monotonic() < deadline, "job never started"
                time.sleep(0.05)
            os.kill(daemon.pid, signal.SIGKILL)
            daemon.wait(timeout=30.0)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30.0)

        # satellite: the endpoint is now stale and says so, clearly
        with pytest.raises(ServeError, match="stale endpoint"):
            read_endpoint(spool)
        with pytest.raises(ServeError, match="stale endpoint"):
            ServiceClient(spool_dir=spool)

        # second daemon, same spool, no faults: recovery must finish the job
        daemon = self._spawn_daemon(spool)
        try:
            client = self._wait_for_daemon(spool)
            deadline = time.monotonic() + 60.0
            while True:
                final = client.status(record.job_id)
                if final.is_terminal:
                    break
                assert time.monotonic() < deadline, (
                    f"recovered job stuck {final.state}"
                )
                time.sleep(0.1)
            assert final.state == "completed"
            job = PreprocessJob(
                model="RM1", num_rows=self.JOB_ROWS,
                num_shards=self.JOB_SHARDS, seed=self.JOB_SEED,
            )
            assert final.digest == job.run(parallel=False).digest
            assert final.attempts >= 2  # the lost attempt stayed on record
            client.shutdown(drain=True)
            daemon.wait(timeout=60.0)
        finally:
            if daemon.poll() is None:
                daemon.kill()
                daemon.wait(timeout=30.0)


# ---------------------------------------------------------------------------
# chaos --tier fleet
# ---------------------------------------------------------------------------


class TestChaosFleet:
    def test_fleet_matrix_holds_invariants(self, tmp_path):
        from repro.faults.chaos import (
            DEFAULT_FLEET_FAULTS,
            check_report,
            run_chaos,
        )

        report = run_chaos(
            DEFAULT_FLEET_FAULTS, seed=5, tier="fleet",
            spool_root=str(tmp_path), num_jobs=4,
        )
        assert report["tier"] == "fleet"
        check_report(report)  # raises on any violated invariant
        assert report["ok"]
        assert {ep["fault"] for ep in report["episodes"]} == set(
            DEFAULT_FLEET_FAULTS
        )
        for episode in report["episodes"]:
            assert episode["violations"] == []
            states = episode["states"]
            assert states["completed"] + states["rejected"] == (
                episode["jobs"]
            )

    def test_fleet_matrix_deterministic(self, tmp_path):
        from repro.faults.chaos import deterministic_view, run_chaos

        kwargs = dict(seed=11, tier="fleet", num_jobs=3)
        first = run_chaos(
            ("node-down",), spool_root=str(tmp_path / "a"), **kwargs
        )
        second = run_chaos(
            ("node-down",), spool_root=str(tmp_path / "b"), **kwargs
        )
        assert deterministic_view(first) == deterministic_view(second)

    def test_node_down_episode_displaces_and_recovers(self, tmp_path):
        from repro.faults.chaos import run_fleet_episode
        from repro.fleet import FleetResult

        episode = run_fleet_episode(
            "node-down", seed=3, spool_dir=str(tmp_path), num_jobs=5,
            rate=0.05,
        )
        assert episode["violations"] == []
        assert episode["displacements"] > 0  # the fault actually bit
        assert episode["reschedules"] == episode["displacements"]
        assert sum(episode["fired"].values()) > 0
        # the FleetResult artifact is uploadable and round-trips
        with open(tmp_path / "fleet_result.json") as handle:
            result = FleetResult.from_dict(json.load(handle))
        assert result.digest == episode["digest"]

    def test_serve_kwargs_accepted_and_ignored(self, tmp_path):
        from repro.faults.chaos import run_fleet_episode

        episode = run_fleet_episode(
            "arrival-burst", seed=2, spool_dir=str(tmp_path), num_jobs=2,
            rows=64, shards=1, workers=2, job_timeout_s=5.0,
        )
        assert episode["violations"] == []

"""Fleet run results — frozen, dict-round-trippable, telemetry-emitting.

A :class:`FleetResult` is the complete record of one
:class:`~repro.fleet.simulator.FleetSimulator` run: one
:class:`FleetJobRecord` per job (latency, queueing, displacement), one
:class:`PoolUsage` per pool (capacity-hours, energy, cost), a
downsampled :class:`PoolSample` time series, and the fault-injection
audit.  Like every experiment result in the repo it round-trips
losslessly through plain dicts via the typed codec in
:mod:`repro.api.experiment` — the same seed always yields the
byte-identical ``to_dict()`` — and it flattens into
:class:`~repro.telemetry.events.TimingEvent` records
(:meth:`FleetResult.telemetry_events`) so fleet runs land in the trend
store next to batch, serve, and bench timings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.api.experiment import canonical_digest, decode_value, encode_value
from repro.errors import ConfigurationError

#: every state a fleet job can end a run in
JOB_STATES = ("queued", "running", "completed", "rejected")

#: terminal states — a finished run must leave every job in one of these
TERMINAL_STATES = ("completed", "rejected")


@dataclass(frozen=True)
class FleetJobRecord:
    """How one job fared: where it ran, how long it waited, displacements."""

    job_id: str
    model: str
    num_gpus: int
    priority: int
    state: str
    pool: Optional[str] = None
    submit_s: float = 0.0
    start_s: Optional[float] = None
    finish_s: Optional[float] = None
    queue_s: float = 0.0
    reschedules: int = 0
    displacements: int = 0

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ConfigurationError(
                f"job {self.job_id!r}: state must be one of {JOB_STATES}, "
                f"got {self.state!r}"
            )

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES


@dataclass(frozen=True)
class PoolUsage:
    """One pool's capacity ledger over the run (workers, energy, dollars)."""

    name: str
    system: str
    workers_per_node: int
    peak_nodes: int
    jobs_completed: int
    node_failures: int
    capacity_worker_hours: float
    busy_worker_hours: float
    energy_kwh: float
    capex: float
    opex: float

    @property
    def utilization(self) -> float:
        """Busy worker-hours over provisioned worker-hours (0 when idle)."""
        if self.capacity_worker_hours <= 0:
            return 0.0
        return self.busy_worker_hours / self.capacity_worker_hours

    @property
    def total_cost(self) -> float:
        return self.capex + self.opex


@dataclass(frozen=True)
class PoolSample:
    """One point of the per-pool time series (sampled every few steps)."""

    t_s: float
    pool: str
    nodes: int
    busy_workers: int
    queued_jobs: int


@dataclass(frozen=True)
class FleetResult:
    """The frozen outcome of one fleet simulation run."""

    trace_kind: str
    trace_seed: int
    policy: str
    autoscaler: str
    num_jobs: int
    completed: int
    rejected: int
    displacements: int
    reschedules: int
    makespan_s: float
    mean_queue_s: float
    p95_queue_s: float
    slo_queue_s: float
    slo_attainment: float
    utilization: float
    total_cost: float
    jobs: Tuple[FleetJobRecord, ...] = ()
    pools: Tuple[PoolUsage, ...] = ()
    samples: Tuple[PoolSample, ...] = ()
    fault_fires: Dict[str, int] = field(default_factory=dict)

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """JSON-safe dict; byte-stable for a given seed (determinism key)."""
        return encode_value(self)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FleetResult":
        return decode_value(cls, dict(data))

    @property
    def digest(self) -> str:
        """Short stable hash of the full result — what CI compares."""
        return canonical_digest(self.to_dict())

    # -- derived views -------------------------------------------------------

    def all_terminal(self) -> bool:
        """True when every job finished or was rejected (run invariant)."""
        return all(job.terminal for job in self.jobs)

    def pool(self, name: str) -> PoolUsage:
        for usage in self.pools:
            if usage.name == name:
                return usage
        raise ConfigurationError(
            f"no pool {name!r} in result; pools: "
            + ", ".join(u.name for u in self.pools)
        )

    # -- telemetry -----------------------------------------------------------

    def telemetry_events(self, run_id: str = "fleet") -> List:
        """Flatten the run into :class:`TimingEvent` records.

        Per completed job: a ``queue`` event (submit -> start wait) and a
        ``run`` event (start -> finish), keyed by model so timings
        aggregate across runs; rejected jobs emit one ``skipped`` queue
        event.  Per pool: one ``capacity`` event carrying the
        utilization/energy/cost metrics.  One whole-run ``fleet/run``
        rollup carries the headline numbers.
        """
        from repro.telemetry.events import TimingEvent

        events: List[TimingEvent] = []
        for job in self.jobs:
            if job.state == "completed":
                events.append(TimingEvent(
                    source="fleet", run_id=run_id, task=job.model,
                    stage="queue", outcome="ok", elapsed_s=job.queue_s,
                    attempts=1 + job.reschedules, at=job.start_s,
                ))
                elapsed = None
                if job.finish_s is not None and job.start_s is not None:
                    elapsed = max(0.0, job.finish_s - job.start_s)
                events.append(TimingEvent(
                    source="fleet", run_id=run_id, task=job.model,
                    stage="run", outcome="ok", elapsed_s=elapsed,
                    attempts=1 + job.reschedules, at=job.finish_s,
                ))
            elif job.state == "rejected":
                events.append(TimingEvent(
                    source="fleet", run_id=run_id, task=job.model,
                    stage="queue", outcome="skipped", elapsed_s=None,
                    at=job.submit_s,
                ))
        for usage in self.pools:
            events.append(TimingEvent(
                source="fleet", run_id=run_id, task=usage.name,
                stage="capacity", outcome="ok",
                elapsed_s=None,
                metrics={
                    "capacity_worker_hours": usage.capacity_worker_hours,
                    "busy_worker_hours": usage.busy_worker_hours,
                    "utilization": usage.utilization,
                    "energy_kwh": usage.energy_kwh,
                    "total_cost": usage.total_cost,
                    "peak_nodes": float(usage.peak_nodes),
                    "node_failures": float(usage.node_failures),
                },
            ))
        events.append(TimingEvent(
            source="fleet", run_id=run_id, task="fleet", stage="run",
            outcome="ok", elapsed_s=self.makespan_s,
            metrics={
                "num_jobs": float(self.num_jobs),
                "completed": float(self.completed),
                "rejected": float(self.rejected),
                "displacements": float(self.displacements),
                "mean_queue_s": self.mean_queue_s,
                "p95_queue_s": self.p95_queue_s,
                "slo_attainment": self.slo_attainment,
                "utilization": self.utilization,
                "total_cost": self.total_cost,
            },
        ))
        return events

"""Register a user-defined experiment — no harness changes needed.

The experiment registry makes the evaluation surface pluggable the same way
the system registry makes design points pluggable: decorate a runner with
``@register_experiment(...)`` and it becomes a first-class citizen of
``repro list``, ``repro run`` (with ``--set`` parameter overrides),
``repro report`` (serial, ``--parallel``, and cached), and
``repro export`` — right next to the paper's twenty experiments.

Here we add a "GPU budget sweep": how many PreSto SmartSSDs does each
Table I model need as the training node grows from 1 to 16 A100s, and does
the supply headroom stay flat?  The result class inherits
:class:`repro.api.ExperimentResult`, so ``columns()``/``rows()``/
``claims()``/``render()`` make it exportable, scoreboard-visible, and
losslessly cacheable (``to_dict``/``from_dict`` come for free).

Run:  python examples/custom_experiment.py

To use it from the ``repro`` CLI (a fresh process), point the registry's
plugin hook at this module:

    REPRO_EXPERIMENTS=examples.custom_experiment python -m repro.cli \
        run gpu-budget --set model=RM1
"""

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro import CALIBRATION, Calibration, Scenario
from repro.api import ExperimentResult, ExperimentRun, register_experiment
from repro.experiments.common import PaperClaim, format_table

GPU_BUDGETS = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class GpuBudgetSweepResult(ExperimentResult):
    """SmartSSDs required per (model, GPU budget)."""

    model: str
    gpu_budgets: Tuple[int, ...]
    smartssds: Dict[int, int]  # gpus -> devices
    headroom: Dict[int, float]  # gpus -> supply/demand

    def columns(self) -> List[str]:
        return ["GPUs", "SmartSSDs", "headroom (x)"]

    def rows(self) -> List[Tuple]:
        return [
            (gpus, self.smartssds[gpus], self.headroom[gpus])
            for gpus in self.gpu_budgets
        ]

    def claims(self) -> List[PaperClaim]:
        ordered = [self.headroom[g] for g in self.gpu_budgets]
        monotone = all(b <= a + 1e-9 for a, b in zip(ordered, ordered[1:]))
        return [
            PaperClaim(
                "headroom stays >= 1 (supply meets demand)",
                1.0,
                1.0 if min(ordered) >= 1.0 else 0.0,
                0.0,
            ),
            # ceil(T/P) quantization amortizes as the budget grows, so the
            # over-provisioning headroom shrinks monotonically toward 1
            PaperClaim(
                "headroom shrinks monotonically with budget",
                1.0,
                1.0 if monotone else 0.0,
                0.0,
            ),
        ]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title=f"GPU budget sweep ({self.model}): PreSto provisioning",
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment(
    "gpu-budget", title="Sweep: GPU budget", kind="ablation", order=300
)
def run(
    model: str = "RM5", calibration: Calibration = CALIBRATION
) -> GpuBudgetSweepResult:
    """Provision PreSto for one model across GPU budgets."""
    from repro.api.scenario import calibration_overrides

    smartssds: Dict[int, int] = {}
    headroom: Dict[int, float] = {}
    for gpus in GPU_BUDGETS:
        plan = Scenario(
            model=model,
            system="PreSto",
            num_gpus=gpus,
            calibration=calibration_overrides(calibration),
        ).provision_plan()
        smartssds[gpus] = plan.num_workers
        headroom[gpus] = plan.headroom
    return GpuBudgetSweepResult(
        model=model,
        gpu_budgets=GPU_BUDGETS,
        smartssds=smartssds,
        headroom=headroom,
    )


def main() -> None:
    # the decorated runner is an ordinary function...
    print(run().render())
    print()

    # ...but registration makes it a declarative, parameterized, cacheable
    # run record like every built-in experiment:
    result = ExperimentRun("gpu-budget", params={"model": "RM1"}).run()
    print(result.render())
    print()

    # and it shows up in the registry next to the paper's experiments
    # (`repro list` / `repro report` would now include it too):
    from repro.api import EXPERIMENT_REGISTRY

    print("registered:", ", ".join(EXPERIMENT_REGISTRY.ids("ablation")))


if __name__ == "__main__":
    main()

"""Tests for the epoch-level storage data loader."""

import numpy as np
import pytest

from repro.core.dataloader import StorageDataLoader
from repro.dataio.partition import RowPartitioner
from repro.errors import ConfigurationError
from repro.features.specs import get_model
from repro.features.synthetic import generate_raw_table
from repro.storage.cluster import DistributedStorage
from repro.storage.smartssd import SmartSsd
from repro.storage.ssd import SsdModel


def build_world(num_devices=2, smart=True, rows=192, per_partition=32):
    spec = get_model("RM1")
    data = generate_raw_table(spec, rows)
    parts = RowPartitioner(spec.schema(), rows_per_partition=per_partition).partition_all(
        data
    )
    devices = [
        SmartSsd(f"isp{i}") if smart else SsdModel(f"ssd{i}")
        for i in range(num_devices)
    ]
    storage = DistributedStorage(devices)
    storage.store_partitions("ds", parts)
    return spec, storage, len(parts)


class TestEpochIteration:
    def test_yields_every_partition_once(self):
        spec, storage, num_parts = build_world()
        loader = StorageDataLoader(spec, storage, "ds", num_parts, shuffle=False)
        ids = [batch.batch_id for batch in loader.epoch()]
        assert sorted(ids) == list(range(num_parts))
        assert ids == list(range(num_parts))  # unshuffled: in order

    def test_shuffle_changes_order_across_epochs(self):
        spec, storage, num_parts = build_world()
        loader = StorageDataLoader(spec, storage, "ds", num_parts, shuffle=True, seed=1)
        first = [b.batch_id for b in loader.epoch()]
        second = [b.batch_id for b in loader.epoch()]
        assert sorted(first) == sorted(second)
        assert first != second  # 6 partitions: collision chance ~1/720

    def test_stats_populated(self):
        spec, storage, num_parts = build_world()
        loader = StorageDataLoader(spec, storage, "ds", num_parts)
        list(loader.epoch())
        stats = loader.last_epoch_stats
        assert stats.batches == num_parts
        assert stats.samples == 192
        assert stats.bytes_read > 0

    def test_locality_on_smartssds(self):
        """Every batch is preprocessed by the device that stores it."""
        spec, storage, num_parts = build_world(num_devices=3)
        loader = StorageDataLoader(spec, storage, "ds", num_parts)
        assert loader.in_storage
        list(loader.epoch())
        per_device = loader.last_epoch_stats.batches_per_device
        assert set(per_device) == {"isp0", "isp1", "isp2"}
        assert sum(per_device.values()) == num_parts

    def test_plain_ssds_use_cpu_pool(self):
        spec, storage, num_parts = build_world(smart=False)
        loader = StorageDataLoader(spec, storage, "ds", num_parts)
        assert not loader.in_storage
        list(loader.epoch())
        assert loader.last_epoch_stats.batches_per_device == {"cpu-pool": num_parts}

    def test_multi_epoch_chaining(self):
        spec, storage, num_parts = build_world()
        loader = StorageDataLoader(spec, storage, "ds", num_parts)
        batches = list(loader.epochs(2))
        assert len(batches) == 2 * num_parts

    def test_batches_are_valid_tensors(self):
        spec, storage, num_parts = build_world()
        loader = StorageDataLoader(spec, storage, "ds", num_parts)
        for batch in loader.epoch():
            assert batch.dense.shape[1] == spec.num_dense
            assert not np.any(np.isnan(batch.dense))
            batch.validate_index_range(loader.pipeline.table_sizes)

    def test_validation(self):
        spec, storage, num_parts = build_world()
        with pytest.raises(ConfigurationError):
            StorageDataLoader(spec, storage, "ds", 0)
        loader = StorageDataLoader(spec, storage, "ds", num_parts)
        with pytest.raises(ConfigurationError):
            list(loader.epochs(0))

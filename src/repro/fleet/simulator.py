"""The cluster scheduler: a time-stepped fleet simulation on ``sim.engine``.

:class:`FleetSimulator` replays an arrival :class:`~repro.fleet.trace.Trace`
against heterogeneous pools of preprocessing capacity
(:class:`PoolSpec` entries naming registered systems — a Disagg CPU pool,
a PreSto SmartSSD pool), admitting, queueing, and rescheduling jobs on
the discrete-event :class:`~repro.sim.engine.Engine`:

* **placement** is delegated to a registered
  :class:`~repro.fleet.policy.PlacementPolicy`; a job needs
  ``system.provision_for(num_gpus).num_workers`` workers in a pool
  (cached per (pool, model, gpus)) and may span nodes;
* **autoscaling** consults a registered
  :class:`~repro.fleet.autoscale.Autoscaler` once per step; growth pays
  the pool's ``scaleup_latency_s`` before new nodes serve, shrinking
  retires only idle nodes, and every step integrates the pool's
  capacity-hour and energy ledgers (``power(capacity) x dt``) that
  :func:`repro.analysis.cost.capacity_cost` prices;
* **failure injection** rides the pure-hash
  :class:`~repro.faults.plan.FaultPlan` machinery through three fleet
  probe points — ``node-down`` (node fails, running jobs are displaced
  and rescheduled, the node repairs after ``repair_s``), ``slow-node``
  (jobs on the node finish ``delay_s`` late), and ``arrival-burst``
  (an arrival fans out into a flash crowd of clones).  Probes key on
  stable identities (``pool:node:epoch``, job ids), so the same seed
  replays the same episode event for event.

Determinism is end to end: the engine orders simultaneous events FIFO,
the simulator draws no randomness of its own, and faults hash — the same
trace, pools, policy, and fault seed always produce the byte-identical
:class:`~repro.fleet.result.FleetResult`.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.cost import capacity_cost
from repro.api.registry import REGISTRY
from repro.errors import ConfigurationError, FleetError, ProvisioningError
from repro.faults.injector import FaultInjector, active_injector
from repro.features.specs import get_model
from repro.fleet.policy import Candidate, PlacementPolicy, get_policy
from repro.fleet.autoscale import Autoscaler, PoolSnapshot, get_autoscaler
from repro.fleet.result import (
    FleetJobRecord,
    FleetResult,
    PoolSample,
    PoolUsage,
)
from repro.fleet.trace import JobArrival, Trace
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.sim.engine import Engine, Timeout

#: extra clones an ``arrival-burst`` fault fans one arrival into
BURST_CLONES = 2


@dataclass(frozen=True)
class PoolSpec:
    """One pool of preprocessing capacity built from a registered system."""

    name: str
    system: str  # registered system name ("Disagg", "PreSto", ...)
    nodes: int  # initial node count
    workers_per_node: int
    min_nodes: int = 1
    max_nodes: int = 64
    scaleup_latency_s: float = 300.0
    model: str = "RM5"  # reference spec for power/capex calibration

    def __post_init__(self) -> None:
        if not isinstance(self.name, str) or not self.name.strip():
            raise ConfigurationError("pool name must be a non-empty string")
        if self.workers_per_node <= 0:
            raise ConfigurationError(
                f"pool {self.name!r}: workers_per_node must be positive"
            )
        if self.min_nodes < 0 or self.max_nodes < max(1, self.min_nodes):
            raise ConfigurationError(
                f"pool {self.name!r}: need 0 <= min_nodes <= max_nodes "
                f"(got {self.min_nodes}..{self.max_nodes})"
            )
        if not (self.min_nodes <= self.nodes <= self.max_nodes):
            raise ConfigurationError(
                f"pool {self.name!r}: initial nodes {self.nodes} outside "
                f"[{self.min_nodes}, {self.max_nodes}]"
            )
        if self.scaleup_latency_s < 0:
            raise ConfigurationError(
                f"pool {self.name!r}: scaleup_latency_s must be non-negative"
            )

    @property
    def max_workers(self) -> int:
        return self.max_nodes * self.workers_per_node


def default_pools(calibration: Calibration = CALIBRATION) -> Tuple[PoolSpec, ...]:
    """The paper's two contenders as fleet pools: Disagg CPU servers
    (``cpu_cores_per_node`` workers each) vs PreSto SmartSSD storage
    nodes — sized so a day-scale diurnal trace exercises autoscaling."""
    return (
        PoolSpec(
            name="disagg-cpu",
            system="Disagg",
            nodes=256,
            workers_per_node=calibration.cpu_cores_per_node,
            min_nodes=32,
            max_nodes=1536,
            scaleup_latency_s=300.0,
        ),
        PoolSpec(
            name="presto-ssd",
            system="PreSto",
            nodes=24,
            workers_per_node=8,
            min_nodes=8,
            max_nodes=192,
            scaleup_latency_s=300.0,
        ),
    )


class _Node:
    """One node inside a pool: capacity plus its live allocations."""

    __slots__ = ("id", "up", "retired", "allocations")

    def __init__(self, node_id: int) -> None:
        self.id = node_id
        self.up = True
        self.retired = False
        self.allocations: Dict[str, int] = {}  # job_id -> workers here


class _Job:
    """Mutable per-job run state behind the frozen trace arrival."""

    __slots__ = (
        "arrival", "state", "pool", "start_s", "finish_s", "waited_s",
        "enqueued_s", "reschedules", "displacements", "token", "alloc",
    )

    def __init__(self, arrival: JobArrival) -> None:
        self.arrival = arrival
        self.state = "queued"
        self.pool: Optional[str] = None
        self.start_s: Optional[float] = None
        self.finish_s: Optional[float] = None
        self.waited_s = 0.0
        self.enqueued_s = arrival.submit_s
        self.reschedules = 0
        self.displacements = 0
        self.token = 0  # bumps invalidate in-flight completion callbacks
        self.alloc: Dict[int, int] = {}  # node id -> workers (one pool)


class _PoolState:
    """One pool's live nodes, pending growth, and usage ledgers."""

    __slots__ = (
        "spec", "reference", "systems", "need_cache", "nodes", "pending",
        "grow_batches", "next_node_id", "peak_nodes",
        "capacity_worker_hours", "busy_worker_hours", "energy_kwh",
        "jobs_completed", "node_failures",
    )

    def __init__(self, spec: PoolSpec, calibration: Calibration) -> None:
        self.spec = spec
        self.reference = REGISTRY.create(
            spec.system, get_model(spec.model), calibration
        )
        self.systems: Dict[str, object] = {}
        self.need_cache: Dict[Tuple[str, int], Optional[int]] = {}
        self.nodes: List[_Node] = [_Node(i) for i in range(spec.nodes)]
        self.pending = 0  # nodes bought but not yet online
        self.grow_batches: List[List[int]] = []  # surviving count per grow
        self.next_node_id = spec.nodes
        self.peak_nodes = spec.nodes
        self.capacity_worker_hours = 0.0
        self.busy_worker_hours = 0.0
        self.energy_kwh = 0.0
        self.jobs_completed = 0
        self.node_failures = 0

    @property
    def committed_nodes(self) -> int:
        """Nodes the pool owns right now: live (up or repairing) + pending."""
        return len(self.nodes) + self.pending

    def up_nodes(self) -> List[_Node]:
        return [node for node in self.nodes if node.up]

    def free_workers(self) -> int:
        wpn = self.spec.workers_per_node
        return sum(
            wpn - sum(node.allocations.values()) for node in self.up_nodes()
        )

    def busy_workers(self) -> int:
        return sum(
            sum(node.allocations.values()) for node in self.nodes
        )


class FleetSimulator:
    """Run one trace against one fleet (see module docstring)."""

    def __init__(
        self,
        trace: Trace,
        pools: Optional[Tuple[PoolSpec, ...]] = None,
        policy: str = "first-fit",
        autoscaler: str = "fixed",
        calibration: Calibration = CALIBRATION,
        step_s: float = 60.0,
        fault_epoch_s: float = 600.0,
        repair_s: float = 900.0,
        slow_penalty_s: float = 300.0,
        slo_queue_s: float = 1800.0,
        sample_every_s: float = 900.0,
        injector: Optional[FaultInjector] = None,
    ) -> None:
        if not isinstance(trace, Trace):
            raise ConfigurationError(
                f"FleetSimulator needs a Trace, got {trace!r}"
            )
        pool_specs = tuple(pools) if pools is not None else default_pools(calibration)
        if not pool_specs:
            raise ConfigurationError("a fleet needs at least one pool")
        names = [spec.name for spec in pool_specs]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate pool names in {names}")
        if step_s <= 0 or fault_epoch_s <= 0 or sample_every_s <= 0:
            raise ConfigurationError(
                "step_s, fault_epoch_s, and sample_every_s must be positive"
            )
        if repair_s < 0 or slow_penalty_s < 0 or slo_queue_s < 0:
            raise ConfigurationError(
                "repair_s, slow_penalty_s, and slo_queue_s must be "
                "non-negative"
            )
        self.trace = trace
        self.calibration = calibration
        self.policy: PlacementPolicy = get_policy(policy)
        self.autoscaler: Autoscaler = get_autoscaler(autoscaler)
        self.step_s = float(step_s)
        self.fault_epoch_s = float(fault_epoch_s)
        self.repair_s = float(repair_s)
        self.slow_penalty_s = float(slow_penalty_s)
        self.slo_queue_s = float(slo_queue_s)
        self.sample_every_s = float(sample_every_s)
        self._injector = injector

        self.engine = Engine()
        self.pools: Dict[str, _PoolState] = {
            spec.name: _PoolState(spec, calibration) for spec in pool_specs
        }
        self._jobs: Dict[str, _Job] = {}
        self._used_ids = {arrival.job_id for arrival in trace.arrivals}
        self._queue: List[_Job] = []
        self._arrived = 0
        self._expected = len(trace)
        self._terminal = 0
        self._last_terminal_s = 0.0
        self._last_integrate_s = 0.0
        self._last_fault_epoch = -1
        self._last_sample_s = -self.sample_every_s
        self._samples: List[PoolSample] = []

    # -- fault probes --------------------------------------------------------

    def _probe(self, point: str, **context):
        """Cooperative fleet probe: the matched rule, or ``None``.

        Uses the simulator's own injector when one was passed, else the
        process-global one.  Fleet actions (``down``/``slow``/``burst``)
        are always enacted here in simulated time — never via the generic
        wall-clock executor."""
        injector = self._injector if self._injector is not None else active_injector()
        if injector is None:
            return None
        return injector.check(point, **context)

    # -- provisioning --------------------------------------------------------

    def _need(self, pool: _PoolState, arrival: JobArrival) -> Optional[int]:
        """Workers ``arrival`` needs in ``pool`` (None: can't run there)."""
        key = (arrival.model, arrival.num_gpus)
        if key not in pool.need_cache:
            system = pool.systems.get(arrival.model)
            if system is None:
                system = REGISTRY.create(
                    pool.spec.system, get_model(arrival.model), self.calibration
                )
                pool.systems[arrival.model] = system
            try:
                need = system.provision_for(arrival.num_gpus).num_workers
            except (ConfigurationError, ProvisioningError):
                need = None  # this technology cannot sustain the job
            pool.need_cache[key] = need
        return pool.need_cache[key]

    def _reachable_workers(self, pool: _PoolState) -> int:
        """The most workers this pool can ever offer a queued job: the
        spec's maximum when the autoscaler grows pools, the committed
        capacity when it holds — a job sized past that would queue
        forever, head-of-line blocking everything behind it."""
        if self.autoscaler.can_grow:
            return pool.spec.max_workers
        return pool.committed_nodes * pool.spec.workers_per_node

    def _fits_ever(self, arrival: JobArrival) -> bool:
        for pool in self.pools.values():
            need = self._need(pool, arrival)
            if need is not None and need <= self._reachable_workers(pool):
                return True
        return False

    # -- arrivals ------------------------------------------------------------

    def _on_arrival(self, arrival: JobArrival, burst_probe: bool) -> None:
        self._arrived += 1
        jobs = [arrival]
        if burst_probe:
            rule = self._probe(
                "arrival-burst", job_id=arrival.job_id, item=arrival.job_id
            )
            if rule is not None:
                clones = int(rule.delay_s) if rule.delay_s else BURST_CLONES
                suffix = 0
                for _ in range(max(1, clones)):
                    # a recorded trace may legitimately hold a job id of
                    # the clone shape; skip suffixes until the id is free
                    # so a clone never overwrites another job's state
                    while True:
                        clone_id = f"{arrival.job_id}+burst{suffix}"
                        suffix += 1
                        if clone_id not in self._used_ids:
                            break
                    self._used_ids.add(clone_id)
                    jobs.append(
                        dataclasses.replace(arrival, job_id=clone_id)
                    )
                    self._expected += 1
                    self._arrived += 1
        for entry in jobs:
            job = _Job(entry)
            job.enqueued_s = self.engine.now
            self._jobs[entry.job_id] = job
            if not self._fits_ever(entry):
                job.state = "rejected"
                self._terminal += 1
                self._last_terminal_s = self.engine.now
                continue
            self._queue.append(job)
        self._drain()

    # -- placement -----------------------------------------------------------

    def _candidates(self, arrival: JobArrival) -> List[Candidate]:
        found: List[Candidate] = []
        for pool in self.pools.values():
            need = self._need(pool, arrival)
            if need is None or need > pool.spec.max_workers:
                continue
            free = pool.free_workers()
            if need <= free:
                found.append((pool.spec.name, free, need))
        return found

    def _place(self, job: _Job, pool_name: str, need: int) -> None:
        pool = self.pools[pool_name]
        now = self.engine.now
        remaining = need
        wpn = pool.spec.workers_per_node
        for node in pool.up_nodes():
            if remaining <= 0:
                break
            free = wpn - sum(node.allocations.values())
            if free <= 0:
                continue
            take = min(free, remaining)
            node.allocations[job.arrival.job_id] = take
            job.alloc[node.id] = take
            remaining -= take
        if remaining > 0:  # _candidates said it fits; this is a bug
            raise FleetError(
                f"pool {pool_name!r} lost capacity while placing "
                f"{job.arrival.job_id!r}"
            )
        job.state = "running"
        job.pool = pool_name
        job.waited_s += now - job.enqueued_s
        if job.start_s is None:
            job.start_s = now
        else:
            # a previously-displaced job won capacity again; counted here
            # (not at displacement time) so reschedules independently
            # witnesses the requeue->replace path the chaos tier gates
            job.reschedules += 1
        job.token += 1
        token = job.token
        finish = now + job.arrival.duration_s
        job.finish_s = finish
        self.engine.schedule(
            job.arrival.duration_s, lambda: self._complete(job, token)
        )

    def _drain(self) -> None:
        """Offer free capacity to the queue in policy order.  The head of
        the ordered queue blocks the rest (no backfilling)."""
        if not self._queue:
            return
        by_id = {job.arrival.job_id: job for job in self._queue}
        placed: List[_Job] = []
        for arrival in self.policy.queue_order(
            [job.arrival for job in self._queue]
        ):
            job = by_id[arrival.job_id]
            candidates = self._candidates(arrival)
            if not candidates:
                break
            choice = self.policy.choose_pool(arrival, candidates)
            by_name = {name: need for name, _, need in candidates}
            if choice not in by_name:
                raise FleetError(
                    f"policy {self.policy.name!r} chose {choice!r} which is "
                    f"not a candidate for {arrival.job_id!r}"
                )
            self._place(job, choice, by_name[choice])
            placed.append(job)
        if placed:
            gone = {id(job) for job in placed}
            self._queue = [j for j in self._queue if id(j) not in gone]

    # -- completion / displacement ------------------------------------------

    def _free(self, job: _Job) -> None:
        if job.pool is None:
            return
        pool = self.pools[job.pool]
        for node in pool.nodes:
            node.allocations.pop(job.arrival.job_id, None)
        job.alloc = {}

    def _complete(self, job: _Job, token: int) -> None:
        if job.token != token or job.state != "running":
            return  # displaced or slowed since this callback was scheduled
        pool = self.pools[job.pool]
        self._free(job)
        job.state = "completed"
        job.finish_s = self.engine.now
        pool.jobs_completed += 1
        self._terminal += 1
        self._last_terminal_s = self.engine.now
        self._drain()

    def _displace(self, job: _Job) -> None:
        """A node failure killed this job's allocation: requeue it once.

        The job restarts from scratch (full duration) — checkpointing is
        out of scope for the fleet tier."""
        self._free(job)
        job.token += 1  # invalidate the in-flight completion
        job.state = "queued"
        job.pool = None
        job.finish_s = None
        job.displacements += 1
        job.enqueued_s = self.engine.now
        self._queue.append(job)

    def _fail_node(self, pool: _PoolState, node: _Node) -> None:
        node.up = False
        pool.node_failures += 1
        for job_id in list(node.allocations):
            job = self._jobs[job_id]
            self._displace(job)
        node.allocations.clear()

        def repair() -> None:
            if not node.retired:
                node.up = True
                self._drain()

        self.engine.schedule(self.repair_s, repair)

    def _slow_jobs(self, job_ids, penalty_s: float) -> None:
        """Each affected job finishes ``penalty_s`` late.  A job spanning
        several degraded nodes is only as slow as its slowest node — one
        penalty per epoch, not one per node — which also keeps a wide job
        from being slowed faster than it can finish."""
        for job_id in job_ids:
            job = self._jobs[job_id]
            if job.state != "running" or job.finish_s is None:
                continue
            job.token += 1
            token = job.token
            job.finish_s += penalty_s
            self.engine.schedule(
                job.finish_s - self.engine.now,
                lambda job=job, token=token: self._complete(job, token),
            )

    def _probe_nodes(self, epoch: int) -> None:
        slowed: Dict[str, float] = {}  # job_id -> worst penalty this epoch
        for pool in self.pools.values():
            for node in pool.up_nodes():
                item = f"{pool.spec.name}:node-{node.id}:epoch-{epoch}"
                if self._probe("node-down", item=item,
                               pool=pool.spec.name) is not None:
                    for job_id in node.allocations:
                        slowed.pop(job_id, None)  # displaced, not slowed
                    self._fail_node(pool, node)
                    continue
                rule = self._probe("slow-node", item=item,
                                   pool=pool.spec.name)
                if rule is not None:
                    penalty = (
                        rule.delay_s if rule.delay_s is not None
                        else self.slow_penalty_s
                    )
                    for job_id in node.allocations:
                        slowed[job_id] = max(
                            slowed.get(job_id, 0.0), penalty
                        )
        for job_id in sorted(slowed):
            self._slow_jobs((job_id,), slowed[job_id])

    # -- autoscaling / accounting -------------------------------------------

    def _integrate(self) -> None:
        now = self.engine.now
        dt_h = (now - self._last_integrate_s) / 3600.0
        if dt_h <= 0:
            return
        for pool in self.pools.values():
            capacity = len(pool.up_nodes()) * pool.spec.workers_per_node
            busy = pool.busy_workers()
            pool.capacity_worker_hours += capacity * dt_h
            pool.busy_worker_hours += busy * dt_h
            watts = pool.reference.power(capacity) if capacity else 0.0
            pool.energy_kwh += watts * dt_h / 1000.0
        self._last_integrate_s = now

    def _queued_workers(self, pool: _PoolState) -> int:
        total = 0
        for job in self._queue:
            need = self._need(pool, job.arrival)
            if need is not None and need <= pool.spec.max_workers:
                total += need
        return total

    def _autoscale(self) -> None:
        for pool in self.pools.values():
            spec = pool.spec
            snapshot = PoolSnapshot(
                nodes=pool.committed_nodes,
                workers_per_node=spec.workers_per_node,
                busy_workers=pool.busy_workers(),
                queued_workers=self._queued_workers(pool),
                min_nodes=spec.min_nodes,
                max_nodes=spec.max_nodes,
            )
            target = snapshot.clamp(int(self.autoscaler.target_nodes(snapshot)))
            delta = target - pool.committed_nodes
            if delta > 0:
                self._grow(pool, delta)
            elif delta < 0:
                self._shrink(pool, -delta)
            pool.peak_nodes = max(pool.peak_nodes, pool.committed_nodes)

    def _check_pending(self, pool: _PoolState) -> None:
        """The pending ledger must equal the surviving grow batches and
        never go negative — a mismatch means phantom nodes the autoscaler
        cannot see."""
        if pool.pending < 0 or pool.pending != sum(
            batch[0] for batch in pool.grow_batches
        ):
            raise FleetError(
                f"pool {pool.spec.name!r}: pending-growth ledger out of "
                f"sync (pending={pool.pending}, batches="
                f"{[batch[0] for batch in pool.grow_batches]})"
            )

    def _grow(self, pool: _PoolState, count: int) -> None:
        # each grow is a cancellable batch: _shrink may decrement the
        # surviving count before the scale-up latency elapses, and only
        # the remainder comes online when the callback fires
        batch = [count]
        pool.pending += count
        pool.grow_batches.append(batch)
        self._check_pending(pool)

        def activate() -> None:
            pool.grow_batches.remove(batch)
            surviving = batch[0]
            pool.pending -= surviving
            self._check_pending(pool)
            for _ in range(surviving):
                pool.nodes.append(_Node(pool.next_node_id))
                pool.next_node_id += 1
            if surviving:
                self._drain()

        self.engine.schedule(pool.spec.scaleup_latency_s, activate)

    def _shrink(self, pool: _PoolState, count: int) -> None:
        """Cancel pending growth first (newest batch first), then retire
        idle up nodes (highest id first).  Nodes running jobs — and down
        nodes mid-repair — are never reclaimed."""
        for batch in reversed(pool.grow_batches):
            if count <= 0:
                break
            cancelled = min(count, batch[0])
            batch[0] -= cancelled
            pool.pending -= cancelled
            count -= cancelled
        self._check_pending(pool)
        if count <= 0:
            return
        for node in sorted(pool.nodes, key=lambda n: -n.id):
            if count <= 0:
                break
            if node.up and not node.allocations:
                node.retired = True
                pool.nodes.remove(node)
                count -= 1

    def _sample(self) -> None:
        now = self.engine.now
        if now - self._last_sample_s < self.sample_every_s:
            return
        self._last_sample_s = now
        for name in sorted(self.pools):
            pool = self.pools[name]
            self._samples.append(PoolSample(
                t_s=round(now, 3),
                pool=name,
                nodes=pool.committed_nodes,
                busy_workers=pool.busy_workers(),
                queued_jobs=len(self._queue),
            ))

    # -- the run -------------------------------------------------------------

    def _step_process(self):
        while True:
            yield Timeout(self.step_s)
            self._integrate()
            epoch = int(self.engine.now // self.fault_epoch_s)
            if epoch != self._last_fault_epoch:
                self._last_fault_epoch = epoch
                self._probe_nodes(epoch)
            self._autoscale()
            self._drain()
            self._sample()
            all_arrived = self._arrived >= self._expected
            if all_arrived and self._terminal >= len(self._jobs):
                return

    def run(self, max_events: int = 5_000_000) -> FleetResult:
        """Execute the whole trace; returns the frozen result."""
        for arrival in self.trace.arrivals:
            self.engine.schedule(
                arrival.submit_s,
                lambda arrival=arrival: self._on_arrival(arrival, True),
            )
        self.engine.spawn("fleet-step", self._step_process())
        self.engine.run(max_events=max_events)
        self._integrate()
        if self._terminal < len(self._jobs) or self._arrived < self._expected:
            raise FleetError(
                f"fleet run ended with {len(self._jobs) - self._terminal} "
                "non-terminal jobs — simulator invariant broken"
            )
        return self._build_result()

    def _build_result(self) -> FleetResult:
        records = []
        for job_id in sorted(self._jobs):
            job = self._jobs[job_id]
            records.append(FleetJobRecord(
                job_id=job_id,
                model=job.arrival.model,
                num_gpus=job.arrival.num_gpus,
                priority=job.arrival.priority,
                state=job.state,
                pool=job.pool,
                submit_s=job.arrival.submit_s,
                start_s=round(job.start_s, 3) if job.start_s is not None else None,
                finish_s=round(job.finish_s, 3) if job.finish_s is not None else None,
                queue_s=round(job.waited_s, 3),
                reschedules=job.reschedules,
                displacements=job.displacements,
            ))
        usages = []
        total_cost = 0.0
        total_capacity_wh = 0.0
        total_busy_wh = 0.0
        for name in sorted(self.pools):
            pool = self.pools[name]
            spec = pool.spec
            cost = capacity_cost(
                peak_capex=pool.reference.capex(
                    pool.peak_nodes * spec.workers_per_node
                ),
                energy_kwh=pool.energy_kwh,
                capacity_hours=pool.capacity_worker_hours,
                calibration=self.calibration,
            )
            usages.append(PoolUsage(
                name=name,
                system=spec.system,
                workers_per_node=spec.workers_per_node,
                peak_nodes=pool.peak_nodes,
                jobs_completed=pool.jobs_completed,
                node_failures=pool.node_failures,
                capacity_worker_hours=round(pool.capacity_worker_hours, 6),
                busy_worker_hours=round(pool.busy_worker_hours, 6),
                energy_kwh=round(pool.energy_kwh, 6),
                capex=round(cost.capex, 6),
                opex=round(cost.opex, 6),
            ))
            total_cost += cost.total
            total_capacity_wh += pool.capacity_worker_hours
            total_busy_wh += pool.busy_worker_hours
        waits = sorted(
            job.queue_s for job in records if job.state == "completed"
        )
        completed = len(waits)
        rejected = sum(1 for job in records if job.state == "rejected")
        mean_queue = sum(waits) / completed if completed else 0.0
        p95_queue = waits[max(0, -(-95 * completed // 100) - 1)] if completed else 0.0
        attained = sum(1 for wait in waits if wait <= self.slo_queue_s)
        injector = self._injector if self._injector is not None else active_injector()
        return FleetResult(
            trace_kind=self.trace.kind,
            trace_seed=self.trace.seed,
            policy=self.policy.name,
            autoscaler=self.autoscaler.name,
            num_jobs=len(records),
            completed=completed,
            rejected=rejected,
            displacements=sum(j.displacements for j in self._jobs.values()),
            reschedules=sum(j.reschedules for j in self._jobs.values()),
            makespan_s=round(self._last_terminal_s, 3),
            mean_queue_s=round(mean_queue, 3),
            p95_queue_s=round(p95_queue, 3),
            slo_queue_s=self.slo_queue_s,
            slo_attainment=round(attained / completed, 6) if completed else 1.0,
            utilization=round(
                total_busy_wh / total_capacity_wh, 6
            ) if total_capacity_wh > 0 else 0.0,
            total_cost=round(total_cost, 6),
            jobs=tuple(records),
            pools=tuple(usages),
            samples=tuple(self._samples),
            fault_fires=injector.fire_counts() if injector is not None else {},
        )


def run_fleet(
    trace: Trace,
    pools: Optional[Tuple[PoolSpec, ...]] = None,
    policy: str = "first-fit",
    autoscaler: str = "fixed",
    calibration: Calibration = CALIBRATION,
    injector: Optional[FaultInjector] = None,
    **kwargs,
) -> FleetResult:
    """One-call convenience wrapper around :class:`FleetSimulator`."""
    simulator = FleetSimulator(
        trace,
        pools=pools,
        policy=policy,
        autoscaler=autoscaler,
        calibration=calibration,
        injector=injector,
        **kwargs,
    )
    return simulator.run()

"""Row-oriented file format — the strawman Section II-B argues against.

The paper motivates columnar storage by the *overfetch* problem: with a
row-oriented layout, extracting features X and W for all users "inevitably
leads to (unwanted) features Y and Z to be retrieved, wasting data read
bandwidth".  This module implements that layout for real, so the
columnar-vs-row ablation (``repro.experiments.abl_row_vs_columnar``) can
measure the waste instead of asserting it.

Layout::

    [magic][record 0][record 1]...[footer: schema + row count + offsets head]

Each record serializes one row: label byte, dense float32s, then per sparse
column a varint length + varint-encoded ids.  Reading *any* column requires
scanning every record (there is no per-column index by construction).

Although the *format* is row-major, the writer and reader are vectorized:
the writer precomputes every record's byte offsets from the varint widths
and scatters whole columns into one output buffer
(:func:`repro.dataio.encoding.scatter_uvarints`); the reader discovers
record boundaries in batch (:meth:`RowFileReader._scan_records`) and then
gathers labels, dense values, and sparse ids column-at-a-time.  The output
is byte-identical to the original row-by-row writer and record walker,
which are kept as :meth:`RowFileWriter.write_scalar` and
:meth:`RowFileReader._scan_records_scalar` for cross-checks and benchmarks.

Batched record-boundary discovery works on the continuation-bit index (the
positions of all bytes with a clear high bit — every varint ends on one,
but the fixed label/dense section emits spurious entries too):

1. a sliding window count of index entries over the fixed-section width
   re-synchronizes the index cursor at each record start *exactly* (no
   per-row ``searchsorted``);
2. a single pass over the rows chases record ends through precomputed
   byte tables — a handful of C-speed lookups per row instead of per-row
   varint decoding;
3. every per-row quantity the chase produced is then re-derived and
   verified with whole-column numpy operations; any file the fast path
   cannot prove correct (multi-byte list-length varints, corruption) is
   re-scanned by the retained scalar walker, which either succeeds or
   raises the proper :class:`FormatError`.
"""

from __future__ import annotations

import json
import struct
from typing import Iterable, List, Optional, Tuple

import numpy as np

from repro.dataio.columnar import TableData
from repro.dataio.encoding import (
    gather_uvarints,
    read_uvarint,
    scatter_uvarints,
    uvarint_lengths,
    write_uvarint,
)
from repro.dataio.schema import TableSchema
from repro.errors import FormatError, SchemaError
from repro.faults.injector import fault_point

ROW_MAGIC = b"PRSTR\n"
_FOOTER_LEN = struct.Struct("<I")
_F32 = struct.Struct("<f")
_DENSE_FIELD = _F32.size + 1  # float32 payload + null-marker byte

#: below this row count the batched scan's setup costs exceed the scalar
#: walk; tiny files take the scalar path directly
_MIN_BATCH_SCAN_ROWS = 64


def _window_counts(flags: np.ndarray, width: int) -> np.ndarray:
    """Sliding sum of a 0/1 uint8 array over ``[x, x + width)`` windows.

    Built by pairwise doubling (log2(width) adds over the array) instead of
    a cumulative sum, which is both faster and dtype-stable: the result
    fits uint8 for widths up to 255 and uint16 beyond.
    """
    if width > 255:
        flags = flags.astype(np.uint16)
    parts: List[Tuple[np.ndarray, int]] = []
    cur, cur_width = flags, 1
    remaining = width
    while remaining:
        if remaining & 1:
            parts.append((cur, cur_width))
        remaining >>= 1
        if remaining:
            cur = cur[:-cur_width] + cur[cur_width:]
            cur_width *= 2
    acc: Optional[np.ndarray] = None
    offset = 0
    for arr, part_width in parts:
        seg = arr[offset:]
        if acc is None:
            acc = seg  # read-only view; later combines allocate fresh arrays
        else:
            n = min(len(acc), len(seg))
            acc = acc[:n] + seg[:n]
        offset += part_width
    return acc


class RowFileWriter:
    """Serialize a table row by row (the pre-columnar layout)."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema

    def _validated_columns(self, data: TableData):
        """Pull label/dense/sparse arrays out of ``data`` and validate them."""
        label = data.get(self.schema.label.name)
        if label is None:
            raise SchemaError(f"missing label column {self.schema.label.name!r}")
        num_rows = len(label)

        dense_columns = []
        for column in self.schema.dense:
            if column.name not in data:
                raise SchemaError(f"missing dense column {column.name!r}")
            values = np.asarray(data[column.name], dtype=np.float32)
            column.validate_values(values, num_rows)
            dense_columns.append(values)

        sparse_columns: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for column in self.schema.sparse:
            if column.name not in data:
                raise SchemaError(f"missing sparse column {column.name!r}")
            lengths, values = data[column.name]
            column.validate_values(lengths, values, num_rows)
            offsets = np.concatenate(([0], np.cumsum(lengths)))
            sparse_columns.append((np.asarray(lengths), np.asarray(values), offsets))
        return label, dense_columns, sparse_columns, num_rows

    def _footer(self, num_rows: int) -> bytes:
        return json.dumps(
            {
                "dense": self.schema.dense_names,
                "sparse": self.schema.sparse_names,
                "label": self.schema.label.name,
                "num_rows": num_rows,
            },
            separators=(",", ":"),
        ).encode()

    def write(self, data: TableData) -> bytes:
        """Serialize all rows; returns the file bytes.

        Builds the file in one pass of whole-column numpy operations: per-row
        record sizes come from the batch varint widths, every field's byte
        offset is then known up front, and each column is scattered into the
        preallocated buffer.
        """
        label, dense_columns, sparse_columns, num_rows = self._validated_columns(data)

        num_dense = len(dense_columns)
        fixed_bytes = 1 + _DENSE_FIELD * num_dense

        # per-column varint widths: the length prefix and each row's id bytes
        length_widths: List[np.ndarray] = []
        id_widths: List[np.ndarray] = []
        width_prefixes: List[np.ndarray] = []  # exclusive cumsum of id_widths
        raw_ids: List[np.ndarray] = []  # ids as uint64 two's complement
        row_id_bytes: List[np.ndarray] = []
        for lengths, values, offsets in sparse_columns:
            length_widths.append(uvarint_lengths(lengths.astype(np.uint64)))
            raw = values.astype(np.int64).astype(np.uint64)
            raw_ids.append(raw)
            widths = uvarint_lengths(raw)
            id_widths.append(widths)
            width_prefix = np.concatenate(([0], np.cumsum(widths)))
            width_prefixes.append(width_prefix)
            row_id_bytes.append(width_prefix[offsets[1:]] - width_prefix[offsets[:-1]])

        record_sizes = np.full(num_rows, fixed_bytes, dtype=np.int64)
        for col in range(len(sparse_columns)):
            record_sizes += length_widths[col] + row_id_bytes[col]
        record_ends = len(ROW_MAGIC) + np.cumsum(record_sizes)
        record_starts = record_ends - record_sizes
        body_end = len(ROW_MAGIC) + int(record_sizes.sum())

        out = np.empty(body_end, dtype=np.uint8)
        out[: len(ROW_MAGIC)] = np.frombuffer(ROW_MAGIC, dtype=np.uint8)

        # labels: one byte at the head of every record
        out[record_starts] = (
            np.asarray(label).astype(np.int64, copy=False) & 0xFF
        ).astype(np.uint8)

        # dense fields: 4 little-endian float32 bytes + 1 null-marker byte
        for index, values in enumerate(dense_columns):
            base = record_starts + (1 + _DENSE_FIELD * index)
            nulls = np.isnan(values)
            packed = np.where(nulls, np.float32(0.0), values).astype("<f4")
            byte_planes = packed.view(np.uint8).reshape(num_rows, 4)
            for byte_index in range(4):
                out[base + byte_index] = byte_planes[:, byte_index]
            out[base + 4] = nulls.astype(np.uint8)

        # sparse fields: varint length prefix + varint ids, column by column
        cursor = record_starts + fixed_bytes
        for col, (lengths, values, offsets) in enumerate(sparse_columns):
            scatter_uvarints(
                out, cursor, lengths.astype(np.uint64), length_widths[col]
            )
            ids_base = cursor + length_widths[col]
            if len(values):
                width_prefix = width_prefixes[col]
                lengths64 = np.asarray(lengths, dtype=np.int64)
                # start of id k = its row's ids_base + its width-prefix within the row
                id_starts = np.repeat(
                    ids_base - width_prefix[offsets[:-1]], lengths64
                ) + width_prefix[:-1]
                scatter_uvarints(out, id_starts, raw_ids[col], id_widths[col])
            cursor = ids_base + row_id_bytes[col]

        footer = self._footer(num_rows)
        blob = b"".join(
            (
                out.tobytes(),
                footer,
                _FOOTER_LEN.pack(len(footer)),
                ROW_MAGIC,
            )
        )
        # fault point: one flipped byte in a freshly written row file — the
        # trailing magic, so any reader must reject the file loudly rather
        # than ever decoding corrupt rows silently
        corrupt = fault_point("row-corrupt", rows=num_rows)
        if corrupt is not None and corrupt.action == "corrupt":
            blob = blob[:-1] + bytes([blob[-1] ^ 0xFF])
        return blob

    def write_scalar(self, data: TableData) -> bytes:
        """Row-by-row reference writer (the original implementation).

        Kept for byte-identity cross-checks in tests and as the scalar
        baseline that ``repro bench`` measures the vectorized writer against.
        """
        label, dense_columns, sparse_columns, num_rows = self._validated_columns(data)

        body = bytearray(ROW_MAGIC)
        for row in range(num_rows):
            body.append(int(label[row]) & 0xFF)
            for values in dense_columns:
                value = values[row]
                is_null = bool(np.isnan(value))
                body += _F32.pack(0.0 if is_null else float(value))
                body.append(1 if is_null else 0)  # null marker
            for lengths, values, offsets in sparse_columns:
                row_ids = values[offsets[row] : offsets[row + 1]]
                write_uvarint(len(row_ids), body)
                for raw_id in row_ids.tolist():
                    write_uvarint(int(raw_id) & (2**64 - 1), body)

        footer = self._footer(num_rows)
        body += footer
        body += _FOOTER_LEN.pack(len(footer))
        body += ROW_MAGIC
        return bytes(body)


class RowFileReader:
    """Scan-based reader over the row layout.

    ``bytes_scanned`` counts every byte the reader had to touch; for any
    column subset it equals (almost) the whole file — the overfetch the
    paper's columnar layout eliminates.

    Decoding is batched: one pass over the records locates every varint
    boundary using a precomputed index of bytes with a clear continuation
    bit (within a varint region, each such byte terminates exactly one
    varint), then labels, dense planes, and each wanted sparse column are
    gathered with whole-column numpy operations.
    """

    def __init__(self, buffer: bytes) -> None:
        self._buf = buffer
        self.bytes_scanned = 0
        min_size = 2 * len(ROW_MAGIC) + _FOOTER_LEN.size
        if len(buffer) < min_size or buffer[: len(ROW_MAGIC)] != ROW_MAGIC:
            raise FormatError("not a row-format file")
        if buffer[-len(ROW_MAGIC) :] != ROW_MAGIC:
            raise FormatError("truncated row-format file")
        (footer_len,) = _FOOTER_LEN.unpack(
            buffer[-len(ROW_MAGIC) - _FOOTER_LEN.size : -len(ROW_MAGIC)]
        )
        footer_end = len(buffer) - len(ROW_MAGIC) - _FOOTER_LEN.size
        try:
            meta = json.loads(buffer[footer_end - footer_len : footer_end].decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise FormatError(f"unparseable row-format footer: {exc}") from exc
        self.dense_names: List[str] = meta["dense"]
        self.sparse_names: List[str] = meta["sparse"]
        self.label_name: str = meta["label"]
        self.num_rows: int = meta["num_rows"]
        self._body_end = footer_end - footer_len

    def _scan_records(
        self, body: np.ndarray, terminators: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Locate every record, returning per-row/column varint geometry.

        Returns ``(record_starts, counts, id_term_index)`` where ``counts``
        is the (num_rows, num_sparse) matrix of per-row list lengths and
        ``id_term_index[row, col]`` indexes into ``terminators`` at the first
        id varint of that row/column.  Only varint *boundaries* are resolved
        here; id payloads are decoded later in one batch per column.

        Boundary discovery is batched (see the module docstring); the fast
        path returns ``None`` internally when it cannot *prove* its answer
        (multi-byte length varints, tiny or corrupt files), in which case
        the retained scalar walker decides.
        """
        result = self._scan_records_batch(body, terminators)
        if result is not None:
            return result
        return self._scan_records_scalar(body, terminators)

    def _scan_records_batch(
        self, body: np.ndarray, terminators: np.ndarray
    ) -> Optional[Tuple[np.ndarray, np.ndarray, np.ndarray]]:
        """Batched record-boundary discovery; ``None`` means "use scalar".

        One C-speed chase pass finds each record's final varint terminator;
        everything else — re-synchronization counts, list lengths, id
        geometry, and the full verification that every boundary is exactly
        what a scalar walk would produce — is whole-column numpy.  The
        verification closes an induction (record 0's start is fixed, each
        verified record yields the next start), so a non-``None`` return is
        correct by construction, never heuristic.
        """
        num_rows = self.num_rows
        num_sparse = len(self.sparse_names)
        fixed_bytes = 1 + _DENSE_FIELD * len(self.dense_names)
        body_end = self._body_end
        magic = len(ROW_MAGIC)

        if num_sparse == 0:
            # fixed-stride records: pure arithmetic
            if magic + num_rows * fixed_bytes != body_end:
                return None  # let the scalar walker raise the precise error
            starts = magic + fixed_bytes * np.arange(num_rows, dtype=np.int64)
            empty = np.empty((num_rows, 0), dtype=np.int64)
            return starts, empty, empty.copy()
        if num_rows < _MIN_BATCH_SCAN_ROWS or len(terminators) == 0:
            return None

        buf = self._buf
        num_terminators = len(terminators)
        terms32 = terminators.astype(np.int32)
        window = _window_counts((body < 0x80).view(np.uint8), fixed_bytes)
        window_bytes = memoryview(np.ascontiguousarray(window))
        # byte value at each terminator: the value of any 1-byte varint there
        term_bytes = memoryview(body[terms32])
        term_pos = memoryview(terms32)

        # exact scalar parse of row 0 seeds the chase (handles multi-byte
        # length varints in the first record for free)
        try:
            offset = magic + fixed_bytes
            index = int(np.searchsorted(terminators, offset))
            for _ in range(num_sparse):
                count, offset = read_uvarint(buf, offset)
                if count > body_end or index + count >= num_terminators:
                    return None
                index += 1 + count
                if count:
                    offset = term_pos[index - 1] + 1
            end = index - 1
        except Exception:  # truncated/corrupt head: scalar path decides
            return None

        ends: List[int] = [end]
        append = ends.append
        last_col = num_sparse - 1
        try:
            for _ in range(num_rows - 1):
                record_start = term_pos[end] + 1
                index = end + 1 + window_bytes[record_start]
                count = buf[record_start + fixed_bytes]
                for _ in range(last_col):
                    index += count + 1
                    count = term_bytes[index]
                end = index + count
                append(end)
        except IndexError:
            return None  # chase ran off the index: scalar path decides

        ends_arr = np.fromiter(ends, dtype=np.int64, count=num_rows)
        if int(ends_arr[-1]) >= num_terminators:
            return None
        if int(terminators[ends_arr[-1]]) != body_end - 1:
            return None

        # re-derive every per-row quantity in batch and verify the chase
        record_starts = np.empty(num_rows, dtype=np.int64)
        record_starts[0] = magic
        np.add(terminators[ends_arr[:-1]], 1, out=record_starts[1:])
        first_varint = record_starts + fixed_bytes
        if int(first_varint[-1]) >= body_end:
            return None
        cursor = np.empty(num_rows, dtype=np.int64)
        cursor[0] = np.searchsorted(terminators, magic + fixed_bytes)
        np.add(
            ends_arr[:-1],
            1 + window[first_varint[1:] - fixed_bytes],
            out=cursor[1:],
        )
        counts = np.empty((num_rows, num_sparse), dtype=np.int64)
        id_term_index = np.empty((num_rows, num_sparse), dtype=np.int64)
        first_bytes = body[first_varint]
        if np.any(first_bytes >= 0x80):
            return None  # multi-byte list length: scalar path handles it
        col_counts = first_bytes.astype(np.int64)
        for col in range(num_sparse):
            if col:
                cursor = cursor + counts[:, col - 1] + 1
                if int(cursor.max()) >= num_terminators:
                    return None
                # the length varint must directly follow the previous
                # terminator (i.e. be 1 byte) for its byte to be its value
                if np.any(
                    terminators[cursor] - terminators[cursor - 1] != 1
                ):
                    return None
                col_counts = body[terminators[cursor]].astype(np.int64)
                if np.any(col_counts >= 0x80):
                    return None
            counts[:, col] = col_counts
            id_term_index[:, col] = cursor + 1
        if not np.array_equal(cursor + counts[:, -1], ends_arr):
            return None
        return record_starts, counts, id_term_index

    def _scan_records_scalar(
        self, body: np.ndarray, terminators: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Row-at-a-time reference scan (the original implementation).

        Kept as the correctness oracle for the batched scan (property tests
        assert identical geometry), the fallback for files the fast path
        cannot prove, and the scalar baseline ``repro bench`` measures.
        """
        num_sparse = len(self.sparse_names)
        fixed_bytes = 1 + _DENSE_FIELD * len(self.dense_names)
        record_starts = np.empty(self.num_rows, dtype=np.int64)
        counts = np.empty((self.num_rows, num_sparse), dtype=np.int64)
        id_term_index = np.empty((self.num_rows, num_sparse), dtype=np.int64)

        buf = self._buf
        num_terminators = len(terminators)
        offset = len(ROW_MAGIC)
        for row in range(self.num_rows):
            record_starts[row] = offset
            offset += fixed_bytes
            if num_sparse:
                # the fixed section may contain bytes with a clear high bit,
                # so re-sync the terminator cursor once per row
                index = int(np.searchsorted(terminators, offset))
                for col in range(num_sparse):
                    if index >= num_terminators:
                        raise FormatError("row records do not align with the footer")
                    count, offset = read_uvarint(buf, offset)
                    # a list can't hold more ids than the body has bytes; the
                    # bound also keeps the int64 store below from overflowing
                    if count > self._body_end:
                        raise FormatError(
                            "implausible sparse list length (corrupt row file)"
                        )
                    index += 1  # past the length-prefix terminator
                    counts[row, col] = count
                    id_term_index[row, col] = index
                    index += count
                    if count:
                        if index > num_terminators:
                            raise FormatError(
                                "row records do not align with the footer"
                            )
                        offset = int(terminators[index - 1]) + 1
        if offset != self._body_end:
            raise FormatError("row records do not align with the footer")
        return record_starts, counts, id_term_index

    def read_columns(self, names: Iterable[str]) -> TableData:
        """Extract the requested columns — by scanning every record."""
        wanted = set(names)
        unknown = wanted - set(
            self.dense_names + self.sparse_names + [self.label_name]
        )
        if unknown:
            raise FormatError(f"unknown columns {sorted(unknown)}")

        body = np.frombuffer(self._buf, dtype=np.uint8, count=self._body_end)
        # every byte with a clear continuation bit; inside a varint region
        # each one terminates exactly one varint
        terminators = np.flatnonzero(body < 0x80)
        record_starts, counts, id_term_index = self._scan_records(body, terminators)
        # scanning touched the entire record body regardless of selection
        self.bytes_scanned += self._body_end - len(ROW_MAGIC)

        out: TableData = {}
        if self.label_name in wanted:
            out[self.label_name] = body[record_starts].astype(np.int8)

        for index, name in enumerate(self.dense_names):
            if name not in wanted:
                continue
            base = record_starts + (1 + _DENSE_FIELD * index)
            planes = np.empty((self.num_rows, 4), dtype=np.uint8)
            for byte_index in range(4):
                planes[:, byte_index] = body[base + byte_index]
            values = planes.view("<f4").ravel().astype(np.float32)
            values[body[base + 4] != 0] = np.nan
            out[name] = values

        sparse_wanted = [
            (col, name)
            for col, name in enumerate(self.sparse_names)
            if name in wanted
        ]
        if not sparse_wanted:
            return out

        # all requested columns' ids in one ragged gather: every id varint
        # starts right after the previous terminator, so its width is the
        # terminator-position delta and one batch decode covers everything
        terms32 = terminators.astype(np.int32)
        deltas = np.empty(len(terms32), dtype=np.int32)
        if len(terms32):
            deltas[0] = terms32[0] + 1
            np.subtract(terms32[1:], terms32[:-1], out=deltas[1:])
        first = np.concatenate(
            [id_term_index[:, col] for col, _ in sparse_wanted]
        )
        lengths = np.concatenate([counts[:, col] for col, _ in sparse_wanted])
        total = int(lengths.sum())
        run_offsets = np.concatenate(([0], np.cumsum(lengths)))
        term_idx = np.repeat(first, lengths) + (
            np.arange(total, dtype=np.int64) - np.repeat(run_offsets[:-1], lengths)
        )
        id_terms = terms32[term_idx]
        widths = deltas[term_idx]
        # the file buffer extends past the body (footer + trailing magic),
        # so the batch decoder's 8-byte loads never need padding
        full = np.frombuffer(self._buf, dtype=np.uint8)
        raw = gather_uvarints(full, id_terms - widths + 1, widths)
        ids = raw.view(np.int64)  # two's complement round-trip

        offset = 0
        for col, name in sparse_wanted:
            col_lengths = counts[:, col]
            col_total = int(col_lengths.sum())
            out[name] = (
                col_lengths.astype(np.int32),
                ids[offset : offset + col_total].copy(),
            )
            offset += col_total
        return out


def write_row_table(schema: TableSchema, data: TableData) -> bytes:
    """Convenience wrapper around :class:`RowFileWriter`."""
    return RowFileWriter(schema).write(data)

"""Command-line interface: ``python -m repro.cli <command>``.

Commands:

* ``report``          — run every experiment + ablation, print the full
                        paper-vs-measured report and claims scoreboard;
* ``list``            — list available experiment ids;
* ``run <id> [...]``  — run one or more experiments by id (e.g. ``fig12``,
                        ``table2``, ``abl-lanes``) and print their tables;
* ``provision <model> [--gpus N]`` — print the T/P provisioning of every
                        system design point for one Table I model.
"""

from __future__ import annotations

import argparse
import sys
from typing import Dict, List

from repro.core.systems import ALL_SYSTEM_FACTORIES
from repro.experiments import report as report_mod
from repro.features.specs import MODEL_NAMES, get_model

#: short CLI ids -> report keys
COMMAND_IDS: Dict[str, str] = {
    "fig3": "Figure 3",
    "fig4": "Figure 4",
    "fig5": "Figure 5",
    "fig6": "Figure 6",
    "table1": "Table I",
    "table2": "Table II",
    "fig11": "Figure 11",
    "fig12": "Figure 12",
    "fig13": "Figure 13",
    "fig14": "Figure 14",
    "fig15": "Figure 15",
    "fig16": "Figure 16",
    "fig17": "Figure 17",
    "abl-row": "Ablation: row vs columnar",
    "abl-pipeline": "Ablation: double buffering",
    "abl-lanes": "Ablation: unit lane sweep",
    "abl-network": "Sensitivity: link speed",
    "abl-contention": "Fleet: network contention",
    "abl-batch": "Sensitivity: batch size",
    "abl-fleet": "Fleet: multi-job scheduling",
}


def _runner_for(command_id: str):
    key = COMMAND_IDS.get(command_id)
    if key is None:
        raise SystemExit(
            f"unknown experiment {command_id!r}; try one of: "
            + ", ".join(sorted(COMMAND_IDS))
        )
    runners = {**report_mod.EXPERIMENTS, **report_mod.ABLATIONS}
    return runners[key]


def cmd_report(_: argparse.Namespace) -> int:
    """Full report."""
    print(report_mod.render_report())
    return 0


def cmd_list(_: argparse.Namespace) -> int:
    """Available experiment ids."""
    for short, key in COMMAND_IDS.items():
        print(f"{short:13} -> {key}")
    return 0


def cmd_run(args: argparse.Namespace) -> int:
    """Run selected experiments."""
    for command_id in args.ids:
        result = _runner_for(command_id)()
        print(result.render())
        print()
    return 0


def cmd_provision(args: argparse.Namespace) -> int:
    """Provisioning summary across system designs."""
    spec = get_model(args.model)
    print(
        f"{spec.name}: provisioning for {args.gpus} GPU(s), "
        f"batch {spec.batch_size}"
    )
    for name, factory in ALL_SYSTEM_FACTORIES.items():
        system = factory(spec)
        try:
            plan = system.provision_for(args.gpus)
        except Exception as exc:  # co-located caps, etc.
            print(f"  {name:14} not provisionable: {exc}")
            continue
        print(
            f"  {name:14} {plan.num_workers:5d} workers  "
            f"(P = {plan.worker_throughput:12,.0f} samples/s, "
            f"headroom {plan.headroom:.2f}x)"
        )
    return 0


def cmd_export(args: argparse.Namespace) -> int:
    """Write every experiment's rows to CSV files for plotting."""
    import csv
    import os

    os.makedirs(args.dir, exist_ok=True)
    written = []
    for command_id in args.ids or list(COMMAND_IDS):
        result = _runner_for(command_id)()
        rows = getattr(result, "rows", None)
        if rows is None:
            continue
        path = os.path.join(args.dir, f"{command_id}.csv")
        with open(path, "w", newline="") as handle:
            writer = csv.writer(handle)
            for row in rows():
                writer.writerow(row)
        written.append(path)
    for path in written:
        print(path)
    return 0


def build_parser() -> argparse.ArgumentParser:
    """The CLI's argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="PreSto (ISCA 2024) reproduction — experiment harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("report", help="run everything, print the full report").set_defaults(
        func=cmd_report
    )
    sub.add_parser("list", help="list experiment ids").set_defaults(func=cmd_list)

    run_parser = sub.add_parser("run", help="run selected experiments")
    run_parser.add_argument("ids", nargs="+", help="experiment ids (see `list`)")
    run_parser.set_defaults(func=cmd_run)

    export = sub.add_parser("export", help="write experiment rows as CSV")
    export.add_argument("--dir", default="results")
    export.add_argument("ids", nargs="*", help="experiment ids (default: all)")
    export.set_defaults(func=cmd_export)

    prov = sub.add_parser("provision", help="T/P provisioning for one model")
    prov.add_argument("model", choices=MODEL_NAMES + [m.lower() for m in MODEL_NAMES])
    prov.add_argument("--gpus", type=int, default=8)
    prov.set_defaults(func=cmd_provision)
    return parser


def main(argv: List[str] = None) -> int:
    """CLI entry point."""
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    sys.exit(main())

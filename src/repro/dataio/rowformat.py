"""Row-oriented file format — the strawman Section II-B argues against.

The paper motivates columnar storage by the *overfetch* problem: with a
row-oriented layout, extracting features X and W for all users "inevitably
leads to (unwanted) features Y and Z to be retrieved, wasting data read
bandwidth".  This module implements that layout for real, so the
columnar-vs-row ablation (``repro.experiments.abl_row_vs_columnar``) can
measure the waste instead of asserting it.

Layout::

    [magic][record 0][record 1]...[footer: schema + row count + offsets head]

Each record serializes one row: label byte, dense float32s, then per sparse
column a varint length + varint-encoded ids.  Reading *any* column requires
scanning every record (there is no per-column index by construction).
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Iterable, List, Sequence, Tuple

import numpy as np

from repro.dataio.columnar import TableData
from repro.dataio.encoding import read_uvarint, write_uvarint
from repro.dataio.schema import ColumnKind, TableSchema
from repro.errors import FormatError, SchemaError

ROW_MAGIC = b"PRSTR\n"
_FOOTER_LEN = struct.Struct("<I")
_F32 = struct.Struct("<f")


class RowFileWriter:
    """Serialize a table row by row (the pre-columnar layout)."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema

    def write(self, data: TableData) -> bytes:
        """Serialize all rows; returns the file bytes."""
        label = data.get(self.schema.label.name)
        if label is None:
            raise SchemaError(f"missing label column {self.schema.label.name!r}")
        num_rows = len(label)

        dense_columns = []
        for column in self.schema.dense:
            if column.name not in data:
                raise SchemaError(f"missing dense column {column.name!r}")
            values = np.asarray(data[column.name], dtype=np.float32)
            column.validate_values(values, num_rows)
            dense_columns.append(values)

        sparse_columns: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for column in self.schema.sparse:
            if column.name not in data:
                raise SchemaError(f"missing sparse column {column.name!r}")
            lengths, values = data[column.name]
            column.validate_values(lengths, values, num_rows)
            offsets = np.concatenate(([0], np.cumsum(lengths)))
            sparse_columns.append((np.asarray(lengths), np.asarray(values), offsets))

        body = bytearray(ROW_MAGIC)
        for row in range(num_rows):
            body.append(int(label[row]) & 0xFF)
            for values in dense_columns:
                value = values[row]
                body += _F32.pack(0.0 if np.isnan(value) else float(value))
                body.append(1 if np.isnan(value) else 0)  # null marker
            for lengths, values, offsets in sparse_columns:
                row_ids = values[offsets[row] : offsets[row + 1]]
                write_uvarint(len(row_ids), body)
                for raw_id in row_ids.tolist():
                    write_uvarint(int(raw_id) & (2**64 - 1), body)

        footer = json.dumps(
            {
                "dense": self.schema.dense_names,
                "sparse": self.schema.sparse_names,
                "label": self.schema.label.name,
                "num_rows": num_rows,
            },
            separators=(",", ":"),
        ).encode()
        body += footer
        body += _FOOTER_LEN.pack(len(footer))
        body += ROW_MAGIC
        return bytes(body)


class RowFileReader:
    """Scan-based reader over the row layout.

    ``bytes_scanned`` counts every byte the reader had to touch; for any
    column subset it equals (almost) the whole file — the overfetch the
    paper's columnar layout eliminates.
    """

    def __init__(self, buffer: bytes) -> None:
        self._buf = buffer
        self.bytes_scanned = 0
        min_size = 2 * len(ROW_MAGIC) + _FOOTER_LEN.size
        if len(buffer) < min_size or buffer[: len(ROW_MAGIC)] != ROW_MAGIC:
            raise FormatError("not a row-format file")
        if buffer[-len(ROW_MAGIC) :] != ROW_MAGIC:
            raise FormatError("truncated row-format file")
        (footer_len,) = _FOOTER_LEN.unpack(
            buffer[-len(ROW_MAGIC) - _FOOTER_LEN.size : -len(ROW_MAGIC)]
        )
        footer_end = len(buffer) - len(ROW_MAGIC) - _FOOTER_LEN.size
        try:
            meta = json.loads(buffer[footer_end - footer_len : footer_end].decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise FormatError(f"unparseable row-format footer: {exc}") from exc
        self.dense_names: List[str] = meta["dense"]
        self.sparse_names: List[str] = meta["sparse"]
        self.label_name: str = meta["label"]
        self.num_rows: int = meta["num_rows"]
        self._body_end = footer_end - footer_len

    def read_columns(self, names: Iterable[str]) -> TableData:
        """Extract the requested columns — by scanning every record."""
        wanted = set(names)
        unknown = wanted - set(
            self.dense_names + self.sparse_names + [self.label_name]
        )
        if unknown:
            raise FormatError(f"unknown columns {sorted(unknown)}")

        labels = np.empty(self.num_rows, dtype=np.int8)
        dense: Dict[str, np.ndarray] = {
            name: np.empty(self.num_rows, dtype=np.float32)
            for name in self.dense_names
            if name in wanted
        }
        sparse_lengths: Dict[str, List[int]] = {
            name: [] for name in self.sparse_names if name in wanted
        }
        sparse_values: Dict[str, List[int]] = {
            name: [] for name in self.sparse_names if name in wanted
        }

        offset = len(ROW_MAGIC)
        for row in range(self.num_rows):
            labels[row] = self._buf[offset]
            offset += 1
            for name in self.dense_names:
                (value,) = _F32.unpack_from(self._buf, offset)
                is_null = self._buf[offset + _F32.size]
                offset += _F32.size + 1
                if name in dense:
                    dense[name][row] = np.nan if is_null else value
            for name in self.sparse_names:
                count, offset = read_uvarint(self._buf, offset)
                ids: List[int] = []
                for _ in range(count):
                    raw, offset = read_uvarint(self._buf, offset)
                    ids.append(raw)
                if name in sparse_lengths:
                    sparse_lengths[name].append(count)
                    sparse_values[name].extend(ids)
        if offset != self._body_end:
            raise FormatError("row records do not align with the footer")
        # scanning touched the entire record body regardless of selection
        self.bytes_scanned += self._body_end - len(ROW_MAGIC)

        out: TableData = {}
        if self.label_name in wanted:
            out[self.label_name] = labels
        out.update(dense)
        for name in sparse_lengths:
            out[name] = (
                np.array(sparse_lengths[name], dtype=np.int32),
                np.array(sparse_values[name], dtype=np.int64),
            )
        return out


def write_row_table(schema: TableSchema, data: TableData) -> bytes:
    """Convenience wrapper around :class:`RowFileWriter`."""
    return RowFileWriter(schema).write(data)

"""Network substrate: a shared-bandwidth link model for the 10 GbE datacenter
fabric and RPC accounting that reproduces Figure 13's inter-node
communication comparison."""

from repro.network.link import NetworkLink, TransferStats
from repro.network.rpc import RpcAccounting, RpcBatchCosts

__all__ = ["NetworkLink", "TransferStats", "RpcAccounting", "RpcBatchCosts"]

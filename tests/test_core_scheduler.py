"""Tests for the fleet-level preprocessing scheduler."""

import pytest

from repro.core.scheduler import FleetScheduler, TrainingJob
from repro.core.systems import DisaggCpuSystem, PreStoSystem
from repro.errors import ConfigurationError, ProvisioningError
from repro.features.specs import get_model


def presto_factory(spec):
    return PreStoSystem(spec)


def disagg_factory(spec):
    return DisaggCpuSystem(spec)


def jobs(*entries):
    return [
        TrainingJob(job_id=f"j{i}", spec=get_model(model), num_gpus=gpus)
        for i, (model, gpus) in enumerate(entries)
    ]


class TestTrainingJob:
    def test_valid(self):
        job = TrainingJob("a", get_model("RM1"), num_gpus=4)
        assert job.num_gpus == 4

    def test_zero_gpus_rejected(self):
        with pytest.raises(ConfigurationError):
            TrainingJob("a", get_model("RM1"), num_gpus=0)


class TestScheduling:
    def test_admits_all_with_room(self):
        mix = jobs(("RM5", 8), ("RM1", 8))
        scheduler = FleetScheduler(presto_factory, pool_capacity=100)
        report = scheduler.schedule(mix)
        assert len(report.admitted_jobs) == 2
        assert report.rejected_jobs == []
        assert report.workers_used == 9 + 3  # Fig. 14 allocations

    def test_rejects_when_full(self):
        mix = jobs(("RM5", 8), ("RM5", 8))
        scheduler = FleetScheduler(presto_factory, pool_capacity=10)
        report = scheduler.schedule(mix)
        assert len(report.admitted_jobs) == 1
        assert len(report.rejected_jobs) == 1
        assert "workers" in report.rejected_jobs[0].reason

    def test_first_fit_order(self):
        """A later small job is admitted after a big one is rejected."""
        mix = jobs(("RM5", 8), ("RM5", 8), ("RM1", 8))
        scheduler = FleetScheduler(presto_factory, pool_capacity=13)
        report = scheduler.schedule(mix)
        admitted = [a.job.job_id for a in report.admitted_jobs]
        assert admitted == ["j0", "j2"]  # j1 didn't fit, j2 (3 units) did

    def test_utilization_and_demand(self):
        mix = jobs(("RM5", 8))
        scheduler = FleetScheduler(presto_factory, pool_capacity=18)
        report = scheduler.schedule(mix)
        assert report.utilization == pytest.approx(9 / 18)
        assert report.admitted_gpu_demand > 1e6

    def test_power_and_capex_accounted(self):
        mix = jobs(("RM5", 8))
        report = FleetScheduler(presto_factory, pool_capacity=20).schedule(mix)
        assert report.power_watts == pytest.approx(9 * 16.0 + 150.0)
        assert report.capex == pytest.approx(9 * 2500 + 3000)

    def test_gpu_count_scales_allocation(self):
        small = FleetScheduler(presto_factory, 100).schedule(jobs(("RM5", 1)))
        big = FleetScheduler(presto_factory, 100).schedule(jobs(("RM5", 8)))
        assert big.workers_used > small.workers_used

    def test_empty_jobs_rejected(self):
        with pytest.raises(ProvisioningError):
            FleetScheduler(presto_factory, 10).schedule([])

    def test_bad_capacity(self):
        with pytest.raises(ConfigurationError):
            FleetScheduler(presto_factory, 0)

    def test_zero_capacity_report_utilization_is_zero(self):
        """A hand-built/decoded report with an empty pool must not divide
        by zero: utilization pins to 0.0 (the scheduler itself refuses to
        construct such a pool)."""
        from repro.core.scheduler import FleetReport

        report = FleetReport(system_name="PreSto", pool_capacity=0)
        assert report.utilization == 0.0
        assert report.workers_used == 0


class TestMinPool:
    def test_min_pool_admits_everything(self):
        mix = jobs(("RM5", 8), ("RM2", 8), ("RM1", 8))
        scheduler = FleetScheduler(disagg_factory, pool_capacity=1)
        pool = scheduler.min_pool_for(mix)
        report = FleetScheduler(disagg_factory, pool_capacity=pool).schedule(mix)
        assert report.rejected_jobs == []
        assert report.workers_used == pool

    def test_one_less_rejects(self):
        mix = jobs(("RM5", 8), ("RM1", 8))
        scheduler = FleetScheduler(disagg_factory, pool_capacity=1)
        pool = scheduler.min_pool_for(mix)
        report = FleetScheduler(disagg_factory, pool_capacity=pool - 1).schedule(mix)
        assert len(report.rejected_jobs) == 1

    def test_min_pool_empty_rejected(self):
        with pytest.raises(ProvisioningError):
            FleetScheduler(disagg_factory, 10).min_pool_for([])

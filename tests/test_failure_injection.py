"""Failure-injection tests: corrupted files, truncated partitions, and
mid-pipeline data damage must fail loudly (CRC/format errors), never
silently produce wrong tensors."""

import numpy as np
import pytest

from repro.core.cpu_worker import CpuPreprocessingWorker
from repro.dataio.columnar import ColumnarFileReader, write_table
from repro.dataio.partition import RowPartitioner
from repro.errors import EncodingError, FormatError, ReproError
from repro.features.specs import get_model
from repro.features.synthetic import generate_raw_table
from repro.storage.cluster import DistributedStorage
from repro.storage.smartssd import SmartSsd


@pytest.fixture(scope="module")
def partition_bytes():
    spec = get_model("RM1")
    data = generate_raw_table(spec, 64)
    parts = RowPartitioner(spec.schema(), rows_per_partition=64).partition_all(data)
    return spec, parts[0].file_bytes


class TestCorruptedPartitions:
    def test_flipped_data_byte_caught_by_crc(self, partition_bytes):
        spec, raw = partition_bytes
        worker = CpuPreprocessingWorker(spec)
        corrupted = bytearray(raw)
        corrupted[len(raw) // 3] ^= 0xFF  # inside some column chunk
        with pytest.raises(ReproError):
            worker.preprocess_partition(bytes(corrupted))

    def test_truncated_file_rejected(self, partition_bytes):
        spec, raw = partition_bytes
        with pytest.raises(FormatError):
            ColumnarFileReader(raw[: len(raw) // 2])

    def test_footer_corruption_rejected(self, partition_bytes):
        spec, raw = partition_bytes
        corrupted = bytearray(raw)
        corrupted[-12] ^= 0xFF  # inside the footer length / magic region
        with pytest.raises(FormatError):
            ColumnarFileReader(bytes(corrupted))

    def test_every_single_byte_flip_is_detected_or_harmless(self, partition_bytes):
        """Sampled single-byte corruption never yields silently different
        tensors: either an error is raised or (for unread padding) the
        output is identical."""
        spec, raw = partition_bytes
        worker = CpuPreprocessingWorker(spec)
        reference, _ = worker.preprocess_partition(raw)
        rng = np.random.default_rng(0)
        for offset in rng.integers(6, len(raw) - 10, size=25):
            corrupted = bytearray(raw)
            corrupted[offset] ^= 0x01
            try:
                batch, _ = worker.preprocess_partition(bytes(corrupted))
            except ReproError:
                continue  # detected: good
            np.testing.assert_array_equal(batch.dense, reference.dense)
            np.testing.assert_array_equal(
                batch.sparse.values, reference.sparse.values
            )


class TestStorageFailures:
    def test_reading_missing_partition(self):
        spec = get_model("RM1")
        data = generate_raw_table(spec, 64)
        parts = RowPartitioner(spec.schema(), rows_per_partition=32).partition_all(
            data
        )
        storage = DistributedStorage([SmartSsd("isp0")])
        storage.store_partitions("ds", parts)
        with pytest.raises(ReproError):
            storage.read_partition("ds", 99)

    def test_chunk_decode_error_type(self, partition_bytes):
        """Corruption inside a chunk surfaces as EncodingError specifically."""
        spec, raw = partition_bytes
        reader = ColumnarFileReader(raw)
        chunk = reader.footer.chunks_for("int_0")[0]
        corrupted = bytearray(raw)
        corrupted[chunk.offset + chunk.size // 2] ^= 0xFF
        with pytest.raises(EncodingError, match="CRC"):
            ColumnarFileReader(bytes(corrupted)).read_column("int_0")

    def test_untouched_columns_still_readable_after_corruption(self, partition_bytes):
        """Selective reads isolate damage: corrupting one column's chunk
        leaves the others decodable."""
        spec, raw = partition_bytes
        reader = ColumnarFileReader(raw)
        chunk = reader.footer.chunks_for("int_0")[0]
        corrupted = bytearray(raw)
        corrupted[chunk.offset + 4] ^= 0xFF
        damaged = ColumnarFileReader(bytes(corrupted))
        with pytest.raises(EncodingError):
            damaged.read_column("int_0")
        intact = damaged.read_column("int_1")  # different chunk: fine
        np.testing.assert_array_equal(intact, reader.read_column("int_1"))

"""Train-ready tensor containers.

The Transform phase's output (step 3 in Figure 1) is a mini-batch in the
format TorchRec consumes: a dense float32 matrix, a label vector, and a
*KeyedJaggedTensor* holding every sparse feature's embedding indices as
(lengths, values) jagged arrays keyed by feature name.

These containers are plain numpy so they double as the reproduction's
"tensors"; their byte sizes drive the Load-stage and RPC cost accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

import numpy as np

from repro.errors import FormatError


@dataclass
class KeyedJaggedTensor:
    """Jagged sparse features keyed by name (TorchRec KJT equivalent).

    ``lengths`` is shaped ``(num_keys, batch)`` (row f holds feature f's
    per-sample list lengths); ``values`` is the flat concatenation of all
    features' ids, feature-major.
    """

    keys: List[str]
    lengths: np.ndarray  # int32, shape (num_keys, batch)
    values: np.ndarray  # int64, flat

    def __post_init__(self) -> None:
        self.lengths = np.asarray(self.lengths, dtype=np.int32)
        self.values = np.asarray(self.values, dtype=np.int64)
        if self.lengths.ndim != 2:
            raise FormatError("KJT lengths must be 2-D (num_keys, batch)")
        if len(self.keys) != self.lengths.shape[0]:
            raise FormatError(
                f"KJT has {len(self.keys)} keys but lengths for "
                f"{self.lengths.shape[0]}"
            )
        if int(self.lengths.sum()) != len(self.values):
            raise FormatError("KJT lengths do not sum to len(values)")
        if np.any(self.lengths < 0):
            raise FormatError("KJT lengths must be non-negative")

    @classmethod
    def from_dict(
        cls, jagged: Dict[str, Tuple[np.ndarray, np.ndarray]]
    ) -> "KeyedJaggedTensor":
        """Build from {key: (lengths, values)} preserving insertion order."""
        keys = list(jagged)
        if not keys:
            raise FormatError("KJT needs at least one key")
        batch_sizes = {len(jagged[k][0]) for k in keys}
        if len(batch_sizes) != 1:
            raise FormatError(f"inconsistent batch sizes across keys: {batch_sizes}")
        lengths = np.stack([np.asarray(jagged[k][0], dtype=np.int32) for k in keys])
        values = (
            np.concatenate([np.asarray(jagged[k][1], dtype=np.int64) for k in keys])
            if any(len(jagged[k][1]) for k in keys)
            else np.empty(0, dtype=np.int64)
        )
        return cls(keys=keys, lengths=lengths, values=values)

    @property
    def batch_size(self) -> int:
        """Samples per key."""
        return self.lengths.shape[1]

    @property
    def num_keys(self) -> int:
        """Number of sparse features."""
        return len(self.keys)

    def offsets_for(self, key: str) -> Tuple[int, int]:
        """(start, stop) of ``key``'s slice inside the flat values array."""
        if key not in self.keys:
            raise FormatError(f"unknown KJT key {key!r}")
        index = self.keys.index(key)
        per_key = self.lengths.sum(axis=1)
        start = int(per_key[:index].sum())
        return start, start + int(per_key[index])

    def jagged_for(self, key: str) -> Tuple[np.ndarray, np.ndarray]:
        """Return (lengths, values) of one feature."""
        start, stop = self.offsets_for(key)
        index = self.keys.index(key)
        return self.lengths[index], self.values[start:stop]

    def nbytes(self) -> int:
        """Payload bytes: int32 lengths + int32 values (indices fit 32 bits
        after SigridHash limits them to the embedding-table size)."""
        return self.lengths.size * 4 + self.values.size * 4


@dataclass
class MiniBatch:
    """One train-ready mini-batch: what the Load phase ships to the GPU."""

    dense: np.ndarray  # float32, shape (batch, num_dense)
    sparse: KeyedJaggedTensor
    labels: np.ndarray  # float32, shape (batch,)
    batch_id: int = 0

    def __post_init__(self) -> None:
        self.dense = np.asarray(self.dense, dtype=np.float32)
        self.labels = np.asarray(self.labels, dtype=np.float32)
        if self.dense.ndim != 2:
            raise FormatError("dense tensor must be 2-D (batch, num_dense)")
        batch = self.dense.shape[0]
        if len(self.labels) != batch:
            raise FormatError(
                f"label count {len(self.labels)} != batch size {batch}"
            )
        if self.sparse.batch_size != batch:
            raise FormatError(
                f"KJT batch {self.sparse.batch_size} != dense batch {batch}"
            )

    @property
    def batch_size(self) -> int:
        """Number of samples in the batch."""
        return self.dense.shape[0]

    def nbytes(self) -> int:
        """Total payload bytes shipped to the trainer (Load / RPC size)."""
        return self.dense.nbytes + self.labels.nbytes + self.sparse.nbytes()

    def validate_index_range(self, table_sizes: Dict[str, int]) -> None:
        """Assert every embedding index is within its table (SigridHash's
        contract: ``h mod d`` keeps indices below the table size)."""
        for key in self.sparse.keys:
            if key not in table_sizes:
                raise FormatError(f"no embedding table registered for {key!r}")
            _, values = self.sparse.jagged_for(key)
            if values.size and (values.min() < 0 or values.max() >= table_sizes[key]):
                raise FormatError(
                    f"embedding indices of {key!r} fall outside "
                    f"[0, {table_sizes[key]})"
                )

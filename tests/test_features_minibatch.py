"""Tests for the KeyedJaggedTensor and MiniBatch containers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import FormatError
from repro.features.minibatch import KeyedJaggedTensor, MiniBatch


def make_kjt(batch=4):
    return KeyedJaggedTensor.from_dict(
        {
            "a": (np.array([1, 2, 0, 1]), np.array([10, 20, 21, 30])),
            "b": (np.array([1, 1, 1, 1]), np.array([5, 6, 7, 8])),
        }
    )


class TestKeyedJaggedTensor:
    def test_from_dict_shapes(self):
        kjt = make_kjt()
        assert kjt.keys == ["a", "b"]
        assert kjt.batch_size == 4
        assert kjt.num_keys == 2
        assert kjt.lengths.shape == (2, 4)
        assert len(kjt.values) == 8

    def test_jagged_for_roundtrip(self):
        kjt = make_kjt()
        lengths, values = kjt.jagged_for("a")
        np.testing.assert_array_equal(lengths, [1, 2, 0, 1])
        np.testing.assert_array_equal(values, [10, 20, 21, 30])
        lengths, values = kjt.jagged_for("b")
        np.testing.assert_array_equal(values, [5, 6, 7, 8])

    def test_offsets(self):
        kjt = make_kjt()
        assert kjt.offsets_for("a") == (0, 4)
        assert kjt.offsets_for("b") == (4, 8)

    def test_unknown_key(self):
        with pytest.raises(FormatError, match="unknown"):
            make_kjt().jagged_for("zzz")

    def test_nbytes(self):
        kjt = make_kjt()
        assert kjt.nbytes() == kjt.lengths.size * 4 + kjt.values.size * 4

    def test_inconsistent_batch_rejected(self):
        with pytest.raises(FormatError, match="batch sizes"):
            KeyedJaggedTensor.from_dict(
                {
                    "a": (np.array([1]), np.array([1])),
                    "b": (np.array([1, 1]), np.array([1, 2])),
                }
            )

    def test_length_sum_mismatch_rejected(self):
        with pytest.raises(FormatError):
            KeyedJaggedTensor(
                keys=["a"],
                lengths=np.array([[2, 2]]),
                values=np.array([1, 2, 3]),
            )

    def test_empty_keys_rejected(self):
        with pytest.raises(FormatError):
            KeyedJaggedTensor.from_dict({})

    def test_negative_lengths_rejected(self):
        with pytest.raises(FormatError):
            KeyedJaggedTensor(
                keys=["a"], lengths=np.array([[-1, 2]]), values=np.array([1])
            )

    @given(
        lengths=st.lists(
            st.lists(st.integers(min_value=0, max_value=3), min_size=3, max_size=3),
            min_size=1,
            max_size=5,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_conservation_property(self, lengths):
        """Total values equal the sum of lengths across keys."""
        jagged = {}
        for i, row in enumerate(lengths):
            total = sum(row)
            jagged[f"k{i}"] = (
                np.array(row, dtype=np.int32),
                np.arange(total, dtype=np.int64),
            )
        kjt = KeyedJaggedTensor.from_dict(jagged)
        assert len(kjt.values) == int(kjt.lengths.sum())
        for key in jagged:
            got_lengths, got_values = kjt.jagged_for(key)
            np.testing.assert_array_equal(got_lengths, jagged[key][0])
            np.testing.assert_array_equal(got_values, jagged[key][1])


class TestMiniBatch:
    def _batch(self):
        return MiniBatch(
            dense=np.zeros((4, 2), dtype=np.float32),
            sparse=make_kjt(),
            labels=np.zeros(4, dtype=np.float32),
            batch_id=1,
        )

    def test_shapes(self):
        mb = self._batch()
        assert mb.batch_size == 4
        assert mb.nbytes() > 0

    def test_label_mismatch_rejected(self):
        with pytest.raises(FormatError):
            MiniBatch(
                dense=np.zeros((4, 2)), sparse=make_kjt(), labels=np.zeros(3)
            )

    def test_kjt_mismatch_rejected(self):
        with pytest.raises(FormatError):
            MiniBatch(
                dense=np.zeros((5, 2)), sparse=make_kjt(), labels=np.zeros(5)
            )

    def test_dense_ndim_rejected(self):
        with pytest.raises(FormatError):
            MiniBatch(dense=np.zeros(4), sparse=make_kjt(), labels=np.zeros(4))

    def test_validate_index_range_passes(self):
        mb = self._batch()
        mb.validate_index_range({"a": 1000, "b": 1000})

    def test_validate_index_range_fails(self):
        mb = self._batch()
        with pytest.raises(FormatError, match="outside"):
            mb.validate_index_range({"a": 5, "b": 1000})

    def test_validate_missing_table(self):
        mb = self._batch()
        with pytest.raises(FormatError, match="no embedding table"):
            mb.validate_index_range({"a": 1000})

    def test_nbytes_accounting(self):
        mb = self._batch()
        expected = mb.dense.nbytes + mb.labels.nbytes + mb.sparse.nbytes()
        assert mb.nbytes() == expected

"""Shard-parallel preprocessing execution (the functional data plane).

While :mod:`repro.core` *simulates* preprocessing systems, this package
*executes* the real Extract -> Transform path over sharded data:
:class:`ShardExecutor` maps :class:`~repro.dataio.partition.RowPartitioner`
partitions through write -> read -> :class:`~repro.ops.pipeline.
PreprocessingPipeline` across a ``multiprocessing`` pool with
deterministic, serial-identical minibatch ordering.
"""

from repro.exec.executor import (
    ShardExecutor,
    ShardResult,
    ShardRunStats,
    run_preprocessing,
)

__all__ = [
    "ShardExecutor",
    "ShardResult",
    "ShardRunStats",
    "run_preprocessing",
]

"""Deterministic fault plans — *what* goes wrong, *where*, and *how often*.

A :class:`FaultPlan` is a frozen, seeded, dict-round-trippable description
of the faults one run should experience: a tuple of :class:`FaultRule`
entries, each naming a **fault point** (a probe site woven through the
serve/exec/dataio tiers — see :data:`FAULT_POINTS`), an **action** (crash,
hang, delay, error, torn write, disk-full, connection drop, byte
corruption), and a **rate**.

Determinism is the whole design: whether a rule fires at a given probe is
a pure function of ``sha256(plan.seed, point, key)`` — no wall clock, no
``random`` module, no dependence on thread interleavings.  The ``key`` is
a stable identity from the probe's context (a job id, a job seed), so the
same plan against the same workload injects the same faults into the same
jobs run after run, which is what lets ``repro chaos`` assert a
reproducible matrix and lets a failing chaos seed be replayed exactly.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional, Tuple

from repro.errors import ConfigurationError

#: the catalog of named fault points (probe sites) woven through the code:
#: point -> (module that hosts the probe, what firing there means)
FAULT_POINTS: Dict[str, str] = {
    "worker-crash": "serve/pool + batch/runner: the worker dies mid-task "
                    "(BaseException escapes — the crashed-process stand-in; "
                    "in the batch tier it kills the worker process outright)",
    "task-hang": "batch/runner: a batch task blocks past its wall-clock "
                 "deadline inside the worker process (watchdog territory)",
    "hung-stage": "exec/executor + serve/service: a pipeline stage blocks "
                  "past the job deadline (watchdog territory)",
    "slow-stage": "exec/executor + serve/service: a pipeline stage is "
                  "delayed by delay_s seconds (degraded, not dead)",
    "stage-error": "exec/executor + serve/service: a pipeline stage raises "
                   "a retryable FaultError (transient failure)",
    "torn-write": "serve/records: the job-index append writes half a line "
                  "and fails (crash mid-append)",
    "disk-full": "serve/records: the job-index append fails with ENOSPC "
                 "before writing (spool volume full)",
    "conn-drop": "serve/protocol: the server drops the connection "
                 "mid-reply (client sees EOF instead of an answer)",
    "queue-stall": "serve/queue: a put is delayed by delay_s seconds "
                   "(producer-side turbulence)",
    "row-corrupt": "dataio/rowformat: one byte of a freshly written row "
                   "file is flipped (must be caught downstream, loudly)",
    "node-down": "fleet/simulator: a pool node fails; its running jobs "
                 "are displaced and rescheduled, the node repairs after "
                 "repair_s simulated seconds",
    "slow-node": "fleet/simulator: a pool node degrades; jobs running on "
                 "it finish delay_s simulated seconds late",
    "arrival-burst": "fleet/simulator: one arrival fans out into a flash "
                     "crowd of clone jobs (delay_s, when set, is the "
                     "clone count)",
}

#: what each action does when its rule fires
FAULT_ACTIONS = ("crash", "hang", "delay", "error", "torn", "enospc",
                 "drop", "corrupt", "down", "slow", "burst")

#: actions the generic probe executes itself (raise / sleep); the rest are
#: *cooperative* — the probe site reads the action and misbehaves in kind
_GENERIC_ACTIONS = ("crash", "hang", "delay", "error")

#: default action per point when a rule leaves ``action`` unset
DEFAULT_ACTIONS = {
    "worker-crash": "crash",
    "task-hang": "hang",
    "hung-stage": "hang",
    "slow-stage": "delay",
    "stage-error": "error",
    "torn-write": "torn",
    "disk-full": "enospc",
    "conn-drop": "drop",
    "queue-stall": "delay",
    "row-corrupt": "corrupt",
    "node-down": "down",
    "slow-node": "slow",
    "arrival-burst": "burst",
}


@dataclass(frozen=True)
class FaultRule:
    """One deterministic injection rule: point + action + rate + scope.

    ``rate`` is the deterministic firing fraction: the rule fires at a
    probe iff ``hash01(seed, point, key) < rate`` (so 1.0 always fires,
    0.0 never).  ``key`` names the context field used as the hash key;
    when unset the probe picks the first stable identity it carries
    (``job_id``, ``item``, ``seed``) and falls back to a per-point
    occurrence counter.  ``match`` restricts the rule to probes whose
    context matches every given key exactly (e.g. ``{"stage":
    "transform"}``).  ``delay_s`` is the sleep for ``delay`` and the
    bounded hang for ``hang``; ``max_fires`` caps total firings.
    """

    point: str
    action: Optional[str] = None
    rate: float = 1.0
    key: Optional[str] = None
    match: Mapping[str, Any] = field(default_factory=dict)
    delay_s: Optional[float] = None
    max_fires: Optional[int] = None

    def __post_init__(self) -> None:
        if self.point not in FAULT_POINTS:
            raise ConfigurationError(
                f"unknown fault point {self.point!r}; known: "
                f"{', '.join(sorted(FAULT_POINTS))}"
            )
        action = self.action or DEFAULT_ACTIONS[self.point]
        if action not in FAULT_ACTIONS:
            raise ConfigurationError(
                f"unknown fault action {action!r}; known: "
                f"{', '.join(FAULT_ACTIONS)}"
            )
        object.__setattr__(self, "action", action)
        if not (0.0 <= self.rate <= 1.0):
            raise ConfigurationError(
                f"rate must be within [0, 1], got {self.rate!r}"
            )
        if self.delay_s is not None and self.delay_s < 0:
            raise ConfigurationError(
                f"delay_s must be non-negative, got {self.delay_s!r}"
            )
        if self.max_fires is not None and (
            not isinstance(self.max_fires, int) or self.max_fires < 0
        ):
            raise ConfigurationError(
                f"max_fires must be a non-negative int, got {self.max_fires!r}"
            )
        object.__setattr__(self, "match", dict(self.match))

    def matches(self, context: Mapping[str, Any]) -> bool:
        """Whether this rule applies to a probe with ``context``."""
        return all(context.get(k) == v for k, v in self.match.items())

    def to_dict(self) -> Dict[str, Any]:
        payload: Dict[str, Any] = {
            "point": self.point,
            "action": self.action,
            "rate": self.rate,
        }
        if self.key is not None:
            payload["key"] = self.key
        if self.match:
            payload["match"] = dict(self.match)
        if self.delay_s is not None:
            payload["delay_s"] = self.delay_s
        if self.max_fires is not None:
            payload["max_fires"] = self.max_fires
        return payload

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultRule":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown FaultRule keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        return cls(**dict(data))


@dataclass(frozen=True)
class FaultPlan:
    """A seeded set of fault rules — the whole injection schedule."""

    seed: int = 0
    rules: Tuple[FaultRule, ...] = ()

    def __post_init__(self) -> None:
        if not isinstance(self.seed, int):
            raise ConfigurationError(
                f"seed must be an int, got {self.seed!r}"
            )
        rules = tuple(self.rules)
        for rule in rules:
            if not isinstance(rule, FaultRule):
                raise ConfigurationError(
                    f"rules must hold FaultRule entries, got {rule!r}"
                )
        object.__setattr__(self, "rules", rules)

    def rules_for(self, point: str) -> Tuple[FaultRule, ...]:
        return tuple(rule for rule in self.rules if rule.point == point)

    @property
    def points(self) -> Tuple[str, ...]:
        return tuple(sorted({rule.point for rule in self.rules}))

    def hash01(self, point: str, key: str) -> float:
        """Uniform [0, 1) hash of (seed, point, key) — the deterministic
        coin: a rule fires iff this value is below its rate.  A pure
        function, so the same plan makes the same decisions in any
        process, on any run."""
        digest = hashlib.sha256(
            f"{self.seed}:{point}:{key}".encode("utf-8")
        ).digest()
        return int.from_bytes(digest[:8], "big") / 2.0**64

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        return {
            "seed": self.seed,
            "rules": [rule.to_dict() for rule in self.rules],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultPlan":
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown FaultPlan keys {sorted(unknown)}; "
                f"expected a subset of {sorted(known)}"
            )
        payload = dict(data)
        payload["rules"] = tuple(
            FaultRule.from_dict(rule) for rule in payload.get("rules", ())
        )
        return cls(**payload)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            payload = json.loads(text)
        except ValueError as exc:
            raise ConfigurationError(f"fault plan is not valid JSON: {exc}")
        if not isinstance(payload, dict):
            raise ConfigurationError("fault plan JSON must be an object")
        return cls.from_dict(payload)

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        try:
            with open(path) as handle:
                text = handle.read()
        except OSError as exc:
            raise ConfigurationError(f"cannot read fault plan {path}: {exc}")
        return cls.from_json(text)

    def save(self, path: str) -> None:
        with open(path, "w") as handle:
            handle.write(self.to_json() + "\n")

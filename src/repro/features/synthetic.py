"""Synthetic raw-data generators.

Section V-A: the paper scales the public Criteo dataset up to four synthetic
production-scale configurations (RM2–RM5) following the characteristics Meta
reported (more dense/sparse features, average sparse feature length 20).

The generators here emit raw tables matching a :class:`~repro.features.specs.
ModelSpec`'s schema with Criteo-like statistics:

* dense values — heavy-tailed non-negative counts (log-normal), with a
  configurable missing-value rate (encoded as NaN, later handled by the
  fill + Log ops);
* sparse ids — Zipf-distributed categorical ids over a large vocabulary
  (hashing to the embedding-table range is precisely SigridHash's job);
* sparse lengths — Criteo is fixed length 1; the synthetic models draw
  per-row lengths from a Poisson around the configured average (min 0),
  making the columns genuinely jagged;
* labels — Bernoulli clicks at a configurable CTR.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.dataio.columnar import TableData
from repro.dataio.schema import TableSchema
from repro.errors import ConfigurationError
from repro.features.specs import ModelSpec

#: Vocabulary from which raw sparse ids are drawn, before SigridHash limits
#: them to the embedding-table size.  Production raw ids are 64-bit hashes;
#: a large range keeps the hash's modulo behaviour realistic.
RAW_ID_SPACE = 2**40

#: Click-through rate of the synthetic labels (Criteo-like).
DEFAULT_CTR = 0.03


def _seed_key(*parts) -> int:
    """Fold arbitrary (int/str) parts into one deterministic integer seed."""
    import zlib

    acc = 0
    for part in parts:
        data = str(part).encode()
        acc = (acc * 0x100000001B3 + zlib.crc32(data)) % (2**63)
    return acc


class SyntheticTableGenerator:
    """Deterministic (seeded) generator of raw feature tables for one model."""

    def __init__(
        self,
        spec: ModelSpec,
        seed: int = 0,
        ctr: float = DEFAULT_CTR,
        zipf_exponent: float = 1.2,
    ) -> None:
        if not 0.0 < ctr < 1.0:
            raise ConfigurationError(f"ctr must be in (0, 1), got {ctr}")
        if zipf_exponent <= 1.0:
            raise ConfigurationError("zipf_exponent must exceed 1.0")
        self.spec = spec
        self.seed = seed
        self.ctr = ctr
        self.zipf_exponent = zipf_exponent
        self.schema: TableSchema = spec.schema()

    def _rng(self, partition: int) -> np.random.Generator:
        """Independent stream per partition so shards are reproducible."""
        return np.random.default_rng(_seed_key(self.seed, self.spec.name, partition))

    def _dense_column(self, rng: np.random.Generator, num_rows: int) -> np.ndarray:
        values = rng.lognormal(mean=1.5, sigma=1.2, size=num_rows)
        values = np.floor(values).astype(np.float32)
        if self.spec.dense_missing_rate > 0:
            missing = rng.random(num_rows) < self.spec.dense_missing_rate
            values[missing] = np.nan
        return values

    def _sparse_column(self, rng: np.random.Generator, num_rows: int):
        avg_len = self.spec.avg_sparse_length
        if avg_len == 1:
            lengths = np.ones(num_rows, dtype=np.int32)  # Criteo: fixed length 1
        else:
            lengths = rng.poisson(avg_len, size=num_rows).astype(np.int32)
        total = int(lengths.sum())
        # Zipf over a bounded vocabulary, then spread across the raw id space
        # with a multiplicative hash so ids look like production 64-bit hashes.
        ranks = rng.zipf(self.zipf_exponent, size=total).astype(np.uint64)
        ids = (ranks * np.uint64(0x9E3779B97F4A7C15)) % np.uint64(RAW_ID_SPACE)
        return lengths, ids.astype(np.int64)

    def generate(self, num_rows: int, partition: int = 0) -> TableData:
        """Generate one partition's raw table with ``num_rows`` rows."""
        if num_rows <= 0:
            raise ConfigurationError("num_rows must be positive")
        rng = self._rng(partition)
        data: TableData = {
            self.schema.label.name: (rng.random(num_rows) < self.ctr).astype(np.int8)
        }
        for column in self.schema.dense:
            data[column.name] = self._dense_column(rng, num_rows)
        for column in self.schema.sparse:
            data[column.name] = self._sparse_column(rng, num_rows)
        return data

    def bucket_boundaries(self, feature: Optional[str] = None) -> np.ndarray:
        """Boundaries used by Bucketize for one generated feature.

        The boundaries are quantile-like over the dense value distribution:
        ``m`` (Table I's bucket size) strictly increasing edges.  The same
        boundaries are used by both the CPU baseline and the PreSto
        accelerator, as in TorchArrow where they are precomputed constants.
        """
        m = self.spec.bucket_size
        rng = np.random.default_rng(
            _seed_key(self.seed, self.spec.name, "buckets", feature)
        )
        # log-normal quantiles with a little jitter to keep edges distinct
        qs = np.linspace(0.0, 6.0, m) + rng.random(m) * 1e-3
        return np.sort(np.exp(qs).astype(np.float64))


def generate_raw_table(spec: ModelSpec, num_rows: int, seed: int = 0) -> TableData:
    """One-shot helper: generate a raw table for ``spec``."""
    return SyntheticTableGenerator(spec, seed=seed).generate(num_rows)

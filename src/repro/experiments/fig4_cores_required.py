"""Figure 4 — CPU cores required to feed an 8xA100 training node.

For each Table I model, provisions the disaggregated CPU system against the
node-level training demand (8 x T) and reports ceil(8T/P).

Paper claim: several hundred cores for the production-scale models, 367 for
RM5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    models,
    register_experiment,
    scenario_for,
)
from repro.hardware.calibration import CALIBRATION, Calibration

NUM_GPUS = 8


@dataclass(frozen=True)
class Fig4Result(ExperimentResult):
    """Cores required per model."""

    cores: Dict[str, int]
    training_demand: Dict[str, float]
    worker_throughput: Dict[str, float]

    @property
    def max_cores(self) -> int:
        """Largest requirement across models (paper: 367, on RM5)."""
        return max(self.cores.values())

    def claims(self) -> List[PaperClaim]:
        return [
            PaperClaim("RM5 cores for 8xA100", 367, self.cores["RM5"], 0.10),
            PaperClaim(
                "production models need hundreds of cores (min RM2-5)",
                300,
                min(self.cores[m] for m in ("RM2", "RM3", "RM4", "RM5")),
            ),
        ]

    def rows(self) -> List[Tuple[str, int, float, float]]:
        return [
            (
                name,
                self.cores[name],
                self.training_demand[name],
                self.worker_throughput[name],
            )
            for name in self.cores
        ]

    def columns(self) -> List[str]:
        return ["model", "cores", "8-GPU demand (samples/s)", "per-core P (samples/s)"]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title="Figure 4: CPU cores required per 8xA100 node",
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("fig4", title="Figure 4", kind="figure", order=20)
def run(calibration: Calibration = CALIBRATION) -> Fig4Result:
    """Regenerate Figure 4."""
    cores: Dict[str, int] = {}
    demand: Dict[str, float] = {}
    per_core: Dict[str, float] = {}
    for spec in models():
        scenario = scenario_for(
            spec.name, "Disagg", calibration, num_gpus=NUM_GPUS
        )
        plan = scenario.provision_plan()
        cores[spec.name] = plan.num_workers
        demand[spec.name] = plan.training_throughput
        per_core[spec.name] = plan.worker_throughput
    return Fig4Result(cores=cores, training_demand=demand, worker_throughput=per_core)

"""Parallel scenario sweeps with deterministic result ordering.

A :class:`Sweep` is an ordered collection of :class:`~repro.api.scenario.Scenario`
records.  :meth:`Sweep.run` executes them through the fault-tolerant
:class:`~repro.batch.runner.BatchRunner` (scenarios are frozen, picklable,
and side-effect free, so fan-out is safe) and always returns results in
scenario order — a parallel run is indistinguishable from a serial one
except for wall-clock time.  A worker death, a raising scenario, or a
stuck task becomes a per-scenario outcome instead of a pool-wide crash:
``failure_mode="degrade"`` returns :class:`~repro.batch.outcomes.\
BatchOutcome` records for every scenario, and attaching a
:class:`~repro.batch.journal.BatchJournal` makes the sweep resumable
(``resume=True`` skips scenarios the journal already completed).
"""

from __future__ import annotations

import hashlib
import itertools
import json
from typing import (
    Iterable, Iterator, List, Optional, Sequence, Tuple, Union,
)

from repro.batch import BatchJournal, BatchOutcome, BatchPolicy, BatchRunner
from repro.batch.policy import merge_policy
from repro.errors import ConfigurationError
from repro.api.result import RunResult
from repro.api.scenario import Scenario


def _run_scenario(scenario: Scenario) -> RunResult:
    """Module-level so pool workers can unpickle it."""
    return scenario.run()


def _scenario_key(index: int, scenario: Scenario) -> str:
    """Content digest of one scenario — the journal's task identity."""
    return hashlib.sha256(
        json.dumps(scenario.to_dict(), sort_keys=True).encode("utf-8")
    ).hexdigest()


def _scenario_label(index: int, scenario: Scenario) -> str:
    return (
        f"{scenario.model}/{scenario.system}/gpus={scenario.num_gpus}"
    )


def _as_tuple(value: Union[object, Iterable[object]]) -> Tuple[object, ...]:
    if isinstance(value, (str, int, float)) or value is None:
        return (value,)
    return tuple(value)


class Sweep:
    """An ordered grid of scenarios runnable serially or in parallel."""

    def __init__(self, scenarios: Iterable[Scenario]) -> None:
        self.scenarios: Tuple[Scenario, ...] = tuple(scenarios)
        if not self.scenarios:
            raise ConfigurationError("a sweep needs at least one scenario")
        for scenario in self.scenarios:
            if not isinstance(scenario, Scenario):
                raise ConfigurationError(
                    f"sweeps take Scenario records, got {scenario!r}"
                )

    @classmethod
    def grid(
        cls,
        models: Union[str, Sequence[str]],
        systems: Union[str, Sequence[str]],
        num_gpus: Union[int, Sequence[int]] = (8,),
        **common: object,
    ) -> "Sweep":
        """Cartesian product (models x systems x num_gpus), models outermost.

        ``common`` keyword arguments are applied to every scenario
        (``num_batches``, ``queue_capacity``, ``calibration``, ...).
        """
        scenarios = [
            Scenario(model=model, system=system, num_gpus=gpus, **common)
            for model, system, gpus in itertools.product(
                _as_tuple(models), _as_tuple(systems), _as_tuple(num_gpus)
            )
        ]
        return cls(scenarios)

    # -- execution ----------------------------------------------------------

    def run(
        self,
        parallel: bool = True,
        processes: Optional[int] = None,
        *,
        policy: Optional[BatchPolicy] = None,
        failure_mode: Optional[str] = None,
        journal: Optional[BatchJournal] = None,
        resume: bool = False,
    ) -> Union[List[RunResult], List[BatchOutcome]]:
        """Execute every scenario; results are in scenario order either way.

        ``strict`` mode (the default) returns plain :class:`RunResult`
        rows and raises a typed error on the first non-ok scenario —
        already-completed scenarios are still journaled first.
        ``degrade`` mode returns one :class:`BatchOutcome` per scenario
        (``outcome.result`` holds the :class:`RunResult` when ok).
        ``processes`` must be positive; the pool is always clamped to the
        scenario count.  With a ``journal``, ``resume=True`` replays it
        and skips scenarios whose results it already holds.
        """
        policy = merge_policy(policy, processes, failure_mode)
        runner = BatchRunner(
            _run_scenario,
            policy=policy,
            journal=journal,
            task_key=_scenario_key,
            task_label=_scenario_label,
            encode_result=lambda index, result: result.to_dict(),
            decode_result=lambda index, payload: RunResult.from_dict(payload),
        )
        fan_out = (
            parallel
            and len(self.scenarios) > 1
            and policy.worker_count(len(self.scenarios)) > 1
        )
        outcomes = runner.run(
            self.scenarios, parallel=fan_out, resume=resume
        )
        if policy.failure_mode == "degrade":
            return outcomes
        return [outcome.result for outcome in outcomes]

    # -- container conveniences ---------------------------------------------

    def __len__(self) -> int:
        return len(self.scenarios)

    def __iter__(self) -> Iterator[Scenario]:
        return iter(self.scenarios)

    def __getitem__(self, index: int) -> Scenario:
        return self.scenarios[index]

    def to_dicts(self) -> List[dict]:
        """Config-file form: one plain dict per scenario."""
        return [scenario.to_dict() for scenario in self.scenarios]

    @classmethod
    def from_dicts(cls, dicts: Iterable[dict]) -> "Sweep":
        return cls(Scenario.from_dict(d) for d in dicts)

"""Job lifecycle records — the service's source of truth.

Every job the streaming service touches is described by one frozen,
dict-round-trippable :class:`JobRecord`: which :class:`PreprocessJob` was
asked for, where it came from (``source``), where it stands
(queued/running/completed/failed/cancelled), when it moved
(``submitted_at``/``started_at``/``completed_at``), how often it was tried,
the per-stage :class:`StageEvent` telemetry, and — once finished — the
minibatch content digest that makes the service's central guarantee
checkable (``repro submit --wait`` digests match ``repro preprocess
--serial`` byte for byte).

Records are immutable; every transition produces a new record via the
``mark_*`` helpers, and :class:`JobLogIndex` appends each transition to a
JSONL index next to the spool directory (last line per job wins, most
recently completed first on load) so a restarted or external process can
reconstruct the full lifecycle without talking to the daemon.
"""

from __future__ import annotations

import dataclasses
import json
import threading
from dataclasses import dataclass, field
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.api.preprocess import PreprocessJob
from repro.errors import ReproError, ServeError
from repro.journal import JsonlJournal

#: every state a job can be in; the last three are terminal.  "interrupted"
#: marks a job a dead daemon left queued/running — a restarted service
#: re-enqueues it, so it is explicitly non-terminal.
JOB_STATES = (
    "queued", "running", "interrupted", "completed", "failed", "cancelled"
)
TERMINAL_STATES = ("completed", "failed", "cancelled")

#: every status a pipeline stage event can carry
STAGE_STATUSES = ("started", "completed", "failed", "skipped")


@dataclass(frozen=True)
class StageEvent:
    """One structured telemetry event for one pipeline stage.

    ``failed`` events must carry error details; ``skipped`` records a stage
    that never ran because an earlier one failed — it is written explicitly
    rather than left absent, so a record's stage list always names the full
    pipeline.
    """

    stage: str
    status: str
    at: float  # unix timestamp of the event
    elapsed_s: Optional[float] = None
    metrics: Mapping[str, float] = field(default_factory=dict)
    error: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.stage, str) or not self.stage.strip():
            raise ServeError("stage must be a non-empty string")
        if self.status not in STAGE_STATUSES:
            raise ServeError(
                f"stage status must be one of {STAGE_STATUSES}, "
                f"got {self.status!r}"
            )
        if self.status == "failed" and not self.error:
            raise ServeError("failed stage events must include error details")

    def to_dict(self) -> Dict[str, Any]:
        return {
            "stage": self.stage,
            "status": self.status,
            "at": self.at,
            "elapsed_s": self.elapsed_s,
            "metrics": dict(self.metrics),
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "StageEvent":
        _check_keys(cls, data)
        return cls(**dict(data))


@dataclass(frozen=True)
class JobRecord:
    """The full lifecycle of one service job (immutable snapshot)."""

    job_id: str
    job: PreprocessJob
    source: str = "client"
    state: str = "queued"
    submitted_at: float = 0.0
    started_at: Optional[float] = None
    completed_at: Optional[float] = None
    attempts: int = 0
    stages: Tuple[StageEvent, ...] = ()
    digest: Optional[str] = None
    error: Optional[str] = None

    def __post_init__(self) -> None:
        if not isinstance(self.job_id, str) or not self.job_id.strip():
            raise ServeError("job_id must be a non-empty string")
        if not isinstance(self.job, PreprocessJob):
            raise ServeError(f"job must be a PreprocessJob, got {self.job!r}")
        if self.state not in JOB_STATES:
            raise ServeError(
                f"state must be one of {JOB_STATES}, got {self.state!r}"
            )
        if not isinstance(self.attempts, int) or self.attempts < 0:
            raise ServeError(
                f"attempts must be a non-negative int, got {self.attempts!r}"
            )
        if self.state == "failed" and not self.error:
            raise ServeError("failed jobs must include error details")
        if self.state == "completed" and not self.digest:
            raise ServeError("completed jobs must include the output digest")
        object.__setattr__(self, "stages", tuple(self.stages))
        for event in self.stages:
            if not isinstance(event, StageEvent):
                raise ServeError(f"stages must hold StageEvents, got {event!r}")

    # -- state ---------------------------------------------------------------

    @property
    def is_terminal(self) -> bool:
        """Whether this record can never transition again."""
        return self.state in TERMINAL_STATES

    # -- transitions (functional updates) ------------------------------------

    def mark_running(self, at: float) -> "JobRecord":
        """One more attempt starts executing now."""
        return dataclasses.replace(
            self,
            state="running",
            started_at=self.started_at if self.started_at is not None else at,
            attempts=self.attempts + 1,
        )

    def mark_completed(self, at: float, digest: str) -> "JobRecord":
        return dataclasses.replace(
            self, state="completed", completed_at=at, digest=digest, error=None
        )

    def mark_failed(self, at: float, error: str) -> "JobRecord":
        return dataclasses.replace(
            self, state="failed", completed_at=at, error=error
        )

    def mark_cancelled(self, at: float, reason: Optional[str] = None) -> "JobRecord":
        return dataclasses.replace(
            self, state="cancelled", completed_at=at, error=reason
        )

    def mark_interrupted(self, at: float) -> "JobRecord":
        """A daemon died while this job was queued or running.

        Interrupted is *not* terminal: recovery re-enqueues the job, and
        ``mark_running`` on the re-enqueued record keeps the original
        ``submitted_at``/``attempts`` history.
        """
        return dataclasses.replace(
            self,
            state="interrupted",
            error=f"daemon exited at {at:.3f} with this job in flight",
        )

    def with_stage(self, event: StageEvent) -> "JobRecord":
        """Append one stage telemetry event."""
        return dataclasses.replace(self, stages=self.stages + (event,))

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form (round-trips via :meth:`from_dict`)."""
        return {
            "job_id": self.job_id,
            "job": self.job.to_dict(),
            "source": self.source,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "completed_at": self.completed_at,
            "attempts": self.attempts,
            "stages": [event.to_dict() for event in self.stages],
            "digest": self.digest,
            "error": self.error,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "JobRecord":
        """Rebuild a record from :meth:`to_dict` output (strict keys)."""
        _check_keys(cls, data)
        payload = dict(data)
        payload["job"] = PreprocessJob.from_dict(payload["job"])
        payload["stages"] = tuple(
            StageEvent.from_dict(event) for event in payload.get("stages", ())
        )
        return cls(**payload)


def _check_keys(cls, data: Mapping[str, Any]) -> None:
    known = {f.name for f in dataclasses.fields(cls)}
    unknown = set(data) - known
    if unknown:
        raise ServeError(
            f"unknown {cls.__name__} keys {sorted(unknown)}; "
            f"expected a subset of {sorted(known)}"
        )


def _completion_key(record: JobRecord) -> float:
    """Most recent activity: completion, else start, else submission."""
    for stamp in (record.completed_at, record.started_at, record.submitted_at):
        if stamp is not None:
            return stamp
    return 0.0


class JobLogIndex:
    """Append-only JSONL index of job transitions next to the spool dir.

    One line per transition; on load the last line per ``job_id`` wins and
    records come back ordered by most recent completion first (the
    ingestion-log-index convention).  A torn final line — a daemon killed
    mid-append — is tolerated; corruption anywhere else is a loud
    :class:`~repro.errors.ServeError`, never a silent skip.

    ``fsync=True`` makes every append durable (flush + ``os.fsync``) —
    the daemon path turns this on so a completed job's digest survives a
    host crash; the default stays off for tests and throwaway spools.

    A failed append (torn write, disk full) is *healed* on the next
    successful one: the index remembers the pre-write size and truncates
    back to it before writing, so a half-line never becomes loud interior
    corruption once more lines land after it.

    The index also self-bounds: every transition appends a line, so a
    long-lived daemon's index grows without limit unless compacted.
    :meth:`maybe_compact` rewrites the file down to the latest record per
    job once the line count exceeds ``compact_ratio`` times the distinct
    job count (and ``compact_min_lines``, so small spools never churn).
    """

    def __init__(
        self,
        path: str,
        fsync: bool = False,
        compact_min_lines: int = 512,
        compact_ratio: float = 8.0,
    ) -> None:
        if compact_min_lines < 1:
            raise ServeError(
                f"compact_min_lines must be >= 1, got {compact_min_lines!r}"
            )
        if compact_ratio < 1.0:
            raise ServeError(
                f"compact_ratio must be >= 1.0, got {compact_ratio!r}"
            )
        self.path = path
        self.compact_min_lines = compact_min_lines
        self.compact_ratio = compact_ratio
        self.compactions = 0
        self._lock = threading.Lock()
        # the file mechanics — torn-tail healing, fsync, fault probes,
        # atomic rewrite — live in the shared JsonlJournal core
        self._journal = JsonlJournal(path, fsync=fsync)
        self._jobs: set = set()  # distinct job_ids appended this process

    @property
    def fsync(self) -> bool:
        return self._journal.fsync

    def append(self, record: JobRecord) -> None:
        """Durably append one transition (thread-safe).

        With ``fsync`` on, the line is flushed and fsynced before this
        returns; otherwise durability is left to the OS page cache.
        """
        line = json.dumps(record.to_dict(), sort_keys=True)
        with self._lock:
            self._journal.append(line, job_id=record.job_id)
            self._jobs.add(record.job_id)

    def load(self) -> List[JobRecord]:
        """Latest record per job, most recently completed first."""
        with self._lock:
            return self._load_locked()

    def _load_locked(self) -> List[JobRecord]:
        latest: Dict[str, JobRecord] = {}
        for number, text, complete in self._journal.read():
            try:
                payload = json.loads(text)
                record = JobRecord.from_dict(payload)
            except (ValueError, ReproError) as exc:
                if not complete:
                    continue  # torn final append from a killed daemon
                raise ServeError(
                    f"corrupt job index {self.path} at line {number}: {exc}"
                )
            latest[record.job_id] = record
        return sorted(latest.values(), key=_completion_key, reverse=True)

    # -- compaction ----------------------------------------------------------

    def should_compact(self) -> bool:
        """Whether the line count warrants a rewrite (cheap, in-memory)."""
        jobs = max(1, len(self._jobs))
        return self._journal.lines >= max(
            self.compact_min_lines, int(self.compact_ratio * jobs)
        )

    def maybe_compact(self) -> bool:
        """Compact if :meth:`should_compact`; returns whether it ran."""
        with self._lock:
            if not self.should_compact():
                return False
            self._compact_locked()
            return True

    def compact(self) -> int:
        """Rewrite the index down to one line per job; returns lines kept.

        Atomic: the compacted index is written to a temp file in the same
        directory, fsynced, and ``os.replace``d over the original — a
        crash mid-compaction leaves the old index intact.
        """
        with self._lock:
            return self._compact_locked()

    def _compact_locked(self) -> int:
        records = self._load_locked()
        records.sort(key=_completion_key)  # oldest first, append order
        self._journal.rewrite(
            [json.dumps(record.to_dict(), sort_keys=True) for record in records]
        )
        self._jobs = {record.job_id for record in records}
        self.compactions += 1
        return len(records)

"""Bucketize — feature generation (Algorithm 1 of the paper).

Transforms a dense feature into a sparse categorical feature by digitizing
each value against a predefined, sorted array of bucket boundaries using
binary search.  TorchArrow semantics (matching ``torcharrow.functional.
bucketize`` / ``numpy.digitize`` with ``right=False``):

* value < boundaries[0]            -> bucket 0
* boundaries[i-1] <= value < boundaries[i] -> bucket i
* value >= boundaries[-1]          -> bucket len(boundaries)

so ``m`` boundaries produce ``m + 1`` bucket ids, and the generated feature
indexes an embedding table of at least ``m + 1`` rows.

Two implementations are provided: a vectorized numpy path (used everywhere)
and a scalar reference path (:func:`search_bucket_id`) that transcribes the
paper's pseudocode literally; property tests assert they agree.
"""

from __future__ import annotations

import numpy as np

from repro.errors import OpError


def _check_boundaries(boundaries: np.ndarray) -> np.ndarray:
    boundaries = np.asarray(boundaries, dtype=np.float64)
    if boundaries.ndim != 1 or len(boundaries) == 0:
        raise OpError("bucket boundaries must be a non-empty 1-D array")
    if np.any(np.diff(boundaries) <= 0):
        raise OpError("bucket boundaries must be strictly increasing")
    return boundaries


def search_bucket_id(value: float, boundaries: np.ndarray) -> int:
    """Scalar binary search, line-for-line with Algorithm 1's SearchBucketID."""
    boundaries = _check_boundaries(boundaries)
    lo, hi = 0, len(boundaries)
    while lo < hi:
        mid = (lo + hi) // 2
        if value < boundaries[mid]:
            hi = mid
        else:
            lo = mid + 1
    return lo


class Bucketizer:
    """Bucketize with the boundary structure validated and cached once.

    A :class:`~repro.ops.pipeline.PreprocessingPipeline` digitizes the same
    dense features against the same boundaries for every batch; validating
    the ``m``-edge array (monotonicity, shape) on every call is pure
    per-batch overhead.  Constructing a ``Bucketizer`` performs the checks
    and dtype conversion once; calling it is just the binary search.
    """

    __slots__ = ("boundaries",)

    def __init__(self, boundaries: np.ndarray) -> None:
        self.boundaries = _check_boundaries(boundaries)

    def __call__(self, values: np.ndarray) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.ndim != 1:
            raise OpError(
                f"bucketize input must be 1-D, got shape {values.shape}"
            )
        out = np.searchsorted(self.boundaries, values, side="right").astype(
            np.int64
        )
        nan_mask = np.isnan(values)
        if nan_mask.any():
            out[nan_mask] = 0
        return out

    @property
    def num_buckets(self) -> int:
        """Cardinality of the generated feature: ``len(boundaries) + 1``."""
        return len(self.boundaries) + 1


def bucketize(values: np.ndarray, boundaries: np.ndarray) -> np.ndarray:
    """Digitize a dense feature column into bucket ids (int64).

    NaNs (missing dense values that escaped the fill op) map to bucket 0,
    matching TorchArrow's null-to-zero index convention.  One-shot form of
    :class:`Bucketizer`; pipelines cache the prepared form instead.
    """
    return Bucketizer(boundaries)(values)


def num_buckets(boundaries: np.ndarray) -> int:
    """Cardinality of the generated feature: ``len(boundaries) + 1``."""
    return len(_check_boundaries(boundaries)) + 1

"""Column-chunk encodings for the columnar file format.

Four codecs, mirroring the encodings Parquet applies to RecSys feature data:

* ``PLAIN``       — raw little-endian array bytes.
* ``VARINT``      — LEB128 zig-zag varints; compact for small-magnitude ids.
* ``RLE``         — run-length encoding of (value, run) pairs; compact for
                    repetitive columns such as labels and lengths.
* ``DICTIONARY``  — value dictionary + fixed-width indices; compact for
                    low-cardinality categorical columns.

Every encoded chunk is framed as::

    [codec:1][dtype-code:1][num-values:varint][payload...][crc32:4]

so a chunk is self-describing and corruption is detected on decode.  The
Extract(Decode) latency that Figures 5 and 12 of the paper break out is the
cost of undoing exactly this kind of encoding.

The VARINT and RLE codecs are vectorized: whole columns are zig-zagged,
per-value byte widths computed with one ``searchsorted``, and the 7-bit
groups of every value scattered/gathered one byte-width class at a time
(:func:`encode_uvarints` / :func:`decode_uvarints`).  The element-at-a-time
implementations are kept as ``*_scalar`` references that property tests (and
``repro bench``) cross-check byte-for-byte.
"""

from __future__ import annotations

import enum
import struct
import sys
import zlib
from typing import Tuple

import numpy as np

from repro.errors import EncodingError

_CRC_STRUCT = struct.Struct("<I")

# dtype codes used in the chunk header
_DTYPE_CODES = {
    np.dtype(np.int8): 0,
    np.dtype(np.int32): 1,
    np.dtype(np.int64): 2,
    np.dtype(np.float32): 3,
    np.dtype(np.float64): 4,
}
_CODES_DTYPE = {code: dtype for dtype, code in _DTYPE_CODES.items()}


class Encoding(enum.IntEnum):
    """Codec identifiers stored in the chunk header."""

    PLAIN = 0
    VARINT = 1
    RLE = 2
    DICTIONARY = 3


# --------------------------------------------------------------------------
# varint primitives
# --------------------------------------------------------------------------


def _zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers onto unsigned so small magnitudes stay small."""
    v = np.ascontiguousarray(values, dtype=np.int64)
    out = v << 1
    out ^= v >> 63
    return out.view(np.uint64)  # reinterpret bits; the xor result is the code


def _zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_zigzag_encode`."""
    v = np.ascontiguousarray(values, dtype=np.uint64)
    out = v >> np.uint64(1)
    out ^= np.uint64(0) - (v & np.uint64(1))
    return out.view(np.int64)


def write_uvarint(value: int, out: bytearray) -> None:
    """Append one unsigned LEB128 varint to ``out``."""
    if value < 0:
        raise EncodingError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(data: bytes, offset: int) -> Tuple[int, int]:
    """Read one unsigned LEB128 varint; return (value, new_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise EncodingError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift >= 70:  # an 11th byte would exceed the 10-byte uint64 limit
            raise EncodingError("varint too long")


# --------------------------------------------------------------------------
# batch varint primitives (vectorized)
# --------------------------------------------------------------------------

# smallest value needing k+1 LEB128 bytes, for k = 1..9
_UVARINT_THRESHOLDS = (np.uint64(1) << (np.uint64(7) * np.arange(1, 10, dtype=np.uint64)))
_MAX_UVARINT_BYTES = 10  # ceil(64 / 7)
_MASK64_INT = (1 << 64) - 1
_SEVEN = np.uint64(7)
_LOW7 = np.uint64(0x7F)
_CONT = np.uint8(0x80)


def uvarint_lengths(values: np.ndarray) -> np.ndarray:
    """Encoded byte width of each value in an unsigned uint64 column."""
    v = np.ascontiguousarray(values, dtype=np.uint64)
    widths = np.searchsorted(_UVARINT_THRESHOLDS, v, side="right")
    widths += 1
    return widths


def encode_uvarints(values: np.ndarray) -> bytes:
    """Batch-encode a uint64 column as concatenated LEB128 varints.

    Equivalent to calling :func:`write_uvarint` per value, but computes the
    per-value byte widths up front and scatters the 7-bit groups of all
    values into one output buffer, one vectorized pass per group position.
    """
    v = np.ascontiguousarray(values, dtype=np.uint64)
    if v.size == 0:
        return b""
    widths = uvarint_lengths(v)
    total = int(widths.sum())
    # int32 offsets halve the position-array traffic in the scatter loop;
    # columns whose encoding exceeds 2 GiB keep the int64 path
    offset_dtype = np.int32 if total < 2**31 else np.int64
    widths = widths.astype(offset_dtype, copy=False)
    ends = np.cumsum(widths, dtype=offset_dtype)
    starts = ends
    starts -= widths  # in place: 'ends' is not reused
    out = np.empty(total, dtype=np.uint8)
    scatter_uvarints(out, starts, v, widths)
    return out.tobytes()


def scatter_uvarints(
    out: np.ndarray,
    starts: np.ndarray,
    values: np.ndarray,
    widths: np.ndarray = None,
) -> None:
    """Write the LEB128 bytes of ``values`` into ``out`` at ``starts``.

    ``out`` is a uint8 buffer; ``starts[i]`` is the offset of the first byte
    of ``values[i]``.  Values are processed one byte-width class at a time:
    within a class every value has the same layout, so each of its byte
    positions is one shift/mask/scatter over the whole class — O(sum of
    distinct widths) numpy calls instead of O(total_values) Python
    iterations, with no per-element masking.
    """
    if widths is None:
        widths = uvarint_lengths(values)
    if not widths.size:
        return
    min_width = int(widths.min())
    max_width = int(widths.max())
    for width in range(min_width, max_width + 1):
        if min_width == max_width:  # uniform width: skip the class selection
            shifted = values.astype(np.uint64, copy=True)
            cursor = starts.copy()
        else:
            index = np.flatnonzero(widths == width)
            if not index.size:
                continue
            shifted = values[index]
            cursor = starts[index]
        # shift the class's values in place and truncate-cast the low 7 bits
        # into one reused uint8 buffer: no per-group uint64 temporaries
        low_bits = np.empty(len(shifted), dtype=np.uint8)
        for group in range(width):
            np.bitwise_and(shifted, _LOW7, out=low_bits, casting="unsafe")
            if group < width - 1:
                low_bits |= 0x80
            out[cursor] = low_bits
            if group < width - 1:
                shifted >>= _SEVEN
                cursor += 1


# SWAR compaction masks: squeeze the 7 payload bits of each little-endian
# byte lane of a uint64 together (8 bytes -> one 56-bit value) in 3 passes
_SWAR_M1 = np.uint64(0x7F007F007F007F00)
_SWAR_M1B = np.uint64(0x007F007F007F007F)
_SWAR_M2 = np.uint64(0x3FFF00003FFF0000)
_SWAR_M2B = np.uint64(0x00003FFF00003FFF)
_SWAR_M3 = np.uint64(0x0FFFFFFF00000000)
_SWAR_M3B = np.uint64(0x000000000FFFFFFF)
#: payload mask per byte width (widths 9/10 are handled bytewise)
_SWAR_WIDTH_MASK = np.array(
    [(1 << (7 * k)) - 1 for k in range(9)] + [0, 0], dtype=np.uint64
)
_LITTLE_ENDIAN = sys.byteorder == "little"


def _gather_uvarints_bytewise(
    buffer: np.ndarray,
    starts: np.ndarray,
    widths: np.ndarray,
    values: np.ndarray,
) -> None:
    """Per-width-class gather/shift/or decode into ``values`` (in place)."""
    min_width = int(widths.min())
    max_width = int(widths.max())
    if max_width > _MAX_UVARINT_BYTES:
        raise EncodingError("varint too long")
    for width in range(min_width, max_width + 1):
        if min_width == max_width:
            class_starts = starts
            target = values
        else:
            index = np.flatnonzero(widths == width)
            if not index.size:
                continue
            class_starts = starts[index]
            target = np.zeros(index.size, dtype=np.uint64)
        for group in range(width):
            chunk = (buffer[class_starts + group] & np.uint8(0x7F)).astype(np.uint64)
            if group == 9 and np.any(chunk > 1):
                raise EncodingError("varint overflows 64 bits")
            target |= chunk << np.uint64(7 * group)
        if min_width != max_width:
            values[index] = target


def gather_uvarints(
    buffer: np.ndarray, starts: np.ndarray, widths: np.ndarray
) -> np.ndarray:
    """Decode varints at known positions of a uint8 buffer into uint64.

    The caller supplies the start offset and byte width of every varint
    (normally found by locating continuation-bit boundaries, see
    :func:`decode_uvarints`).  On little-endian hosts each varint of width
    <= 8 is fetched as one unaligned uint64 load and its 7-bit groups are
    compacted with three SWAR mask/shift passes over the whole column; 9-
    and 10-byte varints (and big-endian hosts) take the per-byte-width-class
    gather path.
    """
    count = len(starts)
    if count == 0:
        return np.zeros(0, dtype=np.uint64)
    max_width = int(widths.max())
    if max_width > _MAX_UVARINT_BYTES:
        raise EncodingError("varint too long")
    if int(widths.min()) < 1:
        raise EncodingError("varint widths must be positive")
    if not _LITTLE_ENDIAN:
        values = np.zeros(count, dtype=np.uint64)
        _gather_uvarints_bytewise(buffer, starts, widths, values)
        return values

    # every varint is read as 8 bytes; pad the tail so the last loads stay
    # in bounds (callers with trailing slack, e.g. a file footer, avoid this)
    buf = np.ascontiguousarray(buffer)
    highest = int(starts.max())
    if highest + 8 > len(buf):
        padded = np.empty(highest + 8, dtype=np.uint8)
        padded[: len(buf)] = buf
        padded[len(buf) :] = 0
        buf = padded
    u64 = np.ndarray((len(buf) - 7,), dtype="<u8", buffer=buf.data, strides=(1,))
    x = u64[starts]
    x = ((x & _SWAR_M1) >> np.uint64(1)) | (x & _SWAR_M1B)
    x = ((x & _SWAR_M2) >> np.uint64(2)) | (x & _SWAR_M2B)
    x = ((x & _SWAR_M3) >> np.uint64(4)) | (x & _SWAR_M3B)
    x &= _SWAR_WIDTH_MASK[widths]
    values = x  # owned by the gather above; safe to patch wide slots below
    if max_width > 8:
        wide = np.flatnonzero(widths > 8)
        wide_values = np.zeros(len(wide), dtype=np.uint64)
        _gather_uvarints_bytewise(
            buffer, starts[wide], widths[wide], wide_values
        )
        values[wide] = wide_values
    return values


def decode_uvarints(
    payload: np.ndarray, count: int, terminators: np.ndarray = None
) -> np.ndarray:
    """Batch-decode ``count`` back-to-back LEB128 varints from a uint8 buffer.

    Varint boundaries are located by finding the bytes whose continuation
    bit is clear (``np.flatnonzero``); the payload must consist of exactly
    ``count`` varints with no trailing bytes.  Callers that already scanned
    the buffer can pass the terminator positions to skip the rescan.
    """
    buf = np.ascontiguousarray(payload, dtype=np.uint8)
    if terminators is None:
        terminators = np.flatnonzero(buf < _CONT)
    if len(terminators) != count:
        raise EncodingError(
            "truncated varint" if len(terminators) < count
            else "trailing bytes after varint payload"
        )
    if count == 0:
        if buf.size:
            raise EncodingError("trailing bytes after varint payload")
        return np.empty(0, dtype=np.uint64)
    if int(terminators[-1]) != buf.size - 1:
        raise EncodingError("truncated varint")
    starts = np.empty(count, dtype=np.int64)
    starts[0] = 0
    starts[1:] = terminators[:-1] + 1
    return gather_uvarints(buf, starts, terminators - starts + 1)


# --------------------------------------------------------------------------
# per-codec payload encoders
# --------------------------------------------------------------------------


def _encode_plain(values: np.ndarray) -> bytes:
    return values.tobytes()


def _decode_plain(payload: bytes, dtype: np.dtype, count: int) -> np.ndarray:
    expected = count * dtype.itemsize
    if len(payload) != expected:
        raise EncodingError(
            f"plain payload is {len(payload)} bytes, expected {expected}"
        )
    return np.frombuffer(payload, dtype=dtype).copy()


def _encode_varint(values: np.ndarray) -> bytes:
    if not np.issubdtype(values.dtype, np.integer):
        raise EncodingError("varint encoding requires an integer column")
    return encode_uvarints(_zigzag_encode(values))


def _decode_varint(payload: bytes, dtype: np.dtype, count: int) -> np.ndarray:
    decoded = decode_uvarints(np.frombuffer(payload, dtype=np.uint8), count)
    return _zigzag_decode(decoded).astype(dtype)


def _encode_varint_scalar(values: np.ndarray) -> bytes:
    """Element-at-a-time reference implementation of VARINT encode."""
    if not np.issubdtype(values.dtype, np.integer):
        raise EncodingError("varint encoding requires an integer column")
    out = bytearray()
    for value in _zigzag_encode(values).tolist():
        write_uvarint(value, out)
    return bytes(out)


def _decode_varint_scalar(payload: bytes, dtype: np.dtype, count: int) -> np.ndarray:
    """Element-at-a-time reference implementation of VARINT decode."""
    decoded = np.empty(count, dtype=np.uint64)
    offset = 0
    for i in range(count):
        raw, offset = read_uvarint(payload, offset)
        if raw > _MASK64_INT:
            raise EncodingError("varint overflows 64 bits")
        decoded[i] = raw
    if offset != len(payload):
        raise EncodingError("trailing bytes after varint payload")
    return _zigzag_decode(decoded).astype(dtype)


def _rle_runs(values: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    """(run_values int64, run_lengths int64) of a column's equal-value runs."""
    v = values.astype(np.int64, copy=False)
    change = np.flatnonzero(np.diff(v)) + 1
    starts = np.concatenate(([0], change))
    ends = np.concatenate((change, [len(v)]))
    return v[starts], ends - starts


def _encode_rle(values: np.ndarray) -> bytes:
    if not np.issubdtype(values.dtype, np.integer):
        raise EncodingError("RLE encoding requires an integer column")
    if not len(values):
        return b""
    run_values, run_lengths = _rle_runs(values)
    # interleave (zigzag(value), run) pairs and varint-encode them in one batch
    interleaved = np.empty(2 * len(run_values), dtype=np.uint64)
    interleaved[0::2] = _zigzag_encode(run_values)
    interleaved[1::2] = run_lengths.astype(np.uint64)
    return encode_uvarints(interleaved)


def _decode_rle(payload: bytes, dtype: np.dtype, count: int) -> np.ndarray:
    buf = np.frombuffer(payload, dtype=np.uint8)
    terminators = np.flatnonzero(buf < _CONT)
    num_varints = len(terminators)
    if num_varints % 2:
        raise EncodingError("truncated varint")
    decoded = decode_uvarints(buf, num_varints, terminators)
    runs = decoded[1::2].astype(np.int64)
    if np.any(runs <= 0):
        raise EncodingError("zero-length RLE run")
    # exact Python-int sum: an int64 sum could wrap on crafted run lengths
    # and slip a huge np.repeat past the count check
    total = sum(runs.tolist())
    if total > count:
        raise EncodingError("RLE runs exceed declared value count")
    if total < count:
        raise EncodingError("truncated varint")
    values = _zigzag_decode(decoded[0::2])
    return np.repeat(values, runs).astype(dtype)


def _encode_rle_scalar(values: np.ndarray) -> bytes:
    """Run-at-a-time reference implementation of RLE encode."""
    if not np.issubdtype(values.dtype, np.integer):
        raise EncodingError("RLE encoding requires an integer column")
    out = bytearray()
    if len(values):
        run_values, run_lengths = _rle_runs(values)
        for value, run in zip(run_values.tolist(), run_lengths.tolist()):
            write_uvarint(
                int(_zigzag_encode(np.array([value], dtype=np.int64))[0]), out
            )
            write_uvarint(run, out)
    return bytes(out)


def _decode_rle_scalar(payload: bytes, dtype: np.dtype, count: int) -> np.ndarray:
    """Run-at-a-time reference implementation of RLE decode."""
    out = np.empty(count, dtype=np.int64)
    offset = 0
    filled = 0
    while filled < count:
        raw, offset = read_uvarint(payload, offset)
        run, offset = read_uvarint(payload, offset)
        if raw > _MASK64_INT or run > _MASK64_INT:
            raise EncodingError("varint overflows 64 bits")
        if run == 0:
            raise EncodingError("zero-length RLE run")
        if filled + run > count:
            raise EncodingError("RLE runs exceed declared value count")
        value = int(_zigzag_decode(np.array([raw], dtype=np.uint64))[0])
        out[filled : filled + run] = value
        filled += run
    if offset != len(payload):
        raise EncodingError("trailing bytes after RLE payload")
    return out.astype(dtype)


def _encode_dictionary(values: np.ndarray) -> bytes:
    if not np.issubdtype(values.dtype, np.integer):
        raise EncodingError("dictionary encoding requires an integer column")
    uniques, indices = np.unique(values, return_inverse=True)
    if len(uniques) > np.iinfo(np.uint32).max:
        raise EncodingError("dictionary cardinality exceeds uint32 index space")
    out = bytearray()
    write_uvarint(len(uniques), out)
    out += uniques.astype(np.int64).tobytes()
    out += indices.astype(np.uint32).tobytes()
    return bytes(out)


def _decode_dictionary(payload: bytes, dtype: np.dtype, count: int) -> np.ndarray:
    cardinality, offset = read_uvarint(payload, 0)
    dict_bytes = cardinality * 8
    index_bytes = count * 4
    if len(payload) != offset + dict_bytes + index_bytes:
        raise EncodingError("dictionary payload size mismatch")
    uniques = np.frombuffer(payload, dtype=np.int64, count=cardinality, offset=offset)
    indices = np.frombuffer(
        payload, dtype=np.uint32, count=count, offset=offset + dict_bytes
    )
    if len(uniques) == 0:
        if count:
            raise EncodingError("empty dictionary with non-zero value count")
        return np.empty(0, dtype=dtype)
    if indices.size and indices.max() >= cardinality:
        raise EncodingError("dictionary index out of range")
    return uniques[indices].astype(dtype)


_ENCODERS = {
    Encoding.PLAIN: _encode_plain,
    Encoding.VARINT: _encode_varint,
    Encoding.RLE: _encode_rle,
    Encoding.DICTIONARY: _encode_dictionary,
}
_DECODERS = {
    Encoding.PLAIN: _decode_plain,
    Encoding.VARINT: _decode_varint,
    Encoding.RLE: _decode_rle,
    Encoding.DICTIONARY: _decode_dictionary,
}


# --------------------------------------------------------------------------
# public chunk API
# --------------------------------------------------------------------------


def encode_column(values: np.ndarray, encoding: Encoding) -> bytes:
    """Encode a 1-D array as a framed, CRC-protected column chunk."""
    if values.ndim != 1:
        raise EncodingError(f"column chunks are 1-D, got shape {values.shape}")
    dtype = np.dtype(values.dtype)
    if dtype not in _DTYPE_CODES:
        raise EncodingError(f"unsupported column dtype {dtype}")
    if encoding not in _ENCODERS:
        raise EncodingError(f"unknown encoding {encoding!r}")
    if encoding is not Encoding.PLAIN and not np.issubdtype(dtype, np.integer):
        raise EncodingError(f"{encoding.name} requires integers, got {dtype}")

    header = bytearray()
    header.append(int(encoding))
    header.append(_DTYPE_CODES[dtype])
    write_uvarint(len(values), header)
    payload = _ENCODERS[encoding](values)
    body = bytes(header) + payload
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return body + _CRC_STRUCT.pack(crc)


def decode_column(chunk: bytes) -> np.ndarray:
    """Decode one framed column chunk produced by :func:`encode_column`."""
    if len(chunk) < 2 + _CRC_STRUCT.size:
        raise EncodingError("chunk too short")
    body, crc_bytes = chunk[: -_CRC_STRUCT.size], chunk[-_CRC_STRUCT.size :]
    (stored_crc,) = _CRC_STRUCT.unpack(crc_bytes)
    if zlib.crc32(body) & 0xFFFFFFFF != stored_crc:
        raise EncodingError("chunk CRC mismatch (corrupt data)")
    try:
        encoding = Encoding(body[0])
    except ValueError:
        raise EncodingError(f"unknown encoding byte {body[0]}") from None
    try:
        dtype = _CODES_DTYPE[body[1]]
    except KeyError:
        raise EncodingError(f"unknown dtype code {body[1]}") from None
    count, offset = read_uvarint(body, 2)
    return _DECODERS[encoding](body[offset:], dtype, count)


def encoded_size(values: np.ndarray, encoding: Encoding) -> int:
    """Size in bytes of the encoded chunk, including framing and CRC."""
    return len(encode_column(values, encoding))


def best_encoding(values: np.ndarray) -> Encoding:
    """Pick the smallest applicable codec for a column, Parquet-style.

    Floating-point columns are always PLAIN.  Integer columns are tried
    against all codecs and the smallest encoding wins; ties favour the
    cheaper-to-decode codec (earlier enum value).
    """
    if not np.issubdtype(values.dtype, np.integer):
        return Encoding.PLAIN
    candidates = [Encoding.PLAIN, Encoding.VARINT, Encoding.RLE, Encoding.DICTIONARY]
    sizes = [(encoded_size(values, enc), int(enc)) for enc in candidates]
    sizes.sort()
    return Encoding(sizes[0][1])

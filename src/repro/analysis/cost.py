"""Cost-efficiency metric from Section V-C.

::

    Cost-efficiency = (Throughput x Duration) / (CapEx + OpEx)
    OpEx            = sum(Power x Duration x Electricity)

Throughput and Duration are identical for every design that sustains the
training job (both baseline and PreSto supply exactly the GPUs' demand), so
relative cost-efficiency reduces to the inverse of ``CapEx + OpEx`` — the
paper makes the same observation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.units import HOUR


@dataclass(frozen=True)
class CostBreakdown:
    """CapEx/OpEx of one preprocessing deployment over the duration."""

    capex: float  # dollars
    opex: float  # dollars
    power: float  # watts
    duration_hours: float

    @property
    def total(self) -> float:
        """CapEx + OpEx (dollars)."""
        return self.capex + self.opex


def opex(
    power_watts: float,
    duration_hours: float = None,
    calibration: Calibration = CALIBRATION,
) -> float:
    """Electricity cost of running ``power_watts`` for the duration."""
    if power_watts < 0:
        raise ConfigurationError("power must be non-negative")
    hours = duration_hours if duration_hours is not None else calibration.amortization_hours
    if hours < 0:
        raise ConfigurationError("duration must be non-negative")
    kwh = power_watts * hours / 1000.0
    return kwh * calibration.electricity_per_kwh


def cost_breakdown(
    capex: float,
    power_watts: float,
    duration_hours: float = None,
    calibration: Calibration = CALIBRATION,
) -> CostBreakdown:
    """Assemble the CapEx/OpEx record for one deployment."""
    hours = duration_hours if duration_hours is not None else calibration.amortization_hours
    return CostBreakdown(
        capex=capex,
        opex=opex(power_watts, hours, calibration),
        power=power_watts,
        duration_hours=hours,
    )


@dataclass(frozen=True)
class CapacityCost:
    """Cost of an *elastic* deployment: capex at peak, opex by the ledger.

    The static :class:`CostBreakdown` prices a fixed worker count over a
    fixed window.  A fleet pool instead grows and shrinks, so its opex
    follows the *measured* energy (the simulator integrates
    ``power(capacity) x dt`` step by step) while its capex is the peak
    capacity it ever had to own.  ``capacity_hours`` (worker-hours
    provisioned) is the denominator for per-capacity-hour rates.
    """

    capex: float  # dollars, priced at peak capacity
    opex: float  # dollars, electricity for the metered energy
    energy_kwh: float
    capacity_hours: float  # worker-hours provisioned over the run

    @property
    def total(self) -> float:
        """CapEx + OpEx (dollars)."""
        return self.capex + self.opex

    @property
    def per_capacity_hour(self) -> float:
        """Dollars per provisioned worker-hour (0 for an empty ledger)."""
        if self.capacity_hours <= 0:
            return 0.0
        return self.total / self.capacity_hours


def capacity_cost(
    peak_capex: float,
    energy_kwh: float,
    capacity_hours: float,
    calibration: Calibration = CALIBRATION,
) -> CapacityCost:
    """Price one pool's capacity ledger (fleet-simulation accounting)."""
    if peak_capex < 0:
        raise ConfigurationError("peak capex must be non-negative")
    if energy_kwh < 0:
        raise ConfigurationError("energy must be non-negative")
    if capacity_hours < 0:
        raise ConfigurationError("capacity hours must be non-negative")
    return CapacityCost(
        capex=peak_capex,
        opex=energy_kwh * calibration.electricity_per_kwh,
        energy_kwh=energy_kwh,
        capacity_hours=capacity_hours,
    )


def cost_efficiency(
    throughput: float,
    capex: float,
    power_watts: float,
    duration_hours: float = None,
    calibration: Calibration = CALIBRATION,
) -> float:
    """Section V-C metric: useful work per dollar.

    Units: samples processed over the amortization window per dollar of
    (CapEx + OpEx).  Only *ratios* of this metric are meaningful, matching
    the paper's normalized Figure 15(b).
    """
    if throughput < 0:
        raise ConfigurationError("throughput must be non-negative")
    breakdown = cost_breakdown(capex, power_watts, duration_hours, calibration)
    if breakdown.total <= 0:
        raise ConfigurationError("total cost must be positive")
    samples = throughput * breakdown.duration_hours * HOUR
    return samples / breakdown.total

"""The fault injector and the probe functions woven through the code.

Probe sites call :func:`fault_point` (or :func:`fault_stage` for pipeline
stages) with their point name and a small context.  With no injector
installed — the production default — a probe is a single module-global
``None`` test and an immediate return: zero allocated objects, no locks,
no I/O.  With an injector installed, the probe consults the seeded
:class:`~repro.faults.plan.FaultPlan` and either *executes* generic
actions itself (``crash`` raises ``SystemExit``, ``error`` raises
:class:`FaultError`, ``delay`` sleeps, ``hang`` blocks on an interruptible
event) or *returns* the matched rule for cooperative actions the site must
enact in kind (``torn``, ``enospc``, ``drop``, ``corrupt``).

Installation is process-global and explicit: :func:`install` /
:func:`uninstall`, or the :func:`installed` context manager (which also
releases any injected hangs on exit, so a test never leaks a sleeping
thread past its scope).  Daemons load a plan from ``repro serve --faults
PLAN.json``; ``repro chaos`` builds plans programmatically.
"""

from __future__ import annotations

import errno
import threading
from contextlib import contextmanager
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import FaultError
from repro.faults.plan import FaultPlan, FaultRule

#: the process-global injector; ``None`` means every probe is a no-op
_ACTIVE: Optional["FaultInjector"] = None

#: default bounded duration of an injected hang (seconds); long enough to
#: trip any sane watchdog, short enough to never wedge a test run
DEFAULT_HANG_S = 30.0


class FaultInjector:
    """Evaluates a :class:`FaultPlan` at probe sites and audits every fire."""

    def __init__(self, plan: FaultPlan) -> None:
        if not isinstance(plan, FaultPlan):
            raise FaultError(f"injector needs a FaultPlan, got {plan!r}")
        self.plan = plan
        self._lock = threading.Lock()
        self._counters: Dict[str, int] = {}
        self._fires: Dict[Tuple[str, str], int] = {}  # (point, action) -> n
        self._rule_fires: Dict[int, int] = {}  # id(rule) -> n, for max_fires
        self._fired: List[Dict[str, Any]] = []
        #: set to release every injected hang early (uninstall sets it)
        self._release = threading.Event()

    # -- audit ---------------------------------------------------------------

    def fired(self) -> List[Dict[str, Any]]:
        """Every fire so far: [{point, action, key}, ...] in fire order."""
        with self._lock:
            return [dict(entry) for entry in self._fired]

    def fire_counts(self) -> Dict[str, int]:
        """``point:action`` -> number of fires (the chaos report's audit)."""
        with self._lock:
            return {
                f"{point}:{action}": count
                for (point, action), count in sorted(self._fires.items())
            }

    def release_hangs(self) -> None:
        """Wake every thread currently blocked in an injected hang."""
        self._release.set()

    # -- evaluation ----------------------------------------------------------

    def _key_for(self, rule: FaultRule, point: str,
                 context: Dict[str, Any]) -> str:
        if rule.key is not None:
            if rule.key not in context:
                return self._counter_key(point)
            return str(context[rule.key])
        for name in ("job_id", "item", "seed", "worker"):
            if name in context and context[name] is not None:
                return str(context[name])
        return self._counter_key(point)

    def _counter_key(self, point: str) -> str:
        with self._lock:
            n = self._counters.get(point, 0)
            self._counters[point] = n + 1
        return f"#{n}"

    def check(self, point: str, **context: Any) -> Optional[FaultRule]:
        """The matched firing rule for this probe occurrence, or ``None``.

        Records the fire in the audit trail; the caller (or
        :func:`fault_point`) is responsible for enacting the action.
        """
        for rule in self.plan.rules_for(point):
            if not rule.matches(context):
                continue
            key = self._key_for(rule, point, context)
            if self.plan.hash01(point, key) >= rule.rate:
                continue
            with self._lock:
                # max_fires caps THIS rule's firings: two rules on one
                # point each get their own budget (keyed by rule identity —
                # the plan's rule objects are stable for the process)
                if rule.max_fires is not None:
                    if self._rule_fires.get(id(rule), 0) >= rule.max_fires:
                        continue
                self._rule_fires[id(rule)] = (
                    self._rule_fires.get(id(rule), 0) + 1
                )
                pair = (point, rule.action)
                self._fires[pair] = self._fires.get(pair, 0) + 1
                self._fired.append(
                    {"point": point, "action": rule.action, "key": key}
                )
            return rule
        return None

    def execute(self, rule: FaultRule, point: str) -> Optional[FaultRule]:
        """Enact a generic action; return cooperative rules to the site."""
        if rule.action == "crash":
            raise SystemExit(f"injected fault: worker crash at {point}")
        if rule.action == "error":
            raise FaultError(f"injected fault: transient error at {point}")
        if rule.action == "enospc":
            raise OSError(
                errno.ENOSPC, f"injected fault: disk full at {point}"
            )
        if rule.action == "delay":
            self._release.wait(rule.delay_s if rule.delay_s is not None else 0.05)
            return None
        if rule.action == "hang":
            self._release.wait(
                rule.delay_s if rule.delay_s is not None else DEFAULT_HANG_S
            )
            return None
        # torn / drop / corrupt / down / slow / burst: cooperative — the
        # probe site enacts the misbehavior in kind (the fleet simulator
        # does so in simulated time, never wall-clock)
        return rule


# --------------------------------------------------------------------------
# installation
# --------------------------------------------------------------------------


def install(injector: FaultInjector) -> FaultInjector:
    """Make ``injector`` the process-global injector (probes go live)."""
    global _ACTIVE
    if not isinstance(injector, FaultInjector):
        raise FaultError(f"install needs a FaultInjector, got {injector!r}")
    _ACTIVE = injector
    return injector


def uninstall() -> None:
    """Disable injection and release any threads stuck in injected hangs."""
    global _ACTIVE
    injector, _ACTIVE = _ACTIVE, None
    if injector is not None:
        injector.release_hangs()


def active_injector() -> Optional[FaultInjector]:
    """The installed injector, or ``None`` (probes disabled)."""
    return _ACTIVE


@contextmanager
def installed(injector: FaultInjector) -> Iterator[FaultInjector]:
    """Scope-bound installation: uninstalls (and releases hangs) on exit."""
    install(injector)
    try:
        yield injector
    finally:
        uninstall()


# --------------------------------------------------------------------------
# the probes (call sites across serve / exec / dataio)
# --------------------------------------------------------------------------


def fault_point(point: str, **context: Any) -> Optional[FaultRule]:
    """The generic probe: no-op unless an injector is installed.

    Generic actions (crash/error/enospc raise; delay/hang block) are
    executed here; cooperative actions (``torn``, ``drop``, ``corrupt``)
    are returned for the site to enact.  Disabled cost: one global read
    and one ``None`` test.
    """
    injector = _ACTIVE
    if injector is None:
        return None
    rule = injector.check(point, **context)
    if rule is None:
        return None
    return injector.execute(rule, point)


def fault_stage(stage: str, **context: Any) -> None:
    """Stage-start probe: checks the three stage fault classes in order.

    ``hung-stage`` blocks (bounded, interruptible), ``slow-stage`` sleeps
    ``delay_s``, ``stage-error`` raises a retryable :class:`FaultError`.
    Sites pass a stable identity (``seed`` or ``job_id``) so firing is
    per-job deterministic.
    """
    if _ACTIVE is None:
        return
    fault_point("hung-stage", stage=stage, **context)
    fault_point("slow-stage", stage=stage, **context)
    fault_point("stage-error", stage=stage, **context)

"""Benchmark: regenerate the paper's Table1 via repro.experiments.table1_models."""

from conftest import assert_claims, report

from repro.experiments import table1_models


def test_table1(benchmark):
    """Time the table1 experiment and verify its paper claims."""
    result = benchmark(table1_models.run)
    report(result)
    assert_claims(result)

"""Declarative sharded-preprocessing jobs — the data-plane Scenario.

A :class:`PreprocessJob` is to the functional data plane what
:class:`~repro.api.scenario.Scenario` is to the simulation layer: a frozen,
validated, dict-round-trippable record naming a Table I model and a
deployment shape (rows, shards, processes).  ``run()`` generates the raw
table, shards it with :class:`~repro.exec.ShardExecutor`, and returns a
:class:`PreprocessRunResult` with the mini-batches, work counters, and a
content digest — the digest makes the executor's central guarantee (a
sharded parallel run is byte-identical to the serial pipeline) checkable
from config files, tests, and the ``repro preprocess`` CLI alike.
"""

from __future__ import annotations

import dataclasses
import hashlib
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import ConfigurationError
from repro.exec.executor import (
    ShardExecutor,
    ShardResult,
    ShardRunStats,
)
from repro.features.minibatch import MiniBatch
from repro.features.specs import ModelSpec, get_model
from repro.features.synthetic import SyntheticTableGenerator
from repro.ops.pipeline import DEFAULT_HASH_SEED, PreprocessingPipeline


def minibatch_digest(batches: List[MiniBatch]) -> str:
    """SHA-256 over every tensor of every batch, in batch order.

    Stable across processes and shard counts if and only if the batches
    are bit-identical — the "serial == sharded" acceptance check.
    """
    digest = hashlib.sha256()
    for batch in batches:
        digest.update(batch.dense.tobytes())
        digest.update(batch.labels.tobytes())
        digest.update(batch.sparse.lengths.tobytes())
        digest.update(batch.sparse.values.tobytes())
        digest.update(",".join(batch.sparse.keys).encode())
    return digest.hexdigest()


@dataclass
class PreprocessRunResult:
    """Outcome of one :class:`PreprocessJob` run."""

    job: "PreprocessJob"
    results: List[ShardResult]
    stats: ShardRunStats
    digest: str

    @property
    def batches(self) -> List[MiniBatch]:
        """The ordered train-ready mini-batches."""
        return [result.batch for result in self.results]

    def summary(self) -> str:
        """One-paragraph human-readable account."""
        stats = self.stats
        return (
            f"preprocessed {stats.num_rows} rows of {self.job.model} into "
            f"{stats.num_shards} mini-batch(es): "
            f"{stats.transform_elements} transform elements, "
            f"{stats.bytes_read}/{stats.file_bytes} bytes extracted, "
            f"digest {self.digest[:16]}..."
        )


@dataclass(frozen=True)
class PreprocessJob:
    """One declarative sharded preprocessing run over synthetic raw data."""

    model: str
    num_rows: int = 8192
    num_shards: int = 1
    processes: Optional[int] = None
    seed: int = 0
    hash_seed: int = DEFAULT_HASH_SEED

    def __post_init__(self) -> None:
        spec = get_model(self.model)  # raises ConfigurationError when unknown
        object.__setattr__(self, "model", spec.name)
        for name in ("num_rows", "num_shards"):
            value = getattr(self, name)
            if not isinstance(value, int) or value <= 0:
                raise ConfigurationError(
                    f"{name} must be a positive int, got {value!r}"
                )
        if self.processes is not None and (
            not isinstance(self.processes, int) or self.processes <= 0
        ):
            raise ConfigurationError(
                f"processes must be a positive int, got {self.processes!r}"
            )
        if not isinstance(self.seed, int) or self.seed < 0:
            raise ConfigurationError(
                f"seed must be a non-negative int, got {self.seed!r}"
            )

    # -- construction helpers ----------------------------------------------

    @property
    def label(self) -> str:
        """Short display name, e.g. ``RM1/32768rows/4shards``."""
        return f"{self.model}/{self.num_rows}rows/{self.num_shards}shards"

    def spec(self) -> ModelSpec:
        """The resolved Table I model spec."""
        return get_model(self.model)

    def build_pipeline(self) -> PreprocessingPipeline:
        """The prepared (cached-kernel) pipeline this job runs."""
        return PreprocessingPipeline(
            self.spec(), hash_seed=self.hash_seed, generator_seed=self.seed
        )

    def build_executor(self) -> ShardExecutor:
        """The shard executor sized for this job."""
        return ShardExecutor.for_shards(
            self.build_pipeline(),
            num_shards=self.num_shards,
            num_rows=self.num_rows,
            processes=self.processes,
        )

    # -- execution ----------------------------------------------------------

    def run(self, parallel: bool = True) -> PreprocessRunResult:
        """Generate the raw table, shard it, and preprocess every shard."""
        generator = SyntheticTableGenerator(self.spec(), seed=self.seed)
        data = generator.generate(self.num_rows)
        results = self.build_executor().run(data, parallel=parallel)
        return PreprocessRunResult(
            job=self,
            results=results,
            stats=ShardRunStats.from_results(results),
            digest=minibatch_digest([r.batch for r in results]),
        )

    # -- serialization -----------------------------------------------------

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form for config files (round-trips via from_dict)."""
        return {
            "model": self.model,
            "num_rows": self.num_rows,
            "num_shards": self.num_shards,
            "processes": self.processes,
            "seed": self.seed,
            "hash_seed": self.hash_seed,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PreprocessJob":
        """Rebuild a job from :meth:`to_dict` output (strict keys)."""
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ConfigurationError(
                f"unknown preprocess job keys {sorted(unknown)}; "
                f"expected {sorted(known)}"
            )
        return cls(**dict(data))

"""Kernel-level CPU characterization model behind Figure 6.

Figure 6 reports, for Bucketize / SigridHash / Log on RM1 and RM5: CPU
utilization, memory-bandwidth utilization (against the node's 281.6 GB/s),
and LLC hit rate.  Those are microarchitectural quantities, so this model
works at kernel granularity (cycles and cache lines), separate from the
effective end-to-end costs in :mod:`repro.hardware.calibration`:

* every op *streams* its input/output columns (sequential misses, one per
  cache line) and keeps a small *working set* (e.g. Bucketize's bucket
  boundary array) that is LLC-resident when it fits — the paper's
  explanation for the 85% LLC hit rate and <15% bandwidth utilization;
* per-column fixed work (dispatch, materialization) dilutes small columns,
  which is why RM1 (8K-element columns) drives less bandwidth than RM5.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.features.specs import ModelSpec
from repro.ops.pipeline import OpCounts

#: Xeon Gold 6242 node: 2 sockets x 16 cores @ 2.8 GHz, 22 MB LLC/socket,
#: 281.6 GB/s aggregate DRAM bandwidth (the figure's normalization base).
CORE_FREQ_HZ = 2.8e9
CORES_PER_NODE = 32
LLC_BYTES_PER_SOCKET = 22 * 1024 * 1024
NODE_MEM_BW = 281.6e9
CACHE_LINE = 64


@dataclass(frozen=True)
class OperatorProfile:
    """Kernel-level traits of one transform op."""

    name: str
    cycles_per_element: float  # datapath work per element
    stream_bytes_per_element: float  # input+output streaming traffic
    cache_accesses_per_element: float  # working-set probes per element
    per_column_overhead_cycles: float  # dispatch/materialization per column

    def working_set_bytes(self, spec: ModelSpec) -> float:
        """Resident bytes the op repeatedly touches."""
        raise NotImplementedError


class _BucketizeProfile(OperatorProfile):
    def __init__(self) -> None:
        super().__init__(
            name="Bucketize",
            cycles_per_element=0.0,  # derived from the search depth below
            stream_bytes_per_element=12.0,  # read fp32, write int64
            cache_accesses_per_element=0.0,  # derived from search depth
            per_column_overhead_cycles=30_000.0,
        )

    def working_set_bytes(self, spec: ModelSpec) -> float:
        return spec.bucket_size * 8.0  # the boundary array

    def search_depth(self, spec: ModelSpec) -> float:
        return math.ceil(math.log2(spec.bucket_size + 1))

    def kernel_cycles(self, spec: ModelSpec) -> float:
        # ~5 cycles per search level: compare + branchy pointer chase
        return 10.0 + 5.0 * self.search_depth(spec)

    def cache_accesses(self, spec: ModelSpec) -> float:
        return self.search_depth(spec)


class _SigridHashProfile(OperatorProfile):
    def __init__(self) -> None:
        super().__init__(
            name="SigridHash",
            cycles_per_element=36.0,  # three 64-bit multiplies + shifts + mod
            stream_bytes_per_element=16.0,  # read int64, write int64
            cache_accesses_per_element=1.0,  # seed/constant table
            per_column_overhead_cycles=30_000.0,
        )

    def working_set_bytes(self, spec: ModelSpec) -> float:
        return 4096.0  # constants + jagged offset scratch


class _LogProfile(OperatorProfile):
    def __init__(self) -> None:
        super().__init__(
            name="Log",
            cycles_per_element=18.0,  # log1p polynomial, partly vectorized
            stream_bytes_per_element=8.0,  # read fp32, write fp32
            cache_accesses_per_element=1.0,
            per_column_overhead_cycles=30_000.0,
        )

    def working_set_bytes(self, spec: ModelSpec) -> float:
        return 2048.0


OPERATOR_PROFILES: Dict[str, OperatorProfile] = {
    "bucketize": _BucketizeProfile(),
    "sigridhash": _SigridHashProfile(),
    "log": _LogProfile(),
}


@dataclass(frozen=True)
class UtilizationSample:
    """One bar group of Figure 6."""

    op: str
    model: str
    cpu_utilization: float  # fraction of core issue capacity used
    memory_bw_utilization: float  # fraction of 281.6 GB/s
    llc_hit_rate: float  # fraction of cache accesses hitting on-chip


class CacheModel:
    """Derive Figure 6's utilization metrics for one (op, model) pair."""

    def __init__(self, active_cores: int = CORES_PER_NODE) -> None:
        if active_cores <= 0 or active_cores > CORES_PER_NODE:
            raise ValueError("active_cores must be in [1, 32]")
        self.active_cores = active_cores

    def _elements_per_column(self, op: str, spec: ModelSpec) -> float:
        counts = OpCounts.expected_for(spec)
        if op == "bucketize":
            columns = max(spec.num_generated_sparse, 1)
            return counts.bucketize_elements / columns
        if op == "sigridhash":
            columns = max(spec.num_sparse, 1)
            return counts.hash_elements / columns
        columns = max(spec.num_dense, 1)
        return counts.log_elements / columns

    def sample(self, op: str, spec: ModelSpec) -> UtilizationSample:
        """Figure 6 metrics for one op on one model."""
        if op not in OPERATOR_PROFILES:
            raise ValueError(f"unknown op {op!r}")
        profile = OPERATOR_PROFILES[op]
        elements = self._elements_per_column(op, spec)

        if op == "bucketize":
            kernel_cycles = profile.kernel_cycles(spec)  # type: ignore[attr-defined]
            probes = profile.cache_accesses(spec)  # type: ignore[attr-defined]
        else:
            kernel_cycles = profile.cycles_per_element
            probes = profile.cache_accesses_per_element

        # effective cycles include the per-column dispatch overhead
        total_cycles = elements * kernel_cycles + profile.per_column_overhead_cycles
        cycles_per_element = total_cycles / elements

        # CPU utilization: datapath cycles dominate; dispatch stalls shave it
        cpu_util = min(
            (elements * kernel_cycles) / total_cycles * 0.99 + 0.04, 1.0
        )

        # memory bandwidth: streaming bytes over the effective element time
        bytes_per_s_per_core = (
            profile.stream_bytes_per_element / (cycles_per_element / CORE_FREQ_HZ)
        )
        node_bw = bytes_per_s_per_core * self.active_cores
        mem_util = min(node_bw / NODE_MEM_BW, 1.0)

        # LLC hit rate: working-set probes hit when resident; streaming
        # accesses hit for every element sharing a cache line with the last.
        ws = profile.working_set_bytes(spec)
        resident = ws * self.active_cores / 2 <= LLC_BYTES_PER_SOCKET
        ws_hit = 0.97 if resident else 0.35
        elem_bytes = profile.stream_bytes_per_element
        stream_hit = max(1.0 - elem_bytes / CACHE_LINE, 0.0)
        stream_accesses = 2.0  # one read + one write access per element
        total_accesses = probes + stream_accesses
        hit_rate = (probes * ws_hit + stream_accesses * stream_hit) / total_accesses

        return UtilizationSample(
            op=profile.name,
            model=spec.name,
            cpu_utilization=cpu_util,
            memory_bw_utilization=mem_util,
            llc_hit_rate=hit_rate,
        )

"""Tests for the calibration constants, including validation of the
analytic byte model against the real columnar writer."""

import pytest

from repro.dataio.columnar import write_table
from repro.features.specs import all_models, get_model
from repro.features.synthetic import SyntheticTableGenerator
from repro.hardware.calibration import CALIBRATION, Calibration


class TestByteModel:
    @pytest.mark.parametrize("name", ["RM1", "RM2"])
    def test_encoded_bytes_match_real_writer(self, name):
        """The analytic encoded-bytes model should track the functional
        writer within 25% (it drives every Extract/ingress cost)."""
        spec = get_model(name)
        rows = 512
        data = SyntheticTableGenerator(spec, seed=0).generate(rows)
        buf = write_table(spec.schema(), data, row_group_size=rows)
        real_per_sample = len(buf) / rows
        model_per_sample = CALIBRATION.encoded_bytes_per_sample(spec)
        assert model_per_sample == pytest.approx(real_per_sample, rel=0.25)

    def test_batch_bytes_scale_with_rows(self):
        spec = get_model("RM5")
        assert CALIBRATION.encoded_batch_bytes(spec, 100) == pytest.approx(
            100 * CALIBRATION.encoded_bytes_per_sample(spec)
        )

    def test_train_ready_bytes(self):
        spec = get_model("RM5")
        per_batch = CALIBRATION.train_ready_batch_bytes(spec)
        assert per_batch == spec.train_ready_bytes_per_sample() * spec.batch_size

    def test_bigger_models_bigger_bytes(self):
        sizes = [CALIBRATION.encoded_bytes_per_sample(s) for s in all_models()]
        assert sizes[0] < sizes[1]  # RM1 << RM2
        assert sizes[1] == sizes[4]  # RM2-5 share raw schema size


class TestDerivedHelpers:
    def test_accel_element_rate(self):
        assert CALIBRATION.accel_element_rate(2) == pytest.approx(
            2 * CALIBRATION.accelerator_clock_hz
        )

    def test_cpu_core_shares(self):
        assert CALIBRATION.cpu_core_power == pytest.approx(350.0 / 32)
        assert CALIBRATION.cpu_core_price == pytest.approx(12_000.0 / 32)

    def test_amortization_hours(self):
        assert CALIBRATION.amortization_hours == pytest.approx(3 * 365 * 24)

    def test_smartssd_within_nvme_envelope(self):
        assert CALIBRATION.smartssd_tdp <= 25.0
        assert CALIBRATION.smartssd_active_power <= CALIBRATION.smartssd_tdp

    def test_custom_calibration_is_independent(self):
        custom = Calibration(cpu_hash_per_element=1e-6)
        assert custom.cpu_hash_per_element != CALIBRATION.cpu_hash_per_element
        assert CALIBRATION.cpu_hash_per_element == 190e-9

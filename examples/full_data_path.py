"""The complete Figure 1 data path, end to end and fully functional.

Walks every stage the paper describes, on real (small) data:

1. **data generation** — simulated inference servers log impressions and
   clicks through the logging engine; the streaming engine filters bots and
   labels impressions by click attribution; examples land in the warehouse;
2. **data storage** — the warehouse table is sharded into per-mini-batch
   columnar partitions placed across SmartSSDs;
3. **data preprocessing** — an epoch data loader preprocesses every
   partition *in storage* (each device transforms only its own partitions);
4. **model training** — the mini-batches feed the DES train manager and the
   run reports the emergent GPU utilization.

Run:  python examples/full_data_path.py
"""

from repro import get_model
from repro.core.dataloader import StorageDataLoader
from repro.core.endtoend import EndToEndSimulation
from repro.core.isp_worker import IspPreprocessingWorker
from repro.dataio.partition import RowPartitioner
from repro.features.ingestion import run_ingestion
from repro.storage.cluster import DistributedStorage
from repro.storage.smartssd import SmartSsd
from repro.units import pretty_bytes

ROWS_PER_PARTITION = 128
NUM_IMPRESSIONS = 1200


def main() -> None:
    spec = get_model("RM1")

    # 1. data generation ---------------------------------------------------
    table, stats = run_ingestion(spec, num_impressions=NUM_IMPRESSIONS, seed=3)
    print("Stage 1 — data generation:")
    print(f"  logged {stats['impressions']} impressions, {stats['clicks']} clicks")
    print(f"  filtered {stats['dropped_bots']} bot events")
    print(f"  labeled {stats['rows']} examples "
          f"({stats['positives']} positives, "
          f"CTR {stats['positives'] / stats['rows']:.1%})")

    # 2. data storage -------------------------------------------------------
    partitioner = RowPartitioner(spec.schema(), rows_per_partition=ROWS_PER_PARTITION)
    partitions = partitioner.partition_all(table)
    devices = [SmartSsd(f"smartssd-{i}") for i in range(3)]
    storage = DistributedStorage(devices)
    storage.store_partitions("clicklog", partitions)
    print("\nStage 2 — data storage:")
    print(f"  {len(partitions)} columnar partitions "
          f"({pretty_bytes(storage.total_bytes())}) over {len(devices)} SmartSSDs")

    # 3. in-storage preprocessing --------------------------------------------
    loader = StorageDataLoader(
        spec, storage, "clicklog", num_partitions=len(partitions), seed=1
    )
    batches = list(loader.epoch())
    epoch = loader.last_epoch_stats
    print("\nStage 3 — in-storage preprocessing (one epoch):")
    print(f"  {epoch.batches} mini-batches, {epoch.samples} samples, "
          f"{pretty_bytes(epoch.bytes_read)} read")
    for device, count in sorted(epoch.batches_per_device.items()):
        print(f"  {device}: {count} batches preprocessed locally")
    sample = batches[0]
    print(f"  each batch: dense {sample.dense.shape}, "
          f"{sample.sparse.num_keys} embedding-index features")

    # 4. training (timing via the DES pipeline at full scale) ---------------
    sim = EndToEndSimulation(
        spec, lambda: IspPreprocessingWorker(spec), num_gpus=1
    )
    run = sim.run(num_batches=100, provision_to_demand=True)
    print("\nStage 4 — training pipeline (simulated at full batch size):")
    print(f"  {run.num_workers} SmartSSD worker(s) sustained "
          f"{run.training_throughput:,.0f} samples/s at "
          f"{run.steady_state_utilization:.0%} steady-state GPU utilization")


if __name__ == "__main__":
    main()

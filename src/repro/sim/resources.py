"""Resource primitives for the discrete-event engine.

* :class:`Server` — an FCFS resource with ``capacity`` parallel slots and a
  per-request service time; models CPU cores, accelerator engines, NICs.
* :class:`Store`  — a bounded producer/consumer queue; models the train
  manager's mini-batch input queue (Figure 9) and any staging buffer.

Both expose *yieldable request objects* implementing the engine's
``_subscribe`` protocol.
"""

from __future__ import annotations

import collections
from typing import Any, Deque, Optional, Tuple

from repro.errors import SimulationError
from repro.sim.engine import Engine, Process


class _ServerRequest:
    """Yieldable: occupy one slot of a Server for ``service_time`` seconds."""

    __slots__ = ("server", "service_time")

    def __init__(self, server: "Server", service_time: float) -> None:
        if service_time < 0:
            raise SimulationError("service_time must be non-negative")
        self.server = server
        self.service_time = service_time

    def _subscribe(self, engine: Engine, process: Process) -> None:
        self.server._enqueue(engine, process, self.service_time)


class Server:
    """FCFS multi-slot resource.

    Statistics: ``busy_time`` integrates slot-seconds of service, so
    utilization over a run of length T is ``busy_time / (capacity * T)``.
    """

    def __init__(self, name: str, capacity: int = 1) -> None:
        if capacity <= 0:
            raise SimulationError("server capacity must be positive")
        self.name = name
        self.capacity = capacity
        self.in_service = 0
        self.busy_time = 0.0
        self.completed = 0
        self._waiting: Deque[Tuple[Process, float]] = collections.deque()

    def request(self, service_time: float) -> _ServerRequest:
        """Build a yieldable request for ``service_time`` seconds of service."""
        return _ServerRequest(self, service_time)

    def _enqueue(self, engine: Engine, process: Process, service_time: float) -> None:
        self._waiting.append((process, service_time))
        self._dispatch(engine)

    def _dispatch(self, engine: Engine) -> None:
        while self._waiting and self.in_service < self.capacity:
            process, service_time = self._waiting.popleft()
            self.in_service += 1
            self.busy_time += service_time

            def _finish(p: Process = process, st: float = service_time) -> None:
                self.in_service -= 1
                self.completed += 1
                engine.resume(p, st)
                self._dispatch(engine)

            engine.schedule(service_time, _finish)

    def utilization(self, elapsed: float) -> float:
        """Mean slot utilization over ``elapsed`` simulated seconds."""
        if elapsed <= 0:
            return 0.0
        return min(self.busy_time / (self.capacity * elapsed), 1.0)


class _StorePut:
    __slots__ = ("store", "item")

    def __init__(self, store: "Store", item: Any) -> None:
        self.store = store
        self.item = item

    def _subscribe(self, engine: Engine, process: Process) -> None:
        self.store._put(engine, process, self.item)


class _StoreGet:
    __slots__ = ("store",)

    def __init__(self, store: "Store") -> None:
        self.store = store

    def _subscribe(self, engine: Engine, process: Process) -> None:
        self.store._get(engine, process)


class Store:
    """Bounded FIFO queue with blocking put/get.

    ``capacity=None`` means unbounded.  Tracks totals plus a time-weighted
    occupancy integral for average-depth statistics.
    """

    def __init__(self, name: str, capacity: Optional[int] = None) -> None:
        if capacity is not None and capacity <= 0:
            raise SimulationError("store capacity must be positive or None")
        self.name = name
        self.capacity = capacity
        self.items: Deque[Any] = collections.deque()
        self.total_put = 0
        self.total_got = 0
        self._blocked_puts: Deque[Tuple[Process, Any]] = collections.deque()
        self._blocked_gets: Deque[Process] = collections.deque()
        self._occupancy_integral = 0.0
        self._last_change = 0.0

    # -- yieldable API -----------------------------------------------------

    def put(self, item: Any) -> _StorePut:
        """Yieldable: enqueue ``item``, blocking while the store is full."""
        return _StorePut(self, item)

    def get(self) -> _StoreGet:
        """Yieldable: dequeue the oldest item, blocking while empty."""
        return _StoreGet(self)

    # -- internals -----------------------------------------------------------

    def _account(self, engine: Engine) -> None:
        self._occupancy_integral += len(self.items) * (engine.now - self._last_change)
        self._last_change = engine.now

    def _put(self, engine: Engine, process: Process, item: Any) -> None:
        if self.capacity is not None and len(self.items) >= self.capacity:
            self._blocked_puts.append((process, item))
            return
        self._account(engine)
        self.items.append(item)
        self.total_put += 1
        engine.resume(process, None)
        self._drain_gets(engine)

    def _get(self, engine: Engine, process: Process) -> None:
        if not self.items:
            self._blocked_gets.append(process)
            return
        self._account(engine)
        item = self.items.popleft()
        self.total_got += 1
        engine.resume(process, item)
        self._drain_puts(engine)

    def _drain_gets(self, engine: Engine) -> None:
        while self._blocked_gets and self.items:
            self._account(engine)
            waiter = self._blocked_gets.popleft()
            item = self.items.popleft()
            self.total_got += 1
            engine.resume(waiter, item)
            self._drain_puts(engine)

    def _drain_puts(self, engine: Engine) -> None:
        while self._blocked_puts and (
            self.capacity is None or len(self.items) < self.capacity
        ):
            self._account(engine)
            producer, item = self._blocked_puts.popleft()
            self.items.append(item)
            self.total_put += 1
            engine.resume(producer, None)
            self._drain_gets(engine)

    # -- stats -----------------------------------------------------------------

    def mean_depth(self, engine: Engine) -> float:
        """Time-averaged queue depth up to ``engine.now``."""
        if engine.now <= 0:
            return float(len(self.items))
        integral = self._occupancy_integral + len(self.items) * (
            engine.now - self._last_change
        )
        return integral / engine.now

    def __len__(self) -> int:
        return len(self.items)

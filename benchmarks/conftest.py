"""Shared helpers for the benchmark harness.

Every benchmark regenerates one paper table/figure, prints the same
rows/series the paper reports, and asserts the shape claims hold.  Run with

    pytest benchmarks/ --benchmark-only -s

to see the rendered tables alongside the timings.
"""

from __future__ import annotations


def report(result) -> None:
    """Print a rendered experiment result (visible with -s)."""
    print()
    print(result.render())


def assert_claims(result) -> None:
    """Fail the benchmark if any paper claim drifted out of tolerance."""
    claims = getattr(result, "claims", None)
    if claims is None:
        return
    failing = [c for c in claims() if not c.holds]
    assert not failing, [c.render() for c in failing]

"""Tests for the ablation/sensitivity experiments."""

import pytest

from repro.experiments import (
    abl_batch_size,
    abl_double_buffering,
    abl_lane_sweep,
    abl_multijob,
    abl_network_sweep,
    abl_row_vs_columnar,
)


class TestRowVsColumnar:
    @pytest.fixture(scope="class")
    def result(self):
        return abl_row_vs_columnar.run()

    def test_claims_hold(self, result):
        assert all(c.holds for c in result.claims()), [
            c.render() for c in result.claims() if not c.holds
        ]

    def test_columnar_monotone_in_subset(self, result):
        assert all(
            a > b for a, b in zip(result.columnar_bytes, result.columnar_bytes[1:])
        )

    def test_row_bytes_constant(self, result):
        assert len(set(result.row_bytes)) == 1

    def test_overfetch_grows_as_subset_shrinks(self, result):
        factors = [result.overfetch_factor(i) for i in range(len(result.fractions))]
        assert all(b > a for a, b in zip(factors, factors[1:]))

    def test_render(self, result):
        assert "overfetch" in result.render()


class TestDoubleBuffering:
    @pytest.fixture(scope="class")
    def result(self):
        return abl_double_buffering.run()

    def test_claims_hold(self, result):
        assert all(c.holds for c in result.claims())

    def test_pipelining_always_helps(self, result):
        for model in result.pipelined_throughput:
            assert result.gain(model) > 1.5

    def test_serial_needs_more_units(self, result):
        for model in result.pipelined_units:
            assert result.serial_units[model] > result.pipelined_units[model]


class TestLaneSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return abl_lane_sweep.run()

    def test_claims_hold(self, result):
        assert all(c.holds for c in result.claims())

    def test_transform_time_halves_per_scale(self, result):
        for before, after in zip(result.transform_ms, result.transform_ms[1:]):
            assert after == pytest.approx(before / 2, rel=0.01)

    def test_big_scales_do_not_fit(self, result):
        assert result.fits_smartssd[0]
        assert not result.fits_smartssd[-1]

    def test_throughput_saturates(self, result):
        assert max(result.throughput) / min(result.throughput) < 1.05


class TestNetworkSweep:
    @pytest.fixture(scope="class")
    def result(self):
        return abl_network_sweep.run()

    def test_claims_hold(self, result):
        assert all(c.holds for c in result.claims())

    def test_slow_link_hurts_presto_more(self, result):
        """At 1 GbE PreSto's egress throttles its throughput."""
        i1 = result.links.index(1.0)
        i10 = result.links.index(10.0)
        assert result.presto_throughput[i1] < result.presto_throughput[i10] / 2

    def test_read_share_shrinks_with_bandwidth(self, result):
        shares = result.disagg_read_share
        assert all(a > b for a, b in zip(shares, shares[1:]))


class TestBatchSize:
    @pytest.fixture(scope="class")
    def result(self):
        return abl_batch_size.run()

    def test_claims_hold(self, result):
        assert all(c.holds for c in result.claims())

    def test_presto_cost_monotone_decreasing(self, result):
        costs = result.presto_us_per_sample
        assert all(a > b for a, b in zip(costs, costs[1:]))

    def test_speedup_monotone_increasing(self, result):
        speedups = [result.speedup(i) for i in range(len(result.batch_sizes))]
        assert all(b > a for a, b in zip(speedups, speedups[1:]))


class TestMultiJob:
    @pytest.fixture(scope="class")
    def result(self):
        return abl_multijob.run()

    def test_claims_hold(self, result):
        assert all(c.holds for c in result.claims())

    def test_presto_pool_far_smaller(self, result):
        assert result.presto_pool * 10 < result.disagg_pool

    def test_custom_mix(self):
        small = abl_multijob.run(mix=(("RM1", 1), ("RM5", 1)))
        assert small.num_jobs == 2
        assert small.presto_pool == 3 + 9


class TestNetworkContention:
    @pytest.fixture(scope="class")
    def result(self):
        from repro.experiments import abl_network_contention

        return abl_network_contention.run()

    def test_claims_hold(self, result):
        assert all(c.holds for c in result.claims())

    def test_presto_always_moves_fewer_total_bytes(self, result):
        for model in result.disagg_bytes_per_sample:
            assert result.traffic_reduction(model) > 1.0

    def test_rm1_nuance_tensors_exceed_compressed_raw(self, result):
        """For RM1 the train-ready tensors are *larger* than the varint-
        compressed raw data, so PreSto's storage-NIC egress benefit only
        materializes on production models — an honest model finding."""
        assert result.nic_headroom("RM1") < 1.0
        for model in ("RM2", "RM3", "RM4", "RM5"):
            assert result.nic_headroom(model) > 1.4

    def test_render(self, result):
        assert "jobs/NIC" in result.render()

"""Tests for the structured run-telemetry tier (repro.telemetry):

* ``TimingEvent`` validation and dict round trips;
* the three extractors — batch journal, serve job index, bench report —
  including label fallback for pre-label journals, cached stamps, stage
  rollups, and loud errors on missing/malformed sources;
* ``summarize_events`` aggregation (best/mean/count, direction-aware,
  cached and non-ok filtering);
* ``TrendStore`` record/load round trips, byte-stable files, run-id
  hygiene, and best-of-N baseline selection;
* ``compare_summaries`` threshold/noise logic — regression vs
  improvement vs within-band, direction awareness, the wall-clock noise
  floor, new/missing classification scoped to present sources;
* the ``repro trend`` CLI surface (record/compare/report), including the
  acceptance path: an injected 3x slowdown in one experiment's stage is
  detected and *named* in non-zero-exit output, and ``--json`` output is
  byte-stable across invocations.
"""

import json

import pytest

from repro.api import PreprocessJob
from repro.batch import BatchJournal, BatchOutcome, BatchPolicy
from repro.cli import main
from repro.errors import TelemetryError
from repro.serve.records import JobLogIndex, JobRecord, StageEvent
from repro.telemetry import (
    DEFAULT_THRESHOLDS,
    JOB_STAGE,
    TASK_STAGE,
    MetricSample,
    RunSummary,
    TimingEvent,
    TrendStore,
    compare_summaries,
    events_from_batch_journal,
    events_from_bench_report,
    events_from_job_index,
    higher_is_better,
    render_history,
    render_markdown,
    summarize_events,
    threshold_for,
)


def make_event(**overrides):
    base = dict(source="batch", run_id="run-1", task="fig11",
                stage=TASK_STAGE, outcome="ok", elapsed_s=0.5, attempts=1)
    base.update(overrides)
    return TimingEvent(**base)


class TestTimingEvent:
    def test_round_trip(self):
        event = make_event(metrics={"mb_per_s": 12.5}, at=100.0)
        assert TimingEvent.from_dict(event.to_dict()) == event

    def test_key_and_metric_values(self):
        event = make_event(metrics={"ns_per_element": 7.0})
        assert event.key == "batch/fig11/task"
        assert event.metric_values() == {
            "elapsed_s": 0.5, "ns_per_element": 7.0
        }

    def test_untimed_event_has_no_elapsed_metric(self):
        event = make_event(elapsed_s=None)
        assert event.metric_values() == {}

    def test_elapsed_coerced_to_float(self):
        assert isinstance(make_event(elapsed_s=2).elapsed_s, float)

    @pytest.mark.parametrize("overrides", [
        {"source": "nope"},
        {"run_id": ""},
        {"task": "  "},
        {"stage": ""},
        {"outcome": "exploded"},
        {"elapsed_s": -1.0},
        {"elapsed_s": True},
        {"attempts": -1},
        {"metrics": {"": 1.0}},
        {"metrics": {"x": "fast"}},
    ])
    def test_rejects_bad_fields(self, overrides):
        with pytest.raises(TelemetryError):
            make_event(**overrides)

    def test_from_dict_rejects_unknown_keys(self):
        payload = make_event().to_dict()
        payload["surprise"] = 1
        with pytest.raises(TelemetryError, match="surprise"):
            TimingEvent.from_dict(payload)


class TestBatchExtraction:
    def _journal(self, tmp_path, outcomes):
        journal = BatchJournal(str(tmp_path / "run.jsonl"), run_id="r1")
        journal.start_run([o.key for o in outcomes], BatchPolicy())
        for outcome in outcomes:
            journal.task_done(outcome, payload={"v": outcome.index})
        return journal

    def test_extracts_labels_outcomes_and_cached(self, tmp_path):
        journal = self._journal(tmp_path, [
            BatchOutcome(index=0, key="aaa", label="fig11", state="ok",
                         attempts=1, elapsed_s=0.25, result={}),
            BatchOutcome(index=1, key="bbb", label="fig12", state="ok",
                         attempts=0, elapsed_s=0.0, result={}),
            BatchOutcome(index=2, key="ccc", label="fig13", state="failed",
                         attempts=2, elapsed_s=0.1, error="boom"),
        ])
        events = events_from_batch_journal(journal.path)
        assert [e.task for e in events] == ["fig11", "fig12", "fig13"]
        assert all(e.source == "batch" and e.stage == TASK_STAGE
                   for e in events)
        assert all(e.run_id == "r1" for e in events)
        assert [e.outcome for e in events] == ["ok", "ok", "failed"]
        assert [e.cached for e in events] == [False, True, False]
        assert events[0].elapsed_s == 0.25
        assert all(isinstance(e.elapsed_s, float) for e in events)

    def test_journal_terminal_lines_always_stamp_timing(self, tmp_path):
        """The satellite fix: ok lines never journal null elapsed_s, and
        cache-prefilled completions are marked so trend comparison can
        skip them instead of seeing bogus 0.0 measurements."""
        journal = self._journal(tmp_path, [
            BatchOutcome(index=0, key="aaa", label="fig11", state="ok",
                         attempts=0, elapsed_s=0.0, result={}),
        ])
        lines = [json.loads(line)
                 for line in open(journal.path).read().splitlines()]
        terminal = [line for line in lines if line.get("status") == "ok"]
        assert terminal, "expected a terminal ok line"
        for line in terminal:
            assert isinstance(line["elapsed_s"], float)
            assert line["label"] == "fig11"
            assert line["cached"] is True

    def test_pre_label_journal_falls_back_to_key(self, tmp_path):
        path = tmp_path / "old.jsonl"
        header = {"type": "run", "run_id": None, "tasks": ["abc123"],
                  "policy": {}, "at": 1.0}
        line = {"type": "task", "index": 0, "key": "abc123",
                "status": "ok", "attempts": 1, "elapsed_s": 0.5,
                "error": None, "at": 2.0, "result": {}}
        path.write_text(json.dumps(header) + "\n" + json.dumps(line) + "\n")
        (event,) = events_from_batch_journal(str(path))
        assert event.task == "abc123"
        assert event.run_id == "old"  # falls back to the file name

    def test_missing_journal_is_loud(self, tmp_path):
        with pytest.raises(Exception, match="no run header"):
            events_from_batch_journal(str(tmp_path / "nope.jsonl"))


class TestServeExtraction:
    def _record(self, **overrides):
        base = dict(
            job_id="job-1",
            job=PreprocessJob(model="RM1", num_rows=64, num_shards=2),
            state="completed", submitted_at=10.0, started_at=11.0,
            completed_at=14.0, attempts=1, digest="sha256:aa",
            stages=(
                StageEvent(stage="extract", status="started", at=11.0),
                StageEvent(stage="extract", status="completed", at=12.0,
                           elapsed_s=1.0, metrics={"mb_per_s": 3.5}),
                StageEvent(stage="transform", status="completed", at=14.0,
                           elapsed_s=2.0),
            ),
        )
        base.update(overrides)
        return JobRecord(**base)

    def test_extracts_stages_and_job_rollup(self, tmp_path):
        index = JobLogIndex(str(tmp_path / "jobs.jsonl"))
        index.append(self._record())
        events = events_from_job_index(index.path, run_id="serve-1")
        assert [(e.stage, e.outcome) for e in events] == [
            ("extract", "ok"), ("transform", "ok"), (JOB_STAGE, "ok"),
        ]
        label = PreprocessJob(model="RM1", num_rows=64, num_shards=2).label
        assert all(e.task == label for e in events)
        assert events[0].metrics == {"mb_per_s": 3.5}
        assert events[-1].elapsed_s == pytest.approx(3.0)  # 14.0 - 11.0

    def test_skips_in_flight_jobs_and_started_markers(self, tmp_path):
        index = JobLogIndex(str(tmp_path / "jobs.jsonl"))
        index.append(self._record(
            state="queued", started_at=None, completed_at=None,
            attempts=0, digest=None, stages=(),
        ))
        assert events_from_job_index(index.path) == []

    def test_failed_job_maps_to_failed_outcome(self, tmp_path):
        index = JobLogIndex(str(tmp_path / "jobs.jsonl"))
        index.append(self._record(
            state="failed", digest=None, error="boom",
            stages=(
                StageEvent(stage="extract", status="failed", at=12.0,
                           elapsed_s=1.0, error="boom"),
                StageEvent(stage="transform", status="skipped", at=12.0),
            ),
        ))
        events = events_from_job_index(index.path)
        assert [(e.stage, e.outcome) for e in events] == [
            ("extract", "failed"), ("transform", "skipped"),
            (JOB_STAGE, "failed"),
        ]

    def test_missing_index_is_loud(self, tmp_path):
        with pytest.raises(TelemetryError, match="does not exist"):
            events_from_job_index(str(tmp_path / "nope.jsonl"))


BENCH_REPORT = {
    "schema_version": 1,
    "quick": True,
    "results": [
        {"op": "varint_encode", "variant": "vectorized", "size": 1024,
         "elapsed_s": 0.002, "ns_per_element": 20.0, "mb_per_s": 100.0,
         "speedup_vs_scalar": 9.5},
        {"op": "varint_encode", "variant": "scalar", "size": 1024,
         "elapsed_s": 0.02, "ns_per_element": 200.0, "mb_per_s": 10.0},
    ],
}


class TestBenchExtraction:
    def test_extracts_ops_variants_and_metrics(self):
        events = events_from_bench_report(BENCH_REPORT)
        assert [(e.task, e.stage) for e in events] == [
            ("varint_encode", "vectorized"), ("varint_encode", "scalar"),
        ]
        assert events[0].run_id == "bench-quick"
        assert events[0].metrics["speedup_vs_scalar"] == 9.5
        assert "speedup_vs_scalar" not in events[1].metrics

    def test_reads_report_from_path(self, tmp_path):
        path = tmp_path / "bench.json"
        path.write_text(json.dumps(BENCH_REPORT))
        assert len(events_from_bench_report(str(path))) == 2

    def test_malformed_report_is_loud(self, tmp_path):
        with pytest.raises(TelemetryError, match="results"):
            events_from_bench_report({"quick": True})
        with pytest.raises(TelemetryError, match="malformed"):
            events_from_bench_report(
                {"results": [{"op": "x", "variant": "v"}]}
            )
        with pytest.raises(TelemetryError, match="cannot read"):
            events_from_bench_report(str(tmp_path / "nope.json"))


class TestSummarize:
    def test_aggregates_best_mean_count(self):
        events = [make_event(elapsed_s=v) for v in (0.5, 0.3, 0.7)]
        summary = summarize_events(events, run_id="r", recorded_at=1.0)
        (sample,) = summary.samples
        assert sample.best == 0.3  # lower is better for elapsed
        assert sample.mean == pytest.approx(0.5)
        assert sample.count == 3

    def test_best_is_direction_aware(self):
        events = [make_event(elapsed_s=None, metrics={"mb_per_s": v})
                  for v in (10.0, 30.0, 20.0)]
        summary = summarize_events(events, run_id="r", recorded_at=1.0)
        (sample,) = summary.samples
        assert sample.metric == "mb_per_s"
        assert sample.best == 30.0  # higher is better

    def test_skips_cached_and_non_ok(self):
        events = [
            make_event(elapsed_s=9.0, cached=True, attempts=0),
            make_event(outcome="failed", elapsed_s=0.1),
            make_event(elapsed_s=0.4),
        ]
        summary = summarize_events(events, run_id="r", recorded_at=1.0)
        (sample,) = summary.samples
        assert sample.best == 0.4

    def test_include_cached_keeps_replays(self):
        events = [make_event(elapsed_s=9.0, cached=True, attempts=0)]
        assert summarize_events(events, run_id="r",
                                recorded_at=1.0).samples == ()
        kept = summarize_events(events, run_id="r", recorded_at=1.0,
                                include_cached=True)
        assert kept.samples[0].best == 9.0


def summary_of(run_id, values, recorded_at=1.0, metric="elapsed_s",
               source="batch"):
    """A RunSummary with one sample per (task, value) pair."""
    samples = tuple(
        MetricSample(source=source, task=task, stage=TASK_STAGE,
                     metric=metric, best=value, mean=value, count=1)
        for task, value in values.items()
    )
    return RunSummary(run_id=run_id, recorded_at=recorded_at,
                      samples=samples)


class TestTrendStore:
    def test_record_load_round_trip(self, tmp_path):
        store = TrendStore(str(tmp_path))
        summary = summary_of("run-a", {"fig11": 0.5}, recorded_at=5.0)
        store.record(summary)
        assert store.load("run-a") == summary

    def test_files_are_byte_stable(self, tmp_path):
        store = TrendStore(str(tmp_path))
        summary = summary_of("run-a", {"fig11": 0.5, "fig12": 0.25})
        store.record(summary)
        first = open(store.path("run-a"), "rb").read()
        store.record(summary)
        assert open(store.path("run-a"), "rb").read() == first
        assert first.endswith(b"\n")

    @pytest.mark.parametrize("run_id", ["", "a/b", "../x", ".hidden"])
    def test_rejects_bad_run_ids(self, tmp_path, run_id):
        with pytest.raises(TelemetryError):
            TrendStore(str(tmp_path)).path(run_id)

    def test_summaries_ordered_and_baselines_exclude_current(self, tmp_path):
        store = TrendStore(str(tmp_path))
        for n, run_id in enumerate(["old", "mid", "new"]):
            store.record(summary_of(run_id, {"fig11": 0.5},
                                    recorded_at=float(n)))
        assert store.run_ids() == ["old", "mid", "new"]
        pool = store.baselines(count=2, exclude="new")
        assert [s.run_id for s in pool] == ["old", "mid"]
        assert [s.run_id for s in store.baselines(count=1)] == ["new"]

    def test_load_missing_run_is_loud(self, tmp_path):
        with pytest.raises(TelemetryError, match="cannot read"):
            TrendStore(str(tmp_path)).load("ghost")

    def test_unsupported_schema_is_loud(self, tmp_path):
        store = TrendStore(str(tmp_path))
        store.record(summary_of("run-a", {"fig11": 0.5}))
        payload = json.load(open(store.path("run-a")))
        payload["schema_version"] = 99
        open(store.path("run-a"), "w").write(json.dumps(payload))
        with pytest.raises(TelemetryError, match="schema"):
            store.load("run-a")


class TestCompare:
    def test_regression_improvement_within(self):
        baseline = summary_of("base", {"fig11": 0.2, "fig12": 0.2,
                                       "fig13": 0.2})
        current = summary_of("cur", {"fig11": 0.65, "fig12": 0.05,
                                     "fig13": 0.22})
        comparison = compare_summaries(current, [baseline])
        status = {d.task: d.status for d in comparison.deltas}
        assert status == {"fig11": "regression", "fig12": "improvement",
                          "fig13": "within"}
        (regression,) = comparison.regressions()
        text = regression.describe()
        assert "fig11" in text and TASK_STAGE in text
        assert "3.2" in text  # the ratio, named in the delta

    def test_direction_aware_throughput_regression(self):
        baseline = summary_of("base", {"varint": 100.0}, metric="mb_per_s",
                              source="bench")
        current = summary_of("cur", {"varint": 40.0}, metric="mb_per_s",
                             source="bench")
        comparison = compare_summaries(current, [baseline])
        (delta,) = comparison.deltas
        assert delta.status == "regression"
        assert delta.ratio == pytest.approx(2.5)

    def test_noise_floor_suppresses_tiny_timings(self):
        baseline = summary_of("base", {"fig13": 0.0002})
        current = summary_of("cur", {"fig13": 0.0009})
        comparison = compare_summaries(current, [baseline],
                                       min_elapsed_s=0.05)
        assert comparison.deltas[0].status == "within"
        # ...but a real slowdown past the floor still fires
        comparison = compare_summaries(
            summary_of("cur", {"fig13": 0.2}), [baseline],
            min_elapsed_s=0.05,
        )
        assert comparison.deltas[0].status == "regression"

    def test_best_of_n_uses_best_baseline(self):
        slow = summary_of("slow", {"fig11": 1.0}, recorded_at=1.0)
        fast = summary_of("fast", {"fig11": 0.2}, recorded_at=2.0)
        current = summary_of("cur", {"fig11": 0.5})
        comparison = compare_summaries(current, [slow, fast])
        (delta,) = comparison.deltas
        assert delta.baseline == 0.2
        assert delta.status == "regression"  # 2.5x vs the best baseline

    def test_new_and_missing_scoped_to_present_sources(self):
        baseline = RunSummary(run_id="base", recorded_at=1.0, samples=(
            summary_of("x", {"fig11": 0.5}).samples
            + summary_of("x", {"varint": 10.0}, metric="ns_per_element",
                         source="bench").samples
        ))
        current = summary_of("cur", {"fig12": 0.5})
        comparison = compare_summaries(current, [baseline])
        status = {(d.source, d.task): d.status for d in comparison.deltas}
        # fig12 is new, fig11 is missing; the bench series is NOT
        # missing — this run had no bench source at all
        assert status == {("batch", "fig12"): "new",
                          ("batch", "fig11"): "missing"}

    def test_empty_baseline_pool_classifies_new(self):
        comparison = compare_summaries(
            summary_of("cur", {"fig11": 0.5}), []
        )
        assert comparison.deltas[0].status == "new"
        assert comparison.regressions() == []

    def test_threshold_override_and_validation(self):
        assert threshold_for("elapsed_s") == DEFAULT_THRESHOLDS["elapsed_s"]
        assert threshold_for("elapsed_s", {"elapsed_s": 3.0}) == 3.0
        assert threshold_for("unknown_metric") == 1.5
        assert higher_is_better("items_per_s")  # *_per_s heuristic
        with pytest.raises(TelemetryError, match="must be > 1"):
            threshold_for("elapsed_s", {"elapsed_s": 0.9})
        baseline = summary_of("base", {"fig11": 0.2})
        current = summary_of("cur", {"fig11": 0.3})
        comparison = compare_summaries(current, [baseline],
                                       thresholds={"elapsed_s": 1.2})
        assert comparison.deltas[0].status == "regression"

    def test_markdown_names_the_regression(self):
        comparison = compare_summaries(
            summary_of("cur", {"fig11": 0.65}),
            [summary_of("base", {"fig11": 0.2})],
        )
        text = render_markdown(comparison)
        assert "| fig11 | task |" in text.replace("batch | fig11", "fig11")
        assert "regression" in text
        assert "`base`" in text

    def test_markdown_elides_within_rows_past_budget(self):
        tasks = {f"exp{n:03d}": 0.2 for n in range(70)}
        comparison = compare_summaries(
            summary_of("cur", dict(tasks, exp000=0.65)),
            [summary_of("base", tasks)],
        )
        text = render_markdown(comparison)
        assert "exp000" in text
        assert "exp042" not in text  # within-band rows elided
        assert "not listed" in text


class TestHistory:
    def test_history_is_deterministic(self):
        runs = [
            summary_of("a", {"fig11": 0.5}, recorded_at=1.0),
            summary_of("b", {"fig11": 0.6, "fig12": 0.1}, recorded_at=2.0),
        ]
        payload = render_history(runs)
        assert payload["runs"] == ["a", "b"]
        assert payload["series"][0]["values"] == [0.5, 0.6]
        assert payload["series"][1]["values"] == [None, 0.1]
        assert render_history(runs) == payload


class TestTrendCLI:
    def _write_journal(self, path, timings, run_id="r1"):
        """A synthetic batch journal: one ok terminal line per task."""
        outcomes = [
            BatchOutcome(index=n, key=f"key-{label}", label=label,
                         state="ok", attempts=1, elapsed_s=elapsed,
                         result={})
            for n, (label, elapsed) in enumerate(sorted(timings.items()))
        ]
        journal = BatchJournal(str(path), run_id=run_id)
        journal.start_run([o.key for o in outcomes], BatchPolicy())
        for outcome in outcomes:
            journal.task_done(outcome, payload={})
        return str(path)

    def test_record_then_compare_detects_injected_slowdown(
        self, tmp_path, capsys
    ):
        """The acceptance path: a journaled baseline run is recorded,
        then a rerun with one experiment's stage 3x slower must exit
        non-zero and name that experiment id and stage."""
        store = str(tmp_path / "trend")
        base = self._write_journal(
            tmp_path / "base.jsonl",
            {"fig11": 0.30, "fig12": 0.20, "fig13": 0.10},
        )
        assert main([
            "trend", "record", "--store", store, "--run-id", "base",
            "--batch-journal", base, "--recorded-at", "1.0",
        ]) == 0
        slow = self._write_journal(
            tmp_path / "slow.jsonl",
            {"fig11": 0.30, "fig12": 0.60, "fig13": 0.10},  # fig12 3x
        )
        capsys.readouterr()
        rc = main([
            "trend", "compare", "--store", store, "--run-id", "current",
            "--batch-journal", slow,
        ])
        captured = capsys.readouterr()
        assert rc == 1
        assert "REGRESSION" in captured.err
        assert "fig12" in captured.err  # the experiment id, named
        assert TASK_STAGE in captured.err  # ...and its stage
        assert "fig11" not in captured.err  # unchanged tasks not blamed
        assert "3.00x" in captured.out

    def test_compare_green_on_uninjected_run_and_fail_on_none(
        self, tmp_path, capsys
    ):
        store = str(tmp_path / "trend")
        base = self._write_journal(tmp_path / "base.jsonl", {"fig11": 0.3})
        main(["trend", "record", "--store", store, "--run-id", "base",
              "--batch-journal", base, "--recorded-at", "1.0"])
        assert main([
            "trend", "compare", "--store", store, "--run-id", "cur",
            "--batch-journal", base,
        ]) == 0
        slow = self._write_journal(tmp_path / "slow.jsonl", {"fig11": 0.9})
        assert main([
            "trend", "compare", "--store", store, "--run-id", "cur",
            "--batch-journal", slow, "--fail-on", "none",
        ]) == 0  # report-only mode never gates

    def test_compare_loads_recorded_run_from_store(self, tmp_path, capsys):
        store = str(tmp_path / "trend")
        base = self._write_journal(tmp_path / "base.jsonl", {"fig11": 0.3})
        slow = self._write_journal(tmp_path / "slow.jsonl", {"fig11": 0.9})
        main(["trend", "record", "--store", store, "--run-id", "base",
              "--batch-journal", base, "--recorded-at", "1.0"])
        main(["trend", "record", "--store", store, "--run-id", "cur",
              "--batch-journal", slow, "--recorded-at", "2.0"])
        capsys.readouterr()
        rc = main(["trend", "compare", "--store", store, "--run-id", "cur"])
        assert rc == 1
        assert "fig11" in capsys.readouterr().err

    def test_compare_json_and_markdown_outputs(self, tmp_path, capsys):
        store = str(tmp_path / "trend")
        base = self._write_journal(tmp_path / "base.jsonl", {"fig11": 0.3})
        main(["trend", "record", "--store", store, "--run-id", "base",
              "--batch-journal", base, "--recorded-at", "1.0"])
        capsys.readouterr()
        md_path = str(tmp_path / "trend.md")
        assert main([
            "trend", "compare", "--store", store, "--run-id", "cur",
            "--batch-journal", base, "--json", "--markdown", md_path,
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["counts"]["within"] == 1
        assert payload["deltas"][0]["task"] == "fig11"
        assert "fig11" in open(md_path).read()

    def test_report_json_is_byte_stable(self, tmp_path, capsys):
        store = str(tmp_path / "trend")
        base = self._write_journal(tmp_path / "base.jsonl",
                                   {"fig11": 0.3, "fig12": 0.1})
        main(["trend", "record", "--store", store, "--run-id", "base",
              "--batch-journal", base, "--recorded-at", "1.0"])
        capsys.readouterr()
        assert main(["trend", "report", "--store", store, "--json"]) == 0
        first = capsys.readouterr().out
        assert main(["trend", "report", "--store", store, "--json"]) == 0
        assert capsys.readouterr().out == first
        payload = json.loads(first)
        assert payload["runs"] == ["base"]
        assert len(payload["series"]) == 2

    def test_record_json_is_byte_stable(self, tmp_path, capsys):
        base = self._write_journal(tmp_path / "base.jsonl", {"fig11": 0.3})
        argv = ["trend", "record", "--store", str(tmp_path / "trend"),
                "--run-id", "base", "--batch-journal", base,
                "--recorded-at", "1.0", "--json"]
        assert main(argv) == 0
        first = capsys.readouterr().out
        assert main(argv) == 0
        assert capsys.readouterr().out == first

    def test_record_requires_sources_and_valid_meta(self, tmp_path):
        store = str(tmp_path / "trend")
        with pytest.raises(SystemExit, match="no telemetry sources"):
            main(["trend", "record", "--store", store, "--run-id", "x"])
        base = self._write_journal(tmp_path / "base.jsonl", {"fig11": 0.3})
        with pytest.raises(SystemExit, match="KEY=VALUE"):
            main(["trend", "record", "--store", store, "--run-id", "x",
                  "--batch-journal", base, "--meta", "oops"])

    def test_record_meta_lands_in_summary(self, tmp_path):
        store = str(tmp_path / "trend")
        base = self._write_journal(tmp_path / "base.jsonl", {"fig11": 0.3})
        assert main(["trend", "record", "--store", store, "--run-id", "x",
                     "--batch-journal", base, "--recorded-at", "1.0",
                     "--meta", "host=ci", "--meta", "sha=abc"]) == 0
        assert TrendStore(store).load("x").meta == {
            "host": "ci", "sha": "abc"
        }

    def test_report_human_output(self, tmp_path, capsys):
        store = str(tmp_path / "trend")
        base = self._write_journal(tmp_path / "base.jsonl", {"fig11": 0.3})
        main(["trend", "record", "--store", store, "--run-id", "base",
              "--batch-journal", base, "--recorded-at", "1.0"])
        capsys.readouterr()
        assert main(["trend", "report", "--store", store]) == 0
        out = capsys.readouterr().out
        assert "runs: base" in out
        assert "batch/fig11/task" in out
        assert main(["trend", "report",
                     "--store", str(tmp_path / "empty")]) == 0
        assert "no committed runs" in capsys.readouterr().out

    def test_bench_source_flows_through_cli(self, tmp_path, capsys):
        report = tmp_path / "bench.json"
        report.write_text(json.dumps(BENCH_REPORT))
        store = str(tmp_path / "trend")
        assert main(["trend", "record", "--store", store, "--run-id", "b",
                     "--bench-report", str(report),
                     "--recorded-at", "1.0"]) == 0
        summary = TrendStore(store).load("b")
        metrics = {s.metric for s in summary.samples}
        assert metrics == {"elapsed_s", "ns_per_element", "mb_per_s",
                           "speedup_vs_scalar"}


class TestCommittedBaseline:
    def test_repo_trend_store_loads(self):
        """The committed baseline under benchmarks/trend/ must stay
        readable by the current schema."""
        import os

        root = os.path.join(os.path.dirname(__file__), os.pardir,
                            "benchmarks", "trend")
        store = TrendStore(root)
        summaries = store.summaries()
        assert summaries, "benchmarks/trend must hold >= 1 baseline"
        for summary in summaries:
            assert summary.samples

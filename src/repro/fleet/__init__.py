"""Trace-driven multi-tenant fleet simulation (ROADMAP item 1).

The paper's TCO argument is fleet-scale: "hundreds to thousands of
production RecSys models ... numerous concurrent training jobs"
(Section III-A).  This package simulates that fleet end to end —
seeded arrival traces (:mod:`repro.fleet.trace`), a cluster scheduler
with pluggable placement policies (:mod:`repro.fleet.policy`,
:mod:`repro.fleet.simulator`), autoscaling with capacity-hour cost
accounting (:mod:`repro.fleet.autoscale`), and seed-replayable failure
injection through :mod:`repro.faults` — producing frozen, deterministic
:class:`~repro.fleet.result.FleetResult` records that feed the
``fleet_tco`` and ``fleet_resilience`` experiments, ``repro report``,
and the telemetry trend store.
"""

from repro.fleet.autoscale import (
    AUTOSCALE_KINDS,
    AUTOSCALER_REGISTRY,
    Autoscaler,
    PoolSnapshot,
    available_autoscalers,
    get_autoscaler,
    register_autoscaler,
)
from repro.fleet.policy import (
    POLICY_REGISTRY,
    PlacementPolicy,
    available_policies,
    get_policy,
    register_policy,
)
from repro.fleet.result import (
    FleetJobRecord,
    FleetResult,
    PoolSample,
    PoolUsage,
)
from repro.fleet.simulator import (
    BURST_CLONES,
    FleetSimulator,
    PoolSpec,
    default_pools,
    run_fleet,
)
from repro.fleet.trace import (
    DAY_S,
    TRACE_KINDS,
    JobArrival,
    Trace,
    generate_trace,
)

__all__ = [
    "AUTOSCALE_KINDS",
    "AUTOSCALER_REGISTRY",
    "Autoscaler",
    "BURST_CLONES",
    "DAY_S",
    "FleetJobRecord",
    "FleetResult",
    "FleetSimulator",
    "JobArrival",
    "POLICY_REGISTRY",
    "PlacementPolicy",
    "PoolSample",
    "PoolSnapshot",
    "PoolSpec",
    "PoolUsage",
    "TRACE_KINDS",
    "Trace",
    "available_autoscalers",
    "available_policies",
    "default_pools",
    "generate_trace",
    "get_autoscaler",
    "get_policy",
    "register_autoscaler",
    "register_policy",
    "run_fleet",
]

"""Shared-bandwidth network link.

Models the 10 GbE fabric of the PoC prototype both analytically (transfer
time of one message given concurrent streams) and as a DES resource (a
:class:`~repro.sim.resources.Server` whose service time is the wire time).
Fair sharing is approximated processor-sharing style: ``n`` concurrent bulk
streams each see ``1/n`` of the link.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.sim.engine import Engine
from repro.sim.resources import Server


@dataclass
class TransferStats:
    """Byte and message counters of one link."""

    messages: int = 0
    bytes_moved: float = 0.0
    busy_time: float = 0.0

    def record(self, num_bytes: float, seconds: float) -> None:
        """Account one completed transfer."""
        self.messages += 1
        self.bytes_moved += num_bytes
        self.busy_time += seconds


class NetworkLink:
    """One duplex link (or one direction of the shared fabric)."""

    def __init__(
        self,
        name: str,
        bandwidth: float = None,
        latency: float = None,
        calibration: Calibration = CALIBRATION,
    ) -> None:
        self.cal = calibration
        self.name = name
        self.bandwidth = bandwidth if bandwidth is not None else calibration.network_bandwidth
        self.latency = latency if latency is not None else calibration.rpc_request_overhead
        if self.bandwidth <= 0:
            raise ConfigurationError(f"link {name!r} needs positive bandwidth")
        self.stats = TransferStats()

    # -- analytic ----------------------------------------------------------

    def transfer_time(
        self, num_bytes: float, concurrent_streams: int = 1, efficiency: float = 1.0
    ) -> float:
        """Seconds to move ``num_bytes`` with fair sharing among streams."""
        if num_bytes < 0:
            raise ConfigurationError("cannot transfer negative bytes")
        if concurrent_streams < 1:
            raise ConfigurationError("concurrent_streams must be >= 1")
        if not 0 < efficiency <= 1:
            raise ConfigurationError("efficiency must be in (0, 1]")
        effective = self.bandwidth * efficiency / concurrent_streams
        seconds = self.latency + num_bytes / effective
        self.stats.record(num_bytes, seconds)
        return seconds

    # -- DES integration ------------------------------------------------------

    def as_server(self, engine_unused: Engine = None) -> Server:
        """A single-slot DES server whose requests carry wire time.

        The caller computes service time with :meth:`wire_time` so that the
        server serializes transfers (bandwidth sharing emerges from queueing).
        """
        return Server(f"link:{self.name}", capacity=1)

    def wire_time(self, num_bytes: float, efficiency: float = 1.0) -> float:
        """Pure serialization delay of a message at full link rate."""
        if num_bytes < 0:
            raise ConfigurationError("cannot transfer negative bytes")
        return self.latency + num_bytes / (self.bandwidth * efficiency)

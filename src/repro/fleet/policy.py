"""Placement policies — how the cluster scheduler packs jobs into pools.

Mirrors :mod:`repro.api.registry`: every policy registers under a stable
name via :func:`register_policy` and the simulator, the chaos harness,
and ``repro fleet --policy`` all resolve it through the one
:data:`POLICY_REGISTRY`.

A policy answers two questions, both as pure functions of the visible
state (so fleet runs stay deterministic):

* :meth:`PlacementPolicy.queue_order` — the order queued jobs are
  offered capacity (FIFO by default; ``priority`` puts urgent jobs
  first);
* :meth:`PlacementPolicy.choose_pool` — which candidate pool a job
  lands in (``first-fit`` takes the first that fits, ``best-fit`` the
  tightest fit).

Candidates arrive as ``(pool_name, free_workers, needed_workers)``
tuples for pools that can hold the job *right now*; ``choose_pool``
returns one of the pool names.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.fleet.trace import JobArrival

#: one placement candidate: (pool name, free workers, workers needed there)
Candidate = Tuple[str, int, int]


class PlacementPolicy:
    """Base policy: FIFO queue order, first-fit pool choice."""

    name = "first-fit"

    def queue_order(self, queued: Sequence[JobArrival]) -> List[JobArrival]:
        """The order queued jobs are offered freed capacity.  The head
        of the returned list blocks the rest (no backfilling), which
        keeps admission decisions O(1) per event and starvation-free."""
        return list(queued)

    def choose_pool(self, job: JobArrival, candidates: Sequence[Candidate]) -> str:
        """Pick one of the candidate pools (all already fit the job)."""
        return candidates[0][0]


class PolicyRegistry:
    """Name -> :class:`PlacementPolicy` factory catalog."""

    def __init__(self) -> None:
        self._factories: Dict[str, Callable[[], PlacementPolicy]] = {}

    def register(
        self,
        name: str,
        factory: Callable[[], PlacementPolicy],
        replace: bool = False,
    ) -> Callable[[], PlacementPolicy]:
        if not isinstance(name, str) or not name.strip():
            raise ConfigurationError("policy name must be a non-empty string")
        if not callable(factory):
            raise ConfigurationError(f"factory for {name!r} must be callable")
        if name in self._factories and not replace:
            raise ConfigurationError(
                f"placement policy {name!r} is already registered; "
                "pass replace=True to override"
            )
        self._factories[name] = factory
        return factory

    def unregister(self, name: str) -> None:
        del self._factories[name]

    def create(self, name: str) -> PlacementPolicy:
        if name not in self._factories:
            raise ConfigurationError(
                f"unknown placement policy {name!r}; registered policies: "
                + ", ".join(self.names())
            )
        policy = self._factories[name]()
        policy.name = name
        return policy

    def names(self) -> Tuple[str, ...]:
        return tuple(self._factories)

    def __contains__(self, name: object) -> bool:
        return name in self._factories

    def __iter__(self):
        return iter(self.names())

    def __len__(self) -> int:
        return len(self._factories)


#: the process-wide placement-policy catalog
POLICY_REGISTRY = PolicyRegistry()


def register_policy(
    name: str, *, replace: bool = False
) -> Callable[[Callable[[], PlacementPolicy]], Callable[[], PlacementPolicy]]:
    """Class decorator registering a placement policy by name."""

    def decorate(factory: Callable[[], PlacementPolicy]):
        return POLICY_REGISTRY.register(name, factory, replace=replace)

    return decorate


def get_policy(name: str) -> PlacementPolicy:
    """Instantiate one registered policy by name."""
    return POLICY_REGISTRY.create(name)


def available_policies() -> Tuple[str, ...]:
    """Registered policy names, registration order (built-ins first)."""
    return POLICY_REGISTRY.names()


@register_policy("first-fit")
class FirstFitPolicy(PlacementPolicy):
    """FIFO queue, first pool (declaration order) that fits."""


@register_policy("best-fit")
class BestFitPolicy(PlacementPolicy):
    """FIFO queue, tightest-fitting pool (least free capacity left
    after placement; declaration order breaks ties)."""

    def choose_pool(self, job: JobArrival, candidates: Sequence[Candidate]) -> str:
        best = min(candidates, key=lambda c: (c[1] - c[2],))
        return best[0]


@register_policy("priority")
class PriorityPolicy(PlacementPolicy):
    """Priority queue (high first, FIFO within a class), first-fit pools.

    Sorting is stable, so two jobs of equal priority keep submission
    order — the deterministic tiebreak the chaos harness relies on.
    """

    def queue_order(self, queued: Sequence[JobArrival]) -> List[JobArrival]:
        return sorted(queued, key=lambda job: -job.priority)

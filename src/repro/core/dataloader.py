"""Epoch-level data loader over a partitioned, stored dataset.

TorchRec's training loop consumes an iterator of mini-batches per epoch;
this loader provides that on top of the reproduction's storage and worker
substrate:

* partitions are visited once per epoch, shuffled at *partition*
  granularity (the standard practice for columnar RecSys data — shuffling
  inside a partition would break the one-partition-one-mini-batch layout);
* each partition is preprocessed by the worker owning its device when the
  dataset lives on SmartSSDs (PreSto locality), or by a round-robin CPU
  worker pool otherwise;
* the loader is fully functional: it yields real :class:`MiniBatch` tensors
  and accounts the bytes read.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.core.cpu_worker import CpuPreprocessingWorker
from repro.core.isp_worker import IspPreprocessingWorker
from repro.errors import ConfigurationError
from repro.features.minibatch import MiniBatch
from repro.features.specs import ModelSpec
from repro.ops.pipeline import PreprocessingPipeline
from repro.storage.cluster import DistributedStorage
from repro.storage.smartssd import SmartSsd


@dataclass
class EpochStats:
    """Accounting of one epoch's preprocessing."""

    batches: int = 0
    samples: int = 0
    bytes_read: int = 0
    batches_per_device: Dict[str, int] = field(default_factory=dict)


class StorageDataLoader:
    """Iterate a stored dataset as train-ready mini-batches, epoch by epoch."""

    def __init__(
        self,
        spec: ModelSpec,
        storage: DistributedStorage,
        dataset: str,
        num_partitions: int,
        shuffle: bool = True,
        seed: int = 0,
        pipeline: Optional[PreprocessingPipeline] = None,
    ) -> None:
        if num_partitions <= 0:
            raise ConfigurationError("num_partitions must be positive")
        self.spec = spec
        self.storage = storage
        self.dataset = dataset
        self.num_partitions = num_partitions
        self.shuffle = shuffle
        self.seed = seed
        self.pipeline = pipeline or PreprocessingPipeline(spec)
        self._epoch = 0
        self.last_epoch_stats = EpochStats()

        #: one ISP worker per SmartSSD device; None entries for plain SSDs
        self._isp_workers: Dict[int, IspPreprocessingWorker] = {}
        for index, device in enumerate(storage.devices):
            if isinstance(device, SmartSsd):
                self._isp_workers[index] = IspPreprocessingWorker(
                    spec, device=device, pipeline=self.pipeline
                )
        self._cpu_worker = CpuPreprocessingWorker(spec, pipeline=self.pipeline)

    @property
    def in_storage(self) -> bool:
        """True when every device is ISP-capable (pure PreSto deployment)."""
        return len(self._isp_workers) == len(self.storage.devices)

    def _partition_order(self) -> List[int]:
        order = list(range(self.num_partitions))
        if self.shuffle:
            random.Random((self.seed, self._epoch).__hash__()).shuffle(order)
        return order

    def epoch(self) -> Iterator[MiniBatch]:
        """Yield every partition's mini-batch once, in (shuffled) order."""
        stats = EpochStats()
        for partition_index in self._partition_order():
            device = self.storage.device_of(self.dataset, partition_index)
            device_pos = self.storage.devices.index(device)
            key = self.storage.partition_key(self.dataset, partition_index)

            if device_pos in self._isp_workers:
                worker = self._isp_workers[device_pos]
                raw = worker.device.ssd.read_object(key)
                name = worker.device.name
            else:
                worker = self._cpu_worker
                raw = device.read_object(key)
                name = "cpu-pool"

            batch, _ = worker.preprocess_partition(raw, batch_id=partition_index)
            stats.batches += 1
            stats.samples += batch.batch_size
            stats.bytes_read += len(raw)
            stats.batches_per_device[name] = (
                stats.batches_per_device.get(name, 0) + 1
            )
            yield batch
        self._epoch += 1
        self.last_epoch_stats = stats

    def epochs(self, count: int) -> Iterator[MiniBatch]:
        """Chain ``count`` epochs."""
        if count <= 0:
            raise ConfigurationError("epoch count must be positive")
        for _ in range(count):
            yield from self.epoch()

"""Tests for the SigridHash operator (Algorithm 2)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OpError
from repro.ops.sigridhash import hash64, sigrid_hash, sigrid_hash_scalar


class TestScalar:
    def test_deterministic(self):
        assert hash64(42, seed=7) == hash64(42, seed=7)

    def test_seed_changes_output(self):
        assert hash64(42, seed=1) != hash64(42, seed=2)

    def test_range(self):
        for value in (0, 1, 2**40, -5 % 2**64):
            assert 0 <= sigrid_hash_scalar(value, 0, 1000) < 1000

    def test_bad_max_value(self):
        with pytest.raises(OpError):
            sigrid_hash_scalar(1, 0, 0)


class TestVectorized:
    def test_matches_scalar_reference(self):
        values = np.array([0, 1, 17, 2**40, 2**62], dtype=np.int64)
        out = sigrid_hash(values, seed=3, max_value=500_000)
        for value, got in zip(values.tolist(), out.tolist()):
            assert got == sigrid_hash_scalar(value, 3, 500_000)

    def test_output_in_range(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 2**60, 10_000).astype(np.int64)
        out = sigrid_hash(values, seed=0, max_value=12345)
        assert out.min() >= 0
        assert out.max() < 12345

    def test_uniformity(self):
        """Hash outputs should spread evenly over the table (chi-square-ish)."""
        values = np.arange(100_000, dtype=np.int64)
        out = sigrid_hash(values, seed=0, max_value=100)
        counts = np.bincount(out, minlength=100)
        # each bin expects 1000; allow generous +-20%
        assert counts.min() > 800
        assert counts.max() < 1200

    def test_determinism_across_calls(self):
        values = np.array([5, 6, 7], dtype=np.int64)
        np.testing.assert_array_equal(
            sigrid_hash(values, 9, 100), sigrid_hash(values, 9, 100)
        )

    def test_empty_input(self):
        assert len(sigrid_hash(np.array([], dtype=np.int64), 0, 10)) == 0

    def test_float_input_rejected(self):
        with pytest.raises(OpError, match="integer"):
            sigrid_hash(np.array([1.0]), 0, 10)

    def test_2d_rejected(self):
        with pytest.raises(OpError, match="1-D"):
            sigrid_hash(np.zeros((2, 2), dtype=np.int64), 0, 10)

    def test_bad_max_value(self):
        with pytest.raises(OpError):
            sigrid_hash(np.array([1], dtype=np.int64), 0, -1)


class TestProperties:
    @given(
        values=st.lists(
            st.integers(min_value=-(2**62), max_value=2**62), max_size=100
        ),
        seed=st.integers(min_value=0, max_value=2**31),
        max_value=st.integers(min_value=1, max_value=2**31),
    )
    @settings(max_examples=60, deadline=None)
    def test_range_and_scalar_agreement(self, values, seed, max_value):
        column = np.array(values, dtype=np.int64)
        out = sigrid_hash(column, seed, max_value)
        assert np.all(out >= 0)
        assert np.all(out < max_value)
        for value, got in zip(column.tolist(), out.tolist()):
            assert got == sigrid_hash_scalar(value, seed, max_value)

    @given(st.integers(min_value=0, max_value=2**63 - 1))
    @settings(max_examples=60, deadline=None)
    def test_avalanche(self, value):
        """Flipping one input bit should change many output bits."""
        a = hash64(value, 0)
        b = hash64(value ^ 1, 0)
        flipped = bin(a ^ b).count("1")
        assert flipped >= 8  # weak but meaningful avalanche bound

"""Preprocess manager — the producer side of Figure 9.

The preprocess manager receives the training job's configuration and the
measured training throughput ``T`` from the train manager, derives the
worker count via T/P, spawns the workers (CPU cores or SmartSSD ISP units),
and keeps the train manager's input queue replenished (steps 2–5).
"""

from __future__ import annotations

from typing import Callable, List, Optional

from repro.errors import ProvisioningError
from repro.features.specs import ModelSpec
from repro.core.provision import ProvisioningPlan, workers_for
from repro.core.worker import PreprocessingWorker
from repro.sim.engine import Engine, Process
from repro.sim.resources import Store


class PreprocessManager:
    """Spawns and manages preprocessing workers for one training job."""

    def __init__(
        self,
        spec: ModelSpec,
        worker_factory: Callable[[], PreprocessingWorker],
    ) -> None:
        self.spec = spec
        self.worker_factory = worker_factory
        self.workers: List[PreprocessingWorker] = []

    # -- provisioning (step 2) ----------------------------------------------

    def measure_worker_throughput(self) -> float:
        """Offline measurement of one worker's throughput ``P``."""
        return self.worker_factory().throughput()

    def plan(self, training_throughput: float) -> ProvisioningPlan:
        """Derive the worker allocation from the trainer's demand ``T``."""
        worker_throughput = self.measure_worker_throughput()
        return ProvisioningPlan(
            spec_name=self.spec.name,
            training_throughput=training_throughput,
            worker_throughput=worker_throughput,
            num_workers=workers_for(training_throughput, worker_throughput),
        )

    # -- worker lifecycle (steps 3-5) -----------------------------------------

    def launch(
        self,
        engine: Engine,
        queue: Store,
        num_batches: int,
        num_workers: Optional[int] = None,
        training_throughput: Optional[float] = None,
    ) -> List[Process]:
        """Spawn workers that together produce ``num_batches`` mini-batches.

        Either pass an explicit ``num_workers`` or a ``training_throughput``
        to provision against.  Batches are split round-robin so every worker
        produces an equal share (partitions are placed round-robin too).
        """
        if num_workers is None:
            if training_throughput is None:
                raise ProvisioningError(
                    "need num_workers or training_throughput to launch"
                )
            num_workers = self.plan(training_throughput).num_workers
        if num_workers <= 0:
            raise ProvisioningError("cannot launch zero workers")

        self.workers = [self.worker_factory() for _ in range(num_workers)]
        processes = []
        base, extra = divmod(num_batches, num_workers)
        for index, worker in enumerate(self.workers):
            share = base + (1 if index < extra else 0)
            if share == 0:
                continue
            processes.append(
                engine.spawn(
                    f"worker-{index}", worker.produce(engine, queue, share)
                )
            )
        return processes

    @property
    def total_batches_produced(self) -> int:
        """Mini-batches produced across all workers so far."""
        return sum(w.batches_produced for w in self.workers)

"""Tests for the discrete-event engine."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim.engine import Engine, Timeout


class TestTimeouts:
    def test_clock_advances(self):
        engine = Engine()
        log = []

        def proc():
            yield Timeout(1.5)
            log.append(engine.now)
            yield Timeout(0.5)
            log.append(engine.now)

        engine.spawn("p", proc())
        engine.run()
        assert log == [1.5, 2.0]

    def test_negative_timeout_rejected(self):
        with pytest.raises(SimulationError):
            Timeout(-1.0)

    def test_zero_timeout_ok(self):
        engine = Engine()

        def proc():
            yield Timeout(0.0)

        p = engine.spawn("p", proc())
        engine.run()
        assert p.finished

    def test_run_until(self):
        engine = Engine()

        def proc():
            yield Timeout(10.0)

        p = engine.spawn("p", proc())
        engine.run(until=5.0)
        assert engine.now == 5.0
        assert not p.finished
        engine.run()
        assert p.finished
        assert engine.now == 10.0


class TestProcessLifecycle:
    def test_finish_time_recorded(self):
        engine = Engine()

        def proc():
            yield Timeout(3.0)

        p = engine.spawn("p", proc())
        engine.run()
        assert p.finished
        assert p.finish_time == 3.0

    def test_all_finished(self):
        engine = Engine()

        def proc(d):
            yield Timeout(d)

        engine.spawn("a", proc(1.0))
        engine.spawn("b", proc(2.0))
        assert not engine.all_finished()
        engine.run()
        assert engine.all_finished()

    def test_unknown_event_rejected(self):
        engine = Engine()

        def proc():
            yield "not-an-event"

        engine.spawn("p", proc())
        with pytest.raises(SimulationError, match="unknown event"):
            engine.run()

    def test_interleaving_deterministic(self):
        engine = Engine()
        log = []

        def proc(name, delay):
            yield Timeout(delay)
            log.append(name)

        engine.spawn("first", proc("first", 1.0))
        engine.spawn("second", proc("second", 1.0))
        engine.run()
        # simultaneous events fire in spawn order
        assert log == ["first", "second"]

    def test_max_events_guard(self):
        engine = Engine()

        def forever():
            while True:
                yield Timeout(0.0)

        engine.spawn("loop", forever())
        with pytest.raises(SimulationError, match="runaway"):
            engine.run(max_events=100)

    def test_schedule_into_past_rejected(self):
        engine = Engine()
        with pytest.raises(SimulationError):
            engine.schedule(-1.0, lambda: None)


class TestHeapEntryFastPath:
    """Tuple heap entries: callbacks and process steps interleave in
    (time, sequence) order exactly as the closure-based engine did."""

    def test_callbacks_and_processes_interleave_fifo(self):
        engine = Engine()
        log = []

        def proc(name):
            yield Timeout(1.0)
            log.append(name)

        engine.spawn("p1", proc("p1"))
        engine.schedule(1.0, lambda: log.append("cb1"))
        engine.spawn("p2", proc("p2"))
        engine.schedule(1.0, lambda: log.append("cb2"))
        engine.run()
        # callbacks were enqueued for t=1.0 up front; the processes reach
        # their own t=1.0 timeouts only after stepping at t=0, so they get
        # later sequence numbers and fire after the callbacks, FIFO
        assert log == ["cb1", "cb2", "p1", "p2"]

    def test_resume_value_delivered(self):
        engine = Engine()
        seen = []

        class Token:
            def _subscribe(self, eng, process):
                eng.resume(process, "payload")

        def proc():
            value = yield Token()
            seen.append(value)

        engine.spawn("p", proc())
        engine.run()
        assert seen == ["payload"]

    def test_run_until_preserves_pending_callbacks(self):
        engine = Engine()
        fired = []
        engine.schedule(10.0, lambda: fired.append(engine.now))
        engine.run(until=5.0)
        assert fired == []
        assert engine.now == 5.0
        engine.run()
        assert fired == [10.0]

    def test_slots_reject_stray_attributes(self):
        engine = Engine()
        with pytest.raises(AttributeError):
            engine.unknown_attribute = 1

        def proc():
            yield Timeout(0.0)

        process = engine.spawn("p", proc())
        with pytest.raises(AttributeError):
            process.unknown_attribute = 1


class TestOrderingProperty:
    @given(
        delays=st.lists(
            st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=30
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_events_fire_in_time_order(self, delays):
        engine = Engine()
        fired = []

        def proc(delay):
            yield Timeout(delay)
            fired.append(engine.now)

        for delay in delays:
            engine.spawn("p", proc(delay))
        engine.run()
        assert fired == sorted(fired)
        assert len(fired) == len(delays)

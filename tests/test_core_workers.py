"""Tests for the worker abstractions and each worker technology."""

import numpy as np
import pytest

from repro.core.accel_worker import GpuPoolWorker, PreStoU280Worker, U280PoolWorker
from repro.core.cpu_worker import CpuPreprocessingWorker
from repro.core.isp_worker import IspPreprocessingWorker
from repro.core.worker import BREAKDOWN_STEPS, breakdown_total, normalize_breakdown
from repro.dataio.partition import RowPartitioner
from repro.errors import ConfigurationError
from repro.features.specs import get_model
from repro.features.synthetic import generate_raw_table
from repro.sim.engine import Engine
from repro.sim.resources import Store


@pytest.fixture(scope="module")
def rm1_partition():
    spec = get_model("RM1")
    data = generate_raw_table(spec, 64)
    parts = RowPartitioner(spec.schema(), rows_per_partition=64).partition_all(data)
    return spec, parts[0]


class TestBreakdownHelpers:
    def test_normalize(self):
        breakdown = {step: 1.0 for step in BREAKDOWN_STEPS}
        normalized = normalize_breakdown(breakdown, 4.0)
        assert normalized["load"] == pytest.approx(0.25)

    def test_normalize_bad_reference(self):
        with pytest.raises(ConfigurationError):
            normalize_breakdown({}, 0.0)

    def test_total(self):
        assert breakdown_total({s: 2.0 for s in BREAKDOWN_STEPS}) == pytest.approx(
            2.0 * len(BREAKDOWN_STEPS)
        )


class TestWorkerContracts:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda s: CpuPreprocessingWorker(s),
            lambda s: IspPreprocessingWorker(s),
            lambda s: GpuPoolWorker(s),
            lambda s: U280PoolWorker(s),
            lambda s: PreStoU280Worker(s),
        ],
        ids=["cpu", "isp", "a100", "u280", "presto-u280"],
    )
    def test_breakdown_covers_canonical_steps(self, factory):
        worker = factory(get_model("RM2"))
        breakdown = worker.batch_breakdown()
        assert set(BREAKDOWN_STEPS) <= set(breakdown)
        assert worker.batch_latency() == pytest.approx(
            sum(breakdown[s] for s in BREAKDOWN_STEPS)
        )
        assert worker.throughput() > 0
        assert worker.batch_interval() > 0

    def test_cpu_serial_interval_equals_latency(self):
        worker = CpuPreprocessingWorker(get_model("RM3"))
        assert worker.batch_interval() == pytest.approx(worker.batch_latency())

    def test_isp_pipelined_interval_below_latency(self):
        worker = IspPreprocessingWorker(get_model("RM3"))
        assert worker.batch_interval() < worker.batch_latency()


class TestFunctionalEquivalence:
    def test_cpu_and_isp_produce_identical_tensors(self, rm1_partition):
        """The FPGA kernels are functionally transparent: PreSto's
        mini-batch must be bit-identical to the CPU baseline's."""
        spec, part = rm1_partition
        cpu_batch, _ = CpuPreprocessingWorker(spec).preprocess_partition(
            part.file_bytes
        )
        isp_batch, _ = IspPreprocessingWorker(spec).preprocess_partition(
            part.file_bytes
        )
        np.testing.assert_array_equal(cpu_batch.dense, isp_batch.dense)
        np.testing.assert_array_equal(cpu_batch.sparse.values, isp_batch.sparse.values)
        np.testing.assert_array_equal(
            cpu_batch.sparse.lengths, isp_batch.sparse.lengths
        )
        np.testing.assert_array_equal(cpu_batch.labels, isp_batch.labels)

    def test_functional_batch_valid(self, rm1_partition):
        spec, part = rm1_partition
        worker = CpuPreprocessingWorker(spec)
        batch, counts = worker.preprocess_partition(part.file_bytes, batch_id=3)
        assert batch.batch_id == 3
        assert batch.batch_size == 64
        batch.validate_index_range(worker.pipeline.table_sizes)
        assert counts.rows == 64


class TestDesProduction:
    def test_produces_exact_count(self):
        spec = get_model("RM1")
        worker = IspPreprocessingWorker(spec)
        engine = Engine()
        queue = Store("q")
        engine.spawn("w", worker.produce(engine, queue, 5))
        engine.run()
        assert worker.batches_produced == 5
        assert queue.total_put == 5

    def test_first_batch_at_latency(self):
        spec = get_model("RM1")
        worker = CpuPreprocessingWorker(spec)
        engine = Engine()
        queue = Store("q")
        arrival = []

        def consumer():
            yield queue.get()
            arrival.append(engine.now)

        engine.spawn("w", worker.produce(engine, queue, 1))
        engine.spawn("c", consumer())
        engine.run()
        assert arrival[0] == pytest.approx(worker.batch_latency())

    def test_steady_state_rate(self):
        spec = get_model("RM1")
        worker = IspPreprocessingWorker(spec)
        engine = Engine()
        queue = Store("q")
        engine.spawn("w", worker.produce(engine, queue, 10))
        engine.run()
        expected = worker.batch_latency() + 9 * worker.batch_interval()
        assert engine.now == pytest.approx(expected)

    def test_negative_batches_rejected(self):
        spec = get_model("RM1")
        worker = CpuPreprocessingWorker(spec)
        engine = Engine()
        queue = Store("q")
        engine.spawn("w", worker.produce(engine, queue, -1))
        with pytest.raises(ConfigurationError):
            engine.run()


class TestLocalityEnforcement:
    def test_isp_refuses_remote_partition(self):
        from repro.storage.cluster import DistributedStorage
        from repro.storage.smartssd import SmartSsd

        spec = get_model("RM1")
        data = generate_raw_table(spec, 64)
        parts = RowPartitioner(spec.schema(), rows_per_partition=32).partition_all(
            data
        )
        devices = [SmartSsd("isp0"), SmartSsd("isp1")]
        storage = DistributedStorage(devices)
        storage.store_partitions("ds", parts)

        worker0 = IspPreprocessingWorker(spec, device=devices[0])
        batch, _ = worker0.preprocess_local("ds", 0, storage)  # local: fine
        assert batch.batch_size == 32
        with pytest.raises(ConfigurationError, match="not local"):
            worker0.preprocess_local("ds", 1, storage)  # lives on isp1

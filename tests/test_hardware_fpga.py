"""Tests for FPGA resource accounting (Table II)."""

import pytest

from repro.errors import CapacityError
from repro.experiments.table2_resources import PAPER_TABLE2
from repro.hardware.fpga import (
    PRESTO_UNITS,
    RESOURCE_KINDS,
    SMARTSSD_FPGA,
    U280_FPGA,
    UNIT_ORDER,
    fits,
    max_lane_scale,
    resource_table,
)


class TestTable2Reproduction:
    def test_default_matches_paper_exactly(self):
        """At the default lane configuration the utilization reproduces
        Table II to within rounding (<0.5 percentage points per cell)."""
        table = resource_table(SMARTSSD_FPGA)
        for unit, row in PAPER_TABLE2.items():
            for kind in RESOURCE_KINDS:
                assert table[unit][kind] == pytest.approx(row[kind], abs=0.5), (
                    unit,
                    kind,
                )

    def test_total_is_sum_of_units(self):
        table = resource_table(SMARTSSD_FPGA)
        for kind in RESOURCE_KINDS:
            summed = sum(table[unit][kind] for unit in UNIT_ORDER)
            assert table["Total"][kind] == pytest.approx(summed, abs=0.01)

    def test_only_bucketize_uses_uram(self):
        """Table II: URAM is the Bucketize boundary buffer."""
        table = resource_table(SMARTSSD_FPGA)
        assert table["Bucketize"]["URAM"] > 0
        for unit in ("Decode", "SigridHash", "Log"):
            assert table[unit]["URAM"] == 0

    def test_decode_uses_no_dsp(self):
        table = resource_table(SMARTSSD_FPGA)
        assert table["Decode"]["DSP"] == 0


class TestScaling:
    def test_2x_fits_u280(self):
        assert fits(U280_FPGA, lane_scale=2.0)

    def test_2x_utilization_lower_on_bigger_part(self):
        smart = resource_table(SMARTSSD_FPGA)["Total"]["LUT"]
        u280 = resource_table(U280_FPGA, lane_scale=2.0)["Total"]["LUT"]
        assert u280 < smart  # 2x units on ~2.5x fabric

    def test_oversubscription_raises(self):
        with pytest.raises(CapacityError):
            resource_table(SMARTSSD_FPGA, lane_scale=16.0)

    def test_max_lane_scale_consistent(self):
        scale = max_lane_scale(SMARTSSD_FPGA)
        assert fits(SMARTSSD_FPGA, scale)
        assert not fits(SMARTSSD_FPGA, scale + 1)

    def test_u280_fits_more_than_smartssd(self):
        assert max_lane_scale(U280_FPGA) > max_lane_scale(SMARTSSD_FPGA)

    def test_bad_lane_scale(self):
        with pytest.raises(CapacityError):
            resource_table(SMARTSSD_FPGA, lane_scale=0.0)


class TestUnitResources:
    def test_usage_scales_with_lanes(self):
        unit = PRESTO_UNITS["SigridHash"]
        one = unit.usage(1)
        three = unit.usage(3)
        for kind in RESOURCE_KINDS:
            assert three[kind] >= one[kind]

    def test_zero_lanes_zero_usage(self):
        assert all(v == 0 for v in PRESTO_UNITS["Log"].usage(0).values())

    def test_negative_lanes_rejected(self):
        with pytest.raises(CapacityError):
            PRESTO_UNITS["Log"].usage(-1)

    def test_parts_have_sane_capacities(self):
        assert U280_FPGA.lut > SMARTSSD_FPGA.lut
        assert U280_FPGA.dsp > SMARTSSD_FPGA.dsp
        capacity = SMARTSSD_FPGA.capacity()
        assert set(capacity) == set(RESOURCE_KINDS)

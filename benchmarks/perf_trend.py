#!/usr/bin/env python
"""Per-kernel perf delta between two ``repro bench`` JSON reports.

Usage::

    python benchmarks/perf_trend.py BASELINE.json CURRENT.json

Prints a GitHub-flavoured markdown table comparing ``ns_per_element`` for
every (op, variant) present in both reports — CI appends it to
``$GITHUB_STEP_SUMMARY`` after the ``bench --quick`` smoke run.  This is a
*report*, not a gate: shared runners are noisy and quick mode uses smaller
inputs than the committed full-mode baseline, so deltas show the trend,
not a pass/fail verdict.  Exit status is 0 whenever both reports parse.
"""

from __future__ import annotations

import json
import sys
from typing import Dict, Tuple

#: |delta| below this is runner noise; flagged with an em dash, not an arrow
NOISE_BAND = 0.15


def load(path: str) -> Tuple[Dict[Tuple[str, str], dict], dict]:
    with open(path) as handle:
        report = json.load(handle)
    return {
        (entry["op"], entry["variant"]): entry for entry in report["results"]
    }, report


def direction(ratio: float) -> str:
    if ratio <= 1.0 - NOISE_BAND:
        return "faster ⬇"
    if ratio >= 1.0 + NOISE_BAND:
        return "slower ⬆"
    return "—"


def main(argv) -> int:
    if len(argv) != 3:
        print(__doc__)
        return 2
    try:
        baseline, baseline_report = load(argv[1])
        current, current_report = load(argv[2])
    except (OSError, ValueError, KeyError) as exc:
        print(f"perf-trend: cannot read reports: {exc}", file=sys.stderr)
        return 2

    base_mode = "quick" if baseline_report.get("quick") else "full"
    cur_mode = "quick" if current_report.get("quick") else "full"
    print("### Kernel perf trend")
    print()
    print(
        f"ns/element, current **{cur_mode}** run vs committed "
        f"**{base_mode}** baseline ({argv[1]}). Report-only — runners are "
        f"noisy and modes use different input sizes; |Δ| under "
        f"{NOISE_BAND:.0%} is within the noise band."
    )
    print()
    print("| op | variant | baseline ns/el | current ns/el | ratio | trend |")
    print("|---|---|---:|---:|---:|---|")
    shared = [key for key in current if key in baseline]
    for op, variant in shared:
        base_ns = baseline[(op, variant)]["ns_per_element"]
        cur_ns = current[(op, variant)]["ns_per_element"]
        ratio = cur_ns / base_ns if base_ns else float("inf")
        print(
            f"| {op} | {variant} | {base_ns:,.1f} | {cur_ns:,.1f} "
            f"| {ratio:.2f}x | {direction(ratio)} |"
        )
    new_keys = [key for key in current if key not in baseline]
    if new_keys:
        print()
        names = ", ".join(f"`{op}/{variant}`" for op, variant in new_keys)
        print(f"New since baseline (no comparison): {names}")
    missing_keys = [key for key in baseline if key not in current]
    if missing_keys:
        print()
        names = ", ".join(f"`{op}/{variant}`" for op, variant in missing_keys)
        print(
            f"**Missing from this run** (present in baseline — did a bench "
            f"section disappear?): {names}"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

"""Fleet TCO under a diurnal arrival trace (trace-driven multi-tenant sim).

Where ``abl-fleet`` sizes a static pool for one concurrent job mix, this
experiment drives the :mod:`repro.fleet` simulator with a full day of
seeded diurnal arrivals and lets the target-utilization autoscaler grow and
shrink each pool as load moves.  Two single-pool fleets — Disagg CPU nodes
vs PreSto SmartSSD nodes — serve the identical trace, so the comparison
isolates the system choice: capacity-hour cost (capex priced at peak
provisioned capacity plus metered energy), energy drawn over the day, peak
footprint, and queueing SLO attainment.

The paper's per-node power and 3-year cost ratios (Figs. 15-16) should
survive the trip through dynamic provisioning: the autoscaler holds both
fleets near the same utilization target, so the fleet-level energy and
cost ratios land near the per-node ones.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    register_experiment,
)
from repro.fleet import PoolSpec, generate_trace, run_fleet
from repro.hardware.calibration import CALIBRATION, Calibration


@dataclass(frozen=True)
class FleetTcoResult(ExperimentResult):
    """Same diurnal trace on a Disagg-only fleet vs a PreSto-only fleet."""

    num_jobs: int
    trace_seed: int
    disagg_cost: float  # capacity-hour capex + metered energy opex ($)
    presto_cost: float
    disagg_energy_kwh: float
    presto_energy_kwh: float
    disagg_peak_nodes: int
    presto_peak_nodes: int
    disagg_utilization: float
    presto_utilization: float
    disagg_slo: float
    presto_slo: float
    disagg_completed: int
    presto_completed: int

    @property
    def cost_ratio(self) -> float:
        return self.disagg_cost / self.presto_cost

    @property
    def energy_ratio(self) -> float:
        return self.disagg_energy_kwh / self.presto_energy_kwh

    def claims(self) -> List[PaperClaim]:
        return [
            # the per-node power gap (Fig. 15) carried to fleet scale: both
            # autoscalers chase the same utilization target, so the energy
            # ratio tracks the per-worker power ratio
            PaperClaim(
                "fleet energy ratio (Disagg/PreSto)", 25.0, self.energy_ratio, 0.35
            ),
            PaperClaim(
                "fleet capacity-hour cost ratio", 5.0, self.cost_ratio, 0.35
            ),
            PaperClaim(
                "both fleets complete the whole trace",
                1.0,
                1.0
                if self.disagg_completed == self.num_jobs
                and self.presto_completed == self.num_jobs
                else 0.0,
                0.0,
            ),
            PaperClaim(
                "autoscaler holds utilization near target (min of fleets)",
                0.7,
                min(self.disagg_utilization, self.presto_utilization),
                0.25,
            ),
        ]

    def rows(self) -> List[Tuple]:
        return [
            ("capacity cost (M$)", self.disagg_cost / 1e6, self.presto_cost / 1e6),
            ("energy (kWh)", self.disagg_energy_kwh, self.presto_energy_kwh),
            ("peak nodes", self.disagg_peak_nodes, self.presto_peak_nodes),
            ("utilization", self.disagg_utilization, self.presto_utilization),
            ("SLO attainment", self.disagg_slo, self.presto_slo),
            ("jobs completed", self.disagg_completed, self.presto_completed),
        ]

    def columns(self) -> List[str]:
        return ["metric", "Disagg fleet", "PreSto fleet"]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title=(
                f"Fleet TCO: {self.num_jobs}-job diurnal trace "
                f"(seed {self.trace_seed}), target-utilization autoscaling"
            ),
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


def _single_pool_fleet(
    system: str, trace, calibration: Calibration
) -> Tuple[object, object]:
    """Run the trace on a one-pool fleet of the given system; return
    (FleetResult, PoolUsage)."""
    if system == "Disagg":
        spec = PoolSpec(
            name="disagg-cpu",
            system="Disagg",
            nodes=64,
            workers_per_node=calibration.cpu_cores_per_node,
            min_nodes=32,
            max_nodes=4096,
        )
    else:
        spec = PoolSpec(
            name="presto-ssd",
            system="PreSto",
            nodes=16,
            workers_per_node=8,
            min_nodes=8,
            max_nodes=512,
        )
    result = run_fleet(
        trace,
        pools=(spec,),
        policy="best-fit",
        autoscaler="target-utilization",
        calibration=calibration,
    )
    return result, result.pool(spec.name)


@register_experiment(
    "fleet-tco",
    title="Fleet TCO: diurnal trace, autoscaled",
    kind="ablation",
    order=270,
)
def run(
    num_jobs: int = 400,
    seed: int = 7,
    calibration: Calibration = CALIBRATION,
) -> FleetTcoResult:
    """Drive one diurnal day through both single-system fleets."""
    trace = generate_trace("diurnal", num_jobs=num_jobs, seed=seed)
    disagg, disagg_pool = _single_pool_fleet("Disagg", trace, calibration)
    presto, presto_pool = _single_pool_fleet("PreSto", trace, calibration)
    return FleetTcoResult(
        num_jobs=len(trace),
        trace_seed=seed,
        disagg_cost=disagg.total_cost,
        presto_cost=presto.total_cost,
        disagg_energy_kwh=disagg_pool.energy_kwh,
        presto_energy_kwh=presto_pool.energy_kwh,
        disagg_peak_nodes=disagg_pool.peak_nodes,
        presto_peak_nodes=presto_pool.peak_nodes,
        disagg_utilization=disagg.utilization,
        presto_utilization=presto.utilization,
        disagg_slo=disagg.slo_attainment,
        presto_slo=presto.slo_attainment,
        disagg_completed=disagg.completed,
        presto_completed=presto.completed,
    )

"""Figure 3 — co-located preprocessing throughput and GPU utilization.

Scales the number of co-located CPU preprocessing workers from 1 to 16 (the
DGX A100 budget of 16 host cores per GPU) on RM5 and reports the effective
preprocessing throughput and the resulting single-A100 utilization, plus the
dotted-line maximum training throughput.

Paper claims: ~15x throughput at 16 workers vs. 1; GPU utilization below
20% even at 16 workers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    build_system,
    format_table,
    register_experiment,
)
from repro.features.specs import get_model
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.training.gpu import GpuTrainingModel

CORE_COUNTS = (1, 2, 4, 8, 16)


@dataclass(frozen=True)
class Fig3Result(ExperimentResult):
    """Series of Figure 3."""

    model: str
    core_counts: Tuple[int, ...]
    preprocessing_throughput: Tuple[float, ...]  # samples/s
    gpu_utilization: Tuple[float, ...]  # fraction
    max_training_throughput: float  # the dotted line

    @property
    def scaling_16_over_1(self) -> float:
        """Throughput improvement from 1 to 16 workers (paper: ~15x)."""
        return self.preprocessing_throughput[-1] / self.preprocessing_throughput[0]

    @property
    def utilization_at_16(self) -> float:
        """GPU utilization with the full 16-core budget (paper: <20%)."""
        return self.gpu_utilization[-1]

    def claims(self) -> List[PaperClaim]:
        return [
            PaperClaim("16-core scaling (x)", 15.0, self.scaling_16_over_1),
            PaperClaim("GPU util at 16 cores (<0.20)", 0.19, self.utilization_at_16),
        ]

    def columns(self) -> List[str]:
        return ["cores", "preproc samples/s", "A100 util (%)"]

    def rows(self) -> List[Tuple[int, float, float]]:
        return [
            (n, tput, 100.0 * util)
            for n, tput, util in zip(
                self.core_counts, self.preprocessing_throughput, self.gpu_utilization
            )
        ]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title=(
                f"Figure 3 ({self.model}): co-located preprocessing; max "
                f"training throughput {self.max_training_throughput:,.0f} samples/s"
            ),
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("fig3", title="Figure 3", kind="figure", order=10)
def run(
    model: str = "RM5", calibration: Calibration = CALIBRATION
) -> Fig3Result:
    """Regenerate Figure 3."""
    spec = get_model(model)
    system = build_system("Co-located", spec, calibration)
    gpu = GpuTrainingModel(calibration)
    throughputs = [system.aggregate_throughput(n) for n in CORE_COUNTS]
    utils = [gpu.utilization(spec, t) for t in throughputs]
    return Fig3Result(
        model=spec.name,
        core_counts=CORE_COUNTS,
        preprocessing_throughput=tuple(throughputs),
        gpu_utilization=tuple(utils),
        max_training_throughput=gpu.max_training_throughput(spec),
    )

"""Tests for table schemas."""

import numpy as np
import pytest

from repro.dataio.schema import (
    ColumnKind,
    DenseFeature,
    LabelColumn,
    SparseFeature,
    TableSchema,
)
from repro.errors import SchemaError


class TestColumns:
    def test_dense_validation_passes(self):
        DenseFeature("x").validate_values(np.zeros(10, dtype=np.float32), 10)

    def test_dense_wrong_length(self):
        with pytest.raises(SchemaError, match="rows"):
            DenseFeature("x").validate_values(np.zeros(5), 10)

    def test_dense_wrong_ndim(self):
        with pytest.raises(SchemaError, match="1-D"):
            DenseFeature("x").validate_values(np.zeros((5, 2)), 5)

    def test_sparse_validation_passes(self):
        lengths = np.array([2, 0, 1], dtype=np.int32)
        values = np.array([1, 2, 3], dtype=np.int64)
        SparseFeature("s").validate_values(lengths, values, 3)

    def test_sparse_sum_mismatch(self):
        with pytest.raises(SchemaError, match="sum"):
            SparseFeature("s").validate_values(
                np.array([2, 2]), np.array([1, 2, 3]), 2
            )

    def test_sparse_negative_lengths(self):
        with pytest.raises(SchemaError, match="negative"):
            SparseFeature("s").validate_values(
                np.array([-1, 4]), np.array([1, 2, 3]), 2
            )

    def test_label_validation(self):
        LabelColumn().validate_values(np.zeros(4, dtype=np.int8), 4)
        with pytest.raises(SchemaError):
            LabelColumn().validate_values(np.zeros(3, dtype=np.int8), 4)


class TestTableSchema:
    def test_with_counts_naming(self):
        schema = TableSchema.with_counts(2, 3)
        assert schema.dense_names == ["int_0", "int_1"]
        assert schema.sparse_names == ["cat_0", "cat_1", "cat_2"]
        assert schema.num_columns == 6  # label + 2 + 3

    def test_column_lookup(self):
        schema = TableSchema.with_counts(1, 1)
        assert schema.column("int_0").kind is ColumnKind.DENSE
        assert schema.column("cat_0").kind is ColumnKind.SPARSE
        assert schema.column("label").kind is ColumnKind.LABEL
        assert "int_0" in schema
        assert "nope" not in schema

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError, match="unknown column"):
            TableSchema.with_counts(1, 1).column("missing")

    def test_duplicate_names_rejected(self):
        with pytest.raises(SchemaError, match="duplicate"):
            TableSchema(dense=[DenseFeature("x"), DenseFeature("x")], sparse=[])

    def test_negative_counts_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema.with_counts(-1, 0)

    def test_columns_order(self):
        schema = TableSchema.with_counts(1, 1)
        names = [c.name for c in schema.columns()]
        assert names == ["label", "int_0", "cat_0"]

    def test_equality(self):
        assert TableSchema.with_counts(2, 2) == TableSchema.with_counts(2, 2)
        assert TableSchema.with_counts(2, 2) != TableSchema.with_counts(2, 3)

    def test_repr(self):
        assert "dense=2" in repr(TableSchema.with_counts(2, 5))

"""Sensitivity — training mini-batch size.

The paper evaluates at batch 8,192.  This sweep varies the batch from 1K to
64K and reports per-sample preprocessing cost for one CPU core and one
SmartSSD.  Expected shape: the CPU worker's per-sample cost is ~flat (its
per-batch overhead is small relative to the element work), while PreSto's
per-sample cost *drops* with batch size as the fixed host-orchestration
overhead amortizes — small batches erode the offload advantage, which is why
in-storage preprocessing targets throughput-oriented training, not
latency-oriented inference.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    register_experiment,
)
from repro.features.specs import get_model
from repro.hardware.accelerator import AcceleratorModel
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.hardware.cpu import CpuCoreModel
from repro.ops.pipeline import OpCounts

BATCH_SIZES = (1024, 2048, 4096, 8192, 16384, 32768, 65536)


@dataclass(frozen=True)
class BatchSizeResult(ExperimentResult):
    """Per-batch-size per-sample costs for both workers."""

    model: str
    batch_sizes: Tuple[int, ...]
    cpu_us_per_sample: Tuple[float, ...]
    presto_us_per_sample: Tuple[float, ...]

    def speedup(self, index: int) -> float:
        """Latency speedup at one batch size."""
        return self.cpu_us_per_sample[index] / self.presto_us_per_sample[index]

    def claims(self) -> List[PaperClaim]:
        i8k = self.batch_sizes.index(8192)
        cpu_flatness = self.cpu_us_per_sample[0] / self.cpu_us_per_sample[-1]
        presto_amortization = (
            self.presto_us_per_sample[0] / self.presto_us_per_sample[-1]
        )
        return [
            PaperClaim("speedup at the paper's batch (8192)", 10.9, self.speedup(i8k), 0.10),
            PaperClaim("CPU per-sample cost ~flat (1K/64K)", 1.0, cpu_flatness, 0.10),
            PaperClaim(
                "PreSto per-sample cost amortizes (1K/64K > 1.5)",
                1.9,
                presto_amortization,
                0.35,
            ),
        ]

    def rows(self) -> List[Tuple]:
        return [
            (batch, cpu, presto, cpu / presto)
            for batch, cpu, presto in zip(
                self.batch_sizes, self.cpu_us_per_sample, self.presto_us_per_sample
            )
        ]

    def columns(self) -> List[str]:
        return ["batch", "CPU us/sample", "PreSto us/sample", "speedup (x)"]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title=f"Sensitivity (batch size, {self.model}): per-sample latency",
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


@register_experiment("abl-batch", title="Sensitivity: batch size", kind="ablation", order=250)
def run(model: str = "RM5", calibration: Calibration = CALIBRATION) -> BatchSizeResult:
    """Sweep the mini-batch size."""
    spec = get_model(model)
    cpu = CpuCoreModel(calibration)
    accel = AcceleratorModel(calibration)
    cpu_cost: List[float] = []
    presto_cost: List[float] = []
    for batch in BATCH_SIZES:
        counts = OpCounts.expected_for(spec, batch)
        cpu_cost.append(1e6 * cpu.batch_latency(spec, counts).total / batch)
        presto_cost.append(1e6 * accel.batch_stages(spec, counts).latency / batch)
    return BatchSizeResult(
        model=spec.name,
        batch_sizes=BATCH_SIZES,
        cpu_us_per_sample=tuple(cpu_cost),
        presto_us_per_sample=tuple(presto_cost),
    )

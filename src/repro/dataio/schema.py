"""Table schemas for RecSys raw feature data.

The paper's raw data (Section II-A, Figure 1) is tabular: one row per user
interaction ("sample"), one column per feature.  Columns come in two kinds:

* *dense* features — one continuous value per row (float32);
* *sparse* features — a variable-length list of categorical ids per row
  (int64), e.g. "videos watched in the last hour".

A :class:`TableSchema` names and orders the columns of one logical table and
is shared by the synthetic data generators, the columnar file format, and the
preprocessing pipelines.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence

import numpy as np

from repro.errors import SchemaError


class ColumnKind(enum.Enum):
    """The physical/logical kind of a table column."""

    DENSE = "dense"
    SPARSE = "sparse"
    LABEL = "label"


@dataclass(frozen=True)
class DenseFeature:
    """A dense (continuous, scalar-per-row) feature column."""

    name: str
    kind: ColumnKind = field(default=ColumnKind.DENSE, init=False)
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.float32), init=False)

    def validate_values(self, values: np.ndarray, num_rows: int) -> None:
        """Check that ``values`` is a valid dense column of ``num_rows`` rows."""
        if values.ndim != 1:
            raise SchemaError(
                f"dense column {self.name!r} must be 1-D, got shape {values.shape}"
            )
        if len(values) != num_rows:
            raise SchemaError(
                f"dense column {self.name!r} has {len(values)} rows, expected {num_rows}"
            )


@dataclass(frozen=True)
class SparseFeature:
    """A sparse (variable-length list of categorical ids) feature column.

    Sparse columns are stored jagged: a ``lengths`` int32 array with one entry
    per row, plus a flat ``values`` int64 array of all ids concatenated.
    """

    name: str
    kind: ColumnKind = field(default=ColumnKind.SPARSE, init=False)
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.int64), init=False)

    def validate_values(
        self, lengths: np.ndarray, values: np.ndarray, num_rows: int
    ) -> None:
        """Check jagged arrays: lengths sum to len(values), one length per row."""
        if lengths.ndim != 1 or values.ndim != 1:
            raise SchemaError(f"sparse column {self.name!r} arrays must be 1-D")
        if len(lengths) != num_rows:
            raise SchemaError(
                f"sparse column {self.name!r} has {len(lengths)} lengths, "
                f"expected {num_rows}"
            )
        if np.any(lengths < 0):
            raise SchemaError(f"sparse column {self.name!r} has negative lengths")
        total = int(lengths.sum())
        if total != len(values):
            raise SchemaError(
                f"sparse column {self.name!r} lengths sum to {total} but has "
                f"{len(values)} values"
            )


@dataclass(frozen=True)
class LabelColumn:
    """The binary click/no-click training label column."""

    name: str = "label"
    kind: ColumnKind = field(default=ColumnKind.LABEL, init=False)
    dtype: np.dtype = field(default_factory=lambda: np.dtype(np.int8), init=False)

    def validate_values(self, values: np.ndarray, num_rows: int) -> None:
        """Check that labels are a 1-D column of the right length."""
        if values.ndim != 1 or len(values) != num_rows:
            raise SchemaError(
                f"label column {self.name!r} must be 1-D with {num_rows} rows"
            )


Column = object  # union of the three dataclasses above; kept loose for 3.9


class TableSchema:
    """Ordered, named collection of table columns.

    Column order is meaningful: it is the storage order inside columnar files
    and the default iteration order for preprocessing pipelines.
    """

    def __init__(
        self,
        dense: Sequence[DenseFeature],
        sparse: Sequence[SparseFeature],
        label: LabelColumn = None,
    ) -> None:
        self.dense: List[DenseFeature] = list(dense)
        self.sparse: List[SparseFeature] = list(sparse)
        self.label: LabelColumn = label if label is not None else LabelColumn()
        self._by_name: Dict[str, object] = {}
        for column in self.columns():
            if column.name in self._by_name:
                raise SchemaError(f"duplicate column name {column.name!r}")
            self._by_name[column.name] = column

    @classmethod
    def with_counts(
        cls,
        num_dense: int,
        num_sparse: int,
        dense_prefix: str = "int_",
        sparse_prefix: str = "cat_",
    ) -> "TableSchema":
        """Build a schema with auto-named columns, Criteo-style.

        The Criteo dataset names its 13 dense columns ``int_0..int_12`` and
        its 26 sparse columns ``cat_0..cat_25``; the synthetic RM2–RM5
        datasets extend the same naming.
        """
        if num_dense < 0 or num_sparse < 0:
            raise SchemaError("column counts must be non-negative")
        dense = [DenseFeature(f"{dense_prefix}{i}") for i in range(num_dense)]
        sparse = [SparseFeature(f"{sparse_prefix}{i}") for i in range(num_sparse)]
        return cls(dense=dense, sparse=sparse)

    # -- lookup ---------------------------------------------------------

    def columns(self) -> Iterator[object]:
        """Yield all columns in storage order: label, dense, then sparse."""
        yield self.label
        yield from self.dense
        yield from self.sparse

    def column(self, name: str):
        """Return the column with ``name`` or raise :class:`SchemaError`."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"unknown column {name!r}") from None

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    @property
    def dense_names(self) -> List[str]:
        """Names of all dense columns, in order."""
        return [c.name for c in self.dense]

    @property
    def sparse_names(self) -> List[str]:
        """Names of all sparse columns, in order."""
        return [c.name for c in self.sparse]

    @property
    def num_columns(self) -> int:
        """Total column count including the label."""
        return 1 + len(self.dense) + len(self.sparse)

    def __repr__(self) -> str:
        return (
            f"TableSchema(dense={len(self.dense)}, sparse={len(self.sparse)}, "
            f"label={self.label.name!r})"
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableSchema):
            return NotImplemented
        return (
            self.dense_names == other.dense_names
            and self.sparse_names == other.sparse_names
            and self.label.name == other.label.name
        )

"""Structured run telemetry: one timing-event schema over the batch
journal, the serve job index, ``repro bench`` reports, and fleet
simulation results, plus the committed trend store and noise-aware
regression comparison behind ``repro trend`` (see
``docs/telemetry.md``)."""

from repro.telemetry.events import (
    EVENT_OUTCOMES,
    EVENT_SOURCES,
    JOB_STAGE,
    TASK_STAGE,
    TimingEvent,
    collect_events,
    events_from_batch_journal,
    events_from_bench_report,
    events_from_fleet_result,
    events_from_job_index,
)
from repro.telemetry.trend import (
    DEFAULT_BASELINE_RUNS,
    DEFAULT_MIN_ELAPSED_S,
    DEFAULT_THRESHOLD,
    DEFAULT_THRESHOLDS,
    HIGHER_IS_BETTER,
    SUMMARY_SCHEMA,
    MetricSample,
    RunSummary,
    TrendComparison,
    TrendDelta,
    TrendStore,
    compare_summaries,
    higher_is_better,
    render_history,
    render_markdown,
    summarize_events,
    threshold_for,
)

__all__ = [
    "EVENT_OUTCOMES",
    "EVENT_SOURCES",
    "JOB_STAGE",
    "TASK_STAGE",
    "TimingEvent",
    "collect_events",
    "events_from_batch_journal",
    "events_from_bench_report",
    "events_from_fleet_result",
    "events_from_job_index",
    "DEFAULT_BASELINE_RUNS",
    "DEFAULT_MIN_ELAPSED_S",
    "DEFAULT_THRESHOLD",
    "DEFAULT_THRESHOLDS",
    "HIGHER_IS_BETTER",
    "SUMMARY_SCHEMA",
    "MetricSample",
    "RunSummary",
    "TrendComparison",
    "TrendDelta",
    "TrendStore",
    "compare_summaries",
    "higher_is_better",
    "render_history",
    "render_markdown",
    "summarize_events",
    "threshold_for",
]

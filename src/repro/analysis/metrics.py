"""Shared metric helpers used by the experiment harness."""

from __future__ import annotations

import math
from typing import Dict, Iterable, List, Sequence

from repro.errors import ConfigurationError


def speedup(baseline: float, improved: float) -> float:
    """How many times faster ``improved`` is than ``baseline`` (latencies)."""
    if improved <= 0:
        raise ConfigurationError("improved latency must be positive")
    if baseline < 0:
        raise ConfigurationError("baseline latency must be non-negative")
    return baseline / improved


def normalize_to(values: Sequence[float], reference: float) -> List[float]:
    """Scale a series so ``reference`` maps to 1.0 (paper-style bars)."""
    if reference <= 0:
        raise ConfigurationError("reference must be positive")
    return [v / reference for v in values]


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean of positive values."""
    values = list(values)
    if not values:
        raise ConfigurationError("geometric_mean of empty sequence")
    if any(v <= 0 for v in values):
        raise ConfigurationError("geometric_mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def arithmetic_mean(values: Iterable[float]) -> float:
    """Plain average (the paper reports arithmetic averages)."""
    values = list(values)
    if not values:
        raise ConfigurationError("mean of empty sequence")
    return sum(values) / len(values)


def share(part: float, total: float) -> float:
    """Fraction ``part/total`` with validation."""
    if total <= 0:
        raise ConfigurationError("total must be positive")
    if part < 0:
        raise ConfigurationError("part must be non-negative")
    return part / total


def stacked_shares(breakdown: Dict[str, float]) -> Dict[str, float]:
    """Convert a step->seconds breakdown to step->fraction-of-total."""
    total = sum(breakdown.values())
    if total <= 0:
        raise ConfigurationError("breakdown sums to zero")
    return {k: v / total for k, v in breakdown.items()}

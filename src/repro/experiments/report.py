"""Full paper-vs-measured report: run every experiment, render every table,
and summarize which claims hold.  ``python -m repro.experiments.report``
prints the whole thing.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Tuple

from repro.experiments import (
    abl_batch_size,
    abl_double_buffering,
    abl_lane_sweep,
    abl_multijob,
    abl_network_contention,
    abl_network_sweep,
    abl_row_vs_columnar,
    fig3_colocated,
    fig4_cores_required,
    fig5_breakdown,
    fig6_utilization,
    fig11_throughput,
    fig12_latency,
    fig13_network,
    fig14_provisioning,
    fig15_efficiency,
    fig16_alternatives,
    fig17_sensitivity,
    table1_models,
    table2_resources,
)
from repro.experiments.common import PaperClaim

#: experiment id -> runner, in paper order
EXPERIMENTS: Dict[str, Callable[[], object]] = {
    "Figure 3": fig3_colocated.run,
    "Figure 4": fig4_cores_required.run,
    "Figure 5": fig5_breakdown.run,
    "Figure 6": fig6_utilization.run,
    "Table I": table1_models.run,
    "Table II": table2_resources.run,
    "Figure 11": fig11_throughput.run,
    "Figure 12": fig12_latency.run,
    "Figure 13": fig13_network.run,
    "Figure 14": fig14_provisioning.run,
    "Figure 15": fig15_efficiency.run,
    "Figure 16": fig16_alternatives.run,
    "Figure 17": fig17_sensitivity.run,
}

#: ablations and sensitivity studies beyond the paper's figures
ABLATIONS: Dict[str, Callable[[], object]] = {
    "Ablation: row vs columnar": abl_row_vs_columnar.run,
    "Ablation: double buffering": abl_double_buffering.run,
    "Ablation: unit lane sweep": abl_lane_sweep.run,
    "Sensitivity: link speed": abl_network_sweep.run,
    "Fleet: network contention": abl_network_contention.run,
    "Sensitivity: batch size": abl_batch_size.run,
    "Fleet: multi-job scheduling": abl_multijob.run,
}


def run_all(include_ablations: bool = True) -> Dict[str, object]:
    """Run every experiment (and, by default, every ablation)."""
    results = {name: runner() for name, runner in EXPERIMENTS.items()}
    if include_ablations:
        results.update({name: runner() for name, runner in ABLATIONS.items()})
    return results


def collect_claims(results: Dict[str, object]) -> List[Tuple[str, PaperClaim]]:
    """All paper claims with their measured values."""
    claims: List[Tuple[str, PaperClaim]] = []
    for name, result in results.items():
        getter = getattr(result, "claims", None)
        if getter is not None:
            claims.extend((name, claim) for claim in getter())
    return claims


def render_report(results: Dict[str, object] = None) -> str:
    """The full text report (every table + the claims scoreboard)."""
    if results is None:
        results = run_all()
    sections = []
    for name, result in results.items():
        sections.append("=" * 78)
        sections.append(name)
        sections.append("=" * 78)
        sections.append(result.render())
        sections.append("")
    claims = collect_claims(results)
    holding = sum(1 for _, c in claims if c.holds)
    sections.append("=" * 78)
    sections.append(f"CLAIMS SCOREBOARD: {holding}/{len(claims)} within tolerance")
    sections.append("=" * 78)
    for name, claim in claims:
        sections.append(f"{name}: {claim.render().strip()}")
    return "\n".join(sections)


def main() -> None:
    """CLI entry point."""
    print(render_report())


if __name__ == "__main__":
    main()

"""Benchmark: regenerate the paper's Fig3 via repro.experiments.fig3_colocated."""

from conftest import assert_claims, report

from repro.experiments import fig3_colocated


def test_fig3(benchmark):
    """Time the fig3 experiment and verify its paper claims."""
    result = benchmark(fig3_colocated.run)
    report(result)
    assert_claims(result)

"""Tests for the cost/energy analysis and metric helpers."""

import pytest

from repro.analysis.cost import cost_breakdown, cost_efficiency, opex
from repro.analysis.energy import energy_efficiency, preprocessing_energy_per_epoch
from repro.analysis.metrics import (
    arithmetic_mean,
    geometric_mean,
    normalize_to,
    share,
    speedup,
    stacked_shares,
)
from repro.errors import ConfigurationError
from repro.hardware.calibration import CALIBRATION


class TestOpex:
    def test_kwh_math(self):
        # 1000 W for 1000 hours = 1000 kWh at $0.0733/kWh
        assert opex(1000.0, 1000.0) == pytest.approx(1000 * 0.0733)

    def test_default_duration_is_3_years(self):
        expected = 100.0 * CALIBRATION.amortization_hours / 1000 * 0.0733
        assert opex(100.0) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            opex(-1.0)
        with pytest.raises(ConfigurationError):
            opex(1.0, duration_hours=-1.0)


class TestCostEfficiency:
    def test_breakdown_total(self):
        breakdown = cost_breakdown(capex=1000.0, power_watts=100.0)
        assert breakdown.total == pytest.approx(breakdown.capex + breakdown.opex)

    def test_ratio_reduces_to_inverse_cost(self):
        """Same throughput/duration: the efficiency ratio must equal the
        inverse total-cost ratio (the paper's observation)."""
        a = cost_efficiency(1e5, capex=10_000.0, power_watts=1000.0)
        b = cost_efficiency(1e5, capex=5_000.0, power_watts=500.0)
        cost_a = cost_breakdown(10_000.0, 1000.0).total
        cost_b = cost_breakdown(5_000.0, 500.0).total
        assert b / a == pytest.approx(cost_a / cost_b)

    def test_higher_throughput_more_efficient(self):
        low = cost_efficiency(1e4, 1000.0, 100.0)
        high = cost_efficiency(1e5, 1000.0, 100.0)
        assert high == pytest.approx(10 * low)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            cost_efficiency(-1.0, 1000.0, 100.0)
        with pytest.raises(ConfigurationError):
            cost_efficiency(1.0, 0.0, 0.0, duration_hours=0.0)


class TestEnergy:
    def test_energy_efficiency(self):
        assert energy_efficiency(1000.0, 10.0) == pytest.approx(100.0)
        with pytest.raises(ConfigurationError):
            energy_efficiency(1.0, 0.0)
        with pytest.raises(ConfigurationError):
            energy_efficiency(-1.0, 1.0)

    def test_epoch_energy(self):
        # 100 W, 1e6 samples at 1e4 samples/s -> 100 s -> 10 kJ
        assert preprocessing_energy_per_epoch(100.0, 1e6, 1e4) == pytest.approx(1e4)
        with pytest.raises(ConfigurationError):
            preprocessing_energy_per_epoch(1.0, 1.0, 0.0)


class TestMetrics:
    def test_speedup(self):
        assert speedup(10.0, 2.0) == pytest.approx(5.0)
        with pytest.raises(ConfigurationError):
            speedup(1.0, 0.0)

    def test_normalize_to(self):
        assert normalize_to([2.0, 4.0], 2.0) == [1.0, 2.0]
        with pytest.raises(ConfigurationError):
            normalize_to([1.0], 0.0)

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            geometric_mean([])
        with pytest.raises(ConfigurationError):
            geometric_mean([1.0, -1.0])

    def test_arithmetic_mean(self):
        assert arithmetic_mean([1.0, 3.0]) == pytest.approx(2.0)
        with pytest.raises(ConfigurationError):
            arithmetic_mean([])

    def test_share(self):
        assert share(1.0, 4.0) == pytest.approx(0.25)
        with pytest.raises(ConfigurationError):
            share(1.0, 0.0)

    def test_stacked_shares_sum_to_one(self):
        shares = stacked_shares({"a": 1.0, "b": 3.0})
        assert sum(shares.values()) == pytest.approx(1.0)
        with pytest.raises(ConfigurationError):
            stacked_shares({"a": 0.0})

"""Tests for the network link and RPC accounting."""

import pytest

from repro.errors import ConfigurationError
from repro.features.specs import all_models, get_model
from repro.network.link import NetworkLink
from repro.network.rpc import RpcAccounting
from repro.sim.engine import Engine


class TestNetworkLink:
    def test_transfer_time_components(self):
        link = NetworkLink("t", bandwidth=1e9, latency=1e-3)
        assert link.transfer_time(1e9) == pytest.approx(1.0 + 1e-3)

    def test_fair_sharing(self):
        link = NetworkLink("t", bandwidth=1e9, latency=0.0)
        assert link.transfer_time(1e9, concurrent_streams=4) == pytest.approx(4.0)

    def test_efficiency(self):
        link = NetworkLink("t", bandwidth=1e9, latency=0.0)
        assert link.transfer_time(1e9, efficiency=0.5) == pytest.approx(2.0)

    def test_stats_accumulate(self):
        link = NetworkLink("t", bandwidth=1e9)
        link.transfer_time(100)
        link.transfer_time(200)
        assert link.stats.messages == 2
        assert link.stats.bytes_moved == 300

    def test_wire_time(self):
        link = NetworkLink("t", bandwidth=2e9, latency=0.0)
        assert link.wire_time(1e9) == pytest.approx(0.5)

    def test_invalid_inputs(self):
        link = NetworkLink("t", bandwidth=1e9)
        with pytest.raises(ConfigurationError):
            link.transfer_time(-1)
        with pytest.raises(ConfigurationError):
            link.transfer_time(1, concurrent_streams=0)
        with pytest.raises(ConfigurationError):
            link.transfer_time(1, efficiency=0.0)
        with pytest.raises(ConfigurationError):
            NetworkLink("bad", bandwidth=0)

    def test_as_server(self):
        server = NetworkLink("t").as_server(Engine())
        assert server.capacity == 1


class TestRpcAccounting:
    @pytest.fixture(scope="class")
    def rpc(self):
        return RpcAccounting()

    def test_presto_no_raw_transfer(self, rpc):
        for spec in all_models():
            costs = rpc.presto_batch(spec)
            assert costs.raw_data_transfer == 0.0
            assert costs.fetch_requests == 0.0

    def test_disagg_pays_raw_transfer(self, rpc):
        costs = rpc.disagg_batch(get_model("RM5"))
        assert costs.raw_data_transfer > 0
        assert costs.fetch_requests > 0

    def test_both_ship_tensors(self, rpc):
        spec = get_model("RM3")
        assert rpc.disagg_batch(spec).tensor_response == pytest.approx(
            rpc.presto_batch(spec).tensor_response
        )

    def test_reduction_above_one(self, rpc):
        for spec in all_models():
            assert rpc.reduction(spec) > 1.5

    def test_mean_reduction_near_paper(self, rpc):
        values = [rpc.reduction(s) for s in all_models()]
        assert sum(values) / len(values) == pytest.approx(2.9, rel=0.15)

    def test_total_is_sum(self, rpc):
        costs = rpc.disagg_batch(get_model("RM2"))
        assert costs.total == pytest.approx(
            costs.fetch_requests
            + costs.raw_data_transfer
            + costs.tensor_response
            + costs.control
        )

    def test_bigger_models_more_rpc_time(self, rpc):
        rm1 = rpc.disagg_batch(get_model("RM1")).total
        rm5 = rpc.disagg_batch(get_model("RM5")).total
        assert rm5 > 10 * rm1

"""Device cost models: CPU cores, the PreSto FPGA accelerator, GPU-based
preprocessing, FPGA resource accounting (Table II), power draw, and the LLC
model behind Figure 6.  Every tuned constant lives in
:mod:`repro.hardware.calibration`."""

from repro.hardware.calibration import CALIBRATION, Calibration
from repro.hardware.cpu import CpuCoreModel, CpuStepLatencies
from repro.hardware.accelerator import AcceleratorModel, AcceleratorStages
from repro.hardware.fpga import FpgaPart, UnitResources, PRESTO_UNITS, resource_table
from repro.hardware.gpu_preproc import GpuPreprocModel
from repro.hardware.power import PowerModel, DEVICE_POWER
from repro.hardware.cache import CacheModel, OperatorProfile

__all__ = [
    "CALIBRATION",
    "Calibration",
    "CpuCoreModel",
    "CpuStepLatencies",
    "AcceleratorModel",
    "AcceleratorStages",
    "FpgaPart",
    "UnitResources",
    "PRESTO_UNITS",
    "resource_table",
    "GpuPreprocModel",
    "PowerModel",
    "DEVICE_POWER",
    "CacheModel",
    "OperatorProfile",
]

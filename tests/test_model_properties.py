"""Hypothesis property tests on the performance models: monotonicity and
scaling invariants that must hold for *any* workload configuration, not
just the five Table I points."""

import dataclasses

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.provision import workers_for
from repro.features.specs import MLPSpec, ModelSpec
from repro.hardware.accelerator import AcceleratorModel
from repro.hardware.cpu import CpuCoreModel
from repro.training.gpu import GpuTrainingModel


def make_spec(num_dense, num_sparse, avg_len, num_generated, bucket_size):
    return ModelSpec(
        name="prop",
        num_dense=num_dense,
        num_sparse=num_sparse,
        avg_sparse_length=avg_len,
        num_generated_sparse=num_generated,
        bucket_size=bucket_size,
        bottom_mlp=MLPSpec((64, 32)),
        top_mlp=MLPSpec((64, 1)),
        num_tables=num_sparse + num_generated,
        avg_embeddings_per_table=100_000,
    )


spec_strategy = st.builds(
    make_spec,
    num_dense=st.integers(min_value=1, max_value=600),
    num_sparse=st.integers(min_value=1, max_value=64),
    avg_len=st.integers(min_value=1, max_value=32),
    num_generated=st.just(1),
    bucket_size=st.sampled_from([256, 1024, 4096]),
).filter(lambda s: s.num_generated_sparse <= s.num_dense)


class TestCpuModelProperties:
    @given(spec=spec_strategy)
    @settings(max_examples=40, deadline=None)
    def test_all_latencies_positive(self, spec):
        latency = CpuCoreModel().batch_latency(spec)
        assert latency.total > 0
        for value in latency.as_dict().values():
            assert value >= 0

    @given(spec=spec_strategy, extra=st.integers(min_value=1, max_value=100))
    @settings(max_examples=40, deadline=None)
    def test_more_dense_features_never_faster(self, spec, extra):
        bigger = dataclasses.replace(spec, num_dense=spec.num_dense + extra)
        assert (
            CpuCoreModel().batch_latency(bigger).total
            >= CpuCoreModel().batch_latency(spec).total
        )

    @given(spec=spec_strategy)
    @settings(max_examples=40, deadline=None)
    def test_throughput_inverse_of_latency(self, spec):
        model = CpuCoreModel()
        assert model.core_throughput(spec) == pytest.approx(
            spec.batch_size / model.batch_latency(spec).total
        )


class TestAcceleratorProperties:
    @given(spec=spec_strategy)
    @settings(max_examples=40, deadline=None)
    def test_bottleneck_never_exceeds_latency(self, spec):
        stages = AcceleratorModel().batch_stages(spec)
        assert 0 < stages.bottleneck <= stages.latency

    @given(spec=spec_strategy)
    @settings(max_examples=40, deadline=None)
    def test_accelerator_beats_cpu_on_transform(self, spec):
        """The parallel units never lose to a single core on the offloaded
        ops, for any configuration."""
        cpu = CpuCoreModel().batch_latency(spec)
        stages = AcceleratorModel().batch_stages(spec)
        assert stages.transform_time < cpu.transform_time

    @given(spec=spec_strategy, scale=st.sampled_from([2.0, 4.0]))
    @settings(max_examples=30, deadline=None)
    def test_unit_scale_never_hurts(self, spec, scale):
        base = AcceleratorModel(unit_scale=1.0)
        scaled = AcceleratorModel(unit_scale=scale)
        assert scaled.device_throughput(spec) >= base.device_throughput(spec)


class TestProvisioningProperties:
    @given(
        demand=st.floats(min_value=0.0, max_value=1e8),
        worker=st.floats(min_value=1.0, max_value=1e7),
    )
    @settings(max_examples=60, deadline=None)
    def test_allocation_is_sufficient_and_tight(self, demand, worker):
        n = workers_for(demand, worker)
        assert n * worker >= demand  # sufficient
        if n > 0:
            assert (n - 1) * worker < demand  # tight: one fewer starves

    @given(
        demand=st.floats(min_value=1.0, max_value=1e8),
        worker=st.floats(min_value=1.0, max_value=1e7),
        factor=st.floats(min_value=1.0, max_value=10.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_monotone_in_demand(self, demand, worker, factor):
        assert workers_for(demand * factor, worker) >= workers_for(demand, worker)


class TestGpuModelProperties:
    @given(spec=spec_strategy)
    @settings(max_examples=30, deadline=None)
    def test_training_throughput_positive(self, spec):
        assert GpuTrainingModel().max_training_throughput(spec) > 0

    @given(spec=spec_strategy, extra_tables=st.integers(min_value=1, max_value=40))
    @settings(max_examples=30, deadline=None)
    def test_more_tables_never_faster(self, spec, extra_tables):
        bigger = dataclasses.replace(
            spec,
            num_sparse=spec.num_sparse + extra_tables,
            num_tables=spec.num_tables + extra_tables,
        )
        gpu = GpuTrainingModel()
        assert gpu.max_training_throughput(bigger) <= gpu.max_training_throughput(
            spec
        )

"""Tests for the fault-tolerant batch tier (repro.batch):

* ``BatchPolicy`` validation, worker clamp, backoff, dict round trips;
* ``BatchOutcome`` state machine;
* the shared ``JsonlJournal`` core (torn-tail healing, atomic rewrite);
* ``BatchJournal`` line shapes, resume segments, corruption handling;
* ``BatchRunner`` serial + parallel: retries, degrade vs strict, wall
  clock timeouts, SIGKILLed workers, journaled resume;
* the ``Sweep.run`` / ``run_experiments`` entry points on top of it
  (clamp fix, ``processes=0`` rejection, caching completed results even
  when a later task fails strict);
* ``repro chaos --tier batch`` invariants and the CLI's resume surface,
  including a subprocess SIGKILL of ``repro report --parallel`` whose
  resumed output must be byte-identical to an uninterrupted run.
"""

import json
import os
import signal
import subprocess
import sys
import time

import pytest

from repro.api import (
    BatchJournal,
    BatchOutcome,
    BatchPolicy,
    BatchRunner,
    ExperimentRun,
    RunStore,
    Sweep,
    run_experiments,
)
from repro.batch.policy import merge_policy
from repro.errors import (
    BatchError,
    BatchTaskError,
    ConfigurationError,
    TaskTimeoutError,
)
from repro.journal import JsonlJournal

FAST = BatchPolicy(max_retries=1, backoff_s=0.001, failure_mode="degrade")


# -- module-level worker functions (forked workers run these) ---------------

def _double(x):
    return x * 2


def _fail_on_negative(x):
    if x < 0:
        raise ValueError(f"bad input {x}")
    return x * 2


def _kill_self_on_negative(x):
    if x < 0:
        os.kill(os.getpid(), signal.SIGKILL)
    return x * 2


def _hang_on_negative(x):
    if x < 0:
        time.sleep(30.0)
    return x * 2


def _touch_then_fail(path):
    """Fails on first sight of ``path``, succeeds after (cross-process)."""
    if os.path.exists(path):
        return "recovered"
    with open(path, "w") as handle:
        handle.write("seen")
    raise RuntimeError("first attempt always fails")


# ---------------------------------------------------------------------------
# policy
# ---------------------------------------------------------------------------


class TestBatchPolicy:
    def test_defaults(self):
        policy = BatchPolicy()
        assert policy.max_retries == 1
        assert policy.failure_mode == "strict"
        assert policy.task_timeout_s is None
        assert policy.processes is None

    def test_worker_count_clamps_explicit_processes(self):
        # the Sweep.run bug: an explicit processes was not clamped to the
        # task count, spawning idle workers
        assert BatchPolicy(processes=64).worker_count(3) == 3
        assert BatchPolicy(processes=2).worker_count(10) == 2
        assert BatchPolicy(processes=4).worker_count(0) == 1
        assert BatchPolicy().worker_count(1) == 1

    def test_backoff_is_exponential(self):
        policy = BatchPolicy(backoff_s=0.1, backoff_factor=2.0)
        assert policy.backoff_for(1) == pytest.approx(0.1)
        assert policy.backoff_for(2) == pytest.approx(0.2)
        assert policy.backoff_for(3) == pytest.approx(0.4)

    @pytest.mark.parametrize("kwargs", [
        {"max_retries": -1},
        {"max_retries": 1.5},
        {"backoff_s": -0.1},
        {"backoff_factor": 0.5},
        {"task_timeout_s": 0},
        {"task_timeout_s": -1.0},
        {"failure_mode": "maybe"},
        {"processes": 0},
        {"processes": -2},
        {"processes": "4"},
    ])
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigurationError):
            BatchPolicy(**kwargs)

    def test_dict_round_trip(self):
        policy = BatchPolicy(max_retries=3, task_timeout_s=7.5,
                             failure_mode="degrade", processes=2)
        assert BatchPolicy.from_dict(policy.to_dict()) == policy

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError):
            BatchPolicy.from_dict({"max_retries": 1, "bogus": True})

    def test_merge_policy_overrides(self):
        base = BatchPolicy(max_retries=5)
        merged = merge_policy(base, processes=3, failure_mode="degrade")
        assert merged.max_retries == 5
        assert merged.processes == 3
        assert merged.failure_mode == "degrade"
        assert merge_policy(base) is base

    def test_merge_policy_validates(self):
        with pytest.raises(ConfigurationError):
            merge_policy(None, processes=0)
        with pytest.raises(ConfigurationError):
            merge_policy("not a policy")


# ---------------------------------------------------------------------------
# outcomes
# ---------------------------------------------------------------------------


class TestBatchOutcome:
    def test_ok(self):
        outcome = BatchOutcome(index=0, key="k", label="L", state="ok",
                               attempts=1, result=42)
        assert outcome.ok
        assert outcome.result == 42
        assert "result" not in outcome.to_dict()

    def test_non_ok_requires_error(self):
        with pytest.raises(BatchError):
            BatchOutcome(index=0, key="k", label="L", state="failed",
                         attempts=1)

    def test_rejects_unknown_state(self):
        with pytest.raises(BatchError):
            BatchOutcome(index=0, key="k", label="L", state="exploded",
                         attempts=1, error="x")


# ---------------------------------------------------------------------------
# shared journal core
# ---------------------------------------------------------------------------


class TestJsonlJournal:
    def test_append_and_read(self, tmp_path):
        journal = JsonlJournal(str(tmp_path / "j.jsonl"))
        journal.append('{"a": 1}')
        journal.append('{"b": 2}')
        entries = journal.read()
        assert [(t, c) for _, t, c in entries] == [
            ('{"a": 1}', True), ('{"b": 2}', True),
        ]
        assert journal.lines == 2

    def test_torn_tail_is_flagged_and_healed(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text('{"a": 1}\n{"half')  # killed mid-append
        journal = JsonlJournal(str(path))
        entries = journal.read()
        assert entries[-1][2] is False  # torn tail is incomplete
        journal.append('{"b": 2}')  # heals before appending
        assert [t for _, t, _ in journal.read()] == ['{"a": 1}', '{"b": 2}']

    def test_rewrite_replaces_contents(self, tmp_path):
        journal = JsonlJournal(str(tmp_path / "j.jsonl"))
        journal.append('{"a": 1}')
        journal.rewrite(['{"z": 9}'])
        assert [t for _, t, _ in journal.read()] == ['{"z": 9}']
        assert journal.lines == 1


# ---------------------------------------------------------------------------
# batch journal
# ---------------------------------------------------------------------------


class TestBatchJournal:
    def _journal(self, tmp_path, run_id="run1"):
        return BatchJournal(str(tmp_path / f"{run_id}.jsonl"), run_id=run_id)

    def test_for_run_rejects_bad_ids(self, tmp_path):
        for bad in ("", "../escape", "has space", None, 7):
            with pytest.raises(BatchError):
                BatchJournal.for_run(bad, root=str(tmp_path))

    def test_for_run_places_journal_under_root(self, tmp_path):
        journal = BatchJournal.for_run("smoke", root=str(tmp_path))
        assert journal.path == str(tmp_path / "smoke.jsonl")
        assert journal.run_id == "smoke"

    def test_start_run_resets_stale_journal(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.start_run(["k0"], BatchPolicy())
        journal.task_done(BatchOutcome(index=0, key="k0", label="t0",
                                       state="ok", attempts=1, result=1),
                          payload=1)
        journal.start_run(["k0"], BatchPolicy())  # fresh run, same id
        state = journal.load()
        assert state.completed() == set()
        assert state.outcomes == {}

    def test_load_reconstructs_run(self, tmp_path):
        journal = self._journal(tmp_path)
        policy = BatchPolicy(max_retries=2, failure_mode="degrade")
        journal.start_run(["k0", "k1", "k2"], policy)
        journal.task_started(0, "k0", 1)
        journal.task_done(BatchOutcome(index=0, key="k0", label="t0",
                                       state="ok", attempts=1, result="r0"),
                          payload="r0")
        journal.task_started(1, "k1", 1)
        journal.task_done(BatchOutcome(index=1, key="k1", label="t1",
                                       state="failed", attempts=2,
                                       error="boom"))
        journal.task_started(2, "k2", 1)  # in flight at the crash
        state = journal.load()
        assert state.run_id == "run1"
        assert state.keys == ("k0", "k1", "k2")
        assert BatchPolicy.from_dict(state.policy) == policy
        assert state.completed() == {0}
        assert state.outcomes[0]["result"] == "r0"
        assert state.outcomes[1]["status"] == "failed"
        assert 2 not in state.outcomes
        assert state.started == {0, 1, 2}
        assert state.max_terminal_per_segment == 1

    def test_resume_segments_supersede(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.start_run(["k0"], BatchPolicy())
        journal.task_done(BatchOutcome(index=0, key="k0", label="t0",
                                       state="failed", attempts=2,
                                       error="boom"))
        journal.mark_resume()
        journal.task_done(BatchOutcome(index=0, key="k0", label="t0",
                                       state="ok", attempts=1, result="r"),
                          payload="r")
        state = journal.load()
        assert state.resumes == 1
        assert state.completed() == {0}
        # one terminal per segment, not two in one
        assert state.max_terminal_per_segment == 1

    def test_torn_final_line_is_tolerated(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.start_run(["k0"], BatchPolicy())
        journal.task_done(BatchOutcome(index=0, key="k0", label="t0",
                                       state="ok", attempts=1, result="r"),
                          payload="r")
        with open(journal.path, "a") as handle:
            handle.write('{"type": "task", "ind')  # torn mid-append
        state = BatchJournal(journal.path, run_id="run1").load()
        assert state.completed() == {0}

    def test_interior_corruption_is_loud(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.start_run(["k0"], BatchPolicy())
        with open(journal.path, "a") as handle:
            handle.write("not json at all\n")
            handle.write(json.dumps({"type": "resume"}) + "\n")
        with pytest.raises(BatchError):
            BatchJournal(journal.path, run_id="run1").load()

    def test_key_mismatch_is_loud(self, tmp_path):
        journal = self._journal(tmp_path)
        journal.start_run(["k0"], BatchPolicy())
        journal.task_started(0, "DIFFERENT", 1)
        with pytest.raises(BatchError):
            journal.load()


# ---------------------------------------------------------------------------
# runner — serial
# ---------------------------------------------------------------------------


class TestRunnerSerial:
    def test_happy_path(self):
        runner = BatchRunner(_double, policy=FAST)
        outcomes = runner.run([1, 2, 3], parallel=False)
        assert [o.result for o in outcomes] == [2, 4, 6]
        assert all(o.ok and o.attempts == 1 for o in outcomes)

    def test_retry_then_success(self):
        calls = []

        def flaky(x):
            calls.append(x)
            if len(calls) == 1:
                raise RuntimeError("transient")
            return x

        runner = BatchRunner(
            flaky, policy=BatchPolicy(max_retries=2, backoff_s=0.001,
                                      failure_mode="degrade"))
        outcomes = runner.run([7], parallel=False)
        assert outcomes[0].ok
        assert outcomes[0].attempts == 2
        assert calls == [7, 7]

    def test_degrade_returns_failed_outcome(self):
        runner = BatchRunner(_fail_on_negative, policy=FAST)
        outcomes = runner.run([1, -1, 3], parallel=False)
        assert [o.state for o in outcomes] == ["ok", "failed", "ok"]
        failed = outcomes[1]
        assert failed.attempts == 2  # initial + 1 retry
        assert "bad input -1" in failed.error

    def test_strict_raises_typed_error(self):
        runner = BatchRunner(
            _fail_on_negative,
            policy=BatchPolicy(max_retries=0, backoff_s=0.001))
        with pytest.raises(BatchTaskError, match="failed"):
            runner.run([1, -1, 3], parallel=False)

    def test_on_outcome_sees_completions_before_strict_failure(self):
        seen = []
        runner = BatchRunner(
            _fail_on_negative,
            policy=BatchPolicy(max_retries=0, backoff_s=0.001),
            on_outcome=seen.append)
        with pytest.raises(BatchTaskError):
            runner.run([1, 2, -1], parallel=False)
        assert [o.state for o in seen] == ["ok", "ok", "failed"]

    def test_precomputed_skips_execution(self):
        def explode(x):
            raise AssertionError("must not run")

        runner = BatchRunner(explode, policy=FAST)
        outcomes = runner.run([1, 2], parallel=False,
                              precomputed={0: "a", 1: "b"})
        assert [o.result for o in outcomes] == ["a", "b"]
        assert all(o.attempts == 0 for o in outcomes)  # cache marker

    def test_rejects_bad_worker_fn_and_precomputed_range(self):
        with pytest.raises(BatchError):
            BatchRunner("not callable")
        runner = BatchRunner(_double, policy=FAST)
        with pytest.raises(BatchError):
            runner.run([1], parallel=False, precomputed={5: "x"})


# ---------------------------------------------------------------------------
# runner — parallel (real forked workers)
# ---------------------------------------------------------------------------


class TestRunnerParallel:
    def test_happy_path_matches_serial(self):
        policy = BatchPolicy(processes=2, failure_mode="degrade")
        parallel = BatchRunner(_double, policy=policy).run(list(range(6)))
        serial = BatchRunner(_double, policy=policy).run(
            list(range(6)), parallel=False)
        assert [o.result for o in parallel] == [o.result for o in serial]
        assert [o.index for o in parallel] == list(range(6))

    def test_task_exception_retries_cross_process(self, tmp_path):
        marker = str(tmp_path / "marker")
        runner = BatchRunner(
            _touch_then_fail,
            policy=BatchPolicy(max_retries=1, backoff_s=0.001,
                               failure_mode="degrade", processes=2))
        outcomes = runner.run([marker])
        assert outcomes[0].ok
        assert outcomes[0].attempts == 2
        assert outcomes[0].result == "recovered"

    def test_exhausted_retries_fail(self):
        runner = BatchRunner(
            _fail_on_negative,
            policy=BatchPolicy(max_retries=1, backoff_s=0.001,
                               failure_mode="degrade", processes=2))
        outcomes = runner.run([1, -1, 3])
        assert [o.state for o in outcomes] == ["ok", "failed", "ok"]
        assert outcomes[1].attempts == 2

    def test_sigkilled_worker_is_interrupted_not_retried(self):
        runner = BatchRunner(
            _kill_self_on_negative,
            policy=BatchPolicy(max_retries=3, backoff_s=0.001,
                               failure_mode="degrade", processes=2))
        outcomes = runner.run([1, -1, 2, 3])
        assert [o.state for o in outcomes] == [
            "ok", "interrupted", "ok", "ok"]
        interrupted = outcomes[1]
        assert interrupted.attempts == 1  # never retried
        assert "died" in interrupted.error
        assert runner.leaked_workers == 0

    def test_sigkilled_worker_raises_typed_error_in_strict(self):
        runner = BatchRunner(
            _kill_self_on_negative,
            policy=BatchPolicy(max_retries=0, backoff_s=0.001,
                               processes=2))
        with pytest.raises(BatchTaskError, match="interrupted"):
            runner.run([1, -1, 2, 3])

    def test_hung_task_times_out_and_pool_recovers(self):
        runner = BatchRunner(
            _hang_on_negative,
            policy=BatchPolicy(max_retries=0, backoff_s=0.001,
                               task_timeout_s=0.4, failure_mode="degrade",
                               processes=2))
        started = time.monotonic()
        outcomes = runner.run([1, -1, 2, 3])
        elapsed = time.monotonic() - started
        assert [o.state for o in outcomes] == ["ok", "timeout", "ok", "ok"]
        assert "task_timeout_s" in outcomes[1].error
        assert elapsed < 10.0  # watchdog, not the 30s sleep
        assert runner.leaked_workers == 0

    def test_hung_task_raises_timeout_error_in_strict(self):
        runner = BatchRunner(
            _hang_on_negative,
            policy=BatchPolicy(max_retries=0, backoff_s=0.001,
                               task_timeout_s=0.4, processes=2))
        with pytest.raises(TaskTimeoutError):
            runner.run([1, -1, 2, 3])


# ---------------------------------------------------------------------------
# runner — journal + resume
# ---------------------------------------------------------------------------


class TestRunnerResume:
    def _runner(self, fn, journal, **policy_kwargs):
        policy = BatchPolicy(max_retries=0, backoff_s=0.001,
                             failure_mode="degrade", processes=2,
                             **policy_kwargs)
        return BatchRunner(fn, policy=policy, journal=journal)

    def test_resume_skips_completed_and_reruns_failures(self, tmp_path):
        journal = BatchJournal.for_run("r1", root=str(tmp_path))
        first = self._runner(_fail_on_negative, journal)
        outcomes = first.run([1, -2, 3])
        assert [o.state for o in outcomes] == ["ok", "failed", "ok"]
        # second pass with a healthy worker function resumes the journal
        journal2 = BatchJournal.for_run("r1", root=str(tmp_path))
        second = self._runner(_double, journal2)
        resumed = second.run([1, -2, 3], resume=True)
        assert second.resumed_tasks == 2  # the two ok tasks prefilled
        assert [o.state for o in resumed] == ["ok", "ok", "ok"]
        # prefilled results replay the original payloads, the failed task
        # ran fresh
        assert [o.result for o in resumed] == [2, -4, 6]
        assert [o.attempts for o in resumed] == [1, 1, 1]
        state = journal2.load()
        assert state.resumes == 1
        assert state.completed() == {0, 1, 2}
        assert state.max_terminal_per_segment == 1

    def test_resume_requires_matching_keys(self, tmp_path):
        journal = BatchJournal.for_run("r2", root=str(tmp_path))
        self._runner(_double, journal).run([1, 2])
        fresh = BatchJournal.for_run("r2", root=str(tmp_path))
        with pytest.raises(BatchError, match="does not describe"):
            self._runner(_double, fresh).run([1, 2, 3], resume=True)

    def test_resume_without_journal_is_loud(self):
        runner = BatchRunner(_double, policy=FAST)
        with pytest.raises(BatchError, match="resume requires"):
            runner.run([1], resume=True)

    def test_interrupted_writer_reruns_started_tasks(self, tmp_path):
        # simulate a SIGKILLed batch: header + one completion + one task
        # that only ever logged "started"
        journal = BatchJournal.for_run("r3", root=str(tmp_path))
        journal.start_run(["task-0", "task-1"],
                          BatchPolicy(failure_mode="degrade"))
        journal.task_started(0, "task-0", 1)
        journal.task_done(BatchOutcome(index=0, key="task-0", label="t0",
                                       state="ok", attempts=1, result=2),
                          payload=2)
        journal.task_started(1, "task-1", 1)  # writer dies here
        fresh = BatchJournal.for_run("r3", root=str(tmp_path))
        runner = self._runner(_double, fresh)
        resumed = runner.run([1, 2], resume=True)
        assert runner.resumed_tasks == 1
        assert [o.result for o in resumed] == [2, 4]

    def test_journal_append_failures_do_not_kill_the_batch(self, tmp_path):
        from repro.faults.injector import FaultInjector, installed
        from repro.faults.plan import FaultPlan, FaultRule

        journal = BatchJournal.for_run("r4", root=str(tmp_path))
        plan = FaultPlan(seed=3, rules=(
            FaultRule(point="torn-write", action="torn", rate=1.0),))
        runner = self._runner(_double, journal)
        with installed(FaultInjector(plan)):
            outcomes = runner.run([1, 2, 3], parallel=False)
        assert [o.result for o in outcomes] == [2, 4, 6]
        assert runner.journal_errors  # every append tore, all recorded
        # the journal healed itself: still loadable
        BatchJournal.for_run("r4", root=str(tmp_path)).load()


# ---------------------------------------------------------------------------
# entry points: Sweep.run and run_experiments
# ---------------------------------------------------------------------------


class TestSweepBatch:
    def _sweep(self, systems=("Disagg", "PreSto")):
        return Sweep.grid(models=["RM1"], systems=list(systems),
                          num_gpus=[8], num_batches=10)

    @pytest.mark.parametrize("processes", [0, -1])
    def test_rejects_non_positive_processes(self, processes):
        with pytest.raises(ConfigurationError):
            self._sweep().run(processes=processes)

    def test_oversized_processes_clamps_and_completes(self):
        results = self._sweep().run(parallel=True, processes=32)
        assert len(results) == 2

    def test_parallel_matches_serial(self):
        sweep = self._sweep()
        serial = sweep.run(parallel=False)
        parallel = sweep.run(parallel=True, processes=2)
        assert [r.to_dict() for r in parallel] == [
            r.to_dict() for r in serial]

    def test_degrade_returns_outcomes(self):
        outcomes = self._sweep().run(parallel=False,
                                     failure_mode="degrade")
        assert all(isinstance(o, BatchOutcome) for o in outcomes)
        assert all(o.ok for o in outcomes)
        assert all(o.result.to_dict() for o in outcomes)

    def test_journaled_sweep_resumes(self, tmp_path):
        sweep = self._sweep()
        journal = BatchJournal.for_run("sw", root=str(tmp_path))
        first = sweep.run(parallel=False, journal=journal)
        fresh = BatchJournal.for_run("sw", root=str(tmp_path))
        resumed = sweep.run(parallel=False, journal=fresh, resume=True)
        assert [r.to_dict() for r in resumed] == [
            r.to_dict() for r in first]


class TestRunExperimentsBatch:
    @pytest.mark.parametrize("processes", [0, -3])
    def test_rejects_non_positive_processes(self, processes):
        with pytest.raises(ConfigurationError):
            run_experiments([ExperimentRun("table1")], parallel=True,
                            processes=processes)

    def test_strict_failure_still_caches_completed(self, tmp_path):
        """The satellite fix: a later task failing strict no longer
        discards results already computed — they land in the store as
        they finish."""
        from repro.api import register_experiment
        from repro.api.experiment import EXPERIMENT_REGISTRY
        from repro.experiments.table1_models import Table1Result

        @register_experiment("_batch_test_boom", title="_Batch Test Boom",
                             kind="ablation", order=99_999)
        def _boom() -> Table1Result:
            raise RuntimeError("boom")

        try:
            store = RunStore(tmp_path)
            runs = [ExperimentRun("table1"),
                    ExperimentRun("_batch_test_boom")]
            with pytest.raises(BatchTaskError):
                run_experiments(
                    runs, store=store,
                    policy=BatchPolicy(max_retries=0, backoff_s=0.001))
            # the completed first task was cached despite the batch dying
            assert store.load(ExperimentRun("table1")) is not None
        finally:
            EXPERIMENT_REGISTRY.unregister("_batch_test_boom")

    def test_degrade_marks_failures_in_partial_report(self):
        from repro.api import register_experiment
        from repro.api.experiment import EXPERIMENT_REGISTRY
        from repro.experiments import report as report_mod
        from repro.experiments.table1_models import Table1Result

        @register_experiment("_batch_test_flaky", title="_Batch Test Flaky",
                             kind="ablation", order=99_999)
        def _flaky() -> Table1Result:
            raise RuntimeError("flaky")

        try:
            results = report_mod.run_all(
                kinds=["ablation"], failure_mode="degrade",
                policy=BatchPolicy(max_retries=0, backoff_s=0.001,
                                   failure_mode="degrade"))
            marker = results["_Batch Test Flaky"]
            assert isinstance(marker, report_mod.ExperimentFailure)
            assert marker.claims() == []
            assert "FAILED" in marker.render().upper()
            rendered = report_mod.render_report(results)
            assert "_Batch Test Flaky" in rendered
        finally:
            EXPERIMENT_REGISTRY.unregister("_batch_test_flaky")

    def test_cached_results_replay_through_batch_tier(self, tmp_path):
        store = RunStore(tmp_path)
        runs = [ExperimentRun("table1")]
        first = run_experiments(runs, store=store)
        again = run_experiments(runs, store=store)
        assert first[0].to_dict() == again[0].to_dict()


# ---------------------------------------------------------------------------
# chaos --tier batch
# ---------------------------------------------------------------------------


class TestChaosBatch:
    def test_batch_matrix_holds_invariants(self, tmp_path):
        from repro.faults.chaos import check_report, run_chaos

        report = run_chaos(
            ("worker-crash", "torn-write"), seed=7, tier="batch",
            spool_root=str(tmp_path), num_jobs=4, rows=64, shards=1,
            workers=2, job_timeout_s=5.0)
        assert report["tier"] == "batch"
        check_report(report)  # raises on any violated invariant
        assert report["ok"]
        by_fault = {ep["fault"]: ep for ep in report["episodes"]}
        # the fault-free resume pass converged on all-ok
        for ep in report["episodes"]:
            assert ep["resumed_states"] == {"ok": 4}
        assert by_fault["torn-write"]["index_errors"] > 0

    def test_task_hang_episode_times_out_and_recovers(self, tmp_path):
        from repro.faults.chaos import run_batch_episode

        episode = run_batch_episode(
            "task-hang", seed=7, spool_dir=str(tmp_path), num_jobs=3,
            rows=64, shards=1, workers=2, job_timeout_s=1.0)
        assert episode["violations"] == []
        assert episode["resumed_states"] == {"ok": 3}

    def test_unknown_tier_is_rejected(self):
        from repro.faults.chaos import run_chaos

        with pytest.raises(ConfigurationError):
            run_chaos(tier="cloud")


# ---------------------------------------------------------------------------
# CLI surface
# ---------------------------------------------------------------------------


class TestCliSurface:
    def test_parser_accepts_batch_flags(self):
        from repro.cli import build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["report", "--parallel", "--run-id", "smoke",
             "--failure-mode", "degrade"])
        assert args.run_id == "smoke"
        assert args.failure_mode == "degrade"
        args = parser.parse_args(["report", "--resume", "smoke"])
        assert args.resume == "smoke"
        args = parser.parse_args(
            ["sweep", "--failure-mode", "degrade", "--task-timeout", "5",
             "--max-retries", "2", "--run-id", "sw"])
        assert args.task_timeout == 5.0
        assert args.max_retries == 2
        args = parser.parse_args(["chaos", "--tier", "batch"])
        assert args.tier == "batch"

    def test_bad_run_id_exits_loudly(self, tmp_path):
        from repro.cli import main as cli_main

        with pytest.raises(SystemExit, match="run id"):
            cli_main(["report", "--run-id", "../escape",
                      "--cache-dir", str(tmp_path)])


class TestSigkillResume:
    """The acceptance scenario: SIGKILL ``repro report --parallel``
    mid-run, resume it, and the resumed JSON output must be
    byte-identical to an uninterrupted run."""

    def _run_cli(self, args, cache_dir, **popen_kwargs):
        env = dict(os.environ)
        env["REPRO_CACHE_DIR"] = str(cache_dir)
        src = os.path.join(os.path.dirname(os.path.dirname(
            os.path.abspath(__file__))), "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.Popen(
            [sys.executable, "-m", "repro.cli"] + args,
            env=env, stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            **popen_kwargs)

    def test_sigkilled_report_resumes_byte_identical(self, tmp_path):
        base = ["report", "--parallel", "--only", "figures", "--json"]
        # reference: uninterrupted run in its own cache
        ref_proc = self._run_cli(base, tmp_path / "ref")
        ref_out, ref_err = ref_proc.communicate(timeout=300)
        assert ref_proc.returncode == 0, ref_err.decode()

        # journaled run, SIGKILLed once real work is in flight
        victim = self._run_cli(base + ["--run-id", "smoke"],
                               tmp_path / "vic", start_new_session=True)
        journal_path = tmp_path / "vic" / "batch" / "smoke.jsonl"
        deadline = time.monotonic() + 120
        while time.monotonic() < deadline and victim.poll() is None:
            try:
                if journal_path.read_text().count('"started"') >= 2:
                    break
            except OSError:
                pass
            time.sleep(0.02)
        if victim.poll() is None:
            os.killpg(victim.pid, signal.SIGKILL)
        victim.communicate(timeout=60)

        resume = self._run_cli(base + ["--resume", "smoke"],
                               tmp_path / "vic")
        res_out, res_err = resume.communicate(timeout=300)
        assert resume.returncode == 0, res_err.decode()
        assert res_out == ref_out  # byte-identical claims payload

"""Generator-based discrete-event engine.

Processes are Python generators that yield *events*:

* :class:`Timeout`  — resume after a simulated delay;
* any object with a ``_subscribe(engine, process)`` method — resource/queue
  primitives from :mod:`repro.sim.resources` implement this protocol and
  resume the process when the request is satisfied, sending a value back
  into the generator.

The event queue is a heap ordered by (time, sequence) so simultaneous events
fire in FIFO order, which keeps runs fully deterministic.

Heap entries are plain ``(time, seq, process, send_value, callback)`` tuples:
stepping a process pushes the process handle itself (the fast path, no
closure allocated per event), while arbitrary callbacks — used by resource
internals such as ``Server`` completions — ride in the last slot as a slow
path.  The (time, seq) prefix is unique, so tuple comparison never reaches
the non-comparable payload.
"""

from __future__ import annotations

import heapq
import itertools
from typing import Any, Callable, Generator, List, Optional, Tuple

from repro.errors import SimulationError

ProcessGenerator = Generator[Any, Any, None]

#: one scheduled event: (time, seq, process, send_value, callback)
_Event = Tuple[float, int, Optional["Process"], Any, Optional[Callable[[], None]]]


class Timeout:
    """Yieldable event: resume the process after ``delay`` simulated seconds."""

    __slots__ = ("delay",)

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout {delay}")
        self.delay = delay

    def __repr__(self) -> str:
        return f"Timeout({self.delay!r})"


class Process:
    """Handle for one running process; usable for completion queries."""

    __slots__ = ("name", "generator", "finished", "finish_time")

    def __init__(self, name: str, generator: ProcessGenerator) -> None:
        self.name = name
        self.generator = generator
        self.finished = False
        self.finish_time: Optional[float] = None

    def __repr__(self) -> str:
        state = "finished" if self.finished else "running"
        return f"Process({self.name!r}, {state})"


class Engine:
    """The simulation kernel: clock, event heap, process scheduler."""

    __slots__ = ("now", "_heap", "_sequence", "_processes")

    def __init__(self) -> None:
        self.now = 0.0
        self._heap: List[_Event] = []
        self._sequence = itertools.count()
        self._processes: List[Process] = []

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> None:
        """Run ``callback`` after ``delay`` simulated seconds (slow path)."""
        if delay < 0:
            raise SimulationError(f"cannot schedule into the past (delay={delay})")
        heapq.heappush(
            self._heap, (self.now + delay, next(self._sequence), None, None, callback)
        )

    def spawn(self, name: str, generator: ProcessGenerator) -> Process:
        """Register a process and schedule its first step at the current time."""
        process = Process(name, generator)
        self._processes.append(process)
        heapq.heappush(
            self._heap, (self.now, next(self._sequence), process, None, None)
        )
        return process

    def _step(self, process: Process, send_value: Any) -> None:
        """Advance one process by one yield."""
        if process.finished:
            raise SimulationError(f"stepping finished process {process.name!r}")
        try:
            event = process.generator.send(send_value)
        except StopIteration:
            process.finished = True
            process.finish_time = self.now
            return
        if type(event) is Timeout or isinstance(event, Timeout):
            # exact-type check first: the common case skips isinstance, and
            # no closure is allocated per event either way
            heapq.heappush(
                self._heap,
                (self.now + event.delay, next(self._sequence), process, None, None),
            )
        elif hasattr(event, "_subscribe"):
            event._subscribe(self, process)
        else:
            raise SimulationError(
                f"process {process.name!r} yielded unknown event {event!r}"
            )

    def resume(self, process: Process, value: Any = None) -> None:
        """Resume a process blocked on a resource event (used by resources)."""
        heapq.heappush(
            self._heap, (self.now, next(self._sequence), process, value, None)
        )

    # -- running -------------------------------------------------------------

    def run(self, until: Optional[float] = None, max_events: int = 50_000_000) -> float:
        """Execute events until the heap drains or ``until`` is reached.

        Returns the final simulated time.  ``max_events`` guards against
        accidental infinite loops in model code.
        """
        events = 0
        # hoisted out of the hot loop: the heap list, heappop, and the
        # process-step bound method are all stable for the engine's lifetime
        heap = self._heap
        heappop = heapq.heappop
        step = self._step
        now = self.now
        while heap:
            time = heap[0][0]
            if until is not None and time > until:
                self.now = until
                return until
            if time < now - 1e-12:
                raise SimulationError("event heap went backwards in time")
            _, _, process, send_value, callback = heappop(heap)
            self.now = now = time
            if process is not None:
                step(process, send_value)
            else:
                callback()
            events += 1
            if events > max_events:
                raise SimulationError(f"exceeded {max_events} events; runaway model?")
        return now

    @property
    def processes(self) -> List[Process]:
        """All processes ever spawned (finished and running)."""
        return list(self._processes)

    def all_finished(self) -> bool:
        """True when every spawned process has run to completion."""
        return all(p.finished for p in self._processes)

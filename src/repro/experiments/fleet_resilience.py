"""Fleet resilience under seeded node failures and degraded nodes.

Runs the same half-day diurnal trace twice on a heterogeneous two-pool
fleet (Disagg CPU + PreSto SmartSSD, priority placement, target-utilization
autoscaling): once clean, once with a pure-hash fault plan injecting
node-down (jobs displaced, node repairs later) and slow-node (jobs finish
late) faults.  Both runs are fully deterministic — the faulted run replays
byte-identically from its seed — so the deltas are attributable to the
plan alone.

The claims check the recovery invariants the scheduler promises: every
arrival reaches a terminal state despite hundreds of node failures, every
displaced job is rescheduled (reschedules == displacements), and queueing
SLO attainment survives the faults.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.experiments.common import (
    ExperimentResult,
    PaperClaim,
    format_table,
    register_experiment,
)
from repro.faults.injector import FaultInjector
from repro.faults.plan import FaultPlan, FaultRule
from repro.fleet import PoolSpec, generate_trace, run_fleet
from repro.hardware.calibration import CALIBRATION, Calibration

#: node-down probability per node per fault epoch
DEFAULT_DOWN_RATE = 0.004
#: slow-node probability per node per fault epoch
DEFAULT_SLOW_RATE = 0.05


@dataclass(frozen=True)
class FleetResilienceResult(ExperimentResult):
    """Clean vs faulted run of one trace on the same two-pool fleet."""

    num_jobs: int
    trace_seed: int
    clean_completed: int
    faulted_completed: int
    faulted_rejected: int
    displacements: int
    reschedules: int
    node_down_fires: int
    slow_node_fires: int
    clean_slo: float
    faulted_slo: float
    clean_p95_queue_s: float
    faulted_p95_queue_s: float
    deterministic_replay: bool  # two faulted runs → identical digest

    @property
    def all_terminal(self) -> bool:
        return self.faulted_completed + self.faulted_rejected == self.num_jobs

    def claims(self) -> List[PaperClaim]:
        return [
            PaperClaim(
                "every job terminal despite node failures",
                1.0,
                1.0 if self.all_terminal else 0.0,
                0.0,
            ),
            PaperClaim(
                "every displaced job rescheduled (reschedules == displacements)",
                1.0,
                1.0 if self.reschedules == self.displacements else 0.0,
                0.0,
            ),
            PaperClaim(
                "faulted run replays deterministically from its seed",
                1.0,
                1.0 if self.deterministic_replay else 0.0,
                0.0,
            ),
            PaperClaim(
                "queueing SLO attainment under faults",
                1.0,
                self.faulted_slo,
                0.05,
            ),
        ]

    def rows(self) -> List[Tuple]:
        return [
            ("jobs completed", self.clean_completed, self.faulted_completed),
            ("displacements", 0, self.displacements),
            ("reschedules", 0, self.reschedules),
            ("node-down fires", 0, self.node_down_fires),
            ("slow-node fires", 0, self.slow_node_fires),
            ("SLO attainment", self.clean_slo, self.faulted_slo),
            ("p95 queue (s)", self.clean_p95_queue_s, self.faulted_p95_queue_s),
        ]

    def columns(self) -> List[str]:
        return ["metric", "clean", "faulted"]

    def render(self) -> str:
        table = format_table(
            self.columns(),
            self.rows(),
            title=(
                f"Fleet resilience: {self.num_jobs}-job trace "
                f"(seed {self.trace_seed}), node-down + slow-node plan"
            ),
        )
        return table + "\n" + "\n".join(c.render() for c in self.claims())


def _pools(calibration: Calibration) -> Tuple[PoolSpec, ...]:
    return (
        PoolSpec(
            name="disagg-cpu",
            system="Disagg",
            nodes=128,
            workers_per_node=calibration.cpu_cores_per_node,
            min_nodes=32,
            max_nodes=512,
            scaleup_latency_s=120.0,
        ),
        PoolSpec(
            name="presto-ssd",
            system="PreSto",
            nodes=16,
            workers_per_node=8,
            min_nodes=8,
            max_nodes=64,
            scaleup_latency_s=120.0,
        ),
    )


@register_experiment(
    "fleet-resilience",
    title="Fleet resilience: failure injection",
    kind="ablation",
    order=280,
)
def run(
    num_jobs: int = 240,
    seed: int = 11,
    down_rate: float = DEFAULT_DOWN_RATE,
    slow_rate: float = DEFAULT_SLOW_RATE,
    calibration: Calibration = CALIBRATION,
) -> FleetResilienceResult:
    """Clean run, then two identical faulted runs (replay check)."""
    trace = generate_trace(
        "diurnal",
        num_jobs=num_jobs,
        seed=seed,
        horizon_s=12 * 3600.0,
        mean_duration_s=3600.0,
    )
    pools = _pools(calibration)

    def simulate(injector=None):
        return run_fleet(
            trace,
            pools=pools,
            policy="priority",
            autoscaler="target-utilization",
            calibration=calibration,
            injector=injector,
        )

    plan = FaultPlan(
        seed=seed,
        rules=(
            FaultRule(point="node-down", rate=down_rate),
            FaultRule(point="slow-node", rate=slow_rate, delay_s=300.0),
        ),
    )
    clean = simulate()
    faulted = simulate(FaultInjector(plan))
    replay = simulate(FaultInjector(plan))
    fires = faulted.fault_fires
    return FleetResilienceResult(
        num_jobs=len(trace),
        trace_seed=seed,
        clean_completed=clean.completed,
        faulted_completed=faulted.completed,
        faulted_rejected=faulted.rejected,
        displacements=faulted.displacements,
        reschedules=faulted.reschedules,
        node_down_fires=fires.get("node-down:down", 0),
        slow_node_fires=fires.get("slow-node:slow", 0),
        clean_slo=clean.slo_attainment,
        faulted_slo=faulted.slo_attainment,
        clean_p95_queue_s=clean.p95_queue_s,
        faulted_p95_queue_s=faulted.p95_queue_s,
        deterministic_replay=faulted.digest == replay.digest,
    )

"""Clamp and list-truncation operators.

Two more transformations from TorchArrow's production DLRM recipes:

* :func:`clamp` — bound dense values into ``[low, high]`` before Log, which
  tames corrupt outliers in logged counters;
* :func:`truncate_list` — cap each sparse feature list at ``max_length``
  ids (keeping the most recent, i.e. the tail), bounding the embedding
  lookup work per sample.  Production pipelines truncate long interaction
  histories exactly this way.

Both are elementwise/rowwise and carry the same inter-/intra-feature
parallelism as the three headline ops.
"""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.errors import OpError


def clamp(values: np.ndarray, low: float, high: float) -> np.ndarray:
    """Clamp a dense column into ``[low, high]`` (NaNs pass through)."""
    if low > high:
        raise OpError(f"clamp range is empty: [{low}, {high}]")
    values = np.asarray(values)
    if values.ndim != 1:
        raise OpError(f"clamp input must be 1-D, got shape {values.shape}")
    return np.clip(values, low, high).astype(np.float32)


def truncate_list(
    lengths: np.ndarray, values: np.ndarray, max_length: int
) -> Tuple[np.ndarray, np.ndarray]:
    """Keep at most the last ``max_length`` ids of every row's list.

    Keeping the tail preserves the most recent interactions, matching the
    recency bias of production history truncation.
    """
    if max_length <= 0:
        raise OpError("max_length must be positive")
    lengths = np.asarray(lengths, dtype=np.int32)
    values = np.asarray(values, dtype=np.int64)
    if lengths.ndim != 1 or values.ndim != 1:
        raise OpError("truncate_list inputs must be 1-D")
    if int(lengths.sum()) != len(values):
        raise OpError("lengths do not sum to len(values)")
    if not len(lengths) or lengths.max(initial=0) <= max_length:
        return lengths.copy(), values.copy()

    new_lengths = np.minimum(lengths, max_length)
    out = np.empty(int(new_lengths.sum()), dtype=np.int64)
    in_offsets = np.concatenate(([0], np.cumsum(lengths)))
    out_offsets = np.concatenate(([0], np.cumsum(new_lengths)))
    for row in range(len(lengths)):
        stop = in_offsets[row + 1]
        start = stop - new_lengths[row]  # tail of the row's list
        out[out_offsets[row] : out_offsets[row + 1]] = values[start:stop]
    return new_lengths, out

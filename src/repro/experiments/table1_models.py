"""Table I — dataset/model configurations (echo + structural validation).

The configurations are inputs, not results, so this 'experiment' validates
the reproduction's specs against the table's published values and renders
the same rows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.experiments.common import (
    ExperimentResult,
    format_table,
    models,
    register_experiment,
)

#: Table I verbatim: (dense, sparse, avg len, generated, bucket, tables)
PAPER_TABLE1: Dict[str, Tuple[int, int, int, int, int, int]] = {
    "RM1": (13, 26, 1, 13, 1024, 39),
    "RM2": (504, 42, 20, 21, 1024, 63),
    "RM3": (504, 42, 20, 42, 1024, 84),
    "RM4": (504, 42, 20, 42, 2048, 84),
    "RM5": (504, 42, 20, 42, 4096, 84),
}


@dataclass(frozen=True)
class Table1Result(ExperimentResult):
    """Spec rows plus their match against the published table."""

    rows_by_model: Dict[str, Tuple[int, int, int, int, int, int]]

    @property
    def matches_paper(self) -> bool:
        """Exact equality with the published Table I."""
        return self.rows_by_model == PAPER_TABLE1

    def mismatches(self) -> List[str]:
        """Models whose configuration differs from the paper."""
        return [
            name
            for name, row in self.rows_by_model.items()
            if PAPER_TABLE1.get(name) != row
        ]

    def rows(self) -> List[Tuple]:
        return [
            (name,) + row + ("yes" if PAPER_TABLE1.get(name) == row else "NO",)
            for name, row in self.rows_by_model.items()
        ]

    def columns(self) -> List[str]:
        return [
            "model",
            "dense",
            "sparse",
            "avg len",
            "generated",
            "bucket",
            "tables",
            "matches paper",
        ]

    def render(self) -> str:
        return format_table(
            self.columns(),
            self.rows(),
            title="Table I: model/dataset configurations",
        )


@register_experiment("table1", title="Table I", kind="table", order=50)
def run() -> Table1Result:
    """Validate the reproduced Table I."""
    rows = {
        spec.name: (
            spec.num_dense,
            spec.num_sparse,
            spec.avg_sparse_length,
            spec.num_generated_sparse,
            spec.bucket_size,
            spec.num_tables,
        )
        for spec in models()
    }
    return Table1Result(rows_by_model=rows)

"""The chaos harness — a seeded fault matrix against a live service.

``repro chaos`` (and :func:`run_chaos`, its library form) runs one
*episode* per requested fault class: it starts a real
:class:`~repro.serve.PreprocessService` behind a real
:class:`~repro.serve.ServiceServer`, installs a seeded
:class:`~repro.faults.FaultInjector`, submits a stream of jobs through the
socket protocol, and then asserts the service's survival invariants:

1. **every job reaches a terminal state** — nothing queued, running, or
   interrupted survives the drain;
2. **completed digests are byte-identical to the serial path** — faults
   may fail jobs, but they may never corrupt output silently;
3. **no duplicate completions** — the JSONL index holds at most one
   terminal line per job;
4. **no leaked or hung workers** — ``alive_workers == workers`` after the
   last job settles (crashed and timed-out workers were replaced).

Everything in an episode's report except wall time is deterministic for a
fixed seed: fault firing hashes (seed, point, job identity), jobs are
submitted from one thread, and each job's outcome is decided by its own
hash — so ``repro chaos --seed 7`` twice yields the same report, and a
failing seed replays exactly.
"""

from __future__ import annotations

import os
import time
from typing import Any, Callable, Dict, List, Optional, Sequence

from repro.api.preprocess import PreprocessJob
from repro.errors import ChaosError, ConfigurationError, ReproError
from repro.faults.injector import FaultInjector, installed
from repro.faults.plan import FAULT_POINTS, FaultPlan, FaultRule

#: the default matrix CI smokes: crash, hang, and torn-index classes
DEFAULT_FAULTS = ("worker-crash", "hung-stage", "torn-write")

#: the batch tier's default matrix (task-hang replaces hung-stage — the
#: batch runner's watchdog deadline lives at the task, not the stage)
DEFAULT_BATCH_FAULTS = ("worker-crash", "task-hang", "torn-write")

#: the fleet tier's matrix: node failures, degraded nodes, flash crowds
DEFAULT_FLEET_FAULTS = ("node-down", "slow-node", "arrival-burst")

#: the chaos tiers: a live streaming service, a batch runner fan-out, or
#: a simulated fleet
CHAOS_TIERS = ("serve", "batch", "fleet")

#: per-class default rates — roughly half the jobs get hit, deterministically
#: (fleet rates are per node-epoch / per arrival, so they sit much lower)
_DEFAULT_RATES = {
    "worker-crash": 0.45,
    "task-hang": 0.4,
    "hung-stage": 0.4,
    "slow-stage": 0.6,
    "stage-error": 0.5,
    "torn-write": 0.5,
    "disk-full": 0.5,
    "conn-drop": 0.3,
    "queue-stall": 0.5,
    "row-corrupt": 0.4,
    "node-down": 0.01,
    "slow-node": 0.05,
    "arrival-burst": 0.03,
}


def plan_for(
    fault: str, seed: int, job_timeout_s: float, rate: Optional[float] = None
) -> FaultPlan:
    """The canonical single-class plan an episode runs under."""
    if fault not in FAULT_POINTS:
        raise ConfigurationError(
            f"unknown fault class {fault!r}; known: "
            f"{', '.join(sorted(FAULT_POINTS))}"
        )
    rule = FaultRule(
        point=fault,
        rate=rate if rate is not None else _DEFAULT_RATES[fault],
        # a hang must outlive the watchdog deadline by a wide margin so the
        # watchdog — not the hang expiring — is what resolves the job
        delay_s=(
            job_timeout_s * 10.0 + 5.0
            if fault in ("hung-stage", "task-hang")
            else 0.02 if fault in ("slow-stage", "queue-stall") else None
        ),
    )
    return FaultPlan(seed=seed, rules=(rule,))


def _submit_all(
    client, jobs: List[PreprocessJob], retries: int = 5
) -> int:
    """Submit every job, retrying dropped replies; returns acked count."""
    from repro.errors import ProtocolError, ServeError

    acked = 0
    for job in jobs:
        for _ in range(retries):
            try:
                client.submit(job)
                acked += 1
                break
            except (ProtocolError, ServeError):
                # a dropped reply may or may not have landed server-side;
                # resubmitting is safe — duplicates are distinct job ids
                # with identical specs, and the digest invariant covers both
                continue
    return acked


def run_episode(
    fault: str,
    seed: int,
    spool_dir: str,
    num_jobs: int = 6,
    rows: int = 512,
    shards: int = 2,
    workers: int = 2,
    queue_capacity: int = 16,
    job_timeout_s: float = 5.0,
    model: str = "RM1",
    rate: Optional[float] = None,
    wait_timeout: float = 120.0,
    runner: Optional[Callable] = None,
    verify_serial: bool = True,
) -> Dict[str, Any]:
    """One fault class against one live service; returns the episode report.

    ``runner``/``verify_serial`` exist for the benchmark harness (a stub
    data plane has no serial digest to verify against); ``repro chaos``
    always runs the real runner with verification on.
    """
    from repro.serve import JobLogIndex, PreprocessService, ServiceClient, ServiceServer

    plan = plan_for(fault, seed, job_timeout_s, rate=rate)
    injector = FaultInjector(plan)
    violations: List[str] = []
    started = time.perf_counter()
    with installed(injector):
        service = PreprocessService(
            spool_dir=spool_dir,
            queue_capacity=queue_capacity,
            num_workers=workers,
            max_retries=1,
            backoff_s=0.01,
            job_timeout_s=job_timeout_s,
            runner=runner,
        )
        server = ServiceServer(service)
        server.start()
        try:
            client = ServiceClient(host=server.host, port=server.port)
            jobs = [
                PreprocessJob(
                    model=model, num_rows=rows, num_shards=shards, seed=k
                )
                for k in range(num_jobs)
            ]
            acked = _submit_all(client, jobs)
            if acked < len(jobs) and len(service.jobs()) < len(jobs):
                # fewer service-side records than requested jobs means at
                # least one submission truly vanished (not just a dropped
                # ack) — the invariants below would silently gate over a
                # smaller workload, so record it as a violation
                violations.append(
                    f"lost submissions: {acked}/{len(jobs)} acked, "
                    f"{len(service.jobs())} jobs recorded service-side"
                )
            # wait on the service's own ledger: a dropped submit reply can
            # leave a job the client never heard about
            deadline = time.monotonic() + wait_timeout
            for record in service.jobs():
                remaining = max(0.1, deadline - time.monotonic())
                try:
                    service.wait(record.job_id, timeout=remaining)
                except TimeoutError:
                    violations.append(
                        f"{record.job_id} never reached a terminal state "
                        f"(stuck {service.status(record.job_id).state})"
                    )
            # every death/timeout must have been answered with a replacement
            for _ in range(50):
                if service.pool.alive_workers() == workers:
                    break
                time.sleep(0.05)
            alive = service.pool.alive_workers()
            if alive != workers:
                violations.append(
                    f"worker leak: {alive} alive workers, expected {workers}"
                )
        finally:
            server.stop(drain=True, timeout=60.0)

    records = service.jobs()
    counts: Dict[str, int] = {}
    for record in records:
        counts[record.state] = counts.get(record.state, 0) + 1
    for record in records:
        if not record.is_terminal:
            violations.append(
                f"{record.job_id} ended non-terminal ({record.state})"
            )

    digests_checked = 0
    if verify_serial and runner is None:
        serial_digests: Dict[PreprocessJob, str] = {}
        for record in records:
            if record.state != "completed":
                continue
            expected = serial_digests.get(record.job)
            if expected is None:
                expected = record.job.run(parallel=False).digest
                serial_digests[record.job] = expected
            digests_checked += 1
            if record.digest != expected:
                violations.append(
                    f"{record.job_id} digest {record.digest} != serial "
                    f"{expected}"
                )

    # the index must have survived every injected spool fault: still
    # loadable, and never more than one terminal line per job
    index_path = os.path.join(spool_dir, "jobs.jsonl")
    terminal_lines: Dict[str, int] = {}
    try:
        for loaded in JobLogIndex(index_path).load():
            pass
        import json as _json

        with open(index_path) as handle:
            lines = handle.readlines()
        for number, line in enumerate(lines, start=1):
            text = line.strip()
            if not text:
                continue
            try:
                payload = _json.loads(text)
            except ValueError as exc:
                if number == len(lines) and not line.endswith("\n"):
                    continue  # torn final append — load() tolerates it too
                raise ReproError(f"line {number}: {exc}")
            if payload.get("state") in ("completed", "failed", "cancelled"):
                key = payload["job_id"]
                terminal_lines[key] = terminal_lines.get(key, 0) + 1
    except (ReproError, OSError, ValueError) as exc:
        violations.append(f"job index unreadable after faults: {exc}")
    duplicates = {k: n for k, n in terminal_lines.items() if n > 1}
    if duplicates:
        violations.append(f"duplicate terminal index lines: {duplicates}")

    return {
        "fault": fault,
        "plan": plan.to_dict(),
        "jobs": len(records),
        "states": dict(sorted(counts.items())),
        "fired": injector.fire_counts(),
        "digests_checked": digests_checked,
        "index_errors": len(service.index_errors),
        "violations": violations,
        "elapsed_s": time.perf_counter() - started,
    }


def _chaos_batch_task(job: PreprocessJob) -> str:
    """Module-level batch worker: one job's serial content digest."""
    return job.run(parallel=False).digest


def _batch_task_key(index: int, job: PreprocessJob) -> str:
    """Content digest of one batch task — the journal's task identity."""
    import hashlib
    import json as _json

    return hashlib.sha256(
        _json.dumps(job.to_dict(), sort_keys=True).encode("utf-8")
    ).hexdigest()


def run_batch_episode(
    fault: str,
    seed: int,
    spool_dir: str,
    num_jobs: int = 6,
    rows: int = 512,
    shards: int = 2,
    workers: int = 2,
    job_timeout_s: float = 5.0,
    model: str = "RM1",
    rate: Optional[float] = None,
    verify_serial: bool = True,
    **_ignored: Any,
) -> Dict[str, Any]:
    """One fault class against the batch runner; returns the episode report.

    The episode fans ``num_jobs`` preprocessing jobs across a
    :class:`~repro.batch.runner.BatchRunner` (degrade mode, journaled
    under ``spool_dir``) with the injector installed, then gates the
    batch tier's four invariants: every task terminal, ok digests equal
    to the serial path, journal loadable with at most one terminal line
    per task per run segment, and no leaked worker processes.  A final
    resume pass *without* the injector must then complete every task with
    serial-identical digests — the crash-recovery guarantee itself.

    Keyword names mirror :func:`run_episode` (``workers`` is the process
    count, ``job_timeout_s`` the per-task watchdog deadline) so one CLI
    drives both tiers; serve-only kwargs are accepted and ignored.
    """
    from repro.batch import BatchJournal, BatchPolicy, BatchRunner

    plan = plan_for(fault, seed, job_timeout_s, rate=rate)
    injector = FaultInjector(plan)
    violations: List[str] = []
    started = time.perf_counter()
    jobs = [
        PreprocessJob(model=model, num_rows=rows, num_shards=shards, seed=k)
        for k in range(num_jobs)
    ]
    policy = BatchPolicy(
        max_retries=1,
        backoff_s=0.01,
        task_timeout_s=job_timeout_s,
        failure_mode="degrade",
        processes=workers,
    )
    journal = BatchJournal(
        os.path.join(spool_dir, "batch.jsonl"), run_id=f"chaos-{fault}"
    )
    runner = BatchRunner(
        _chaos_batch_task,
        policy=policy,
        journal=journal,
        task_key=_batch_task_key,
    )
    with installed(injector):
        outcomes = runner.run(jobs, parallel=True)

    counts: Dict[str, int] = {}
    for outcome in outcomes:
        counts[outcome.state] = counts.get(outcome.state, 0) + 1
    # invariant 1: every task ended in a terminal outcome
    if len(outcomes) != num_jobs:
        violations.append(
            f"only {len(outcomes)}/{num_jobs} tasks reached a terminal "
            f"outcome"
        )
    # invariant 2: completed digests byte-identical to the serial path
    digests_checked = 0
    serial_digests: Dict[PreprocessJob, str] = {}
    if verify_serial:
        for outcome in outcomes:
            if not outcome.ok:
                continue
            job = jobs[outcome.index]
            expected = serial_digests.get(job)
            if expected is None:
                expected = job.run(parallel=False).digest
                serial_digests[job] = expected
            digests_checked += 1
            if outcome.result != expected:
                violations.append(
                    f"task {outcome.index} digest {outcome.result} != "
                    f"serial {expected}"
                )
    # invariant 3: the journal survived every injected fault — loadable,
    # and never more than one terminal line per task per run segment
    try:
        state = journal.load()
        if state.max_terminal_per_segment > 1:
            violations.append(
                f"duplicate terminal journal lines: a task got "
                f"{state.max_terminal_per_segment} in one run segment"
            )
    except ReproError as exc:
        violations.append(f"batch journal unreadable after faults: {exc}")
    # invariant 4: every crashed/stuck worker was reaped, none leaked
    if runner.leaked_workers:
        violations.append(
            f"worker leak: {runner.leaked_workers} worker process(es) "
            f"survived shutdown"
        )
    # recovery: resuming WITHOUT the injector must finish every task and
    # converge on the serial digests
    resumed_states: Dict[str, int] = {}
    if verify_serial:
        resumer = BatchRunner(
            _chaos_batch_task,
            policy=policy,
            journal=BatchJournal(journal.path, run_id=journal.run_id),
            task_key=_batch_task_key,
        )
        try:
            resumed = resumer.run(jobs, parallel=True, resume=True)
        except ReproError as exc:
            violations.append(f"resume after faults failed: {exc}")
        else:
            for outcome in resumed:
                resumed_states[outcome.state] = (
                    resumed_states.get(outcome.state, 0) + 1
                )
                if not outcome.ok:
                    violations.append(
                        f"task {outcome.index} still {outcome.state} after "
                        f"fault-free resume: {outcome.error}"
                    )
                    continue
                job = jobs[outcome.index]
                expected = serial_digests.get(job)
                if expected is None:
                    expected = job.run(parallel=False).digest
                    serial_digests[job] = expected
                if outcome.result != expected:
                    violations.append(
                        f"task {outcome.index} resume digest "
                        f"{outcome.result} != serial {expected}"
                    )

    return {
        "fault": fault,
        "plan": plan.to_dict(),
        "jobs": len(outcomes),
        "states": dict(sorted(counts.items())),
        "resumed_states": dict(sorted(resumed_states.items())),
        "fired": injector.fire_counts(),
        "digests_checked": digests_checked,
        "index_errors": len(runner.journal_errors),
        "violations": violations,
        "elapsed_s": time.perf_counter() - started,
    }


def _fleet_episode_pools():
    """Small two-pool fleet the chaos episodes attack (fast, heterogeneous)."""
    from repro.fleet.simulator import PoolSpec

    return (
        PoolSpec(
            name="disagg-cpu", system="Disagg", nodes=48,
            workers_per_node=32, min_nodes=16, max_nodes=96,
            scaleup_latency_s=120.0,
        ),
        PoolSpec(
            name="presto-ssd", system="PreSto", nodes=8,
            workers_per_node=8, min_nodes=4, max_nodes=32,
            scaleup_latency_s=120.0,
        ),
    )


def run_fleet_episode(
    fault: str,
    seed: int,
    spool_dir: str,
    num_jobs: int = 6,
    rate: Optional[float] = None,
    job_timeout_s: float = 5.0,
    trace_kind: str = "diurnal",
    policy: str = "first-fit",
    autoscaler: str = "target-utilization",
    **_ignored: Any,
) -> Dict[str, Any]:
    """One fleet fault class against the simulated cluster scheduler.

    The serve/batch tiers submit ``num_jobs`` real jobs; a fleet needs
    hundreds of arrivals before scheduling is interesting, so the episode
    replays a seeded trace of ``20 x num_jobs`` arrivals over six
    simulated hours.  Invariants gated:

    1. **every job terminal** — completed or rejected, nothing queued or
       running after the drain;
    2. **displaced jobs rescheduled exactly once** per displacement —
       displacements are counted when a node failure kills an
       allocation, reschedules when the displaced job later wins
       capacity again, so the two counters witness independent code
       paths and must agree per job (and every displaced job must end
       the run completed — displacement never strands or rejects a job
       the fleet already admitted);
    3. **job conservation** — completed + rejected equals the jobs that
       arrived (trace arrivals plus injected burst clones);
    4. **deterministic report** — a second run under a fresh injector
       yields the byte-identical :class:`FleetResult` digest.

    Keyword names mirror :func:`run_episode` so one CLI drives every
    tier; serve/batch-only kwargs are accepted and ignored.  The run's
    ``FleetResult`` JSON lands in ``spool_dir/fleet_result.json`` for CI
    artifact upload and ``repro trend record --fleet-result``.
    """
    import json as _json

    from repro.fleet.simulator import FleetSimulator
    from repro.fleet.trace import generate_trace

    plan = plan_for(fault, seed, job_timeout_s, rate=rate)
    violations: List[str] = []
    started = time.perf_counter()
    trace = generate_trace(
        trace_kind,
        num_jobs=max(1, num_jobs) * 20,
        seed=seed,
        horizon_s=6 * 3600.0,
        mean_duration_s=1200.0,
    )

    def one_run():
        injector = FaultInjector(plan)
        simulator = FleetSimulator(
            trace,
            pools=_fleet_episode_pools(),
            policy=policy,
            autoscaler=autoscaler,
            injector=injector,
        )
        return simulator.run(), injector

    result, injector = one_run()
    replay, _ = one_run()

    if not result.all_terminal():
        stuck = [j.job_id for j in result.jobs if not j.terminal]
        violations.append(f"non-terminal jobs after drain: {stuck[:5]}")
    # displacements count node-failure evictions, reschedules count the
    # displaced job winning capacity again — independent paths, so a
    # lost or doubled requeue shows up as a per-job mismatch here
    for job in result.jobs:
        if job.reschedules != job.displacements:
            violations.append(
                f"job {job.job_id!r} displaced {job.displacements}x but "
                f"rescheduled {job.reschedules}x"
            )
        if job.displacements > 0 and job.state != "completed":
            violations.append(
                f"displaced job {job.job_id!r} ended {job.state!r}, "
                "not completed"
            )
    if result.completed + result.rejected != result.num_jobs:
        violations.append(
            f"job conservation broken: {result.completed} completed + "
            f"{result.rejected} rejected != {result.num_jobs} jobs"
        )
    digests_checked = 1
    if replay.digest != result.digest:
        violations.append(
            f"nondeterministic fleet run: digest {result.digest} != "
            f"replay {replay.digest}"
        )

    os.makedirs(spool_dir, exist_ok=True)
    with open(os.path.join(spool_dir, "fleet_result.json"), "w") as handle:
        _json.dump(result.to_dict(), handle, indent=1)

    return {
        "fault": fault,
        "plan": plan.to_dict(),
        "jobs": result.num_jobs,
        "states": {
            "completed": result.completed,
            "rejected": result.rejected,
        },
        "displacements": result.displacements,
        "reschedules": result.reschedules,
        "digest": result.digest,
        "fired": injector.fire_counts(),
        "digests_checked": digests_checked,
        "index_errors": 0,
        "violations": violations,
        "elapsed_s": time.perf_counter() - started,
    }


def run_chaos(
    faults: Optional[Sequence[str]] = None,
    seed: int = 0,
    spool_root: Optional[str] = None,
    tier: str = "serve",
    **episode_kwargs: Any,
) -> Dict[str, Any]:
    """Run one episode per fault class; returns the full matrix report.

    ``tier`` picks the surface under test: ``serve`` drives a live
    streaming service (:func:`run_episode`), ``batch`` drives the
    fault-tolerant batch runner (:func:`run_batch_episode`), ``fleet``
    drives the simulated cluster scheduler (:func:`run_fleet_episode`).
    ``faults`` defaults to the tier's canonical matrix.  The report's
    ``ok`` is True iff no episode recorded a violation.  Everything
    except the ``elapsed_s`` fields is deterministic for a fixed seed
    (see :func:`deterministic_view`).
    """
    import shutil
    import tempfile

    if tier not in CHAOS_TIERS:
        raise ConfigurationError(
            f"tier must be one of {CHAOS_TIERS}, got {tier!r}"
        )
    defaults = {
        "serve": DEFAULT_FAULTS,
        "batch": DEFAULT_BATCH_FAULTS,
        "fleet": DEFAULT_FLEET_FAULTS,
    }
    episodes_by_tier = {
        "serve": run_episode,
        "batch": run_batch_episode,
        "fleet": run_fleet_episode,
    }
    if faults is None:
        faults = defaults[tier]
    episode = episodes_by_tier[tier]
    owned = spool_root is None
    root = spool_root or tempfile.mkdtemp(prefix="repro-chaos-")
    started = time.perf_counter()
    episodes = []
    try:
        for fault in faults:
            spool = os.path.join(root, fault)
            episodes.append(
                episode(fault, seed=seed, spool_dir=spool, **episode_kwargs)
            )
    finally:
        if owned:
            shutil.rmtree(root, ignore_errors=True)
    return {
        "schema_version": 1,
        "seed": seed,
        "tier": tier,
        "faults": list(faults),
        "episodes": episodes,
        "ok": all(not ep["violations"] for ep in episodes),
        "elapsed_s": time.perf_counter() - started,
    }


def deterministic_view(report: Dict[str, Any]) -> Dict[str, Any]:
    """The report minus wall-time — byte-identical run-to-run per seed."""
    view = {k: v for k, v in report.items() if k != "elapsed_s"}
    view["episodes"] = [
        {k: v for k, v in ep.items() if k != "elapsed_s"}
        for ep in report["episodes"]
    ]
    return view


def check_report(report: Dict[str, Any]) -> None:
    """Raise :class:`ChaosError` naming every violation (CI's gate)."""
    problems = [
        f"[{ep['fault']}] {violation}"
        for ep in report["episodes"]
        for violation in ep["violations"]
    ]
    if problems:
        raise ChaosError(
            "chaos invariants violated:\n  " + "\n  ".join(problems)
        )


def render_report(report: Dict[str, Any]) -> str:
    """Human-readable episode table."""
    from repro.experiments.common import format_table

    rows = []
    for ep in report["episodes"]:
        states = ", ".join(f"{k}={v}" for k, v in ep["states"].items())
        fired = ", ".join(
            f"{k}x{v}" for k, v in ep["fired"].items()
        ) or "none"
        rows.append(
            (
                ep["fault"],
                ep["jobs"],
                states,
                fired,
                ep["digests_checked"],
                len(ep["violations"]),
                f"{ep['elapsed_s']:.2f}",
            )
        )
    title = (
        f"Chaos matrix (seed {report['seed']}): "
        + ("all invariants held" if report["ok"] else "VIOLATIONS")
    )
    return format_table(
        ("fault", "jobs", "states", "fired", "digests", "violations", "s"),
        rows,
        title,
    )

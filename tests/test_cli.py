"""Tests for the command-line interface."""

import pytest

from repro.cli import COMMAND_IDS, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_known_commands(self):
        parser = build_parser()
        assert parser.parse_args(["report"]).command == "report"
        assert parser.parse_args(["list"]).command == "list"
        args = parser.parse_args(["run", "fig12", "fig13"])
        assert args.ids == ["fig12", "fig13"]
        args = parser.parse_args(["provision", "RM5", "--gpus", "4"])
        assert args.model == "RM5"
        assert args.gpus == 4


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for command_id in COMMAND_IDS:
            assert command_id in out

    def test_run_single(self, capsys):
        assert main(["run", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out

    def test_run_ablation(self, capsys):
        assert main(["run", "abl-lanes"]) == 0
        assert "lane sweep" in capsys.readouterr().out

    def test_run_unknown_id(self):
        with pytest.raises(SystemExit, match="unknown experiment"):
            main(["run", "fig99"])

    def test_provision(self, capsys):
        assert main(["provision", "RM5"]) == 0
        out = capsys.readouterr().out
        assert "PreSto" in out
        assert "367" in out  # the Disagg allocation

    def test_provision_lowercase(self, capsys):
        assert main(["provision", "rm1"]) == 0
        assert "RM1" in capsys.readouterr().out

    def test_every_run_id_works(self, capsys):
        # the cheap ones; fig11/15 style experiments are covered elsewhere
        for command_id in ("fig3", "fig6", "table2", "abl-batch"):
            assert main(["run", command_id]) == 0
        assert capsys.readouterr().out


class TestExport:
    def test_export_selected(self, tmp_path, capsys):
        from repro.cli import main as cli_main

        assert cli_main(["export", "--dir", str(tmp_path), "fig4", "table1"]) == 0
        files = sorted(p.name for p in tmp_path.iterdir())
        assert files == ["fig4.csv", "table1.csv"]
        content = (tmp_path / "fig4.csv").read_text()
        assert "RM5" in content and "367" in content


class TestBench:
    def test_bench_quick_writes_json(self, tmp_path, capsys):
        import json

        out_path = tmp_path / "BENCH_kernels.json"
        # tiny seed-stable run; --quick keeps it a few seconds
        assert main(["bench", "--quick", "--out", str(out_path)]) == 0
        table = capsys.readouterr().out
        assert "varint_encode" in table
        assert "rowfile_write" in table

        report = json.loads(out_path.read_text())
        assert report["schema_version"] == 1
        assert report["quick"] is True
        ops = {entry["op"] for entry in report["results"]}
        assert {
            "varint_encode",
            "varint_decode",
            "varint_roundtrip",
            "rle_encode",
            "rle_decode",
            "rowfile_write",
            "rowfile_read",
            "ingestion_assembly",
            "engine_events",
            "sigrid_hash",
        } <= ops
        for entry in report["results"]:
            assert entry["elapsed_s"] > 0
            assert entry["ns_per_element"] > 0
            assert entry["mb_per_s"] > 0
        # every scalar/vectorized pair carries the measured speedup
        speedups = [
            entry["speedup_vs_scalar"]
            for entry in report["results"]
            if entry["variant"] == "vectorized" and "speedup_vs_scalar" in entry
        ]
        assert len(speedups) >= 5
        assert all(s > 0 for s in speedups)

    def test_bench_json_mode_skips_table(self, tmp_path, capsys):
        import json

        assert main(["bench", "--quick", "--json", "--out", ""]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["quick"] is True


class TestPreprocess:
    def test_parser_defaults(self):
        args = build_parser().parse_args(["preprocess"])
        assert args.model == "RM1"
        assert args.shards == 1
        assert not args.check

    def test_serial_run_with_check_flag_ignored(self, capsys):
        # --check is meaningful only for parallel runs; serial just runs
        assert main(
            ["preprocess", "--rows", "64", "--shards", "2", "--serial",
             "--check"]
        ) == 0
        out = capsys.readouterr().out
        assert "digest" in out
        assert "rows/s" in out.replace(",", "")
        assert "byte-identical" not in out  # no redundant serial self-check

    def test_check_asserts_byte_identity(self, capsys):
        assert main(
            ["preprocess", "--rows", "48", "--shards", "4", "--processes",
             "2", "--check"]
        ) == 0
        assert "byte-identical" in capsys.readouterr().out

    def test_json_payload(self, capsys):
        import json as json_mod

        assert main(
            ["preprocess", "--rows", "32", "--shards", "2", "--serial",
             "--json"]
        ) == 0
        payload = json_mod.loads(capsys.readouterr().out)
        assert payload["num_shards"] == 2
        assert payload["num_rows"] == 32
        assert payload["job"]["model"] == "RM1"
        assert len(payload["digest"]) == 64

    def test_unknown_model_exits(self):
        with pytest.raises(SystemExit, match="unknown model"):
            main(["preprocess", "--model", "RM99", "--rows", "16"])

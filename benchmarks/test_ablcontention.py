"""Benchmark: fleet network-contention study."""

from conftest import assert_claims, report

from repro.experiments import abl_network_contention


def test_ablcontention(benchmark):
    """Time the network-contention study and verify its shape claims."""
    result = benchmark(abl_network_contention.run)
    report(result)
    assert_claims(result)

"""Benchmark: regenerate the paper's Fig16 via repro.experiments.fig16_alternatives."""

from conftest import assert_claims, report

from repro.experiments import fig16_alternatives


def test_fig16(benchmark):
    """Time the fig16 experiment and verify its paper claims."""
    result = benchmark(fig16_alternatives.run)
    report(result)
    assert_claims(result)

"""T/P provisioning — step 2 of the Figure 9 software flow.

The train manager stress-tests the GPUs to find the maximum training
throughput ``T``; the preprocess manager measures one worker's preprocessing
throughput ``P`` offline; the number of workers to allocate is ``ceil(T/P)``
so preprocessing never starves the trainers.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.errors import ProvisioningError
from repro.features.specs import ModelSpec
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.training.gpu import GpuTrainingModel


@dataclass(frozen=True)
class ProvisioningPlan:
    """Outcome of the T/P computation for one training job."""

    spec_name: str
    training_throughput: float  # T: samples/s demanded by the GPUs
    worker_throughput: float  # P: samples/s of one preprocessing worker
    num_workers: int  # ceil(T / P)

    @property
    def aggregate_preprocessing_throughput(self) -> float:
        """Samples/s the allocated workers supply."""
        return self.num_workers * self.worker_throughput

    @property
    def headroom(self) -> float:
        """Supply over demand (>= 1.0 means the GPUs never starve)."""
        if self.training_throughput <= 0:
            return float("inf")
        return self.aggregate_preprocessing_throughput / self.training_throughput


def workers_for(training_throughput: float, worker_throughput: float) -> int:
    """The smallest worker count whose aggregate supply meets the demand.

    Nominally ``ceil(T / P)``, but computed so the sufficient-and-tight
    contract holds even when floating point misbehaves: ``T / P`` can
    underflow to zero for subnormal demands (allocating zero workers for a
    positive demand) or round across an integer boundary.
    """
    if worker_throughput <= 0:
        raise ProvisioningError("worker throughput must be positive")
    if training_throughput < 0:
        raise ProvisioningError("training throughput must be non-negative")
    if training_throughput == 0:
        return 0
    count = max(1, math.ceil(training_throughput / worker_throughput))
    while count * worker_throughput < training_throughput:
        count += 1
    while count > 1 and (count - 1) * worker_throughput >= training_throughput:
        count -= 1
    return count


def provision(
    spec: ModelSpec,
    worker_throughput: float,
    num_gpus: int = 8,
    calibration: Calibration = CALIBRATION,
) -> ProvisioningPlan:
    """Full provisioning flow for one training job on ``num_gpus`` GPUs."""
    gpu = GpuTrainingModel(calibration)
    demand = gpu.node_throughput(spec, num_gpus)
    return ProvisioningPlan(
        spec_name=spec.name,
        training_throughput=demand,
        worker_throughput=worker_throughput,
        num_workers=workers_for(demand, worker_throughput),
    )

"""SmartSSD: an SSD tightly coupled with an FPGA in one U.2 device.

The paper's ISP unit (Section IV-B): the FPGA pulls raw feature data from
the *local* SSD over an internal PCIe switch (P2P, never touching the host
or the network) and runs the PreSto accelerator on it.  This class composes
the SSD object store with the accelerator timing model and enforces the
25 W NVMe power envelope that makes the device a drop-in SSD replacement.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import CapacityError
from repro.features.specs import ModelSpec
from repro.hardware.accelerator import AcceleratorModel, AcceleratorStages
from repro.hardware.calibration import CALIBRATION, Calibration
from repro.storage.ssd import SsdModel

#: NVMe U.2 power envelope (watts); a SmartSSD must stay inside it.
NVME_POWER_ENVELOPE = 25.0


class SmartSsd:
    """One PreSto ISP unit: local SSD + on-device FPGA accelerator."""

    def __init__(
        self,
        name: str,
        calibration: Calibration = CALIBRATION,
        accelerator: Optional[AcceleratorModel] = None,
    ) -> None:
        self.cal = calibration
        self.name = name
        self.ssd = SsdModel(name=f"{name}/ssd", read_bw=calibration.ssd_read_bw)
        self.accelerator = accelerator or AcceleratorModel(calibration)
        if calibration.smartssd_tdp > NVME_POWER_ENVELOPE:
            raise CapacityError(
                f"SmartSSD TDP {calibration.smartssd_tdp} W exceeds the "
                f"{NVME_POWER_ENVELOPE} W NVMe envelope"
            )
        self.batches_preprocessed = 0

    # -- timing ---------------------------------------------------------------

    def p2p_time(self, num_bytes: float) -> float:
        """Seconds to move bytes SSD -> FPGA DRAM over the internal switch."""
        return self.ssd.read_latency + num_bytes / self.cal.p2p_bandwidth

    def preprocess_stages(self, spec: ModelSpec) -> AcceleratorStages:
        """Stage times for one mini-batch preprocessed fully in-device."""
        return self.accelerator.batch_stages(spec)

    def batch_latency(self, spec: ModelSpec) -> float:
        """End-to-end in-storage preprocessing latency per mini-batch."""
        self.batches_preprocessed += 1
        return self.preprocess_stages(spec).latency

    def throughput(self, spec: ModelSpec) -> float:
        """Steady-state samples/s of this device (double-buffered pipeline)."""
        return self.accelerator.device_throughput(spec)

    # -- power ----------------------------------------------------------------------

    @property
    def active_power(self) -> float:
        """Measured draw while preprocessing (watts)."""
        return self.cal.smartssd_active_power

    @property
    def tdp(self) -> float:
        """Worst-case card power (watts, within the NVMe envelope)."""
        return self.cal.smartssd_tdp

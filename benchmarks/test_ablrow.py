"""Benchmark: ablation/sensitivity study repro.experiments.abl_row_vs_columnar."""

from conftest import assert_claims, report

from repro.experiments import abl_row_vs_columnar


def test_ablrow(benchmark):
    """Time the abl_row_vs_columnar study and verify its expected-shape claims."""
    result = benchmark(abl_row_vs_columnar.run)
    report(result)
    assert_claims(result)

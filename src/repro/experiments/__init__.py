"""Experiment harness: one module per paper table/figure.

Each module registers its ``run()`` function with
:data:`repro.api.EXPERIMENT_REGISTRY` via ``@register_experiment`` and
returns an :class:`~repro.api.ExperimentResult` — ``columns()``/``rows()``
(the same series the paper plots), ``claims()`` (paper-vs-measured), and
``render()`` (a text table), with lossless ``to_dict``/``from_dict`` for
the on-disk run cache.  Importing this package imports every experiment
module, which is how the registry discovers the built-ins.
:mod:`repro.experiments.report` runs everything (serially, in parallel, or
from cache) and produces the full paper-vs-measured report.
"""

from repro.experiments import (
    abl_batch_size,
    abl_double_buffering,
    abl_lane_sweep,
    abl_multijob,
    abl_network_contention,
    abl_network_sweep,
    abl_row_vs_columnar,
    fleet_resilience,
    fleet_tco,
    fig3_colocated,
    fig4_cores_required,
    fig5_breakdown,
    fig6_utilization,
    table1_models,
    table2_resources,
    fig11_throughput,
    fig12_latency,
    fig13_network,
    fig14_provisioning,
    fig15_efficiency,
    fig16_alternatives,
    fig17_sensitivity,
)

__all__ = [
    "abl_batch_size",
    "abl_double_buffering",
    "abl_lane_sweep",
    "abl_multijob",
    "abl_network_contention",
    "abl_network_sweep",
    "abl_row_vs_columnar",
    "fleet_resilience",
    "fleet_tco",
    "fig3_colocated",
    "fig4_cores_required",
    "fig5_breakdown",
    "fig6_utilization",
    "table1_models",
    "table2_resources",
    "fig11_throughput",
    "fig12_latency",
    "fig13_network",
    "fig14_provisioning",
    "fig15_efficiency",
    "fig16_alternatives",
    "fig17_sensitivity",
]

"""Per-run batch journals — the crash-safe record every batch run writes.

A :class:`BatchJournal` is a JSONL file (one per run id, under
``<store root>/batch/`` by default) built on the shared
:class:`~repro.journal.JsonlJournal` core, so it inherits the serve
tier's torn-tail healing, fsync durability, atomic rewrite, and
``disk-full``/``torn-write`` fault probes.  Line shapes:

* ``{"type": "run", "run_id", "tasks": [key, ...], "policy": {...}}`` —
  the header, written once per fresh run.  ``tasks`` pins the batch's
  content digests *positionally*, which is what lets resume verify it is
  replaying the same batch.
* ``{"type": "task", "index", "key", "status", ...}`` — one line per
  attempt start (``status: "started"``) and one terminal line per task
  (``status`` in :data:`~repro.batch.outcomes.OUTCOME_STATES`); ``ok``
  lines carry the encoded ``result`` payload so a resumed run can return
  byte-identical output without re-running completed tasks.
* ``{"type": "resume"}`` — appended each time a run is resumed; terminal
  lines after the marker supersede earlier ones for the same task.

On :meth:`load`, the last terminal line per task wins; a task with only
``started`` lines was in flight when the writer died and is re-enqueued
by resume.  Corruption anywhere but a torn final line raises a loud
:class:`~repro.errors.BatchError`.
"""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass
from typing import Any, Dict, Optional, Sequence, Set, Tuple

from repro.batch.outcomes import OUTCOME_STATES, BatchOutcome
from repro.batch.policy import BatchPolicy
from repro.errors import BatchError
from repro.journal import JsonlJournal

_RUN_ID_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]*$")


@dataclass(frozen=True)
class BatchJournalState:
    """Everything :meth:`BatchJournal.load` can reconstruct from disk."""

    run_id: Optional[str]
    keys: Tuple[str, ...]
    policy: Dict[str, Any]
    #: last terminal task line per index (the resume prefill source)
    outcomes: Dict[int, Dict[str, Any]]
    #: indices with at least one ``started`` line (in flight at a crash)
    started: Set[int]
    resumes: int
    #: most terminal lines any one task got within one run segment
    #: (between resume markers); > 1 means duplicated completions —
    #: the chaos invariant the batch tier gates on
    max_terminal_per_segment: int

    def completed(self) -> Set[int]:
        """Indices whose last terminal line is ``ok`` — skipped on resume."""
        return {
            index
            for index, line in self.outcomes.items()
            if line.get("status") == "ok"
        }


class BatchJournal:
    """One run's append-only JSONL journal (see module docstring)."""

    def __init__(self, path: str, run_id: Optional[str] = None,
                 fsync: bool = False) -> None:
        self.run_id = run_id
        self._journal = JsonlJournal(path, fsync=fsync)

    @property
    def path(self) -> str:
        return self._journal.path

    @classmethod
    def default_root(cls) -> str:
        """``<experiment store root>/batch`` — journals live next to the
        RunStore cache they describe."""
        from repro.api.experiment import default_store_root

        return os.path.join(default_store_root(), "batch")

    @classmethod
    def for_run(cls, run_id: str, root: Optional[str] = None,
                fsync: bool = False) -> "BatchJournal":
        """The journal for ``run_id`` under ``root`` (default store root)."""
        if not isinstance(run_id, str) or not _RUN_ID_RE.match(run_id):
            raise BatchError(
                f"run id must match {_RUN_ID_RE.pattern}, got {run_id!r}"
            )
        root = root if root is not None else cls.default_root()
        return cls(os.path.join(root, f"{run_id}.jsonl"),
                   run_id=run_id, fsync=fsync)

    # -- writing -------------------------------------------------------------

    def start_run(self, keys: Sequence[str], policy: BatchPolicy) -> None:
        """Begin a fresh run: the journal is atomically reset to just the
        header, so a stale journal under the same run id never bleeds
        into this run's resume state."""
        header = {
            "type": "run",
            "run_id": self.run_id,
            "tasks": list(keys),
            "policy": policy.to_dict(),
            "at": time.time(),
        }
        self._journal.rewrite([json.dumps(header, sort_keys=True)])

    def mark_resume(self) -> None:
        """Append the resume marker (terminal lines after it supersede)."""
        self._append({"type": "resume", "run_id": self.run_id,
                      "at": time.time()})

    def task_started(self, index: int, key: str, attempt: int) -> None:
        self._append({
            "type": "task",
            "index": index,
            "key": key,
            "status": "started",
            "attempt": attempt,
            "at": time.time(),
        }, item=key)

    def task_done(self, outcome: BatchOutcome,
                  payload: Any = None) -> None:
        """Append one task's terminal line (``ok`` carries the encoded
        result payload so resume can replay it without re-running).

        The line stamps timing consistently for the telemetry tier:
        ``elapsed_s`` is always a float (never null — BatchOutcome
        enforces it), ``label`` names the experiment the way humans and
        trend comparison do, and ``cached`` marks cache-prefilled
        completions whose 0.0 stamp is bookkeeping, not a measurement.
        """
        line = {
            "type": "task",
            "index": outcome.index,
            "key": outcome.key,
            "label": outcome.label,
            "status": outcome.state,
            "attempts": outcome.attempts,
            "elapsed_s": float(outcome.elapsed_s),
            "cached": outcome.cached,
            "error": outcome.error,
            "at": time.time(),
        }
        if outcome.state == "ok":
            line["result"] = payload
        self._append(line, item=outcome.key)

    def _append(self, payload: Dict[str, Any], **fault_context: Any) -> None:
        # No sort_keys: the ``result`` payload must keep its insertion
        # order, or float reductions over replayed dicts (e.g. a result's
        # ``sum(d.values())``) re-associate and resume stops being
        # byte-identical to an uninterrupted run.
        self._journal.append(json.dumps(payload), **fault_context)

    # -- reading -------------------------------------------------------------

    def load(self) -> BatchJournalState:
        """Reconstruct the run's state (last terminal line per task wins)."""
        header: Optional[Dict[str, Any]] = None
        outcomes: Dict[int, Dict[str, Any]] = {}
        started: Set[int] = set()
        resumes = 0
        segment_counts: Dict[int, int] = {}
        max_terminal = 0
        for number, text, complete in self._journal.read():
            if not complete:
                continue  # torn final append from a killed run
            try:
                payload = json.loads(text)
            except ValueError as exc:
                raise BatchError(
                    f"corrupt batch journal {self.path} at line {number}: "
                    f"{exc}"
                )
            if not isinstance(payload, dict):
                raise BatchError(
                    f"corrupt batch journal {self.path} at line {number}: "
                    f"expected an object, got {type(payload).__name__}"
                )
            kind = payload.get("type")
            if kind == "run":
                if header is not None:
                    raise BatchError(
                        f"corrupt batch journal {self.path} at line "
                        f"{number}: duplicate run header"
                    )
                header = payload
            elif kind == "resume":
                resumes += 1
                segment_counts = {}
            elif kind == "task":
                if header is None:
                    raise BatchError(
                        f"corrupt batch journal {self.path} at line "
                        f"{number}: task line before the run header"
                    )
                index = payload.get("index")
                keys = header.get("tasks") or []
                if not isinstance(index, int) or not (0 <= index < len(keys)):
                    raise BatchError(
                        f"corrupt batch journal {self.path} at line "
                        f"{number}: task index {index!r} out of range"
                    )
                if payload.get("key") != keys[index]:
                    raise BatchError(
                        f"corrupt batch journal {self.path} at line "
                        f"{number}: task key {payload.get('key')!r} does "
                        f"not match header key {keys[index]!r}"
                    )
                status = payload.get("status")
                if status == "started":
                    started.add(index)
                elif status in OUTCOME_STATES:
                    outcomes[index] = payload
                    segment_counts[index] = segment_counts.get(index, 0) + 1
                    max_terminal = max(max_terminal, segment_counts[index])
                else:
                    raise BatchError(
                        f"corrupt batch journal {self.path} at line "
                        f"{number}: unknown task status {status!r}"
                    )
            else:
                raise BatchError(
                    f"corrupt batch journal {self.path} at line {number}: "
                    f"unknown line type {kind!r}"
                )
        if header is None:
            raise BatchError(
                f"batch journal {self.path} has no run header — nothing "
                f"to resume"
            )
        return BatchJournalState(
            run_id=header.get("run_id"),
            keys=tuple(header.get("tasks") or ()),
            policy=dict(header.get("policy") or {}),
            outcomes=outcomes,
            started=started,
            resumes=resumes,
            max_terminal_per_segment=max_terminal,
        )

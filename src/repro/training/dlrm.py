"""DLRM per-iteration work model.

Counts the arithmetic and memory traffic of one training iteration of a
Table I model: bottom MLP, embedding lookups + pooling, pairwise feature
interaction, top MLP, and the backward/optimizer passes.  The counts feed
the A100 device model in :mod:`repro.training.gpu`.

The model follows the DLRM architecture (Naumov et al.): the bottom MLP
embeds the dense vector to ``embedding_dim``; every sparse feature is pooled
to one ``embedding_dim`` vector; the interaction takes dot products between
all pairs of the (num_tables + 1) vectors; the top MLP consumes the bottom
output concatenated with the interaction terms.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.features.specs import ModelSpec


@dataclass(frozen=True)
class DlrmWorkload:
    """Per-sample work of one training iteration of one model."""

    forward_macs: float  # multiply-accumulates, forward pass
    training_flops: float  # fwd + bwd flops
    embedding_lookups: float  # rows gathered per sample
    embedding_bytes: float  # bytes moved for embeddings incl. optimizer
    activation_bytes: float  # MLP/interaction activations


class DlrmCostModel:
    """Derive a :class:`DlrmWorkload` from a Table I :class:`ModelSpec`."""

    #: backward pass costs ~2x the forward flops (grad wrt inputs + weights)
    TRAIN_FLOP_MULTIPLIER = 3.0

    def __init__(self, spec: ModelSpec) -> None:
        self.spec = spec

    @property
    def interaction_inputs(self) -> int:
        """Vectors entering feature interaction: one per embedding table
        plus the bottom-MLP output."""
        return self.spec.num_tables + 1

    @property
    def interaction_terms(self) -> int:
        """Distinct pairwise dot products (lower triangle, no diagonal)."""
        n = self.interaction_inputs
        return n * (n - 1) // 2

    @property
    def top_mlp_input_width(self) -> int:
        """Bottom output concatenated with the interaction terms."""
        return self.spec.embedding_dim + self.interaction_terms

    def forward_macs(self) -> float:
        """Forward multiply-accumulates per sample."""
        spec = self.spec
        bottom = spec.bottom_mlp.macs(spec.num_dense)
        interaction = self.interaction_terms * spec.embedding_dim
        top = spec.top_mlp.macs(self.top_mlp_input_width)
        # pooling: one add per looked-up row element
        pooling = spec.embedding_indices_per_sample() * spec.embedding_dim
        return bottom + interaction + top + pooling

    def workload(self, embedding_traffic_multiplier: float = 4.0) -> DlrmWorkload:
        """Full per-sample workload.

        ``embedding_traffic_multiplier`` scales raw forward gather bytes to
        account for gradient writes and optimizer state (read + write), the
        dominant memory traffic of RecSys training.
        """
        spec = self.spec
        fwd = self.forward_macs()
        lookups = spec.embedding_indices_per_sample()
        gather_bytes = lookups * spec.embedding_dim * 4.0
        activations = 4.0 * (
            spec.num_dense
            + 2 * sum(spec.bottom_mlp.layers)
            + 2 * sum(spec.top_mlp.layers)
            + self.top_mlp_input_width
        )
        return DlrmWorkload(
            forward_macs=fwd,
            training_flops=2.0 * fwd * self.TRAIN_FLOP_MULTIPLIER,
            embedding_lookups=lookups,
            embedding_bytes=gather_bytes * embedding_traffic_multiplier,
            activation_bytes=activations,
        )

"""Quickstart: preprocess RecSys data in storage, then run it as a Scenario.

Walks the paper's core flow on the public Criteo-style model (RM1):

1. generate raw feature data and shard it into per-mini-batch partitions;
2. store the partitions on SmartSSD devices (a distributed storage system);
3. preprocess one partition with the baseline CPU worker and with the
   PreSto ISP worker — functionally identical tensors, very different time;
4. declare the experiment as a `Scenario` and `.run()` it — the one front
   door that validates the config, provisions ceil(T/P) workers, simulates
   the full preprocessing-feeds-training pipeline, and returns a uniform
   `RunResult`;
5. compare design points with a parallel `Sweep` over the system registry.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import Scenario, Sweep, get_model
from repro.core.cpu_worker import CpuPreprocessingWorker
from repro.core.isp_worker import IspPreprocessingWorker
from repro.dataio.partition import RowPartitioner
from repro.experiments.common import format_table
from repro.features.synthetic import SyntheticTableGenerator
from repro.storage.cluster import DistributedStorage
from repro.storage.smartssd import SmartSsd
from repro.units import pretty_bytes, pretty_time


def main() -> None:
    spec = get_model("RM1")
    print(f"Model: {spec.name} — {spec.num_dense} dense / {spec.num_sparse} sparse "
          f"features, batch size {spec.batch_size}")

    # 1. raw data -> partitions (one mini-batch per columnar file)
    generator = SyntheticTableGenerator(spec, seed=0)
    rows = 4 * 1024
    data = generator.generate(rows)
    partitioner = RowPartitioner(spec.schema(), rows_per_partition=1024)
    partitions = partitioner.partition_all(data)
    print(f"\nPartitioned {rows} rows into {len(partitions)} columnar files "
          f"({pretty_bytes(sum(p.size for p in partitions))} total)")

    # 2. place partitions on SmartSSDs
    devices = [SmartSsd(f"smartssd-{i}") for i in range(2)]
    storage = DistributedStorage(devices)
    storage.store_partitions("criteo", partitions)
    for i, device in enumerate(devices):
        keys = storage.partitions_on(i, "criteo")
        print(f"  {device.name}: {len(keys)} partitions")

    # 3. preprocess one partition both ways — identical tensors
    raw = storage.read_partition("criteo", 0)
    cpu_worker = CpuPreprocessingWorker(spec)
    isp_worker = IspPreprocessingWorker(spec, device=devices[0])
    cpu_batch, counts = cpu_worker.preprocess_partition(raw)
    isp_batch, _ = isp_worker.preprocess_partition(raw)
    assert np.array_equal(cpu_batch.dense, isp_batch.dense)
    assert np.array_equal(cpu_batch.sparse.values, isp_batch.sparse.values)
    print(f"\nPreprocessed partition 0: dense {cpu_batch.dense.shape}, "
          f"{cpu_batch.sparse.num_keys} sparse features, "
          f"{pretty_bytes(cpu_batch.nbytes())} train-ready")
    print("CPU and in-storage pipelines produced identical tensors: OK")

    # modeled single-worker latency (full 8K batch)
    cpu_latency = cpu_worker.batch_latency()
    isp_latency = isp_worker.batch_latency()
    print(f"\nModeled per-mini-batch latency (batch {spec.batch_size}):")
    print(f"  one CPU core : {pretty_time(cpu_latency)}")
    print(f"  one SmartSSD : {pretty_time(isp_latency)} "
          f"({cpu_latency / isp_latency:.1f}x faster)")

    # 4. one declarative scenario: validated at construction, provisioned
    #    via T/P, simulated end to end
    scenario = Scenario(model="RM1", system="PreSto", num_gpus=1,
                        num_batches=200)
    result = scenario.run()
    print(f"\nScenario {scenario.label}:")
    print(f"  {result.summary()}")
    print(f"  steady-state GPU utilization: "
          f"{100 * result.steady_state_utilization:.1f}%")
    assert scenario == Scenario.from_dict(scenario.to_dict())  # config files

    # 5. a parallel sweep across registered design points — results come
    #    back in grid order regardless of the pool's scheduling
    sweep = Sweep.grid(models="RM1", systems=("Disagg", "PreSto", "U280"),
                       num_gpus=(1,), num_batches=200)
    rows_out = [
        (
            r.scenario.system,
            r.num_workers,
            100 * r.steady_state_utilization,
            r.power_watts,
            r.capex_dollars,
        )
        for r in sweep.run()
    ]
    print()
    print(format_table(
        ["system", "workers", "steady util (%)", "power (W)", "CapEx ($)"],
        rows_out,
        title="Sweep: RM1, 1 GPU, demand-provisioned",
    ))


if __name__ == "__main__":
    main()

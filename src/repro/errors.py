"""Exception hierarchy for the PreSto reproduction.

Every error raised by this package derives from :class:`ReproError`, so
callers can catch the whole family with one ``except`` clause while tests
can still assert the precise subclass.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package."""


class SchemaError(ReproError):
    """A table schema is malformed or a column does not match its schema."""


class EncodingError(ReproError):
    """A column chunk cannot be encoded or decoded (bad codec, corruption)."""


class FormatError(ReproError):
    """A columnar file is structurally invalid (magic, footer, checksums)."""


class PartitionError(ReproError):
    """Row partitioning parameters are inconsistent with the table."""


class OpError(ReproError):
    """A preprocessing operator received invalid inputs or parameters."""


class PipelineError(ReproError):
    """A preprocessing pipeline is malformed (unknown feature, bad order)."""


class SimulationError(ReproError):
    """The discrete-event engine was used incorrectly (e.g. negative delay)."""


class CapacityError(ReproError):
    """A hardware resource model was configured beyond its capacity."""


class ProvisioningError(ReproError):
    """Worker provisioning (the T/P computation) received invalid inputs."""


class ConfigurationError(ReproError):
    """A system/experiment configuration is internally inconsistent."""


class ExecutionError(ReproError):
    """A sharded preprocessing execution was configured or driven wrongly."""


class ServeError(ReproError):
    """The streaming preprocessing service was configured or driven wrongly."""


class QueueFullError(ServeError):
    """A bounded work queue rejected a submission (explicit backpressure)."""


class QueueClosedError(ServeError):
    """The work queue no longer accepts or holds work (service shut down)."""


class JobNotFoundError(ServeError):
    """No job with the requested id exists in the service's lifecycle store."""


class ProtocolError(ServeError):
    """A client/server exchange on the serve protocol was malformed."""


class JobTimeoutError(ServeError):
    """A job blew its deadline; the watchdog failed it and replaced the
    worker that was stuck running it."""


class BatchError(ReproError):
    """The fault-tolerant batch runner was configured or driven wrongly,
    or a batch journal is corrupt."""


class TaskTimeoutError(BatchError):
    """A batch task blew its wall-clock deadline; the runner terminated
    and replaced the worker process that was stuck running it."""


class BatchTaskError(BatchError):
    """A batch task failed in ``strict`` mode.  Names the task and carries
    the underlying error text; already-completed tasks were still
    journaled (and cached, when a store is attached) before this raised."""


class FaultError(ReproError):
    """An injected fault fired (deterministic fault-injection harness)."""


class ChaosError(ReproError):
    """A chaos run violated a service invariant (jobs not terminal,
    digest divergence, duplicate completions, or leaked workers)."""


class TelemetryError(ReproError):
    """A telemetry source could not be read or a trend comparison was
    ill-posed (unknown metric, empty store, malformed run summary)."""


class FleetError(ReproError):
    """A fleet simulation failed: unreadable trace, a job that can never
    fit any pool at maximum scale, or a broken simulator invariant."""

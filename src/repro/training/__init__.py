"""GPU training substrate: a DLRM cost model per Table I architecture and an
A100 device model yielding the max training throughput ``T`` that drives the
paper's T/P provisioning, plus the train-manager consumer process."""

from repro.training.dlrm import DlrmCostModel, DlrmWorkload
from repro.training.gpu import GpuTrainingModel
from repro.training.trainer import TrainManager

__all__ = ["DlrmCostModel", "DlrmWorkload", "GpuTrainingModel", "TrainManager"]

"""End-to-end training-pipeline simulation: who keeps the GPU busy?

Simulates the full Figure 9 flow with the discrete-event engine for three
deployments on the production-scale RM5 model:

* co-located preprocessing (16 host cores, the DGX budget) — starves the GPU;
* a disaggregated CPU pool provisioned via T/P — keeps it busy with ~367 cores;
* PreSto — keeps it busy with 9 SmartSSDs.

Run:  python examples/training_pipeline_sim.py
"""

from repro import get_model
from repro.core.cpu_worker import CpuPreprocessingWorker
from repro.core.endtoend import EndToEndSimulation
from repro.core.isp_worker import IspPreprocessingWorker
from repro.experiments.common import format_table


def simulate(name, spec, worker_factory, num_gpus, num_batches, num_workers=None):
    sim = EndToEndSimulation(spec, worker_factory, num_gpus=num_gpus)
    if num_workers is None:
        stats = sim.run(num_batches=num_batches, provision_to_demand=True)
    else:
        stats = sim.run(num_batches=num_batches, num_workers=num_workers)
    return (
        name,
        stats.num_workers,
        stats.wall_time,
        100.0 * stats.gpu_utilization,
        100.0 * stats.steady_state_utilization,
        stats.training_throughput,
    )


def main() -> None:
    spec = get_model("RM5")
    print(f"Simulating {spec.name} training pipelines "
          f"(batch {spec.batch_size})...\n")

    rows = [
        simulate(
            "Co-located (16 cores, 1 GPU)",
            spec,
            lambda: CpuPreprocessingWorker(spec, colocated=True),
            num_gpus=1,
            num_batches=60,
            num_workers=16,
        ),
        simulate(
            "Disagg CPU pool (T/P, 8 GPUs)",
            spec,
            lambda: CpuPreprocessingWorker(spec),
            num_gpus=8,
            num_batches=400,
        ),
        simulate(
            "PreSto ISP (T/P, 8 GPUs)",
            spec,
            lambda: IspPreprocessingWorker(spec),
            num_gpus=8,
            num_batches=400,
        ),
    ]
    print(
        format_table(
            [
                "deployment",
                "workers",
                "sim wall (s)",
                "GPU util (%)",
                "steady util (%)",
                "samples/s",
            ],
            rows,
            title="End-to-end pipeline simulation (RM5)",
        )
    )
    print(
        "\nThe co-located design caps at 16 workers and starves the GPU; both "
        "provisioned designs sustain training, but PreSto does it with 9 "
        "devices instead of hundreds of cores."
    )


if __name__ == "__main__":
    main()

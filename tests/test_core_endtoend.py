"""Tests for the preprocess manager and the end-to-end DES pipeline."""

import pytest

from repro.core.cpu_worker import CpuPreprocessingWorker
from repro.core.endtoend import EndToEndSimulation
from repro.core.isp_worker import IspPreprocessingWorker
from repro.core.manager import PreprocessManager
from repro.errors import ConfigurationError, ProvisioningError
from repro.features.specs import get_model
from repro.sim.engine import Engine
from repro.sim.resources import Store


class TestPreprocessManager:
    def test_plan_matches_provision_math(self):
        spec = get_model("RM5")
        manager = PreprocessManager(spec, lambda: IspPreprocessingWorker(spec))
        plan = manager.plan(training_throughput=1_000_000.0)
        import math

        expected = math.ceil(1_000_000.0 / manager.measure_worker_throughput())
        assert plan.num_workers == expected

    def test_launch_splits_batches_evenly(self):
        spec = get_model("RM1")
        manager = PreprocessManager(spec, lambda: IspPreprocessingWorker(spec))
        engine = Engine()
        queue = Store("q")
        manager.launch(engine, queue, num_batches=10, num_workers=3)
        engine.run()
        assert manager.total_batches_produced == 10
        produced = sorted(w.batches_produced for w in manager.workers)
        assert produced == [3, 3, 4]

    def test_launch_needs_target(self):
        spec = get_model("RM1")
        manager = PreprocessManager(spec, lambda: IspPreprocessingWorker(spec))
        with pytest.raises(ProvisioningError):
            manager.launch(Engine(), Store("q"), num_batches=4)

    def test_launch_zero_workers_rejected(self):
        spec = get_model("RM1")
        manager = PreprocessManager(spec, lambda: IspPreprocessingWorker(spec))
        with pytest.raises(ProvisioningError):
            manager.launch(Engine(), Store("q"), num_batches=4, num_workers=0)


class TestEndToEnd:
    def test_provisioned_pipeline_keeps_gpu_busy(self):
        """With ceil(T/P) workers, steady-state GPU utilization approaches 1
        (warmup excluded by running enough batches)."""
        spec = get_model("RM1")
        sim = EndToEndSimulation(
            spec, lambda: CpuPreprocessingWorker(spec), num_gpus=1
        )
        stats = sim.run(num_batches=300, provision_to_demand=True)
        assert stats.gpu_utilization > 0.9
        assert stats.num_batches == 300

    def test_starved_pipeline_low_utilization(self):
        """One CPU core cannot feed a whole GPU (the Fig. 3 problem)."""
        spec = get_model("RM5")
        sim = EndToEndSimulation(
            spec, lambda: CpuPreprocessingWorker(spec), num_gpus=1
        )
        stats = sim.run(num_batches=10, num_workers=1)
        assert stats.gpu_utilization < 0.1
        assert stats.wait_time > 0

    def test_presto_provisioning_feeds_8_gpus(self):
        spec = get_model("RM5")
        sim = EndToEndSimulation(
            spec, lambda: IspPreprocessingWorker(spec), num_gpus=8
        )
        stats = sim.run(num_batches=400, provision_to_demand=True)
        assert stats.num_workers == 9  # the Fig. 14 allocation
        assert stats.gpu_utilization > 0.85

    def test_more_workers_higher_throughput(self):
        spec = get_model("RM5")
        sim = EndToEndSimulation(
            spec, lambda: CpuPreprocessingWorker(spec), num_gpus=1
        )
        few = sim.run(num_batches=40, num_workers=4)
        sim2 = EndToEndSimulation(
            spec, lambda: CpuPreprocessingWorker(spec), num_gpus=1
        )
        many = sim2.run(num_batches=40, num_workers=16)
        assert many.training_throughput > 2 * few.training_throughput

    def test_invalid_runs(self):
        spec = get_model("RM1")
        sim = EndToEndSimulation(spec, lambda: CpuPreprocessingWorker(spec))
        with pytest.raises(ConfigurationError):
            sim.run(num_batches=0, num_workers=1)
        with pytest.raises(ConfigurationError):
            sim.run(num_batches=5)

    def test_stats_consistency(self):
        spec = get_model("RM1")
        sim = EndToEndSimulation(
            spec, lambda: CpuPreprocessingWorker(spec), num_gpus=1
        )
        stats = sim.run(num_batches=50, num_workers=8)
        assert stats.wall_time > 0
        assert stats.training_time <= stats.wall_time
        assert 0.0 <= stats.gpu_utilization <= 1.0

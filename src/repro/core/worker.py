"""Abstract preprocessing worker and shared breakdown utilities.

Every worker type (CPU core, PreSto ISP unit, GPU/FPGA pool device) exposes
the same three quantities the paper's evaluation uses:

* a per-mini-batch latency *breakdown* over the Figure 5/12 steps;
* an end-to-end per-batch latency (the breakdown's sum);
* a steady-state throughput (per-batch for serial workers, pipeline-
  bottleneck for double-buffered devices).

Workers are also DES producers: :meth:`PreprocessingWorker.produce` is a
process that pushes mini-batch tokens into the train manager's input queue
with the right timing.
"""

from __future__ import annotations

import abc
from typing import Dict

from repro.errors import ConfigurationError
from repro.features.specs import ModelSpec
from repro.sim.engine import Engine, Timeout
from repro.sim.resources import Store

#: canonical step order (Figure 5 / Figure 12 legends)
BREAKDOWN_STEPS = (
    "extract_read",
    "extract_decode",
    "bucketize",
    "sigridhash",
    "log",
    "format_conversion",
    "else_time",
    "load",
)


def normalize_breakdown(
    breakdown: Dict[str, float], reference_total: float
) -> Dict[str, float]:
    """Scale a step breakdown so values are fractions of ``reference_total``
    (how Figures 5 and 12 normalize their stacked bars)."""
    if reference_total <= 0:
        raise ConfigurationError("reference_total must be positive")
    return {step: breakdown.get(step, 0.0) / reference_total for step in BREAKDOWN_STEPS}


def breakdown_total(breakdown: Dict[str, float]) -> float:
    """Sum of a step breakdown."""
    return sum(breakdown.get(step, 0.0) for step in BREAKDOWN_STEPS)


class PreprocessingWorker(abc.ABC):
    """One preprocessing worker of any technology."""

    #: human-readable design-point name ("Disagg", "PreSto", ...)
    kind: str = "abstract"

    def __init__(self, spec: ModelSpec) -> None:
        self.spec = spec
        self.batches_produced = 0

    # -- performance interface ----------------------------------------------

    @abc.abstractmethod
    def batch_breakdown(self) -> Dict[str, float]:
        """Seconds per Figure-5 step for one mini-batch."""

    def batch_latency(self) -> float:
        """End-to-end seconds per mini-batch."""
        return breakdown_total(self.batch_breakdown())

    @abc.abstractmethod
    def throughput(self) -> float:
        """Steady-state samples/s of this worker."""

    def batch_interval(self) -> float:
        """Seconds between consecutive mini-batches at steady state."""
        return self.spec.batch_size / self.throughput()

    # -- DES producer -----------------------------------------------------------

    def produce(self, engine: Engine, queue: Store, num_batches: int):
        """Process: emit ``num_batches`` batch tokens into ``queue``.

        The first batch appears after the full latency; subsequent batches
        follow at the steady-state interval (equal to the latency for serial
        CPU workers, the pipeline bottleneck for double-buffered devices).
        """
        if num_batches < 0:
            raise ConfigurationError("num_batches must be non-negative")
        latency = self.batch_latency()
        interval = self.batch_interval()
        for index in range(num_batches):
            yield Timeout(latency if index == 0 else interval)
            self.batches_produced += 1
            yield queue.put({"worker": self.kind, "index": index})

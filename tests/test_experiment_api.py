"""Tests for the unified experiment API (repro.api.experiment):

* registry completeness — every experiment module registers exactly once,
  ids/titles are unique, report order matches paper order;
* ``ExperimentRun`` validation and dict round-trips;
* result dict round-trips for every registered experiment (exact types,
  byte-identical render);
* parallel ``render_report`` byte-identical to serial;
* ``RunStore`` hit/miss/force semantics;
* the CLI surfaces (list/run/report/export) on top of it.
"""

import json
import pkgutil
import sys

import pytest

import repro.experiments
from repro.api import (
    EXPERIMENT_REGISTRY,
    ExperimentResult,
    ExperimentRun,
    RunStore,
    available_experiments,
    get_experiment,
    register_experiment,
    run_experiments,
)
from repro.api.experiment import decode_value, encode_value
from repro.cli import main as cli_main
from repro.errors import ConfigurationError
from repro.experiments import report as report_mod

#: modules in repro/experiments/ that are harness plumbing, not experiments
NON_EXPERIMENT_MODULES = {"common", "report"}


def all_experiment_modules():
    return sorted(
        name
        for _, name, _ in pkgutil.iter_modules(repro.experiments.__path__)
        if name not in NON_EXPERIMENT_MODULES
    )


@pytest.fixture(scope="module")
def results_by_id():
    """One fresh result per registered experiment (shared, they're cheap)."""
    return {
        spec.id: ExperimentRun(spec.id).run()
        for spec in EXPERIMENT_REGISTRY.experiments()
    }


class TestRegistryCompleteness:
    def test_twenty_two_experiments(self):
        # 13 figures/tables + 7 ablations + 2 fleet experiments
        assert len(EXPERIMENT_REGISTRY) == 22

    def test_every_module_registered_exactly_once(self):
        """Each experiment module contributes exactly one registration."""
        modules = [spec.module for spec in EXPERIMENT_REGISTRY.experiments()]
        expected = [
            f"repro.experiments.{name}" for name in all_experiment_modules()
        ]
        assert sorted(modules) == sorted(expected)
        assert len(modules) == len(set(modules))

    def test_ids_and_titles_unique(self):
        specs = EXPERIMENT_REGISTRY.experiments()
        assert len({s.id for s in specs}) == len(specs)
        assert len({s.title for s in specs}) == len(specs)

    def test_report_order_matches_paper_order(self):
        assert EXPERIMENT_REGISTRY.titles() == (
            "Figure 3", "Figure 4", "Figure 5", "Figure 6",
            "Table I", "Table II",
            "Figure 11", "Figure 12", "Figure 13", "Figure 14",
            "Figure 15", "Figure 16", "Figure 17",
            "Ablation: row vs columnar", "Ablation: double buffering",
            "Ablation: unit lane sweep", "Sensitivity: link speed",
            "Fleet: network contention", "Sensitivity: batch size",
            "Fleet: multi-job scheduling",
            "Fleet TCO: diurnal trace, autoscaled",
            "Fleet resilience: failure injection",
        )

    def test_kind_filters(self):
        assert len(EXPERIMENT_REGISTRY.ids("figure")) == 11
        assert EXPERIMENT_REGISTRY.ids("table") == ("table1", "table2")
        assert len(EXPERIMENT_REGISTRY.ids("ablation")) == 9
        assert available_experiments() == EXPERIMENT_REGISTRY.ids()

    def test_runners_keep_working_as_plain_functions(self):
        """Registration leaves module-level run() untouched (thin shim)."""
        from repro.experiments import table1_models

        assert table1_models.run is get_experiment("table1").runner
        assert table1_models.run().matches_paper


class TestRegistryLookup:
    def test_lookup_by_title_and_case(self):
        assert EXPERIMENT_REGISTRY.canonical("Figure 3") == "fig3"
        assert EXPERIMENT_REGISTRY.canonical("FIG3") == "fig3"
        assert EXPERIMENT_REGISTRY.canonical("table i") == "table1"
        assert "fig3" in EXPERIMENT_REGISTRY
        assert "nope" not in EXPERIMENT_REGISTRY

    def test_unknown_id_lists_known(self):
        with pytest.raises(ConfigurationError, match="fig3"):
            EXPERIMENT_REGISTRY.get("fig99")

    def test_duplicate_registration_rejected(self):
        spec = get_experiment("fig3")
        with pytest.raises(ConfigurationError, match="already registered"):
            EXPERIMENT_REGISTRY.register(
                "fig3", spec.runner, title="X", kind="figure", order=1
            )
        with pytest.raises(ConfigurationError, match="already registered"):
            EXPERIMENT_REGISTRY.register(
                "fig3b", spec.runner, title="Figure 3", kind="figure", order=1
            )

    def test_replace_cannot_steal_another_ids_title(self):
        spec = get_experiment("fig4")
        with pytest.raises(ConfigurationError, match="title"):
            EXPERIMENT_REGISTRY.register(
                "fig4", spec.runner, title="Figure 3", kind="figure",
                order=20, replace=True,
            )
        # replacing an id under its own title stays allowed
        EXPERIMENT_REGISTRY.register(
            "fig4", spec.runner, title="Figure 4", kind="figure",
            order=20, replace=True,
        )
        assert get_experiment("fig4").title == "Figure 4"

    def test_register_and_unregister_custom(self):
        from repro.experiments.fig3_colocated import Fig3Result, run as fig3_run

        def run_custom(model: str = "RM1") -> Fig3Result:
            return fig3_run(model)

        register_experiment(
            "custom-test", title="Custom test", kind="ablation", order=999
        )(run_custom)
        try:
            assert "custom-test" in EXPERIMENT_REGISTRY
            assert EXPERIMENT_REGISTRY.ids()[-1] == "custom-test"
            result = ExperimentRun("custom-test").run()
            assert result.rows()
        finally:
            EXPERIMENT_REGISTRY.unregister("custom-test")
        assert "custom-test" not in EXPERIMENT_REGISTRY

    def test_bad_registrations_rejected(self):
        from repro.experiments.fig3_colocated import Fig3Result

        def no_annotation(model: str = "RM1"):
            pass

        with pytest.raises(ConfigurationError, match="return type"):
            register_experiment("t", title="T", kind="figure", order=1)(
                no_annotation
            )

        def no_default(model) -> Fig3Result:
            pass

        with pytest.raises(ConfigurationError, match="default"):
            register_experiment("t", title="T", kind="figure", order=1)(
                no_default
            )

        def fine(model: str = "RM1") -> Fig3Result:
            pass

        with pytest.raises(ConfigurationError, match="kind"):
            register_experiment("t", title="T", kind="plot", order=1)(fine)


class TestPluginHook:
    def test_repro_experiments_env_loads_modules(self, tmp_path, monkeypatch):
        module = tmp_path / "my_plugin_experiment.py"
        module.write_text(
            "from repro.experiments.fig3_colocated import Fig3Result, run as base\n"
            "from repro.api import register_experiment\n"
            "@register_experiment('plugin-test', title='Plugin test',\n"
            "                     kind='ablation', order=997)\n"
            "def run(model: str = 'RM1') -> Fig3Result:\n"
            "    return base(model)\n"
        )
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv("REPRO_EXPERIMENTS", "my_plugin_experiment")
        try:
            assert "plugin-test" in available_experiments()
            assert ExperimentRun("plugin-test").run().model == "RM1"
        finally:
            EXPERIMENT_REGISTRY.unregister("plugin-test")
            sys.modules.pop("my_plugin_experiment", None)

    def test_unimportable_plugin_module_is_an_error(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENTS", "definitely.not.a.module")
        with pytest.raises(ConfigurationError, match="REPRO_EXPERIMENTS"):
            available_experiments()

    def test_blank_entries_ignored(self, monkeypatch):
        monkeypatch.setenv("REPRO_EXPERIMENTS", " , ,")
        assert len(available_experiments()) == 22


class TestExperimentRun:
    def test_validates_experiment_id(self):
        with pytest.raises(ConfigurationError, match="unknown experiment"):
            ExperimentRun("fig99")

    def test_title_resolves_to_id(self):
        assert ExperimentRun("Figure 3").experiment == "fig3"

    def test_unknown_param_rejected(self):
        with pytest.raises(ConfigurationError, match="no parameter"):
            ExperimentRun("fig3", params={"bogus": 1})

    def test_ill_typed_param_rejected(self):
        with pytest.raises(ConfigurationError, match="must be a string"):
            ExperimentRun("fig3", params={"model": 5})
        with pytest.raises(ConfigurationError, match="must be an int"):
            ExperimentRun("abl-row", params={"seed": "zero"})

    def test_unknown_calibration_field_rejected(self):
        with pytest.raises(ConfigurationError, match="calibration"):
            ExperimentRun("fig3", calibration={"warp_speed": 9.0})

    def test_calibration_on_calibrationless_experiment_rejected(self):
        run = ExperimentRun(
            "table1", calibration={"cpu_log_per_element": 10e-9}
        )
        with pytest.raises(ConfigurationError, match="does not take"):
            run.run()

    def test_params_change_results(self):
        rm5 = ExperimentRun("fig3").run()
        rm1 = ExperimentRun("fig3", params={"model": "RM1"}).run()
        assert rm5.model == "RM5" and rm1.model == "RM1"

    def test_calibration_overrides_change_results(self):
        base = ExperimentRun("fig4").run()
        slow = ExperimentRun(
            "fig4",
            calibration={"cpu_log_per_element": 1000e-9},
        ).run()
        assert slow.cores["RM5"] > base.cores["RM5"]

    def test_mix_param_freezes_lists(self):
        run = ExperimentRun(
            "abl-fleet", params={"mix": [["RM1", 1], ["RM5", 2]]}
        )
        assert dict(run.params)["mix"] == (("RM1", 1), ("RM5", 2))
        assert run.run().num_jobs == 3

    def test_label_and_digest(self):
        plain = ExperimentRun("fig3")
        custom = ExperimentRun("fig3", params={"model": "RM1"})
        assert plain.label == "fig3"
        assert custom.label == "fig3(model=RM1)"
        assert plain.digest != custom.digest
        # digest keys the *effective* params: explicit default == implicit
        assert ExperimentRun("fig3", params={"model": "RM5"}).digest == plain.digest

    def test_dict_round_trip_every_experiment(self):
        for spec in EXPERIMENT_REGISTRY.experiments():
            run = ExperimentRun(spec.id)
            data = json.loads(json.dumps(run.to_dict()))
            assert ExperimentRun.from_dict(data) == run

    def test_dict_round_trip_with_params_and_calibration(self):
        run = ExperimentRun(
            "abl-batch",
            params={"model": "RM3"},
            calibration={"cpu_log_per_element": 123e-9},
        )
        data = json.loads(json.dumps(run.to_dict()))
        back = ExperimentRun.from_dict(data)
        assert back == run
        assert back.digest == run.digest

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigurationError, match="unknown run keys"):
            ExperimentRun.from_dict({"experiment": "fig3", "bogus": 1})


class TestResultRoundTrips:
    @pytest.mark.parametrize("experiment_id", list(available_experiments()))
    def test_result_round_trip(self, results_by_id, experiment_id):
        """to_dict -> JSON -> from_dict restores the exact result."""
        result = results_by_id[experiment_id]
        assert isinstance(result, ExperimentResult)
        data = json.loads(json.dumps(result.to_dict()))
        back = type(result).from_dict(data)
        assert back == result
        assert back.render() == result.render()
        assert back.rows() == result.rows()
        assert [c.render() for c in back.claims()] == [
            c.render() for c in result.claims()
        ]

    @pytest.mark.parametrize("experiment_id", list(available_experiments()))
    def test_columns_match_rows(self, results_by_id, experiment_id):
        result = results_by_id[experiment_id]
        columns = result.columns()
        rows = result.rows()
        assert columns and rows
        assert all(len(row) == len(columns) for row in rows)

    def test_codec_preserves_tuple_and_int_keys(self):
        # the shapes JSON can't express natively, exercised directly
        from typing import Dict, Tuple

        value = {("RM1", "op"): 1.5, ("RM5", "log"): 2.5}
        hint = Dict[Tuple[str, str], float]
        assert decode_value(hint, json.loads(json.dumps(encode_value(value)))) == value
        value2 = {"RM1": {1: 1.0, 64: 64.0}}
        hint2 = Dict[str, Dict[int, float]]
        assert (
            decode_value(hint2, json.loads(json.dumps(encode_value(value2))))
            == value2
        )


class TestParallelReport:
    def test_pool_worker_imports_defining_module(self):
        # spawn-start platforms (macOS/Windows) ship each run with its
        # defining module so user-registered experiments resolve in workers
        from repro.api.experiment import _execute_run

        run = ExperimentRun("table1")
        result = _execute_run((run, run.spec.module))
        assert result.matches_paper
        # an unimportable module (e.g. __main__-defined) degrades gracefully
        assert _execute_run((run, "definitely.not.a.module")).matches_paper

    def test_run_experiments_order_is_input_order(self):
        runs = [ExperimentRun("table1"), ExperimentRun("fig3"), ExperimentRun("table2")]
        results = run_experiments(runs, parallel=True, processes=2)
        assert type(results[0]).__name__ == "Table1Result"
        assert type(results[1]).__name__ == "Fig3Result"
        assert type(results[2]).__name__ == "Table2Result"

    def test_parallel_report_byte_identical(self):
        serial = report_mod.render_report()
        parallel = report_mod.render_report(parallel=True, processes=2)
        assert parallel == serial

    def test_cached_report_byte_identical(self, tmp_path):
        store = RunStore(tmp_path)
        serial = report_mod.render_report()
        warm = report_mod.render_report(store=store)   # populates
        cached = report_mod.render_report(store=store)  # replays
        assert warm == serial
        assert cached == serial

    def test_run_all_kinds_filter(self):
        tables = report_mod.run_all(kinds=["table"])
        assert list(tables) == ["Table I", "Table II"]
        no_abl = report_mod.run_all(include_ablations=False)
        assert len(no_abl) == 13

    def test_report_payload_scoreboard(self):
        results = report_mod.run_all(kinds=["table"])
        payload = report_mod.report_payload(results)
        assert [e["id"] for e in payload["experiments"]] == ["table1", "table2"]
        assert payload["scoreboard"]["total"] >= payload["scoreboard"]["held"]
        json.dumps(payload)  # JSON-able all the way down


class TestRunStore:
    def test_miss_then_hit(self, tmp_path):
        store = RunStore(tmp_path)
        run = ExperimentRun("table1")
        assert store.load(run) is None  # miss
        result, hit = store.fetch(run)
        assert not hit
        assert store.path(run).exists()
        replay, hit2 = store.fetch(run)
        assert hit2
        assert replay == result
        assert replay.render() == result.render()

    def test_force_reexecutes_but_still_saves(self, tmp_path):
        store = RunStore(tmp_path)
        run = ExperimentRun("table1")
        store.fetch(run)
        before = store.path(run).stat().st_mtime_ns
        result, hit = store.fetch(run, force=True)
        assert not hit
        assert store.path(run).stat().st_mtime_ns >= before

    def test_distinct_params_distinct_entries(self, tmp_path):
        store = RunStore(tmp_path)
        run_a = ExperimentRun("fig3")
        run_b = ExperimentRun("fig3", params={"model": "RM1"})
        store.fetch(run_a)
        store.fetch(run_b)
        assert store.path(run_a) != store.path(run_b)
        assert store.load(run_a).model == "RM5"
        assert store.load(run_b).model == "RM1"

    def test_calibration_keys_the_cache(self, tmp_path):
        store = RunStore(tmp_path)
        run_a = ExperimentRun("fig4")
        run_b = ExperimentRun(
            "fig4", calibration={"cpu_log_per_element": 1000e-9}
        )
        assert run_a.digest != run_b.digest
        store.fetch(run_a)
        assert store.load(run_b) is None

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = RunStore(tmp_path)
        run = ExperimentRun("table1")
        store.fetch(run)
        store.path(run).write_text("{not json")
        assert store.load(run) is None
        result, hit = store.fetch(run)  # transparently re-runs + overwrites
        assert not hit
        assert store.load(run) == result

    def test_non_object_json_entry_is_a_miss(self, tmp_path):
        store = RunStore(tmp_path)
        run = ExperimentRun("table1")
        store.fetch(run)
        store.path(run).write_text("[1, 2, 3]")  # valid JSON, wrong shape
        assert store.load(run) is None

    def test_stale_format_is_a_miss(self, tmp_path):
        store = RunStore(tmp_path)
        run = ExperimentRun("table1")
        store.fetch(run)
        payload = json.loads(store.path(run).read_text())
        payload["format"] = -1
        store.path(run).write_text(json.dumps(payload))
        assert store.load(run) is None

    def test_other_package_version_is_a_miss(self, tmp_path):
        # results computed by a different repro release never replay
        store = RunStore(tmp_path)
        run = ExperimentRun("table1")
        store.fetch(run)
        payload = json.loads(store.path(run).read_text())
        payload["version"] = "0.0.0-other"
        store.path(run).write_text(json.dumps(payload))
        assert store.load(run) is None

    def test_save_leaves_no_temp_files(self, tmp_path):
        store = RunStore(tmp_path)
        run = ExperimentRun("table1")
        store.fetch(run)
        store.fetch(run, force=True)
        leftovers = list(store.path(run).parent.glob("*.tmp"))
        assert leftovers == []

    def test_unwritable_store_degrades_to_uncached(self, tmp_path):
        # caching is best-effort: results already computed must survive
        blocker = tmp_path / "not-a-dir"
        blocker.write_text("in the way")
        store = RunStore(blocker / "cache")
        with pytest.warns(RuntimeWarning, match="could not cache"):
            results = run_experiments([ExperimentRun("table1")], store=store)
        assert results[0].matches_paper

    def test_run_experiments_mixes_hits_and_misses(self, tmp_path):
        store = RunStore(tmp_path)
        warm = ExperimentRun("table1")
        cold = ExperimentRun("table2")
        store.fetch(warm)
        results = run_experiments([warm, cold], store=store)
        assert type(results[0]).__name__ == "Table1Result"
        assert type(results[1]).__name__ == "Table2Result"
        assert store.load(cold) is not None  # miss was saved


class TestCliSurface:
    def test_list_filters_and_json(self, capsys):
        assert cli_main(["list", "--only", "tables", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [e["id"] for e in payload] == ["table1", "table2"]

    def test_list_rejects_bad_only(self):
        with pytest.raises(SystemExit, match="--only"):
            cli_main(["list", "--only", "sketches"])

    def test_run_set_param(self, capsys):
        assert cli_main(["run", "fig3", "--set", "model=RM1"]) == 0
        assert "(RM1)" in capsys.readouterr().out

    def test_run_set_calibration_field(self, capsys):
        assert cli_main(
            ["run", "fig4", "--set", "cpu_log_per_element=0.000001"]
        ) == 0
        assert "Figure 4" in capsys.readouterr().out

    def test_run_set_unknown_name_exits(self):
        with pytest.raises(SystemExit, match="no listed experiment"):
            cli_main(["run", "fig3", "--set", "bogus=1"])

    def test_run_set_with_multiple_ids_applies_where_accepted(self, capsys):
        # fig3 takes `model`, table1 takes no params: the override applies
        # to fig3 only instead of erroring out the whole invocation
        assert cli_main(["run", "fig3", "table1", "--set", "model=RM1"]) == 0
        out = capsys.readouterr().out
        assert "(RM1)" in out and "Table I" in out

    def test_run_set_calibration_skips_calibrationless_ids(self, capsys):
        # fig4 takes calibration, table1 does not; the override must not
        # break table1, and must not error when ONE listed id accepts it
        assert cli_main(
            ["run", "fig4", "table1", "--json",
             "--set", "cpu_log_per_element=0.000001"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["run"]["calibration"] == {
            "cpu_log_per_element": 0.000001
        }
        assert payload[1]["run"]["calibration"] == {}

    def test_run_set_consumed_by_no_listed_id_exits(self):
        # table1/table2 take neither params nor calibration
        with pytest.raises(SystemExit, match="--set"):
            cli_main(["run", "table1", "table2",
                      "--set", "cpu_log_per_element=0.000001"])

    def test_run_json_serializes_results(self, capsys):
        assert cli_main(["run", "table1", "table2", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert [e["id"] for e in payload] == ["table1", "table2"]
        for entry in payload:
            assert entry["columns"]
            assert entry["rows"]
            assert "result" in entry

    def test_report_only_json_scoreboard(self, capsys):
        assert cli_main(["report", "--only", "tables", "--json", "--no-cache"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {e["kind"] for e in payload["experiments"]} == {"table"}
        assert payload["scoreboard"]["total"] > 0

    def test_report_cache_round_trip(self, tmp_path, capsys):
        argv = ["report", "--only", "tables", "--cache-dir", str(tmp_path)]
        assert cli_main(argv) == 0
        first = capsys.readouterr().out
        assert list(tmp_path.iterdir())  # populated
        assert cli_main(argv) == 0
        assert capsys.readouterr().out == first  # cached replay identical

    def test_export_writes_header_row(self, tmp_path, capsys):
        assert cli_main(
            ["export", "--dir", str(tmp_path), "--no-cache", "fig4"]
        ) == 0
        lines = (tmp_path / "fig4.csv").read_text().splitlines()
        assert lines[0] == "model,cores,8-GPU demand (samples/s),per-core P (samples/s)"
        assert lines[1].startswith("RM1,")

    def test_export_json_format(self, tmp_path, capsys):
        assert cli_main(
            ["export", "--dir", str(tmp_path), "--format", "json",
             "--no-cache", "table1"]
        ) == 0
        payload = json.loads((tmp_path / "table1.json").read_text())
        assert payload["title"] == "Table I"
        assert payload["columns"][0] == "model"
        assert len(payload["rows"]) == 5

    def test_export_warns_and_skips_rowless_results(self, tmp_path, capsys):
        from repro.experiments.fig3_colocated import Fig3Result

        def run_rowless(model: str = "RM5") -> Fig3Result:
            class Rowless(ExperimentResult):
                pass

            return Rowless()

        register_experiment(
            "rowless-test", title="Rowless test", kind="ablation", order=998
        )(run_rowless)
        try:
            assert cli_main(
                ["export", "--dir", str(tmp_path), "--no-cache",
                 "rowless-test", "table1"]
            ) == 0
            captured = capsys.readouterr()
            assert "skipping 'rowless-test'" in captured.err
            assert not (tmp_path / "rowless-test.csv").exists()
            assert (tmp_path / "table1.csv").exists()  # others still export
            # the cache-enabled path must warn-skip too, not crash trying
            # to encode the protocol-less result into the store
            cache = tmp_path / "cache"
            assert cli_main(
                ["export", "--dir", str(tmp_path / "out2"),
                 "--cache-dir", str(cache), "rowless-test", "table1"]
            ) == 0
            captured = capsys.readouterr()
            assert "skipping 'rowless-test'" in captured.err
            assert (tmp_path / "out2" / "table1.csv").exists()
        finally:
            EXPERIMENT_REGISTRY.unregister("rowless-test")

    def test_export_unknown_id_exits(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown experiment"):
            cli_main(["export", "--dir", str(tmp_path), "fig99"])

"""repro.api — the declarative front door for every experiment.

Four pieces:

* :class:`SystemRegistry` / :func:`register_system` — a catalog of system
  design points; user systems plug in next to the paper's six;
* :class:`Scenario` — one frozen, validated, dict-round-trippable record
  describing model x system x deployment; ``.run()`` simulates the full
  pipeline and returns a uniform :class:`RunResult`;
* :class:`Sweep` — a grid of scenarios executed serially or across a
  ``multiprocessing`` pool with deterministic result ordering;
* :class:`PreprocessJob` — the data-plane scenario: one declarative
  sharded preprocessing run through :class:`repro.exec.ShardExecutor`,
  with a content digest proving parallel == serial output.
"""

from repro.api.registry import (
    REGISTRY,
    SystemRegistry,
    available_systems,
    get_system,
    register_system,
)
from repro.api.preprocess import (
    PreprocessJob,
    PreprocessRunResult,
    minibatch_digest,
)
from repro.api.result import RunResult
from repro.api.scenario import PROVISION_MODES, Scenario, calibration_overrides
from repro.api.sweep import Sweep

__all__ = [
    "REGISTRY",
    "SystemRegistry",
    "available_systems",
    "get_system",
    "register_system",
    "RunResult",
    "PROVISION_MODES",
    "Scenario",
    "calibration_overrides",
    "Sweep",
    "PreprocessJob",
    "PreprocessRunResult",
    "minibatch_digest",
]

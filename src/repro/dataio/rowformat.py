"""Row-oriented file format — the strawman Section II-B argues against.

The paper motivates columnar storage by the *overfetch* problem: with a
row-oriented layout, extracting features X and W for all users "inevitably
leads to (unwanted) features Y and Z to be retrieved, wasting data read
bandwidth".  This module implements that layout for real, so the
columnar-vs-row ablation (``repro.experiments.abl_row_vs_columnar``) can
measure the waste instead of asserting it.

Layout::

    [magic][record 0][record 1]...[footer: schema + row count + offsets head]

Each record serializes one row: label byte, dense float32s, then per sparse
column a varint length + varint-encoded ids.  Reading *any* column requires
scanning every record (there is no per-column index by construction).

Although the *format* is row-major, the writer and reader are vectorized:
the writer precomputes every record's byte offsets from the varint widths
and scatters whole columns into one output buffer
(:func:`repro.dataio.encoding.scatter_uvarints`); the reader walks records
only to locate varint boundaries (via a precomputed continuation-bit index)
and then gathers labels, dense values, and sparse ids column-at-a-time.
The output is byte-identical to the original row-by-row writer, which is
kept as :meth:`RowFileWriter.write_scalar` for cross-checks and benchmarks.
"""

from __future__ import annotations

import json
import struct
from typing import Dict, Iterable, List, Tuple

import numpy as np

from repro.dataio.columnar import TableData
from repro.dataio.encoding import (
    gather_uvarints,
    read_uvarint,
    scatter_uvarints,
    uvarint_lengths,
    write_uvarint,
)
from repro.dataio.schema import TableSchema
from repro.errors import FormatError, SchemaError

ROW_MAGIC = b"PRSTR\n"
_FOOTER_LEN = struct.Struct("<I")
_F32 = struct.Struct("<f")
_DENSE_FIELD = _F32.size + 1  # float32 payload + null-marker byte


class RowFileWriter:
    """Serialize a table row by row (the pre-columnar layout)."""

    def __init__(self, schema: TableSchema) -> None:
        self.schema = schema

    def _validated_columns(self, data: TableData):
        """Pull label/dense/sparse arrays out of ``data`` and validate them."""
        label = data.get(self.schema.label.name)
        if label is None:
            raise SchemaError(f"missing label column {self.schema.label.name!r}")
        num_rows = len(label)

        dense_columns = []
        for column in self.schema.dense:
            if column.name not in data:
                raise SchemaError(f"missing dense column {column.name!r}")
            values = np.asarray(data[column.name], dtype=np.float32)
            column.validate_values(values, num_rows)
            dense_columns.append(values)

        sparse_columns: List[Tuple[np.ndarray, np.ndarray, np.ndarray]] = []
        for column in self.schema.sparse:
            if column.name not in data:
                raise SchemaError(f"missing sparse column {column.name!r}")
            lengths, values = data[column.name]
            column.validate_values(lengths, values, num_rows)
            offsets = np.concatenate(([0], np.cumsum(lengths)))
            sparse_columns.append((np.asarray(lengths), np.asarray(values), offsets))
        return label, dense_columns, sparse_columns, num_rows

    def _footer(self, num_rows: int) -> bytes:
        return json.dumps(
            {
                "dense": self.schema.dense_names,
                "sparse": self.schema.sparse_names,
                "label": self.schema.label.name,
                "num_rows": num_rows,
            },
            separators=(",", ":"),
        ).encode()

    def write(self, data: TableData) -> bytes:
        """Serialize all rows; returns the file bytes.

        Builds the file in one pass of whole-column numpy operations: per-row
        record sizes come from the batch varint widths, every field's byte
        offset is then known up front, and each column is scattered into the
        preallocated buffer.
        """
        label, dense_columns, sparse_columns, num_rows = self._validated_columns(data)

        num_dense = len(dense_columns)
        fixed_bytes = 1 + _DENSE_FIELD * num_dense

        # per-column varint widths: the length prefix and each row's id bytes
        length_widths: List[np.ndarray] = []
        id_widths: List[np.ndarray] = []
        width_prefixes: List[np.ndarray] = []  # exclusive cumsum of id_widths
        raw_ids: List[np.ndarray] = []  # ids as uint64 two's complement
        row_id_bytes: List[np.ndarray] = []
        for lengths, values, offsets in sparse_columns:
            length_widths.append(uvarint_lengths(lengths.astype(np.uint64)))
            raw = values.astype(np.int64).astype(np.uint64)
            raw_ids.append(raw)
            widths = uvarint_lengths(raw)
            id_widths.append(widths)
            width_prefix = np.concatenate(([0], np.cumsum(widths)))
            width_prefixes.append(width_prefix)
            row_id_bytes.append(width_prefix[offsets[1:]] - width_prefix[offsets[:-1]])

        record_sizes = np.full(num_rows, fixed_bytes, dtype=np.int64)
        for col in range(len(sparse_columns)):
            record_sizes += length_widths[col] + row_id_bytes[col]
        record_ends = len(ROW_MAGIC) + np.cumsum(record_sizes)
        record_starts = record_ends - record_sizes
        body_end = len(ROW_MAGIC) + int(record_sizes.sum())

        out = np.empty(body_end, dtype=np.uint8)
        out[: len(ROW_MAGIC)] = np.frombuffer(ROW_MAGIC, dtype=np.uint8)

        # labels: one byte at the head of every record
        out[record_starts] = (
            np.asarray(label).astype(np.int64, copy=False) & 0xFF
        ).astype(np.uint8)

        # dense fields: 4 little-endian float32 bytes + 1 null-marker byte
        for index, values in enumerate(dense_columns):
            base = record_starts + (1 + _DENSE_FIELD * index)
            nulls = np.isnan(values)
            packed = np.where(nulls, np.float32(0.0), values).astype("<f4")
            byte_planes = packed.view(np.uint8).reshape(num_rows, 4)
            for byte_index in range(4):
                out[base + byte_index] = byte_planes[:, byte_index]
            out[base + 4] = nulls.astype(np.uint8)

        # sparse fields: varint length prefix + varint ids, column by column
        cursor = record_starts + fixed_bytes
        for col, (lengths, values, offsets) in enumerate(sparse_columns):
            scatter_uvarints(
                out, cursor, lengths.astype(np.uint64), length_widths[col]
            )
            ids_base = cursor + length_widths[col]
            if len(values):
                width_prefix = width_prefixes[col]
                lengths64 = np.asarray(lengths, dtype=np.int64)
                # start of id k = its row's ids_base + its width-prefix within the row
                id_starts = np.repeat(
                    ids_base - width_prefix[offsets[:-1]], lengths64
                ) + width_prefix[:-1]
                scatter_uvarints(out, id_starts, raw_ids[col], id_widths[col])
            cursor = ids_base + row_id_bytes[col]

        footer = self._footer(num_rows)
        return b"".join(
            (
                out.tobytes(),
                footer,
                _FOOTER_LEN.pack(len(footer)),
                ROW_MAGIC,
            )
        )

    def write_scalar(self, data: TableData) -> bytes:
        """Row-by-row reference writer (the original implementation).

        Kept for byte-identity cross-checks in tests and as the scalar
        baseline that ``repro bench`` measures the vectorized writer against.
        """
        label, dense_columns, sparse_columns, num_rows = self._validated_columns(data)

        body = bytearray(ROW_MAGIC)
        for row in range(num_rows):
            body.append(int(label[row]) & 0xFF)
            for values in dense_columns:
                value = values[row]
                is_null = bool(np.isnan(value))
                body += _F32.pack(0.0 if is_null else float(value))
                body.append(1 if is_null else 0)  # null marker
            for lengths, values, offsets in sparse_columns:
                row_ids = values[offsets[row] : offsets[row + 1]]
                write_uvarint(len(row_ids), body)
                for raw_id in row_ids.tolist():
                    write_uvarint(int(raw_id) & (2**64 - 1), body)

        footer = self._footer(num_rows)
        body += footer
        body += _FOOTER_LEN.pack(len(footer))
        body += ROW_MAGIC
        return bytes(body)


class RowFileReader:
    """Scan-based reader over the row layout.

    ``bytes_scanned`` counts every byte the reader had to touch; for any
    column subset it equals (almost) the whole file — the overfetch the
    paper's columnar layout eliminates.

    Decoding is batched: one pass over the records locates every varint
    boundary using a precomputed index of bytes with a clear continuation
    bit (within a varint region, each such byte terminates exactly one
    varint), then labels, dense planes, and each wanted sparse column are
    gathered with whole-column numpy operations.
    """

    def __init__(self, buffer: bytes) -> None:
        self._buf = buffer
        self.bytes_scanned = 0
        min_size = 2 * len(ROW_MAGIC) + _FOOTER_LEN.size
        if len(buffer) < min_size or buffer[: len(ROW_MAGIC)] != ROW_MAGIC:
            raise FormatError("not a row-format file")
        if buffer[-len(ROW_MAGIC) :] != ROW_MAGIC:
            raise FormatError("truncated row-format file")
        (footer_len,) = _FOOTER_LEN.unpack(
            buffer[-len(ROW_MAGIC) - _FOOTER_LEN.size : -len(ROW_MAGIC)]
        )
        footer_end = len(buffer) - len(ROW_MAGIC) - _FOOTER_LEN.size
        try:
            meta = json.loads(buffer[footer_end - footer_len : footer_end].decode())
        except (ValueError, UnicodeDecodeError) as exc:
            raise FormatError(f"unparseable row-format footer: {exc}") from exc
        self.dense_names: List[str] = meta["dense"]
        self.sparse_names: List[str] = meta["sparse"]
        self.label_name: str = meta["label"]
        self.num_rows: int = meta["num_rows"]
        self._body_end = footer_end - footer_len

    def _scan_records(
        self, body: np.ndarray, terminators: np.ndarray
    ) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Walk every record once, returning per-row/column varint geometry.

        Returns ``(record_starts, counts, id_term_index)`` where ``counts``
        is the (num_rows, num_sparse) matrix of per-row list lengths and
        ``id_term_index[row, col]`` indexes into ``terminators`` at the first
        id varint of that row/column.  Only varint *boundaries* are resolved
        here; id payloads are decoded later in one batch per column.
        """
        num_sparse = len(self.sparse_names)
        fixed_bytes = 1 + _DENSE_FIELD * len(self.dense_names)
        record_starts = np.empty(self.num_rows, dtype=np.int64)
        counts = np.empty((self.num_rows, num_sparse), dtype=np.int64)
        id_term_index = np.empty((self.num_rows, num_sparse), dtype=np.int64)

        buf = self._buf
        num_terminators = len(terminators)
        offset = len(ROW_MAGIC)
        for row in range(self.num_rows):
            record_starts[row] = offset
            offset += fixed_bytes
            if num_sparse:
                # the fixed section may contain bytes with a clear high bit,
                # so re-sync the terminator cursor once per row
                index = int(np.searchsorted(terminators, offset))
                for col in range(num_sparse):
                    if index >= num_terminators:
                        raise FormatError("row records do not align with the footer")
                    count, offset = read_uvarint(buf, offset)
                    # a list can't hold more ids than the body has bytes; the
                    # bound also keeps the int64 store below from overflowing
                    if count > self._body_end:
                        raise FormatError(
                            "implausible sparse list length (corrupt row file)"
                        )
                    index += 1  # past the length-prefix terminator
                    counts[row, col] = count
                    id_term_index[row, col] = index
                    index += count
                    if count:
                        if index > num_terminators:
                            raise FormatError(
                                "row records do not align with the footer"
                            )
                        offset = int(terminators[index - 1]) + 1
        if offset != self._body_end:
            raise FormatError("row records do not align with the footer")
        return record_starts, counts, id_term_index

    def read_columns(self, names: Iterable[str]) -> TableData:
        """Extract the requested columns — by scanning every record."""
        wanted = set(names)
        unknown = wanted - set(
            self.dense_names + self.sparse_names + [self.label_name]
        )
        if unknown:
            raise FormatError(f"unknown columns {sorted(unknown)}")

        body = np.frombuffer(self._buf, dtype=np.uint8, count=self._body_end)
        # every byte with a clear continuation bit; inside a varint region
        # each one terminates exactly one varint
        terminators = np.flatnonzero(body < 0x80)
        record_starts, counts, id_term_index = self._scan_records(body, terminators)
        # scanning touched the entire record body regardless of selection
        self.bytes_scanned += self._body_end - len(ROW_MAGIC)

        out: TableData = {}
        if self.label_name in wanted:
            out[self.label_name] = body[record_starts].astype(np.int8)

        for index, name in enumerate(self.dense_names):
            if name not in wanted:
                continue
            base = record_starts + (1 + _DENSE_FIELD * index)
            planes = np.empty((self.num_rows, 4), dtype=np.uint8)
            for byte_index in range(4):
                planes[:, byte_index] = body[base + byte_index]
            values = planes.view("<f4").ravel().astype(np.float32)
            values[body[base + 4] != 0] = np.nan
            out[name] = values

        for col, name in enumerate(self.sparse_names):
            if name not in wanted:
                continue
            lengths = counts[:, col]
            total = int(lengths.sum())
            # ragged ranges: terminator index of every id of this column
            first = np.repeat(id_term_index[:, col], lengths)
            within = np.arange(total, dtype=np.int64) - np.repeat(
                np.concatenate(([0], np.cumsum(lengths)))[:-1], lengths
            )
            term_idx = first + within
            id_terms = terminators[term_idx]
            # each id starts right after the previous varint's terminator
            id_starts = terminators[term_idx - 1] + 1
            raw = gather_uvarints(body, id_starts, id_terms - id_starts + 1)
            out[name] = (
                lengths.astype(np.int32),
                raw.astype(np.int64),  # two's complement round-trip
            )
        return out


def write_row_table(schema: TableSchema, data: TableData) -> bytes:
    """Convenience wrapper around :class:`RowFileWriter`."""
    return RowFileWriter(schema).write(data)

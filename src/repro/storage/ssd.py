"""Datacenter NVMe SSD model.

Partitions (columnar files) are stored contiguously on one device (the
Tectonic behaviour Section IV-B relies on), so reads are dominated by
sequential bandwidth plus a fixed request latency.  The model tracks stored
objects by key so the cluster can answer "which device holds partition i"
and the functional layer can actually read bytes back.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import CapacityError, ConfigurationError
from repro.hardware.calibration import CALIBRATION
from repro.units import GIB


@dataclass
class SsdModel:
    """One NVMe SSD: capacity, bandwidth, and a key -> bytes object store."""

    name: str
    capacity_bytes: float = 4 * 1024 * GIB  # 4 TB class, like the SmartSSD's
    read_bw: float = CALIBRATION.ssd_read_bw
    read_latency: float = CALIBRATION.ssd_read_latency
    _objects: Dict[str, bytes] = field(default_factory=dict, repr=False)
    bytes_stored: float = 0.0
    bytes_read: float = 0.0

    # -- object store -------------------------------------------------------

    def write_object(self, key: str, data: bytes) -> None:
        """Store one immutable object (a partition's columnar file)."""
        if key in self._objects:
            raise ConfigurationError(f"object {key!r} already on {self.name}")
        if self.bytes_stored + len(data) > self.capacity_bytes:
            raise CapacityError(f"{self.name} is full")
        self._objects[key] = data
        self.bytes_stored += len(data)

    def read_object(self, key: str) -> bytes:
        """Return one stored object's bytes (functional path)."""
        if key not in self._objects:
            raise ConfigurationError(f"no object {key!r} on {self.name}")
        data = self._objects[key]
        self.bytes_read += len(data)
        return data

    def has_object(self, key: str) -> bool:
        """Whether ``key`` is stored on this device."""
        return key in self._objects

    def object_size(self, key: str) -> int:
        """Stored size of one object."""
        return len(self.read_object_silent(key))

    def read_object_silent(self, key: str) -> bytes:
        """Read without charging I/O counters (metadata peeks)."""
        if key not in self._objects:
            raise ConfigurationError(f"no object {key!r} on {self.name}")
        return self._objects[key]

    # -- timing ------------------------------------------------------------------

    def read_time(self, num_bytes: float) -> float:
        """Seconds to sequentially read ``num_bytes`` from flash."""
        if num_bytes < 0:
            raise ConfigurationError("cannot read negative bytes")
        return self.read_latency + num_bytes / self.read_bw

    @property
    def num_objects(self) -> int:
        """Stored object count."""
        return len(self._objects)

"""Tests for the Bucketize operator (Algorithm 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import OpError
from repro.ops.bucketize import bucketize, num_buckets, search_bucket_id


class TestScalarSearch:
    def test_below_first_boundary(self):
        assert search_bucket_id(-1.0, np.array([0.0, 1.0, 2.0])) == 0

    def test_on_boundary_goes_right(self):
        # value == boundary belongs to the next bucket (right-open intervals)
        assert search_bucket_id(1.0, np.array([0.0, 1.0, 2.0])) == 2

    def test_above_last_boundary(self):
        assert search_bucket_id(99.0, np.array([0.0, 1.0, 2.0])) == 3

    def test_interior(self):
        assert search_bucket_id(0.5, np.array([0.0, 1.0, 2.0])) == 1


class TestVectorized:
    def test_matches_numpy_digitize(self):
        boundaries = np.array([1.0, 2.0, 4.0, 8.0])
        values = np.array([0.5, 1.0, 3.0, 8.0, 100.0])
        expected = np.digitize(values, boundaries, right=False)
        np.testing.assert_array_equal(bucketize(values, boundaries), expected)

    def test_nan_maps_to_zero(self):
        out = bucketize(np.array([np.nan, 5.0]), np.array([1.0, 10.0]))
        assert out[0] == 0
        assert out[1] == 1

    def test_output_dtype_int64(self):
        out = bucketize(np.array([1.5]), np.array([1.0, 2.0]))
        assert out.dtype == np.int64

    def test_empty_input(self):
        out = bucketize(np.array([]), np.array([1.0]))
        assert len(out) == 0

    def test_nonincreasing_boundaries_rejected(self):
        with pytest.raises(OpError, match="strictly increasing"):
            bucketize(np.array([1.0]), np.array([2.0, 2.0]))

    def test_empty_boundaries_rejected(self):
        with pytest.raises(OpError):
            bucketize(np.array([1.0]), np.array([]))

    def test_2d_input_rejected(self):
        with pytest.raises(OpError, match="1-D"):
            bucketize(np.zeros((2, 2)), np.array([1.0]))

    def test_num_buckets(self):
        assert num_buckets(np.array([1.0, 2.0, 3.0])) == 4


class TestProperties:
    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), max_size=64
        ),
        num_edges=st.integers(min_value=1, max_value=32),
        seed=st.integers(min_value=0, max_value=1000),
    )
    @settings(max_examples=60, deadline=None)
    def test_vector_matches_scalar_reference(self, values, num_edges, seed):
        rng = np.random.default_rng(seed)
        boundaries = np.sort(rng.uniform(-1e5, 1e5, num_edges))
        boundaries = np.unique(boundaries)
        column = np.array(values, dtype=np.float64)
        vectorized = bucketize(column, boundaries)
        for value, got in zip(column, vectorized):
            assert got == search_bucket_id(float(value), boundaries)

    @given(
        values=st.lists(
            st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
            min_size=2,
            max_size=64,
        )
    )
    @settings(max_examples=40, deadline=None)
    def test_monotonicity(self, values):
        """Bucket ids preserve the ordering of values."""
        boundaries = np.array([-100.0, 0.0, 100.0, 1e4])
        column = np.sort(np.array(values, dtype=np.float64))
        out = bucketize(column, boundaries)
        assert np.all(np.diff(out) >= 0)

    @given(
        values=st.lists(st.floats(allow_nan=True, allow_infinity=False), max_size=64)
    )
    @settings(max_examples=40, deadline=None)
    def test_bounds(self, values):
        """Every bucket id lies in [0, len(boundaries)]."""
        boundaries = np.array([1.0, 2.0, 3.0])
        out = bucketize(np.array(values, dtype=np.float64), boundaries)
        assert np.all(out >= 0)
        assert np.all(out <= len(boundaries))

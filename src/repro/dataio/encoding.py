"""Column-chunk encodings for the columnar file format.

Four codecs, mirroring the encodings Parquet applies to RecSys feature data:

* ``PLAIN``       — raw little-endian array bytes.
* ``VARINT``      — LEB128 zig-zag varints; compact for small-magnitude ids.
* ``RLE``         — run-length encoding of (value, run) pairs; compact for
                    repetitive columns such as labels and lengths.
* ``DICTIONARY``  — value dictionary + fixed-width indices; compact for
                    low-cardinality categorical columns.

Every encoded chunk is framed as::

    [codec:1][dtype-code:1][num-values:varint][payload...][crc32:4]

so a chunk is self-describing and corruption is detected on decode.  The
Extract(Decode) latency that Figures 5 and 12 of the paper break out is the
cost of undoing exactly this kind of encoding.
"""

from __future__ import annotations

import enum
import struct
import zlib
from typing import Tuple

import numpy as np

from repro.errors import EncodingError

_CRC_STRUCT = struct.Struct("<I")

# dtype codes used in the chunk header
_DTYPE_CODES = {
    np.dtype(np.int8): 0,
    np.dtype(np.int32): 1,
    np.dtype(np.int64): 2,
    np.dtype(np.float32): 3,
    np.dtype(np.float64): 4,
}
_CODES_DTYPE = {code: dtype for dtype, code in _DTYPE_CODES.items()}


class Encoding(enum.IntEnum):
    """Codec identifiers stored in the chunk header."""

    PLAIN = 0
    VARINT = 1
    RLE = 2
    DICTIONARY = 3


# --------------------------------------------------------------------------
# varint primitives
# --------------------------------------------------------------------------


def _zigzag_encode(values: np.ndarray) -> np.ndarray:
    """Map signed integers onto unsigned so small magnitudes stay small."""
    v = values.astype(np.int64, copy=False)
    return ((v << 1) ^ (v >> 63)).astype(np.uint64)


def _zigzag_decode(values: np.ndarray) -> np.ndarray:
    """Inverse of :func:`_zigzag_encode`."""
    v = values.astype(np.uint64, copy=False)
    return ((v >> np.uint64(1)) ^ (np.uint64(0) - (v & np.uint64(1)))).astype(np.int64)


def write_uvarint(value: int, out: bytearray) -> None:
    """Append one unsigned LEB128 varint to ``out``."""
    if value < 0:
        raise EncodingError(f"uvarint cannot encode negative value {value}")
    while True:
        byte = value & 0x7F
        value >>= 7
        if value:
            out.append(byte | 0x80)
        else:
            out.append(byte)
            return


def read_uvarint(data: bytes, offset: int) -> Tuple[int, int]:
    """Read one unsigned LEB128 varint; return (value, new_offset)."""
    result = 0
    shift = 0
    while True:
        if offset >= len(data):
            raise EncodingError("truncated varint")
        byte = data[offset]
        offset += 1
        result |= (byte & 0x7F) << shift
        if not byte & 0x80:
            return result, offset
        shift += 7
        if shift > 70:
            raise EncodingError("varint too long")


# --------------------------------------------------------------------------
# per-codec payload encoders
# --------------------------------------------------------------------------


def _encode_plain(values: np.ndarray) -> bytes:
    return values.tobytes()


def _decode_plain(payload: bytes, dtype: np.dtype, count: int) -> np.ndarray:
    expected = count * dtype.itemsize
    if len(payload) != expected:
        raise EncodingError(
            f"plain payload is {len(payload)} bytes, expected {expected}"
        )
    return np.frombuffer(payload, dtype=dtype).copy()


def _encode_varint(values: np.ndarray) -> bytes:
    if not np.issubdtype(values.dtype, np.integer):
        raise EncodingError("varint encoding requires an integer column")
    out = bytearray()
    for value in _zigzag_encode(values).tolist():
        write_uvarint(value, out)
    return bytes(out)


def _decode_varint(payload: bytes, dtype: np.dtype, count: int) -> np.ndarray:
    decoded = np.empty(count, dtype=np.uint64)
    offset = 0
    for i in range(count):
        decoded[i], offset = read_uvarint(payload, offset)
    if offset != len(payload):
        raise EncodingError("trailing bytes after varint payload")
    return _zigzag_decode(decoded).astype(dtype)


def _encode_rle(values: np.ndarray) -> bytes:
    if not np.issubdtype(values.dtype, np.integer):
        raise EncodingError("RLE encoding requires an integer column")
    out = bytearray()
    if len(values):
        v = values.astype(np.int64, copy=False)
        # boundaries of runs of equal values
        change = np.flatnonzero(np.diff(v)) + 1
        starts = np.concatenate(([0], change))
        ends = np.concatenate((change, [len(v)]))
        for start, end in zip(starts.tolist(), ends.tolist()):
            write_uvarint(int(_zigzag_encode(v[start : start + 1])[0]), out)
            write_uvarint(end - start, out)
    return bytes(out)


def _decode_rle(payload: bytes, dtype: np.dtype, count: int) -> np.ndarray:
    out = np.empty(count, dtype=np.int64)
    offset = 0
    filled = 0
    while filled < count:
        raw, offset = read_uvarint(payload, offset)
        run, offset = read_uvarint(payload, offset)
        if run == 0:
            raise EncodingError("zero-length RLE run")
        if filled + run > count:
            raise EncodingError("RLE runs exceed declared value count")
        value = int(_zigzag_decode(np.array([raw], dtype=np.uint64))[0])
        out[filled : filled + run] = value
        filled += run
    if offset != len(payload):
        raise EncodingError("trailing bytes after RLE payload")
    return out.astype(dtype)


def _encode_dictionary(values: np.ndarray) -> bytes:
    if not np.issubdtype(values.dtype, np.integer):
        raise EncodingError("dictionary encoding requires an integer column")
    uniques, indices = np.unique(values, return_inverse=True)
    if len(uniques) > np.iinfo(np.uint32).max:
        raise EncodingError("dictionary cardinality exceeds uint32 index space")
    out = bytearray()
    write_uvarint(len(uniques), out)
    out += uniques.astype(np.int64).tobytes()
    out += indices.astype(np.uint32).tobytes()
    return bytes(out)


def _decode_dictionary(payload: bytes, dtype: np.dtype, count: int) -> np.ndarray:
    cardinality, offset = read_uvarint(payload, 0)
    dict_bytes = cardinality * 8
    index_bytes = count * 4
    if len(payload) != offset + dict_bytes + index_bytes:
        raise EncodingError("dictionary payload size mismatch")
    uniques = np.frombuffer(payload, dtype=np.int64, count=cardinality, offset=offset)
    indices = np.frombuffer(
        payload, dtype=np.uint32, count=count, offset=offset + dict_bytes
    )
    if len(uniques) == 0:
        if count:
            raise EncodingError("empty dictionary with non-zero value count")
        return np.empty(0, dtype=dtype)
    if indices.size and indices.max() >= cardinality:
        raise EncodingError("dictionary index out of range")
    return uniques[indices].astype(dtype)


_ENCODERS = {
    Encoding.PLAIN: _encode_plain,
    Encoding.VARINT: _encode_varint,
    Encoding.RLE: _encode_rle,
    Encoding.DICTIONARY: _encode_dictionary,
}
_DECODERS = {
    Encoding.PLAIN: _decode_plain,
    Encoding.VARINT: _decode_varint,
    Encoding.RLE: _decode_rle,
    Encoding.DICTIONARY: _decode_dictionary,
}


# --------------------------------------------------------------------------
# public chunk API
# --------------------------------------------------------------------------


def encode_column(values: np.ndarray, encoding: Encoding) -> bytes:
    """Encode a 1-D array as a framed, CRC-protected column chunk."""
    if values.ndim != 1:
        raise EncodingError(f"column chunks are 1-D, got shape {values.shape}")
    dtype = np.dtype(values.dtype)
    if dtype not in _DTYPE_CODES:
        raise EncodingError(f"unsupported column dtype {dtype}")
    if encoding not in _ENCODERS:
        raise EncodingError(f"unknown encoding {encoding!r}")
    if encoding is not Encoding.PLAIN and not np.issubdtype(dtype, np.integer):
        raise EncodingError(f"{encoding.name} requires integers, got {dtype}")

    header = bytearray()
    header.append(int(encoding))
    header.append(_DTYPE_CODES[dtype])
    write_uvarint(len(values), header)
    payload = _ENCODERS[encoding](values)
    body = bytes(header) + payload
    crc = zlib.crc32(body) & 0xFFFFFFFF
    return body + _CRC_STRUCT.pack(crc)


def decode_column(chunk: bytes) -> np.ndarray:
    """Decode one framed column chunk produced by :func:`encode_column`."""
    if len(chunk) < 2 + _CRC_STRUCT.size:
        raise EncodingError("chunk too short")
    body, crc_bytes = chunk[: -_CRC_STRUCT.size], chunk[-_CRC_STRUCT.size :]
    (stored_crc,) = _CRC_STRUCT.unpack(crc_bytes)
    if zlib.crc32(body) & 0xFFFFFFFF != stored_crc:
        raise EncodingError("chunk CRC mismatch (corrupt data)")
    try:
        encoding = Encoding(body[0])
    except ValueError:
        raise EncodingError(f"unknown encoding byte {body[0]}") from None
    try:
        dtype = _CODES_DTYPE[body[1]]
    except KeyError:
        raise EncodingError(f"unknown dtype code {body[1]}") from None
    count, offset = read_uvarint(body, 2)
    return _DECODERS[encoding](body[offset:], dtype, count)


def encoded_size(values: np.ndarray, encoding: Encoding) -> int:
    """Size in bytes of the encoded chunk, including framing and CRC."""
    return len(encode_column(values, encoding))


def best_encoding(values: np.ndarray) -> Encoding:
    """Pick the smallest applicable codec for a column, Parquet-style.

    Floating-point columns are always PLAIN.  Integer columns are tried
    against all codecs and the smallest encoding wins; ties favour the
    cheaper-to-decode codec (earlier enum value).
    """
    if not np.issubdtype(values.dtype, np.integer):
        return Encoding.PLAIN
    candidates = [Encoding.PLAIN, Encoding.VARINT, Encoding.RLE, Encoding.DICTIONARY]
    sizes = [(encoded_size(values, enc), int(enc)) for enc in candidates]
    sizes.sort()
    return Encoding(sizes[0][1])

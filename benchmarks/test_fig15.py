"""Benchmark: regenerate the paper's Fig15 via repro.experiments.fig15_efficiency."""

from conftest import assert_claims, report

from repro.experiments import fig15_efficiency


def test_fig15(benchmark):
    """Time the fig15 experiment and verify its paper claims."""
    result = benchmark(fig15_efficiency.run)
    report(result)
    assert_claims(result)

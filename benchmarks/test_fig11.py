"""Benchmark: regenerate the paper's Fig11 via repro.experiments.fig11_throughput."""

from conftest import assert_claims, report

from repro.experiments import fig11_throughput


def test_fig11(benchmark):
    """Time the fig11 experiment and verify its paper claims."""
    result = benchmark(fig11_throughput.run)
    report(result)
    assert_claims(result)
